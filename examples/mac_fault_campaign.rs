//! The paper's §IV-A campaign on the 10GE-MAC-like design, run through
//! the durable campaign orchestration of `ffr-campaign`: adaptive
//! Wilson-CI early stopping, periodic checkpoints, and bit-identical
//! resume after an (simulated) interruption.
//!
//! Run: `cargo run --release --example mac_fault_campaign`

use ffr_campaign::{
    run_resumable, AdaptivePolicy, CampaignCheckpoint, CancelToken, CheckpointParams, RunOutcome,
    RunnerOptions,
};
use ffr_circuits::{Mac10geConfig, MacJudge, MacTestbench, TrafficConfig};
use ffr_fault::{Campaign, FailureClass, FaultKind};
use ffr_sim::GoldenRun;

fn main() {
    let (cc, tb, watch, extractor) =
        MacTestbench::setup(Mac10geConfig::small(), &TrafficConfig::small());
    println!(
        "MAC: {} flip-flops; testbench sends {} packets",
        cc.num_ffs(),
        tb.sent_packets().len()
    );

    let golden = GoldenRun::capture(&cc, &tb, &watch);
    let judge = MacJudge::new(extractor, &golden);
    println!(
        "golden run receives {} packets intact",
        judge.golden_packets().len()
    );
    let campaign = Campaign::with_golden(&cc, &tb, &watch, &judge, golden);

    // Adaptive policy: 40–120 injections per flip-flop, retiring each one
    // as soon as its 95 % Wilson interval half-width reaches 0.08.
    let window = tb.injection_window();
    let mut checkpoint = CampaignCheckpoint::fresh_seu(
        "example".into(),
        CheckpointParams {
            fault: FaultKind::Seu,
            seed: 7,
            window_start: window.start,
            window_end: window.end,
            policy: AdaptivePolicy::adaptive(40, 120, 0.08),
        },
        cc.num_ffs(),
    );
    let checkpoint_path = std::env::temp_dir().join("mac_fault_campaign.checkpoint.json");

    // First leg: stop (resumably) after half the flip-flops, as if the
    // process had been killed mid-campaign.
    let outcome = run_resumable(
        &campaign,
        &mut checkpoint,
        &RunnerOptions {
            stop_after_points: Some(cc.num_ffs() / 2),
            ..RunnerOptions::default()
        },
        &CancelToken::new(),
        |cp| cp.save(&checkpoint_path),
        |_, _| {},
    )
    .expect("checkpoint directory is writable");
    assert_eq!(outcome, RunOutcome::Cancelled);
    println!(
        "\ninterrupted after {}/{} flip-flops ({} injections so far) — resuming from {}",
        checkpoint.completed_points(),
        checkpoint.num_points,
        checkpoint.total_injections(),
        checkpoint_path.display()
    );

    // Second leg: reload the checkpoint from disk (as `ffr resume` would)
    // and drive the campaign to completion.
    let mut checkpoint =
        CampaignCheckpoint::load(&checkpoint_path).expect("checkpoint written by first leg");
    let outcome = run_resumable(
        &campaign,
        &mut checkpoint,
        &RunnerOptions::default(),
        &CancelToken::new(),
        |cp| cp.save(&checkpoint_path),
        |done, total| {
            if done % 50 == 0 || done == total {
                eprintln!("  {done}/{total} flip-flops retired");
            }
        },
    )
    .expect("checkpoint directory is writable");
    assert_eq!(outcome, RunOutcome::Complete);
    let table = checkpoint.to_fdr_table();
    println!(
        "campaign complete: {} injections (fixed-120 budget would have been {})",
        checkpoint.total_injections(),
        cc.num_ffs() * 120
    );

    // Rank flip-flops by FDR.
    let mut ranked: Vec<(usize, f64)> = (0..cc.num_ffs())
        .map(|i| {
            (
                i,
                table
                    .fdr(ffr_netlist::FfId::from_index(i))
                    .expect("full campaign"),
            )
        })
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));

    println!("\nmost vulnerable flip-flops:");
    for &(i, fdr) in ranked.iter().take(10) {
        let ff = ffr_netlist::FfId::from_index(i);
        println!("  {:<26} FDR = {:.3}", cc.netlist().ff_name(ff), fdr);
    }
    println!("\nleast vulnerable flip-flops:");
    for &(i, fdr) in ranked.iter().rev().take(5) {
        let ff = ffr_netlist::FfId::from_index(i);
        println!("  {:<26} FDR = {:.3}", cc.netlist().ff_name(ff), fdr);
    }

    println!("\nfailure-class totals over the campaign:");
    for (class, count) in table.class_totals() {
        if class != FailureClass::Benign {
            println!("  {class:<20} {count}");
        }
    }
    println!("\ncircuit FDR = {:.4}", table.circuit_fdr());
    println!("\nFDR histogram:");
    print!("{}", table.histogram(10));

    let _ = std::fs::remove_file(&checkpoint_path);
}
