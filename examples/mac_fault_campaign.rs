//! The paper's §IV-A campaign on the 10GE-MAC-like design, at example
//! scale: inject SEUs into every flip-flop of the (small) MAC and report
//! the most and least vulnerable registers plus the failure-class mix.
//!
//! Run: `cargo run --release --example mac_fault_campaign`

use ffr_circuits::{Mac10geConfig, MacJudge, MacTestbench, TrafficConfig};
use ffr_fault::{Campaign, CampaignConfig, FailureClass};
use ffr_sim::GoldenRun;

fn main() {
    let (cc, tb, watch, extractor) =
        MacTestbench::setup(Mac10geConfig::small(), &TrafficConfig::small());
    println!(
        "MAC: {} flip-flops; testbench sends {} packets",
        cc.num_ffs(),
        tb.sent_packets().len()
    );

    let golden = GoldenRun::capture(&cc, &tb, &watch);
    let judge = MacJudge::new(extractor, &golden);
    println!(
        "golden run receives {} packets intact",
        judge.golden_packets().len()
    );

    let campaign = Campaign::new(&cc, &tb, &watch, &judge);
    let config = CampaignConfig::new(tb.injection_window())
        .with_injections(40)
        .with_seed(7);
    let table = campaign.run_parallel(&config);

    // Rank flip-flops by FDR.
    let mut ranked: Vec<(usize, f64)> = (0..cc.num_ffs())
        .map(|i| {
            (
                i,
                table
                    .fdr(ffr_netlist::FfId::from_index(i))
                    .expect("full campaign"),
            )
        })
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));

    println!("\nmost vulnerable flip-flops:");
    for &(i, fdr) in ranked.iter().take(10) {
        let ff = ffr_netlist::FfId::from_index(i);
        println!("  {:<26} FDR = {:.3}", cc.netlist().ff_name(ff), fdr);
    }
    println!("\nleast vulnerable flip-flops:");
    for &(i, fdr) in ranked.iter().rev().take(5) {
        let ff = ffr_netlist::FfId::from_index(i);
        println!("  {:<26} FDR = {:.3}", cc.netlist().ff_name(ff), fdr);
    }

    println!("\nfailure-class totals over the campaign:");
    for (class, count) in table.class_totals() {
        if class != FailureClass::Benign {
            println!("  {class:<20} {count}");
        }
    }
    println!("\ncircuit FDR = {:.4}", table.circuit_fdr());
    println!("\nFDR histogram:");
    print!("{}", table.histogram(10));
}
