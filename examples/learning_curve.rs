//! Learning curves and the cost-saving argument (Figs. 2b/3b/4b and the
//! paper's conclusion) at example scale.
//!
//! Run: `cargo run --release --example learning_curve`

use ffr_circuits::{Mac10geConfig, MacJudge, MacTestbench, TrafficConfig};
use ffr_core::savings::{max_cost_reduction, render, savings_table};
use ffr_core::{model_learning_curve, ModelKind, ReferenceDataset};
use ffr_fault::CampaignConfig;
use ffr_sim::GoldenRun;

fn main() {
    let (cc, tb, watch, extractor) =
        MacTestbench::setup(Mac10geConfig::small(), &TrafficConfig::small());
    let golden = GoldenRun::capture(&cc, &tb, &watch);
    let judge = MacJudge::new(extractor, &golden);
    eprintln!("collecting reference dataset...");
    let config = CampaignConfig::new(tb.injection_window())
        .with_injections(40)
        .with_seed(11);
    let ds = ReferenceDataset::collect(&cc, &tb, &watch, &judge, &config, |_, _| {});

    let fractions = [0.1, 0.2, 0.3, 0.5, 0.7, 0.9];
    let curve = model_learning_curve(ModelKind::Knn, &ds, &fractions, 10, 5);
    print!("{curve}");

    println!("\ncost/accuracy trade-off:");
    let table = savings_table(&curve.points);
    print!("{}", render(&table));
    if let Some(row) = max_cost_reduction(&curve.points, 0.10) {
        println!(
            "=> a {:.1}x cheaper campaign (training on {:.0}% of flip-flops) stays within 10% of peak R2",
            row.cost_reduction,
            row.train_fraction * 100.0
        );
    }
}
