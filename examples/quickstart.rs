//! Quickstart: estimate per-flip-flop Functional De-Rating for a small
//! circuit in under a second.
//!
//! Builds a 8-bit counter with the RTL builder, runs a statistical SEU
//! campaign against a generic output-mismatch failure criterion, and
//! prints the FDR of every flip-flop.
//!
//! Run: `cargo run --release --example quickstart`

use ffr_fault::{Campaign, CampaignConfig, OutputMismatchJudge};
use ffr_netlist::NetlistBuilder;
use ffr_sim::{CompiledCircuit, InputFrame, Stimulus, WatchList};

/// Free-running enable.
struct AlwaysOn;

impl Stimulus for AlwaysOn {
    fn num_cycles(&self) -> u64 {
        200
    }

    fn drive(&self, _cycle: u64, frame: &mut InputFrame) {
        frame.set(0, true);
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the circuit at RTL level; the builder lowers it to a
    //    NanGate-like gate-level netlist.
    let mut b = NetlistBuilder::new("quickstart");
    let en = b.input("en", 1);
    let count = b.reg("count", 8);
    let next = b.inc(&count.q());
    b.connect_en(&count, &en, &next)?;
    // Only the low nibble is observable: upper bits are partially masked.
    b.output("value", &count.q().slice(0..4));
    let netlist = b.finish()?;

    // 2. Compile for simulation.
    let cc = CompiledCircuit::compile(netlist)?;
    println!(
        "circuit: {} cells, {} flip-flops",
        cc.netlist().num_cells(),
        cc.num_ffs()
    );

    // 3. Statistical SEU campaign: 60 injections per flip-flop, failure =
    //    any primary-output deviation from the golden run.
    let watch = WatchList::all(&cc);
    let judge = OutputMismatchJudge::new();
    let campaign = Campaign::new(&cc, &AlwaysOn, &watch, &judge);
    let config = CampaignConfig::new(10..180)
        .with_injections(60)
        .with_seed(1);
    let table = campaign.run_parallel(&config);

    println!("\nper-flip-flop Functional De-Rating:");
    for (ff, _) in cc.netlist().ffs() {
        println!(
            "  {:<14} FDR = {:.3}",
            cc.netlist().ff_name(ff),
            table.fdr(ff).expect("full campaign")
        );
    }
    println!("\ncircuit FDR = {:.3}", table.circuit_fdr());
    println!("expectation: observable low bits fail, masked high bits do not.");
    Ok(())
}
