//! The paper's Table I at example scale: collect a reference dataset on
//! the small MAC and compare the three models (plus the future-work ones)
//! under stratified cross-validation.
//!
//! Run: `cargo run --release --example model_comparison`

use ffr_circuits::{Mac10geConfig, MacJudge, MacTestbench, TrafficConfig};
use ffr_core::{compare_models, ModelKind, ReferenceDataset};
use ffr_fault::CampaignConfig;
use ffr_sim::GoldenRun;

fn main() {
    let (cc, tb, watch, extractor) =
        MacTestbench::setup(Mac10geConfig::small(), &TrafficConfig::small());
    let golden = GoldenRun::capture(&cc, &tb, &watch);
    let judge = MacJudge::new(extractor, &golden);

    eprintln!(
        "collecting reference dataset ({} FFs x 40 injections)...",
        cc.num_ffs()
    );
    let config = CampaignConfig::new(tb.injection_window())
        .with_injections(40)
        .with_seed(3);
    let ds = ReferenceDataset::collect(&cc, &tb, &watch, &judge, &config, |_, _| {});

    let kinds = [
        ModelKind::LinearLeastSquares,
        ModelKind::Knn,
        ModelKind::SvrRbf,
        ModelKind::DecisionTree,
        ModelKind::RandomForest,
        ModelKind::GradientBoosting,
    ];
    let cmp = compare_models(&kinds, &ds, 10, 0.5, 42);
    print!("{cmp}");
    println!();
    println!("expected shape (as in the paper): the linear model is clearly");
    println!("worst; the non-linear models are all far better.");
}
