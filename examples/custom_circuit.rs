//! Bring your own circuit: build a custom design with the RTL builder,
//! round-trip it through structural Verilog, extract the paper's
//! 25 features and run the full ML-assisted estimation flow on it.
//!
//! Run: `cargo run --release --example custom_circuit`

use ffr_core::{EstimationFlow, FlowConfig, ModelKind};
use ffr_fault::OutputMismatchJudge;
use ffr_features::extract_features;
use ffr_netlist::{verilog, NetlistBuilder};
use ffr_sim::{run_testbench, CompiledCircuit, InputFrame, Stimulus, WatchList};

/// A small packet-checksum engine: data flows through a pipeline into an
/// accumulator; a stuck status register and a wide ID register provide
/// benign flip-flop populations.
fn build() -> Result<ffr_netlist::Netlist, ffr_netlist::NetlistError> {
    let mut b = NetlistBuilder::new("checksum_engine");
    let valid = b.input("valid", 1);
    let data = b.input("data", 8);

    // Two pipeline stages.
    let s1 = b.reg("stage1", 8);
    b.connect_en(&s1, &valid, &data)?;
    let s2 = b.reg("stage2", 8);
    b.connect_en(&s2, &valid, &s1.q())?;

    // Accumulating checksum.
    let acc = b.reg("acc", 8);
    let (sum, _) = b.add(&acc.q(), &s2.q());
    b.connect_en(&acc, &valid, &sum)?;

    // Benign: a version ID that holds its reset value forever.
    let id = b.reg_init("version_id", 8, 0x5A);
    let id_q = id.q();
    b.connect(&id, &id_q)?;
    let parity = b.reduce_xor(&id.q());
    let gated = b.and(&parity, &valid);
    let zero = b.zero_bit();
    let masked = b.and(&gated, &zero);

    b.output("checksum", &acc.q());
    let out_bit = b.or(&masked, &acc.q().bit(0));
    b.output("csum_lsb_mirror", &out_bit);
    b.finish()
}

struct Feed;

impl Stimulus for Feed {
    fn num_cycles(&self) -> u64 {
        300
    }

    fn drive(&self, cycle: u64, frame: &mut InputFrame) {
        frame.set(0, cycle % 3 != 2);
        frame.set_bus(1, 8, (cycle * 37 + 11) & 0xFF);
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = build()?;

    // Round-trip through structural Verilog (what you would hand to or
    // receive from a synthesis flow).
    let verilog_text = verilog::emit(&netlist);
    println!(
        "emitted {} lines of structural Verilog; first lines:",
        verilog_text.lines().count()
    );
    for line in verilog_text.lines().take(6) {
        println!("  {line}");
    }
    let netlist = verilog::parse(&verilog_text)?;

    let cc = CompiledCircuit::compile(netlist)?;
    let watch = WatchList::all(&cc);

    // Feature extraction (the paper's 25 columns) as CSV.
    let run = run_testbench(&cc, &Feed, &watch);
    let features = extract_features(&cc, &run.activity);
    println!(
        "\nfeature matrix: {} x {}; CSV head:",
        features.num_rows(),
        features.num_cols()
    );
    for line in features.to_csv().lines().take(4) {
        println!("  {line}");
    }

    // Full estimation flow: inject 40% of FFs, predict the rest.
    let judge = OutputMismatchJudge::new();
    let flow = EstimationFlow::new(&cc, &Feed, &watch, &judge);
    let config = FlowConfig {
        training_fraction: 0.4,
        injections_per_ff: 40,
        window: 10..280,
        seed: 21,
    };
    let est = flow.estimate(ModelKind::Knn, &config);
    println!("\nper-flip-flop estimates (M = measured, P = predicted):");
    for (i, e) in est.per_ff.iter().enumerate() {
        let ff = ffr_netlist::FfId::from_index(i);
        println!(
            "  {:<18} {} {:.3}",
            cc.netlist().ff_name(ff),
            if e.is_measured() { "M" } else { "P" },
            e.value()
        );
    }
    println!(
        "\ncircuit FDR = {:.3} using only {} injections",
        est.circuit_fdr(),
        est.injections_spent()
    );
    Ok(())
}
