//! Single-Event Transient (SET) injection on combinational nets.
//!
//! The paper's background section (§II-A) describes SETs — transients on
//! combinational gate outputs that only matter if they are latched. This
//! module extends the campaign engine to that model: a chosen net is
//! XOR-forced for exactly one evaluation, after which the disturbance only
//! persists through whatever flip-flops captured it.
//!
//! SET campaigns are an *extension* relative to the paper's evaluation
//! (which injects SEUs into flip-flops) and power the workspace's
//! logical-de-rating ablation experiments.

use crate::judge::FailureJudge;
use crate::model::FailureClass;
use ffr_netlist::NetId;
use ffr_sim::{CompiledCircuit, GoldenRun, InputFrame, LaneView, OutputTrace, Stimulus, WatchList};

/// Result of a SET campaign on one net.
#[derive(Debug, Clone, PartialEq)]
pub struct NetSetResult {
    /// Target net.
    pub net: NetId,
    /// Number of injections.
    pub injections: usize,
    /// Number of functional failures.
    pub failures: usize,
}

impl NetSetResult {
    /// Failure fraction for this net (the SET-level de-rating factor).
    pub fn derating(&self) -> f64 {
        if self.injections == 0 {
            0.0
        } else {
            self.failures as f64 / self.injections as f64
        }
    }
}

/// SET injection campaign over combinational nets.
///
/// Unlike the SEU engine this one runs one scenario per batch per lane with
/// the same convergence early-exit; transients die out fast (often within a
/// cycle when not latched), so batches converge almost immediately.
pub struct SetCampaign<'a, S, J> {
    cc: &'a CompiledCircuit,
    stimulus: &'a S,
    watch: &'a WatchList,
    judge: &'a J,
    golden: &'a GoldenRun,
}

impl<'a, S, J> SetCampaign<'a, S, J>
where
    S: Stimulus + Sync,
    J: FailureJudge,
{
    /// Prepare a SET campaign reusing an existing golden run.
    pub fn new(
        cc: &'a CompiledCircuit,
        stimulus: &'a S,
        watch: &'a WatchList,
        judge: &'a J,
        golden: &'a GoldenRun,
    ) -> SetCampaign<'a, S, J> {
        SetCampaign {
            cc,
            stimulus,
            watch,
            judge,
            golden,
        }
    }

    /// Inject one SET per listed cycle into `net` and tally failures.
    pub fn run_net(&self, net: NetId, times: &[u64]) -> NetSetResult {
        let mut failures = 0usize;
        for chunk in times.chunks(64) {
            let (trace, converged_at) = self.simulate_batch(net, chunk);
            let golden_view = LaneView::golden(&self.golden.trace);
            for (lane, &t) in chunk.iter().enumerate() {
                let view = LaneView::faulty(&self.golden.trace, &trace, lane, converged_at[lane]);
                let class = self.judge.classify(&golden_view, &view, t);
                if class != FailureClass::Benign {
                    failures += 1;
                }
            }
        }
        NetSetResult {
            net,
            injections: times.len(),
            failures,
        }
    }

    fn simulate_batch(&self, net: NetId, times: &[u64]) -> (OutputTrace, Vec<Option<u64>>) {
        debug_assert!(!times.is_empty() && times.len() <= 64);
        let end = self.stimulus.num_cycles();
        let t0 = *times.iter().min().expect("non-empty batch");
        let mut state = self.golden.restore(self.cc, t0);
        let mut frame = InputFrame::new(self.cc.num_inputs());
        let mut trace = OutputTrace::new(t0, end, self.watch.len());

        let active: u64 = if times.len() == 64 {
            !0
        } else {
            (1u64 << times.len()) - 1
        };
        let mut pending = active;
        let mut converged = 0u64;
        let mut converged_at: Vec<Option<u64>> = vec![None; times.len()];

        for cycle in t0..end {
            frame.clear();
            self.stimulus.drive(cycle, &mut frame);
            frame.apply(self.cc, &mut state);

            let mut mask = 0u64;
            for (lane, &t) in times.iter().enumerate() {
                if t == cycle {
                    mask |= 1u64 << lane;
                }
            }
            if mask != 0 {
                state.eval_forced(self.cc, net, mask);
                pending &= !mask;
            } else {
                state.eval(self.cc);
            }
            trace.record(self.cc, self.watch, &state);
            state.tick(self.cc);

            if pending == 0 {
                let next = cycle + 1;
                if next < end {
                    let diff = state.diff_lanes(self.cc, self.golden.journal.state_at(next));
                    let newly = active & !diff & !converged;
                    if newly != 0 {
                        for (lane, at) in converged_at.iter_mut().enumerate() {
                            if newly & (1u64 << lane) != 0 {
                                *at = Some(next);
                            }
                        }
                        converged |= newly;
                    }
                    if converged == active {
                        break;
                    }
                }
            }
        }
        (trace, converged_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::judge::OutputMismatchJudge;
    use ffr_netlist::NetlistBuilder;

    struct AlwaysOn(u64);

    impl Stimulus for AlwaysOn {
        fn num_cycles(&self) -> u64 {
            self.0
        }

        fn drive(&self, _cycle: u64, frame: &mut InputFrame) {
            frame.set(0, true);
        }
    }

    /// Counter whose increment logic we can disturb, plus a masked branch
    /// where transients are logically de-rated away.
    fn circuit() -> (CompiledCircuit, NetId, NetId) {
        let mut b = NetlistBuilder::new("set_probe");
        let en = b.input("en", 1);
        let r = b.reg("count", 4);
        let next = b.inc(&r.q());
        b.connect_en(&r, &en, &next).unwrap();
        b.output("value", &r.q());
        // Masked net: xor of counter bits ANDed with constant zero.
        let parity = b.reduce_xor(&r.q());
        let zero = b.zero_bit();
        let masked = b.and(&parity, &zero);
        b.output("masked", &masked);
        let nl_next0 = next.net(0);
        let parity_net = parity.net(0);
        let cc = CompiledCircuit::compile(b.finish().unwrap()).unwrap();
        (cc, nl_next0, parity_net)
    }

    #[test]
    fn latched_transient_fails_masked_transient_does_not() {
        let (cc, datapath_net, masked_net) = circuit();
        let watch = WatchList::all(&cc);
        let judge = OutputMismatchJudge::new();
        let stim = AlwaysOn(60);
        let golden = GoldenRun::capture(&cc, &stim, &watch);
        let campaign = SetCampaign::new(&cc, &stim, &watch, &judge, &golden);

        let times: Vec<u64> = (5..35).collect();
        // Transient on the increment output lands in the counter and is
        // visible at the outputs (the counter value jumps permanently).
        let live = campaign.run_net(datapath_net, &times);
        assert!(
            live.derating() > 0.9,
            "datapath SET should fail: {}",
            live.derating()
        );
        // Transient on the masked parity net is logically de-rated: the
        // AND with 0 blocks it and nothing latches it.
        let masked = campaign.run_net(masked_net, &times);
        assert_eq!(masked.failures, 0, "masked SET must be benign");
        assert_eq!(masked.injections, times.len());
        assert_eq!(masked.derating(), 0.0);
    }
}
