//! Single-Event Transient (SET) campaign results on combinational nets.
//!
//! The paper's background section (§II-A) describes SETs — transients on
//! combinational gate outputs that only matter if they are latched. The
//! *injection* of SETs lives in the unified campaign engine
//! ([`Campaign::run_net`](crate::Campaign::run_net) /
//! [`Campaign::run_point_times`](crate::Campaign::run_point_times) with
//! [`InjectionPoint::Set`](crate::InjectionPoint::Set)); this module holds
//! the per-net and per-circuit result types — the logical de-rating
//! tables that power the workspace's SET ablation experiments.

use crate::model::FailureClass;
use crate::result::failure_fraction;
use ffr_netlist::NetId;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// Tallied outcome of all SET injections into one net.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetSetResult {
    net: NetId,
    class_counts: Vec<usize>,
}

impl NetSetResult {
    /// Build a result from the per-class tallies (indexed like
    /// [`FailureClass::ALL`]).
    pub fn new(net: NetId, class_counts: [usize; FailureClass::ALL.len()]) -> NetSetResult {
        NetSetResult {
            net,
            class_counts: class_counts.to_vec(),
        }
    }

    /// Target net.
    pub fn net(&self) -> NetId {
        self.net
    }

    /// Total injections performed.
    pub fn injections(&self) -> usize {
        self.class_counts.iter().sum()
    }

    /// Injections classified as functional failures.
    pub fn failures(&self) -> usize {
        crate::result::failures_in(&self.class_counts)
    }

    /// Tally for one class.
    pub fn count(&self, class: FailureClass) -> usize {
        self.class_counts[class.tally_index()]
    }

    /// Failure fraction for this net (the SET-level de-rating factor) —
    /// the same guarded division as the SEU
    /// [`FfCampaignResult::fdr`](crate::FfCampaignResult::fdr).
    pub fn derating(&self) -> f64 {
        failure_fraction(self.failures(), self.injections())
    }
}

/// Per-net SET de-rating factors of a (possibly partial) campaign — the
/// SET analogue of the SEU [`FdrTable`](crate::FdrTable).
///
/// Unlike flip-flops, targeted nets are sparse in net-id space (only
/// combinational op outputs are SET targets), so the table stores the
/// covered results sorted by net id instead of a dense vector.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SetDeratingTable {
    results: Vec<NetSetResult>,
    injections_per_net: usize,
}

impl SetDeratingTable {
    /// Assemble a table from individual net results.
    ///
    /// # Panics
    ///
    /// Panics if two results target the same net.
    pub fn from_results(
        mut results: Vec<NetSetResult>,
        injections_per_net: usize,
    ) -> SetDeratingTable {
        results.sort_unstable_by_key(|r| r.net().index());
        for pair in results.windows(2) {
            assert!(
                pair[0].net() != pair[1].net(),
                "duplicate result for net {}",
                pair[0].net()
            );
        }
        SetDeratingTable {
            results,
            injections_per_net,
        }
    }

    /// Configured injections per net.
    pub fn injections_per_net(&self) -> usize {
        self.injections_per_net
    }

    /// Number of covered nets.
    pub fn num_nets(&self) -> usize {
        self.results.len()
    }

    /// De-rating factor of one net, if it was covered.
    pub fn derating(&self, net: NetId) -> Option<f64> {
        self.result(net).map(|r| r.derating())
    }

    /// Full result record of one net, if covered.
    pub fn result(&self, net: NetId) -> Option<&NetSetResult> {
        self.results
            .binary_search_by_key(&net.index(), |r| r.net().index())
            .ok()
            .map(|i| &self.results[i])
    }

    /// Iterate over covered nets, ascending by net id.
    pub fn covered(&self) -> impl Iterator<Item = &NetSetResult> {
        self.results.iter()
    }

    /// Average de-rating over covered nets — the circuit-level SET
    /// logical de-rating (assuming a uniform raw SET rate per net).
    pub fn circuit_derating(&self) -> f64 {
        if self.results.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.results.iter().map(|r| r.derating()).sum();
        sum / self.results.len() as f64
    }

    /// Total per-class tallies over covered nets.
    pub fn class_totals(&self) -> Vec<(FailureClass, usize)> {
        FailureClass::ALL
            .iter()
            .map(|&c| (c, self.covered().map(|r| r.count(c)).sum()))
            .collect()
    }

    /// Histogram of de-rating values over covered nets.
    pub fn histogram(&self, bins: usize) -> crate::FdrHistogram {
        crate::FdrHistogram::of(self.covered().map(|r| r.derating()), bins)
    }

    /// Render the table as CSV (`net,injections,failures,derating`).
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("net,injections,failures,derating\n");
        for r in self.covered() {
            let _ = writeln!(
                out,
                "{},{},{},{:.6}",
                r.net(),
                r.injections(),
                r.failures(),
                r.derating()
            );
        }
        out
    }

    /// Serialize the table to pretty JSON at `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O and serialization failures.
    pub fn save_json(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_string_pretty(self).map_err(io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Load a table previously written by [`SetDeratingTable::save_json`].
    ///
    /// # Errors
    ///
    /// Propagates I/O and deserialization failures.
    pub fn load_json(path: &Path) -> io::Result<SetDeratingTable> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text).map_err(io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Campaign, CampaignConfig};
    use crate::judge::OutputMismatchJudge;
    use ffr_netlist::NetlistBuilder;
    use ffr_sim::{CompiledCircuit, InputFrame, Stimulus, WatchList};

    struct AlwaysOn(u64);

    impl Stimulus for AlwaysOn {
        fn num_cycles(&self) -> u64 {
            self.0
        }

        fn drive(&self, _cycle: u64, frame: &mut InputFrame) {
            frame.set(0, true);
        }
    }

    /// Counter whose increment logic we can disturb, plus a masked branch
    /// where transients are logically de-rated away.
    fn circuit() -> (CompiledCircuit, ffr_netlist::NetId, ffr_netlist::NetId) {
        let mut b = NetlistBuilder::new("set_probe");
        let en = b.input("en", 1);
        let r = b.reg("count", 4);
        let next = b.inc(&r.q());
        b.connect_en(&r, &en, &next).unwrap();
        b.output("value", &r.q());
        // Masked net: xor of counter bits ANDed with constant zero.
        let parity = b.reduce_xor(&r.q());
        let zero = b.zero_bit();
        let masked = b.and(&parity, &zero);
        b.output("masked", &masked);
        let nl_next0 = next.net(0);
        let parity_net = parity.net(0);
        let cc = CompiledCircuit::compile(b.finish().unwrap()).unwrap();
        (cc, nl_next0, parity_net)
    }

    #[test]
    fn latched_transient_fails_masked_transient_does_not() {
        let (cc, datapath_net, masked_net) = circuit();
        let watch = WatchList::all(&cc);
        let judge = OutputMismatchJudge::new();
        let stim = AlwaysOn(60);
        let campaign = Campaign::new(&cc, &stim, &watch, &judge);
        let config = CampaignConfig::new(5..35).with_injections(30).with_seed(9);

        // Transient on the increment output lands in the counter and is
        // visible at the outputs (the counter value jumps permanently).
        let live = campaign.run_net(datapath_net, &config);
        assert!(
            live.derating() > 0.9,
            "datapath SET should fail: {}",
            live.derating()
        );
        // Transient on the masked parity net is logically de-rated: the
        // AND with 0 blocks it and nothing latches it.
        let masked = campaign.run_net(masked_net, &config);
        assert_eq!(masked.failures(), 0, "masked SET must be benign");
        assert_eq!(masked.injections(), 30);
        assert_eq!(masked.derating(), 0.0);
    }

    #[test]
    fn set_table_over_all_comb_nets() {
        let (cc, datapath_net, masked_net) = circuit();
        let watch = WatchList::all(&cc);
        let judge = OutputMismatchJudge::new();
        let stim = AlwaysOn(60);
        let campaign = Campaign::new(&cc, &stim, &watch, &judge);
        let config = CampaignConfig::new(5..35).with_injections(16).with_seed(2);

        let nets = cc.comb_output_nets();
        assert!(nets.contains(&datapath_net) && nets.contains(&masked_net));
        let table = campaign.run_set_parallel(&nets, &config, |_, _| {});
        assert_eq!(table.num_nets(), nets.len());
        assert_eq!(table.injections_per_net(), 16);
        assert_eq!(table.derating(masked_net), Some(0.0));
        assert!(table.derating(datapath_net).unwrap() > 0.9);
        let c = table.circuit_derating();
        assert!(c > 0.0 && c < 1.0, "mixed population: {c}");

        // CSV and JSON round trips.
        let csv = table.to_csv();
        assert!(csv.starts_with("net,injections,failures,derating"));
        assert_eq!(csv.lines().count(), nets.len() + 1);
        let dir = std::env::temp_dir().join(format!("ffr_set_table_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("set.json");
        table.save_json(&path).unwrap();
        assert_eq!(SetDeratingTable::load_json(&path).unwrap(), table);
    }

    #[test]
    fn derating_shares_the_guarded_division() {
        let empty = NetSetResult::new(
            ffr_netlist::NetId::from_index(0),
            [0; FailureClass::ALL.len()],
        );
        assert_eq!(empty.derating(), 0.0, "division-by-zero guard");
        assert_eq!(failure_fraction(0, 0), 0.0);
        assert_eq!(failure_fraction(3, 12), 0.25);
    }

    #[test]
    #[should_panic(expected = "duplicate result")]
    fn duplicate_net_panics() {
        let r = |n| {
            NetSetResult::new(
                ffr_netlist::NetId::from_index(n),
                [0; FailureClass::ALL.len()],
            )
        };
        let _ = SetDeratingTable::from_results(vec![r(3), r(3)], 4);
    }
}
