//! Fault models and failure classes.

use ffr_netlist::FfId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The transient-fault models of the paper's background section.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// Single-Event Upset: the stored value of a sequential element is
    /// inverted and persists until overwritten.
    Seu,
    /// Single-Event Transient: the output of a combinational gate is
    /// inverted for one evaluation; it persists only if latched.
    Set,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Seu => f.write_str("SEU"),
            FaultKind::Set => f.write_str("SET"),
        }
    }
}

/// A single planned SEU injection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fault {
    /// Target flip-flop.
    pub ff: FfId,
    /// Cycle at which the stored value is inverted (the flip is applied to
    /// the state *entering* this cycle).
    pub cycle: u64,
}

/// Outcome classification of one fault-injection run.
///
/// The paper's criterion (§IV-A) declares a run a functional failure "when
/// the final received packages contained payload corruption or the circuit
/// stopped sending or receiving data"; the variants below preserve the
/// distinction for diagnostics while [`FailureClass::is_failure`] collapses
/// it back to the paper's binary decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureClass {
    /// No observable deviation at the application level.
    Benign,
    /// Received data differed from the golden payload.
    PayloadCorruption,
    /// One or more expected frames never arrived (dropped or mangled
    /// beyond recognition).
    FrameLoss,
    /// The circuit stopped sending or receiving data entirely.
    Hang,
    /// Generic primary-output mismatch (used by circuit-agnostic judges).
    OutputMismatch,
}

impl FailureClass {
    /// All classes, in tally order.
    pub const ALL: [FailureClass; 5] = [
        FailureClass::Benign,
        FailureClass::PayloadCorruption,
        FailureClass::FrameLoss,
        FailureClass::Hang,
        FailureClass::OutputMismatch,
    ];

    /// `true` for every class except [`FailureClass::Benign`].
    pub fn is_failure(self) -> bool {
        !matches!(self, FailureClass::Benign)
    }

    /// Position of the class in [`FailureClass::ALL`].
    pub fn tally_index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&c| c == self)
            .expect("class is in ALL")
    }
}

impl fmt::Display for FailureClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FailureClass::Benign => "benign",
            FailureClass::PayloadCorruption => "payload-corruption",
            FailureClass::FrameLoss => "frame-loss",
            FailureClass::Hang => "hang",
            FailureClass::OutputMismatch => "output-mismatch",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_is_not_failure() {
        assert!(!FailureClass::Benign.is_failure());
        for class in FailureClass::ALL {
            if class != FailureClass::Benign {
                assert!(class.is_failure(), "{class} should be a failure");
            }
        }
    }

    #[test]
    fn tally_index_round_trips() {
        for (i, class) in FailureClass::ALL.iter().enumerate() {
            assert_eq!(class.tally_index(), i);
        }
    }

    #[test]
    fn display_strings() {
        assert_eq!(FaultKind::Seu.to_string(), "SEU");
        assert_eq!(FailureClass::Hang.to_string(), "hang");
    }
}
