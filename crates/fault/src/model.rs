//! Fault models and failure classes.

use ffr_netlist::{FfId, NetId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The transient-fault models of the paper's background section.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// Single-Event Upset: the stored value of a sequential element is
    /// inverted and persists until overwritten.
    Seu,
    /// Single-Event Transient: the output of a combinational gate is
    /// inverted for one evaluation; it persists only if latched.
    Set,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Seu => f.write_str("SEU"),
            FaultKind::Set => f.write_str("SET"),
        }
    }
}

impl FaultKind {
    /// Parse the CLI spelling (`seu` / `set`, case-insensitive).
    pub fn parse_cli(s: &str) -> Result<FaultKind, String> {
        match s.to_ascii_lowercase().as_str() {
            "seu" => Ok(FaultKind::Seu),
            "set" => Ok(FaultKind::Set),
            other => Err(format!(
                "unknown fault model `{other}` (expected seu or set)"
            )),
        }
    }
}

/// A single injection target: the element whose value is disturbed.
///
/// This is the unification point of the two fault models: the campaign
/// engine, the resumable runner and the checkpoint format are all written
/// against `InjectionPoint`, so SEU (flip-flop) and SET (combinational
/// net) campaigns share one batch-simulation loop, one convergence
/// early-exit, one adaptive stopping rule and one on-disk progress format.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InjectionPoint {
    /// A Single-Event Upset target: the stored value of a flip-flop.
    Seu(FfId),
    /// A Single-Event Transient target: a combinational net, XOR-forced
    /// for one evaluation.
    Set(NetId),
}

impl InjectionPoint {
    /// The fault model this point belongs to.
    pub fn kind(self) -> FaultKind {
        match self {
            InjectionPoint::Seu(_) => FaultKind::Seu,
            InjectionPoint::Set(_) => FaultKind::Set,
        }
    }

    /// Raw index of the target within its kind's id space (flip-flop
    /// index for SEU, net index for SET). Together with
    /// [`InjectionPoint::kind`] this round-trips through
    /// [`InjectionPoint::from_raw`] — the checkpoint format persists
    /// exactly this pair.
    pub fn raw_index(self) -> usize {
        match self {
            InjectionPoint::Seu(ff) => ff.index(),
            InjectionPoint::Set(net) => net.index(),
        }
    }

    /// Rebuild a point from its kind and raw index (checkpoint decoding).
    pub fn from_raw(kind: FaultKind, index: usize) -> InjectionPoint {
        match kind {
            FaultKind::Seu => InjectionPoint::Seu(FfId::from_index(index)),
            FaultKind::Set => InjectionPoint::Set(NetId::from_index(index)),
        }
    }

    /// The RNG stream of this point's injection plan.
    ///
    /// SEU keeps the historical per-flip-flop streams (plans — and
    /// therefore campaign results — are unchanged by the unification);
    /// SET points live in a disjoint stream space so a net and a
    /// flip-flop sharing an index never share a plan.
    pub fn stream(self) -> u64 {
        match self {
            InjectionPoint::Seu(ff) => ff.index() as u64,
            InjectionPoint::Set(net) => (1u64 << 62) | net.index() as u64,
        }
    }
}

impl fmt::Display for InjectionPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectionPoint::Seu(ff) => write!(f, "SEU@{ff}"),
            InjectionPoint::Set(net) => write!(f, "SET@{net}"),
        }
    }
}

/// A single planned SEU injection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fault {
    /// Target flip-flop.
    pub ff: FfId,
    /// Cycle at which the stored value is inverted (the flip is applied to
    /// the state *entering* this cycle).
    pub cycle: u64,
}

/// Outcome classification of one fault-injection run.
///
/// The paper's criterion (§IV-A) declares a run a functional failure "when
/// the final received packages contained payload corruption or the circuit
/// stopped sending or receiving data"; the variants below preserve the
/// distinction for diagnostics while [`FailureClass::is_failure`] collapses
/// it back to the paper's binary decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureClass {
    /// No observable deviation at the application level.
    Benign,
    /// Received data differed from the golden payload.
    PayloadCorruption,
    /// One or more expected frames never arrived (dropped or mangled
    /// beyond recognition).
    FrameLoss,
    /// The circuit stopped sending or receiving data entirely.
    Hang,
    /// Generic primary-output mismatch (used by circuit-agnostic judges).
    OutputMismatch,
}

impl FailureClass {
    /// All classes, in tally order.
    pub const ALL: [FailureClass; 5] = [
        FailureClass::Benign,
        FailureClass::PayloadCorruption,
        FailureClass::FrameLoss,
        FailureClass::Hang,
        FailureClass::OutputMismatch,
    ];

    /// `true` for every class except [`FailureClass::Benign`].
    pub fn is_failure(self) -> bool {
        !matches!(self, FailureClass::Benign)
    }

    /// Position of the class in [`FailureClass::ALL`].
    pub fn tally_index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&c| c == self)
            .expect("class is in ALL")
    }
}

impl fmt::Display for FailureClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FailureClass::Benign => "benign",
            FailureClass::PayloadCorruption => "payload-corruption",
            FailureClass::FrameLoss => "frame-loss",
            FailureClass::Hang => "hang",
            FailureClass::OutputMismatch => "output-mismatch",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_is_not_failure() {
        assert!(!FailureClass::Benign.is_failure());
        for class in FailureClass::ALL {
            if class != FailureClass::Benign {
                assert!(class.is_failure(), "{class} should be a failure");
            }
        }
    }

    #[test]
    fn tally_index_round_trips() {
        for (i, class) in FailureClass::ALL.iter().enumerate() {
            assert_eq!(class.tally_index(), i);
        }
    }

    #[test]
    fn display_strings() {
        assert_eq!(FaultKind::Seu.to_string(), "SEU");
        assert_eq!(FailureClass::Hang.to_string(), "hang");
    }

    #[test]
    fn fault_kind_cli_parsing() {
        assert_eq!(FaultKind::parse_cli("seu"), Ok(FaultKind::Seu));
        assert_eq!(FaultKind::parse_cli("SET"), Ok(FaultKind::Set));
        assert!(FaultKind::parse_cli("sbu").is_err());
    }

    #[test]
    fn injection_point_round_trips_through_raw() {
        for (kind, index) in [(FaultKind::Seu, 17usize), (FaultKind::Set, 17)] {
            let p = InjectionPoint::from_raw(kind, index);
            assert_eq!(p.kind(), kind);
            assert_eq!(p.raw_index(), index);
        }
    }

    #[test]
    fn seu_and_set_streams_are_disjoint() {
        // A flip-flop and a net sharing an index must not share an
        // injection plan; SEU streams must stay the historical ff index.
        let seu = InjectionPoint::Seu(FfId::from_index(5));
        let set = InjectionPoint::Set(NetId::from_index(5));
        assert_eq!(seu.stream(), 5);
        assert_ne!(seu.stream(), set.stream());
        assert_eq!(set.stream() & ((1 << 62) - 1), 5);
    }
}
