//! Statistical fault injection for gate-level circuits.
//!
//! This crate implements the paper's *flat statistical fault-injection
//! campaign* (§IV-A): for every flip-flop, a configurable number of
//! Single-Event Upsets are injected at random cycles of the active
//! simulation window; each run is classified as a **functional failure** or
//! **benign** by a circuit-specific [`FailureJudge`], and the per-flip-flop
//! **Functional De-Rating factor** is the failure fraction.
//!
//! Both fault models of the paper's background section run through **one
//! unified engine** keyed by [`InjectionPoint`]: `Seu(FfId)` flips a
//! flip-flop's stored value, `Set(NetId)` XOR-forces a combinational net
//! for a single evaluation (latched or logically de-rated away). The
//! engine is heavily optimised compared to a naive re-simulation:
//!
//! * **64 fault scenarios per simulation** — each lane of the bit-parallel
//!   simulator carries one injection time (PROOFS-style fault batching),
//! * **checkpoint restart** — simulation resumes from the golden state
//!   journal at the earliest injection time of a batch instead of cycle 0,
//! * **early convergence exit** — once every lane's flip-flop state has
//!   returned to the golden state, the remaining cycles are provably
//!   identical and are skipped,
//! * **compiled fault sites** — SET targets resolve their net→driving-op
//!   lookup once ([`ffr_sim::FaultSite`]) instead of per evaluation,
//! * **cone-restricted simulation** — only the injection point's fan-out
//!   cone is evaluated; boundary nets replay golden values from a
//!   [`ffr_sim::NetJournal`] and out-of-cone outputs come straight from
//!   the golden trace ([`PointRunner`] / [`PointScratch`]),
//! * **parallel campaign** — injection points are distributed over
//!   threads with rayon.
//!
//! The statistical substrate is usable on its own — injection plans are
//! pure functions of `(seed, stream, window)`, and campaign sizing /
//! early stopping both reduce to interval arithmetic:
//!
//! ```
//! use ffr_fault::{sample_injection_times, wilson_interval, z_for_confidence};
//!
//! // The paper's fixed plan: 170 injection cycles for one flip-flop.
//! let plan = sample_injection_times(2019, 0, 100..500, 170);
//! assert_eq!(plan.len(), 170);
//!
//! // Wilson-CI early stopping: 0 failures in 64 injections already
//! // bounds the FDR below 6 % at 95 % confidence.
//! let (_, hi) = wilson_interval(0, 64, z_for_confidence(95).unwrap());
//! assert!(hi < 0.06);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod judge;
mod model;
mod result;
mod sampling;
pub mod set;

pub use campaign::{Campaign, CampaignConfig, PointRunner, PointScratch};
pub use judge::{FailureJudge, OutputMismatchJudge};
pub use model::{FailureClass, Fault, FaultKind, InjectionPoint};
pub use result::{failure_fraction, failures_in, FdrHistogram, FdrTable, FfCampaignResult};
pub use sampling::{
    confidence_for_z, required_sample_size, sample_injection_times, wilson_interval,
    z_for_confidence, CONFIDENCE_QUANTILES,
};
pub use set::{NetSetResult, SetDeratingTable};
