//! Statistical fault injection for gate-level circuits.
//!
//! This crate implements the paper's *flat statistical fault-injection
//! campaign* (§IV-A): for every flip-flop, a configurable number of
//! Single-Event Upsets are injected at random cycles of the active
//! simulation window; each run is classified as a **functional failure** or
//! **benign** by a circuit-specific [`FailureJudge`], and the per-flip-flop
//! **Functional De-Rating factor** is the failure fraction.
//!
//! The engine is heavily optimised compared to a naive re-simulation:
//!
//! * **64 fault scenarios per simulation** — each lane of the bit-parallel
//!   simulator carries one injection time (PROOFS-style fault batching),
//! * **checkpoint restart** — simulation resumes from the golden state
//!   journal at the earliest injection time of a batch instead of cycle 0,
//! * **early convergence exit** — once every lane's flip-flop state has
//!   returned to the golden state, the remaining cycles are provably
//!   identical and are skipped,
//! * **parallel campaign** — flip-flops are distributed over threads with
//!   rayon.
//!
//! [`SetCampaign`](crate::set::SetCampaign) additionally implements the
//! Single-Event *Transient* model on combinational nets as an extension.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod judge;
mod model;
mod result;
mod sampling;
pub mod set;

pub use campaign::{Campaign, CampaignConfig};
pub use judge::{FailureJudge, OutputMismatchJudge};
pub use model::{FailureClass, Fault, FaultKind};
pub use result::{failures_in, FdrHistogram, FdrTable, FfCampaignResult};
pub use sampling::{required_sample_size, sample_injection_times, wilson_interval};
