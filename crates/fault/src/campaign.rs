//! The unified fault-injection campaign engine.
//!
//! One batch-simulation loop serves both fault models behind
//! [`InjectionPoint`]: SEUs flip a flip-flop's stored value before the
//! combinational evaluation of the injection cycle; SETs XOR-force a
//! combinational net for exactly that evaluation (via a pre-compiled
//! [`ffr_sim::FaultSite`]). Checkpoint restart, 64-lane fault batching and
//! the convergence early-exit are shared.

use crate::judge::FailureJudge;
use crate::model::{FailureClass, InjectionPoint};
use crate::result::{FdrTable, FfCampaignResult};
use crate::sampling::sample_injection_times;
use crate::set::{NetSetResult, SetDeratingTable};
use ffr_netlist::{FfId, NetId};
use ffr_sim::{
    CompiledCircuit, Cone, FaultSite, GoldenRun, InputFrame, LaneView, NetJournal, OutputTrace,
    SimState, Stimulus, WatchList,
};
use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Configuration of a statistical SEU campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of injections per flip-flop (the paper uses 170).
    pub injections_per_ff: usize,
    /// Cycle window in which faults are injected — the paper injects
    /// "during the active phase of the simulation, when packets are sent
    /// and received".
    pub window: std::ops::Range<u64>,
    /// Master seed; combined with the flip-flop index so every flip-flop
    /// has an independent, reproducible injection plan.
    pub seed: u64,
    /// Stop simulating a batch once every lane has re-converged to the
    /// golden state (sound, pure optimisation). Disable only for
    /// measurement ablations.
    pub early_exit: bool,
    /// Evaluate only the injection point's fan-out cone per cycle,
    /// serving boundary nets and out-of-cone watched outputs from golden
    /// data (sound, pure optimisation — produces bit-identical traces
    /// and tallies). Disable only for measurement ablations.
    pub cone: bool,
    /// Event-driven evaluation inside the cone: per cycle, evaluate only
    /// the ops whose inputs currently differ from the golden
    /// [`NetJournal`] values and pull everything else from the journal by
    /// construction (sound, pure optimisation — produces bit-identical
    /// traces and tallies). Requires `cone`; disable only for
    /// measurement ablations.
    pub frontier: bool,
}

impl CampaignConfig {
    /// Paper-like defaults: 170 injections, early exit on, seed 0; the
    /// window must still be set to the testbench's active phase.
    pub fn new(window: std::ops::Range<u64>) -> CampaignConfig {
        CampaignConfig {
            injections_per_ff: 170,
            window,
            seed: 0,
            early_exit: true,
            cone: true,
            frontier: true,
        }
    }

    /// Builder-style override of the injection count.
    pub fn with_injections(mut self, n: usize) -> CampaignConfig {
        self.injections_per_ff = n;
        self
    }

    /// Builder-style override of the seed.
    pub fn with_seed(mut self, seed: u64) -> CampaignConfig {
        self.seed = seed;
        self
    }

    /// Builder-style override of cone restriction (ablations only).
    pub fn with_cone(mut self, cone: bool) -> CampaignConfig {
        self.cone = cone;
        self
    }

    /// Builder-style override of frontier evaluation (ablations only).
    pub fn with_frontier(mut self, frontier: bool) -> CampaignConfig {
        self.frontier = frontier;
        self
    }
}

/// An [`InjectionPoint`] resolved against the compiled circuit: SET
/// targets carry their pre-compiled [`FaultSite`] so the per-cycle loop
/// never re-resolves the net→driving-op lookup.
#[derive(Clone, Copy)]
enum CompiledPoint {
    Seu(FfId),
    Set(FaultSite),
}

/// One injection point compiled for repeated batch simulation: the
/// resolved [`InjectionPoint`], its fan-out [`Cone`] and the per-watch
/// in-cone classification. Built once per point
/// ([`Campaign::point_runner`]) and reused across every policy batch, so
/// the cone closure is never recomputed inside the injection loop.
pub struct PointRunner {
    point: CompiledPoint,
    cone: Cone,
    /// Per watch entry: can this output ever deviate from golden? `false`
    /// entries are copied from the golden trace each cycle.
    watch_in_cone: Vec<bool>,
    cycles_saved: u64,
    frontier_ops_evaluated: u64,
    frontier_cycles: u64,
    frontier_peak: u32,
}

impl PointRunner {
    /// Number of combinational ops in the point's fan-out cone.
    pub fn cone_ops(&self) -> usize {
        self.cone.num_ops()
    }

    /// Number of flip-flops in the point's fan-out cone.
    pub fn cone_ffs(&self) -> usize {
        self.cone.num_ffs()
    }

    /// Number of boundary nets broadcast per simulated cycle.
    pub fn cone_boundary_nets(&self) -> usize {
        self.cone.num_boundary_nets()
    }

    /// Total cycles skipped by the convergence early-exit across every
    /// batch this runner has simulated.
    pub fn cycles_saved(&self) -> u64 {
        self.cycles_saved
    }

    /// Cone ops actually evaluated by the event-driven frontier across
    /// every batch this runner has simulated.
    pub fn frontier_ops_evaluated(&self) -> u64 {
        self.frontier_ops_evaluated
    }

    /// Cone-op evaluations the frontier skipped relative to the static
    /// cone path (which evaluates every cone op every simulated cycle).
    pub fn frontier_ops_skipped(&self) -> u64 {
        (self.frontier_cycles * self.cone.num_ops() as u64)
            .saturating_sub(self.frontier_ops_evaluated)
    }

    /// Largest number of cone ops the frontier evaluated in any single
    /// cycle (worst-case divergence width).
    pub fn frontier_peak(&self) -> u32 {
        self.frontier_peak
    }
}

/// Reusable per-thread simulation buffers: state, input frame, output
/// trace, convergence bookkeeping and the injection schedule. One scratch
/// ([`Campaign::point_scratch`]) serves any number of points and batches
/// — the batch loop allocates nothing.
pub struct PointScratch {
    state: SimState,
    frame: InputFrame,
    trace: OutputTrace,
    converged_at: Vec<Option<u64>>,
    /// Per-batch `(cycle, lane mask)` schedule, sorted by cycle with
    /// duplicate cycles merged — replaces a per-cycle rescan of every
    /// lane's injection time.
    schedule: Vec<(u64, u64)>,
    /// Event-driven worklist state for the frontier evaluation path,
    /// re-attached per batch (re-sizing is a no-op between same-cone
    /// batches).
    frontier: ffr_sim::FrontierScratch,
}

/// A prepared fault-injection campaign: compiled circuit, stimulus, watch
/// list, judge, and the golden reference run.
///
/// The campaign object is immutable and `Sync`; per-flip-flop work is
/// dispatched from [`Campaign::run`] (sequential) or
/// [`Campaign::run_parallel`] (rayon).
pub struct Campaign<'a, S, J> {
    cc: &'a CompiledCircuit,
    stimulus: &'a S,
    watch: &'a WatchList,
    judge: &'a J,
    golden: GoldenRun,
    /// Golden per-cycle all-nets journal, captured lazily on the first
    /// cone-restricted batch (one extra full-speed golden replay,
    /// amortised over the whole campaign) and shared by every worker
    /// thread.
    net_journal: OnceLock<NetJournal>,
}

impl<'a, S, J> Campaign<'a, S, J>
where
    S: Stimulus + Sync,
    J: FailureJudge,
{
    /// Capture the golden run and prepare the campaign.
    pub fn new(
        cc: &'a CompiledCircuit,
        stimulus: &'a S,
        watch: &'a WatchList,
        judge: &'a J,
    ) -> Campaign<'a, S, J> {
        let golden = GoldenRun::capture(cc, stimulus, watch);
        Campaign::with_golden(cc, stimulus, watch, judge, golden)
    }

    /// Prepare the campaign around an already-captured golden run (e.g. one
    /// served from an artifact store instead of re-simulated).
    ///
    /// The golden run must have been captured for exactly this circuit,
    /// stimulus and watch list; the constructor checks the cheap structural
    /// invariants (cycle count, trace width).
    pub fn with_golden(
        cc: &'a CompiledCircuit,
        stimulus: &'a S,
        watch: &'a WatchList,
        judge: &'a J,
        golden: GoldenRun,
    ) -> Campaign<'a, S, J> {
        assert_eq!(
            golden.journal.cycles(),
            stimulus.num_cycles(),
            "golden run was captured for a different testbench length"
        );
        assert_eq!(
            golden.trace.width(),
            watch.len(),
            "golden run was captured for a different watch list"
        );
        Campaign {
            cc,
            stimulus,
            watch,
            judge,
            golden,
            net_journal: OnceLock::new(),
        }
    }

    /// The golden reference run (reused for feature extraction).
    pub fn golden(&self) -> &GoldenRun {
        &self.golden
    }

    /// The golden all-nets journal backing cone-restricted simulation,
    /// capturing it on first use.
    pub fn net_journal(&self) -> &NetJournal {
        self.net_journal
            .get_or_init(|| NetJournal::capture(self.cc, &self.stimulus))
    }

    /// The compiled circuit under test.
    pub fn circuit(&self) -> &CompiledCircuit {
        self.cc
    }

    /// Inject the planned faults for one flip-flop and classify every run.
    pub fn run_ff(&self, ff: FfId, config: &CampaignConfig) -> FfCampaignResult {
        FfCampaignResult::new(ff, self.run_planned(InjectionPoint::Seu(ff), config))
    }

    /// Inject the planned faults for one combinational net and classify
    /// every run (the SET fault model).
    pub fn run_net(&self, net: NetId, config: &CampaignConfig) -> NetSetResult {
        NetSetResult::new(net, self.run_planned(InjectionPoint::Set(net), config))
    }

    /// Run the full planned campaign for one injection point.
    fn run_planned(
        &self,
        point: InjectionPoint,
        config: &CampaignConfig,
    ) -> [usize; FailureClass::ALL.len()] {
        let times = sample_injection_times(
            config.seed,
            point.stream(),
            config.window.clone(),
            config.injections_per_ff,
        );
        self.run_point_times(point, &times, config)
    }

    /// Inject exactly the given fault times into one flip-flop and return
    /// the per-class tallies (indexed like [`FailureClass::ALL`]).
    ///
    /// Equivalent to [`Campaign::run_point_times`] with
    /// [`InjectionPoint::Seu`]; kept as the stable SEU entry point.
    ///
    /// [`sample_injection_times`]: crate::sample_injection_times
    pub fn run_ff_times(
        &self,
        ff: FfId,
        times: &[u64],
        config: &CampaignConfig,
    ) -> [usize; FailureClass::ALL.len()] {
        self.run_point_times(InjectionPoint::Seu(ff), times, config)
    }

    /// Inject exactly the given fault times into one injection point and
    /// return the per-class tallies (indexed like [`FailureClass::ALL`]).
    ///
    /// This is the resumable unit of campaign work for both fault models:
    /// a caller that owns the full injection plan (from
    /// [`sample_injection_times`] on [`InjectionPoint::stream`]) can run
    /// any slice of it, persist the accumulated tallies, and continue
    /// later — the tallies of two slices simply add. Classification
    /// batches the times into 64-lane groups internally, so slicing at
    /// multiples of 64 reproduces the one-shot run exactly; tallies are
    /// order-insensitive, so any slicing yields the same totals.
    ///
    /// [`sample_injection_times`]: crate::sample_injection_times
    pub fn run_point_times(
        &self,
        point: InjectionPoint,
        times: &[u64],
        config: &CampaignConfig,
    ) -> [usize; FailureClass::ALL.len()] {
        let mut runner = self.point_runner(point);
        let mut scratch = self.point_scratch();
        self.run_point_times_with(&mut runner, &mut scratch, times, config)
    }

    /// Compile an injection point for repeated batch simulation: resolve
    /// the target, extract its fan-out cone and classify the watched
    /// outputs as in-cone or provably golden.
    pub fn point_runner(&self, point: InjectionPoint) -> PointRunner {
        let (compiled, cone) = match point {
            InjectionPoint::Seu(ff) => (CompiledPoint::Seu(ff), self.cc.ff_cone(ff)),
            InjectionPoint::Set(net) => (
                CompiledPoint::Set(self.cc.fault_site(net)),
                self.cc.net_cone(net),
            ),
        };
        let watch_in_cone = self
            .watch
            .indices()
            .iter()
            .map(|&po| cone.may_differ(self.cc.output_net(po)))
            .collect();
        PointRunner {
            point: compiled,
            cone,
            watch_in_cone,
            cycles_saved: 0,
            frontier_ops_evaluated: 0,
            frontier_cycles: 0,
            frontier_peak: 0,
        }
    }

    /// Allocate the reusable per-thread simulation buffers once; hand the
    /// same scratch to every [`Campaign::run_point_times_with`] call on
    /// the thread.
    pub fn point_scratch(&self) -> PointScratch {
        PointScratch {
            state: SimState::new(self.cc),
            frame: InputFrame::new(self.cc.num_inputs()),
            trace: OutputTrace::new(0, 0, 0),
            converged_at: Vec::new(),
            schedule: Vec::new(),
            frontier: ffr_sim::FrontierScratch::new(),
        }
    }

    /// [`Campaign::run_point_times`] against a pre-compiled
    /// [`PointRunner`] and reusable [`PointScratch`] — the zero-allocation
    /// resumable unit of campaign work. Tallies are identical to the
    /// one-shot entry point.
    pub fn run_point_times_with(
        &self,
        runner: &mut PointRunner,
        scratch: &mut PointScratch,
        times: &[u64],
        config: &CampaignConfig,
    ) -> [usize; FailureClass::ALL.len()] {
        let mut class_counts = [0usize; FailureClass::ALL.len()];
        for chunk in times.chunks(64) {
            self.simulate_batch_into(runner, scratch, chunk, config);
            let golden_view = LaneView::golden(&self.golden.trace);
            for (lane, &inject_cycle) in chunk.iter().enumerate() {
                let view = LaneView::faulty(
                    &self.golden.trace,
                    &scratch.trace,
                    lane,
                    scratch.converged_at[lane],
                );
                let class = self.judge.classify(&golden_view, &view, inject_cycle);
                class_counts[class.tally_index()] += 1;
            }
        }
        class_counts
    }

    /// Simulate up to 64 injections into one point (one per lane) into
    /// `scratch`: the faulty output trace and, per lane, the cycle from
    /// which the state provably equals golden again (`None` if it never
    /// re-converged).
    ///
    /// With `config.cone` set (the default) only the point's fan-out cone
    /// is evaluated: boundary nets are broadcast per cycle from the
    /// golden [`NetJournal`] (which also supplies the primary inputs, so
    /// the stimulus is not replayed at all), only cone flip-flops tick,
    /// convergence diffs are cone-scoped, and watched outputs outside the
    /// cone are copied from the golden trace. The resulting trace and
    /// convergence data are bit-identical to the full evaluation —
    /// non-cone state provably cannot deviate from golden.
    fn simulate_batch_into(
        &self,
        runner: &mut PointRunner,
        scratch: &mut PointScratch,
        times: &[u64],
        config: &CampaignConfig,
    ) {
        debug_assert!(!times.is_empty() && times.len() <= 64);
        let end = self.stimulus.num_cycles();
        let t0 = *times.iter().min().expect("non-empty batch");
        debug_assert!(t0 < end, "injection beyond testbench end");

        let journal = if config.cone {
            Some(self.net_journal())
        } else {
            None
        };

        let PointScratch {
            state,
            frame,
            trace,
            converged_at,
            schedule,
            frontier,
        } = scratch;
        converged_at.clear();
        converged_at.resize(times.len(), None);

        // Injection schedule: sort the lane times once and merge lanes
        // sharing a cycle, instead of rescanning all lane times every
        // cycle of the loop.
        schedule.clear();
        for (lane, &t) in times.iter().enumerate() {
            schedule.push((t, 1u64 << lane));
        }
        schedule.sort_unstable_by_key(|&(t, _)| t);
        let mut merged = 0usize;
        for i in 1..schedule.len() {
            if schedule[i].0 == schedule[merged].0 {
                let mask = schedule[i].1;
                schedule[merged].1 |= mask;
            } else {
                merged += 1;
                schedule[merged] = schedule[i];
            }
        }
        schedule.truncate(merged + 1);

        let active: u64 = if times.len() == 64 {
            !0
        } else {
            (1u64 << times.len()) - 1
        };
        let mut pending = active; // lanes whose fault has not happened yet
        let mut converged = 0u64; // lanes whose state returned to golden
        let mut next_fault = 0usize;

        if let Some(journal) = journal {
            if config.frontier {
                // Event-driven frontier path: nothing is loaded up front —
                // before the first injection every cone net is clean
                // (golden by construction), so the whole pre-injection
                // prefix and every masked-out region of the cone cost
                // zero op evaluations. Dirty nets hold live values; clean
                // nets are lazily refreshed from the journal row.
                let cone = &runner.cone;
                frontier.attach(cone);
                // Seed the faulty trace with the golden trace in one bulk
                // copy: only rows where a watched output actually
                // deviates are overwritten below, and fast-forwarded
                // spans need no per-cycle trace writes at all.
                trace.reset_from(&self.golden.trace, t0);
                state.set_cycle(t0);
                let mut cycle = t0;
                // Hybrid escape hatch: a worklist op costs a few times a
                // dense cone op (measured breakeven ~1/4 of the cone on
                // mac-small), so once the live frontier covers ~1/4 of
                // the cone the event-driven loop is a net loss. `dense`
                // switches to the static cone loop for such spans and
                // drops back to the frontier when the state re-quiesces.
                let mut dense = false;
                let mut dense_cycles: u64 = 0;
                while cycle < end {
                    if dense {
                        dense_cycles += 1;
                        state.load_boundary(cone, journal.row(cycle));

                        let mut fault_mask = 0u64;
                        while next_fault < schedule.len() && schedule[next_fault].0 == cycle {
                            fault_mask |= schedule[next_fault].1;
                            next_fault += 1;
                        }
                        if fault_mask != 0 {
                            pending &= !fault_mask;
                            converged &= !fault_mask;
                        }
                        match runner.point {
                            CompiledPoint::Seu(ff) => {
                                if fault_mask != 0 {
                                    state.flip_ff(self.cc, ff, fault_mask);
                                }
                                state.eval_cone(cone);
                            }
                            CompiledPoint::Set(_) => {
                                if fault_mask != 0 {
                                    state.eval_forced_cone(cone, fault_mask);
                                } else {
                                    state.eval_cone(cone);
                                }
                            }
                        }
                        // Only in-cone outputs can deviate; out-of-cone
                        // rows are already golden from the bulk seed.
                        let trace_row = trace.row_mut(cycle);
                        for (w, (&po, &in_cone)) in self
                            .watch
                            .indices()
                            .iter()
                            .zip(&runner.watch_in_cone)
                            .enumerate()
                        {
                            if in_cone {
                                trace_row[w] = state.output_word(self.cc, po);
                            }
                        }
                        state.tick_cone(cone);

                        let next = cycle + 1;
                        // Unlike the pure cone path this diffs every
                        // cycle, not only once `pending == 0`: quiescence
                        // (`diff == 0`) is also the signal to drop back
                        // to the frontier representation.
                        let diff = if next < end {
                            state.diff_lanes_cone(cone, self.golden.journal.state_at(next))
                        } else {
                            0
                        };
                        if config.early_exit && pending == 0 && next < end {
                            let newly = active & !diff & !converged;
                            if newly != 0 {
                                for (lane, at) in converged_at.iter_mut().enumerate() {
                                    if newly & (1u64 << lane) != 0 {
                                        *at = Some(next);
                                    }
                                }
                                converged |= newly;
                            }
                            if converged == active {
                                runner.cycles_saved += end - next;
                                runner.frontier_cycles += next - t0;
                                runner.frontier_ops_evaluated +=
                                    frontier.ops_evaluated() + dense_cycles * cone.num_ops() as u64;
                                runner.frontier_peak = runner
                                    .frontier_peak
                                    .max(frontier.peak())
                                    .max(cone.num_ops() as u32);
                                return;
                            }
                        }
                        cycle = next;
                        if diff == 0 && cycle < end {
                            // Every lane equals golden again: all cone
                            // nets clean is exactly the frontier
                            // invariant (stored values go stale, reads
                            // lazily refresh), so switching back costs
                            // only clearing the scratch. Then fast-forward
                            // to the next scheduled injection like the
                            // frontier path below.
                            frontier.quiesce();
                            dense = false;
                            cycle = if pending != 0 {
                                schedule[next_fault].0
                            } else if !config.early_exit {
                                end
                            } else {
                                cycle
                            };
                            state.set_cycle(cycle);
                        }
                        continue;
                    }
                    let row = journal.row(cycle);

                    let mut fault_mask = 0u64;
                    while next_fault < schedule.len() && schedule[next_fault].0 == cycle {
                        fault_mask |= schedule[next_fault].1;
                        next_fault += 1;
                    }
                    if fault_mask != 0 {
                        pending &= !fault_mask;
                        converged &= !fault_mask;
                    }
                    match runner.point {
                        CompiledPoint::Seu(_) => {
                            if fault_mask != 0 {
                                state.flip_frontier(cone, frontier, row, fault_mask);
                            }
                            state.eval_frontier(cone, frontier, row);
                        }
                        CompiledPoint::Set(_) => {
                            if fault_mask != 0 {
                                state.eval_forced_frontier(cone, frontier, row, fault_mask);
                            } else {
                                state.eval_frontier(cone, frontier, row);
                            }
                        }
                    }
                    // Record watched outputs: only nets on the live
                    // frontier can deviate; everything else — out-of-cone
                    // or in-cone-but-clean — is already golden in the
                    // trace from the bulk seed.
                    if frontier.any_dirty() {
                        let trace_row = trace.row_mut(cycle);
                        for (w, (&po, &in_cone)) in self
                            .watch
                            .indices()
                            .iter()
                            .zip(&runner.watch_in_cone)
                            .enumerate()
                        {
                            if in_cone && frontier.net_dirty(self.cc.output_net(po)) {
                                trace_row[w] = state.output_word(self.cc, po);
                            }
                        }
                    }

                    let next = cycle + 1;
                    let diff = state.tick_frontier(
                        cone,
                        frontier,
                        // Q nets in the journal's row `next` hold the
                        // golden state *entering* cycle `next` — exactly
                        // the post-tick comparison baseline.
                        if next < end {
                            Some(journal.row(next))
                        } else {
                            None
                        },
                    );

                    // Lane convergence falls out of the latch loop for
                    // free: `diff` is bit-identical to what
                    // `diff_lanes_cone` would scan the whole cone for.
                    if config.early_exit && pending == 0 && next < end {
                        let newly = active & !diff & !converged;
                        if newly != 0 {
                            for (lane, at) in converged_at.iter_mut().enumerate() {
                                if newly & (1u64 << lane) != 0 {
                                    *at = Some(next);
                                }
                            }
                            converged |= newly;
                        }
                        if converged == active {
                            runner.cycles_saved += end - next;
                            runner.frontier_cycles += next - t0;
                            runner.frontier_ops_evaluated +=
                                frontier.ops_evaluated() + dense_cycles * cone.num_ops() as u64;
                            runner.frontier_peak = runner.frontier_peak.max(frontier.peak());
                            if dense_cycles > 0 {
                                runner.frontier_peak =
                                    runner.frontier_peak.max(cone.num_ops() as u32);
                            }
                            return;
                        }
                    }
                    cycle = next;

                    // Fast-forward over a quiescent frontier: `diff == 0`
                    // means every latched flip-flop latched its golden
                    // value, so no net is dirty and the state equals
                    // golden in *every* lane — nothing can change before
                    // the next scheduled injection. The faulty trace over
                    // the skipped span is the golden trace by
                    // construction, and no convergence bookkeeping is
                    // skipped: `converged_at` recording is gated on
                    // `pending == 0` in every evaluation path, and with
                    // `pending == 0` we either broke out above
                    // (early-exit) or run a no-early-exit ablation that
                    // never records convergence.
                    if diff == 0 && cycle < end {
                        cycle = if pending != 0 {
                            schedule[next_fault].0
                        } else if !config.early_exit {
                            end
                        } else {
                            cycle
                        };
                        state.set_cycle(cycle);
                    } else if cycle < end
                        && frontier.last_cycle_ops() as usize * 4 >= cone.num_ops()
                    {
                        // Persistent wide divergence: the live frontier
                        // covers enough of the cone that dense evaluation
                        // is cheaper. Refresh the touched-but-clean nets
                        // from the golden row (dirty nets are already
                        // live) — exactly the state the static cone loop
                        // maintains — and take the dense branch above
                        // until the fault damps out.
                        state.adopt_frontier(cone, frontier, journal.row(cycle));
                        frontier.quiesce();
                        dense = true;
                    }
                }
                runner.frontier_cycles += end - t0;
                runner.frontier_ops_evaluated +=
                    frontier.ops_evaluated() + dense_cycles * cone.num_ops() as u64;
                runner.frontier_peak = runner.frontier_peak.max(frontier.peak());
                if dense_cycles > 0 {
                    runner.frontier_peak = runner.frontier_peak.max(cone.num_ops() as u32);
                }
                return;
            }
            let cone = &runner.cone;
            trace.reset(t0, end, self.watch.len());
            state.load_cone_state_broadcast(cone, self.golden.journal.state_at(t0));
            state.set_cycle(t0);
            for cycle in t0..end {
                // Golden boundary values double as the stimulus: primary
                // inputs the cone reads are boundary nets.
                state.load_boundary(cone, journal.row(cycle));

                let mut fault_mask = 0u64;
                while next_fault < schedule.len() && schedule[next_fault].0 == cycle {
                    fault_mask |= schedule[next_fault].1;
                    next_fault += 1;
                }
                if fault_mask != 0 {
                    pending &= !fault_mask;
                    converged &= !fault_mask;
                }
                match runner.point {
                    CompiledPoint::Seu(ff) => {
                        if fault_mask != 0 {
                            state.flip_ff(self.cc, ff, fault_mask);
                        }
                        state.eval_cone(cone);
                    }
                    CompiledPoint::Set(_) => {
                        if fault_mask != 0 {
                            state.eval_forced_cone(cone, fault_mask);
                        } else {
                            state.eval_cone(cone);
                        }
                    }
                }
                // Record watched outputs: in-cone from the state,
                // out-of-cone are golden by construction.
                let row = trace.row_mut(cycle);
                let golden_row = self.golden.trace.row(cycle);
                for (w, (&po, &in_cone)) in self
                    .watch
                    .indices()
                    .iter()
                    .zip(&runner.watch_in_cone)
                    .enumerate()
                {
                    row[w] = if in_cone {
                        state.output_word(self.cc, po)
                    } else {
                        golden_row[w]
                    };
                }
                state.tick_cone(cone);

                if config.early_exit && pending == 0 {
                    let next = cycle + 1;
                    if next < end {
                        let diff = state.diff_lanes_cone(cone, self.golden.journal.state_at(next));
                        let newly = active & !diff & !converged;
                        if newly != 0 {
                            for (lane, at) in converged_at.iter_mut().enumerate() {
                                if newly & (1u64 << lane) != 0 {
                                    *at = Some(next);
                                }
                            }
                            converged |= newly;
                        }
                        if converged == active {
                            runner.cycles_saved += end - next;
                            break;
                        }
                    }
                }
            }
        } else {
            // Full-circuit ablation path: reset clears residue a forced
            // source net may have left in the reused state.
            trace.reset(t0, end, self.watch.len());
            state.reset(self.cc);
            state.load_ff_state_broadcast(self.cc, self.golden.journal.state_at(t0));
            state.set_cycle(t0);
            for cycle in t0..end {
                frame.clear();
                self.stimulus.drive(cycle, frame);
                frame.apply(self.cc, state);

                let mut fault_mask = 0u64;
                while next_fault < schedule.len() && schedule[next_fault].0 == cycle {
                    fault_mask |= schedule[next_fault].1;
                    next_fault += 1;
                }
                if fault_mask != 0 {
                    pending &= !fault_mask;
                    converged &= !fault_mask;
                }
                match runner.point {
                    // SEU: flip the state the cycle starts with, before
                    // combinational evaluation.
                    CompiledPoint::Seu(ff) => {
                        if fault_mask != 0 {
                            state.flip_ff(self.cc, ff, fault_mask);
                        }
                        state.eval(self.cc);
                    }
                    // SET: XOR-force the net for exactly this evaluation.
                    CompiledPoint::Set(site) => {
                        if fault_mask != 0 {
                            state.eval_forced_site(self.cc, site, fault_mask);
                        } else {
                            state.eval(self.cc);
                        }
                    }
                }
                trace.record(self.cc, self.watch, state);
                state.tick(self.cc);

                if config.early_exit && pending == 0 {
                    let next = cycle + 1;
                    if next < end {
                        let diff = state.diff_lanes(self.cc, self.golden.journal.state_at(next));
                        let newly = active & !diff & !converged;
                        if newly != 0 {
                            for (lane, at) in converged_at.iter_mut().enumerate() {
                                if newly & (1u64 << lane) != 0 {
                                    *at = Some(next);
                                }
                            }
                            converged |= newly;
                        }
                        if converged == active {
                            runner.cycles_saved += end - next;
                            break;
                        }
                    }
                }
            }
        }
    }

    /// Run the full flat campaign over every flip-flop, sequentially.
    pub fn run(&self, config: &CampaignConfig) -> FdrTable {
        let results = self
            .all_ffs()
            .map(|ff| self.run_ff(ff, config))
            .collect::<Vec<_>>();
        FdrTable::from_results(self.cc.num_ffs(), results, config.injections_per_ff)
    }

    /// Run the full flat campaign with rayon worker threads.
    pub fn run_parallel(&self, config: &CampaignConfig) -> FdrTable {
        self.run_parallel_subset(&self.all_ffs().collect::<Vec<_>>(), config, |_, _| {})
    }

    /// Run the campaign for a subset of flip-flops (e.g. only the training
    /// set of the ML flow), in parallel, with a progress callback
    /// `(done, total)`.
    pub fn run_parallel_subset(
        &self,
        ffs: &[FfId],
        config: &CampaignConfig,
        progress: impl Fn(usize, usize) + Sync,
    ) -> FdrTable {
        let done = AtomicUsize::new(0);
        let total = ffs.len();
        let results: Vec<FfCampaignResult> = ffs
            .par_iter()
            .map(|&ff| {
                let r = self.run_ff(ff, config);
                let d = done.fetch_add(1, Ordering::Relaxed) + 1;
                progress(d, total);
                r
            })
            .collect();
        FdrTable::from_results(self.cc.num_ffs(), results, config.injections_per_ff)
    }

    /// Run a flat SET campaign over the given nets (typically
    /// [`CompiledCircuit::comb_output_nets`]), in parallel, with a
    /// progress callback `(done, total)`.
    pub fn run_set_parallel(
        &self,
        nets: &[NetId],
        config: &CampaignConfig,
        progress: impl Fn(usize, usize) + Sync,
    ) -> SetDeratingTable {
        let done = AtomicUsize::new(0);
        let total = nets.len();
        let results: Vec<NetSetResult> = nets
            .par_iter()
            .map(|&net| {
                let r = self.run_net(net, config);
                let d = done.fetch_add(1, Ordering::Relaxed) + 1;
                progress(d, total);
                r
            })
            .collect();
        SetDeratingTable::from_results(results, config.injections_per_ff)
    }

    fn all_ffs(&self) -> impl Iterator<Item = FfId> {
        (0..self.cc.num_ffs()).map(FfId::from_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::judge::OutputMismatchJudge;
    use ffr_netlist::NetlistBuilder;

    /// A circuit with a sharply bimodal FDR population: a live data path
    /// (every upset visible) and a dead register (never visible).
    fn probe_circuit() -> CompiledCircuit {
        let mut b = NetlistBuilder::new("probe");
        let en = b.input("en", 1);
        // Live path: counter driving outputs.
        let live = b.reg("live", 4);
        let next = b.inc(&live.q());
        b.connect_en(&live, &en, &next).unwrap();
        b.output("value", &live.q());
        // Dead register: toggles but drives nothing observable.
        let dead = b.reg("dead", 4);
        let dnext = b.inc(&dead.q());
        b.connect(&dead, &dnext).unwrap();
        // Keep `dead` from being optimised away conceptually: reduce it
        // into a net that is ANDed with constant 0 before the output.
        let red = b.reduce_xor(&dead.q());
        let zero = b.zero_bit();
        let masked = b.and(&red, &zero);
        let out = b.or(&live.q().bit(0), &masked);
        b.output("mixed", &out);
        CompiledCircuit::compile(b.finish().unwrap()).unwrap()
    }

    struct AlwaysOn;

    impl Stimulus for AlwaysOn {
        fn num_cycles(&self) -> u64 {
            120
        }

        fn drive(&self, _cycle: u64, frame: &mut InputFrame) {
            frame.set(0, true);
        }
    }

    #[test]
    fn live_ffs_fail_dead_ffs_do_not() {
        let cc = probe_circuit();
        let watch = WatchList::all(&cc);
        let judge = OutputMismatchJudge::new();
        let campaign = Campaign::new(&cc, &AlwaysOn, &watch, &judge);
        let config = CampaignConfig::new(10..100)
            .with_injections(24)
            .with_seed(3);
        let table = campaign.run(&config);

        let netlist = cc.netlist();
        for (ff, _) in netlist.ffs() {
            let name = netlist.ff_name(ff).to_string();
            let fdr = table.fdr(ff).expect("full campaign covers all FFs");
            if name.starts_with("live") {
                assert!(
                    fdr > 0.9,
                    "live FF {name} should almost always fail, fdr={fdr}"
                );
            } else if name.starts_with("dead") {
                assert_eq!(fdr, 0.0, "dead FF {name} must be benign");
            }
        }
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let cc = probe_circuit();
        let watch = WatchList::all(&cc);
        let judge = OutputMismatchJudge::new();
        let campaign = Campaign::new(&cc, &AlwaysOn, &watch, &judge);
        let config = CampaignConfig::new(10..100)
            .with_injections(16)
            .with_seed(7);
        let seq = campaign.run(&config);
        let par = campaign.run_parallel(&config);
        for (ff, _) in cc.netlist().ffs() {
            assert_eq!(seq.fdr(ff), par.fdr(ff));
        }
    }

    #[test]
    fn early_exit_matches_full_simulation() {
        let cc = probe_circuit();
        let watch = WatchList::all(&cc);
        let judge = OutputMismatchJudge::new();
        let campaign = Campaign::new(&cc, &AlwaysOn, &watch, &judge);
        let mut fast = CampaignConfig::new(10..100)
            .with_injections(32)
            .with_seed(11);
        let mut slow = fast.clone();
        fast.early_exit = true;
        slow.early_exit = false;
        let a = campaign.run(&fast);
        let b = campaign.run(&slow);
        for (ff, _) in cc.netlist().ffs() {
            assert_eq!(a.fdr(ff), b.fdr(ff), "{}", cc.netlist().ff_name(ff));
        }
    }

    #[test]
    fn subset_campaign_covers_only_subset() {
        let cc = probe_circuit();
        let watch = WatchList::all(&cc);
        let judge = OutputMismatchJudge::new();
        let campaign = Campaign::new(&cc, &AlwaysOn, &watch, &judge);
        let config = CampaignConfig::new(10..100).with_injections(8);
        let subset = vec![FfId::from_index(0), FfId::from_index(5)];
        let table = campaign.run_parallel_subset(&subset, &config, |_, _| {});
        assert!(table.fdr(FfId::from_index(0)).is_some());
        assert!(table.fdr(FfId::from_index(5)).is_some());
        assert!(table.fdr(FfId::from_index(1)).is_none());
        assert_eq!(table.covered().count(), 2);
    }

    #[test]
    fn injection_plans_are_reproducible_across_campaigns() {
        let cc = probe_circuit();
        let watch = WatchList::all(&cc);
        let judge = OutputMismatchJudge::new();
        let campaign = Campaign::new(&cc, &AlwaysOn, &watch, &judge);
        let config = CampaignConfig::new(10..100)
            .with_injections(16)
            .with_seed(5);
        let t1 = campaign.run(&config);
        let t2 = campaign.run(&config);
        for (ff, _) in cc.netlist().ffs() {
            assert_eq!(t1.fdr(ff), t2.fdr(ff));
        }
    }
}
