//! The unified fault-injection campaign engine.
//!
//! One batch-simulation loop serves both fault models behind
//! [`InjectionPoint`]: SEUs flip a flip-flop's stored value before the
//! combinational evaluation of the injection cycle; SETs XOR-force a
//! combinational net for exactly that evaluation (via a pre-compiled
//! [`ffr_sim::FaultSite`]). Checkpoint restart, 64-lane fault batching and
//! the convergence early-exit are shared.

use crate::judge::FailureJudge;
use crate::model::{FailureClass, InjectionPoint};
use crate::result::{FdrTable, FfCampaignResult};
use crate::sampling::sample_injection_times;
use crate::set::{NetSetResult, SetDeratingTable};
use ffr_netlist::{FfId, NetId};
use ffr_sim::{
    CompiledCircuit, FaultSite, GoldenRun, InputFrame, LaneView, OutputTrace, Stimulus, WatchList,
};
use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Configuration of a statistical SEU campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of injections per flip-flop (the paper uses 170).
    pub injections_per_ff: usize,
    /// Cycle window in which faults are injected — the paper injects
    /// "during the active phase of the simulation, when packets are sent
    /// and received".
    pub window: std::ops::Range<u64>,
    /// Master seed; combined with the flip-flop index so every flip-flop
    /// has an independent, reproducible injection plan.
    pub seed: u64,
    /// Stop simulating a batch once every lane has re-converged to the
    /// golden state (sound, pure optimisation). Disable only for
    /// measurement ablations.
    pub early_exit: bool,
}

impl CampaignConfig {
    /// Paper-like defaults: 170 injections, early exit on, seed 0; the
    /// window must still be set to the testbench's active phase.
    pub fn new(window: std::ops::Range<u64>) -> CampaignConfig {
        CampaignConfig {
            injections_per_ff: 170,
            window,
            seed: 0,
            early_exit: true,
        }
    }

    /// Builder-style override of the injection count.
    pub fn with_injections(mut self, n: usize) -> CampaignConfig {
        self.injections_per_ff = n;
        self
    }

    /// Builder-style override of the seed.
    pub fn with_seed(mut self, seed: u64) -> CampaignConfig {
        self.seed = seed;
        self
    }
}

/// An [`InjectionPoint`] resolved against the compiled circuit: SET
/// targets carry their pre-compiled [`FaultSite`] so the per-cycle loop
/// never re-resolves the net→driving-op lookup.
#[derive(Clone, Copy)]
enum CompiledPoint {
    Seu(FfId),
    Set(FaultSite),
}

/// A prepared fault-injection campaign: compiled circuit, stimulus, watch
/// list, judge, and the golden reference run.
///
/// The campaign object is immutable and `Sync`; per-flip-flop work is
/// dispatched from [`Campaign::run`] (sequential) or
/// [`Campaign::run_parallel`] (rayon).
pub struct Campaign<'a, S, J> {
    cc: &'a CompiledCircuit,
    stimulus: &'a S,
    watch: &'a WatchList,
    judge: &'a J,
    golden: GoldenRun,
}

impl<'a, S, J> Campaign<'a, S, J>
where
    S: Stimulus + Sync,
    J: FailureJudge,
{
    /// Capture the golden run and prepare the campaign.
    pub fn new(
        cc: &'a CompiledCircuit,
        stimulus: &'a S,
        watch: &'a WatchList,
        judge: &'a J,
    ) -> Campaign<'a, S, J> {
        let golden = GoldenRun::capture(cc, stimulus, watch);
        Campaign::with_golden(cc, stimulus, watch, judge, golden)
    }

    /// Prepare the campaign around an already-captured golden run (e.g. one
    /// served from an artifact store instead of re-simulated).
    ///
    /// The golden run must have been captured for exactly this circuit,
    /// stimulus and watch list; the constructor checks the cheap structural
    /// invariants (cycle count, trace width).
    pub fn with_golden(
        cc: &'a CompiledCircuit,
        stimulus: &'a S,
        watch: &'a WatchList,
        judge: &'a J,
        golden: GoldenRun,
    ) -> Campaign<'a, S, J> {
        assert_eq!(
            golden.journal.cycles(),
            stimulus.num_cycles(),
            "golden run was captured for a different testbench length"
        );
        assert_eq!(
            golden.trace.width(),
            watch.len(),
            "golden run was captured for a different watch list"
        );
        Campaign {
            cc,
            stimulus,
            watch,
            judge,
            golden,
        }
    }

    /// The golden reference run (reused for feature extraction).
    pub fn golden(&self) -> &GoldenRun {
        &self.golden
    }

    /// The compiled circuit under test.
    pub fn circuit(&self) -> &CompiledCircuit {
        self.cc
    }

    /// Inject the planned faults for one flip-flop and classify every run.
    pub fn run_ff(&self, ff: FfId, config: &CampaignConfig) -> FfCampaignResult {
        FfCampaignResult::new(ff, self.run_planned(InjectionPoint::Seu(ff), config))
    }

    /// Inject the planned faults for one combinational net and classify
    /// every run (the SET fault model).
    pub fn run_net(&self, net: NetId, config: &CampaignConfig) -> NetSetResult {
        NetSetResult::new(net, self.run_planned(InjectionPoint::Set(net), config))
    }

    /// Run the full planned campaign for one injection point.
    fn run_planned(
        &self,
        point: InjectionPoint,
        config: &CampaignConfig,
    ) -> [usize; FailureClass::ALL.len()] {
        let times = sample_injection_times(
            config.seed,
            point.stream(),
            config.window.clone(),
            config.injections_per_ff,
        );
        self.run_point_times(point, &times, config)
    }

    /// Inject exactly the given fault times into one flip-flop and return
    /// the per-class tallies (indexed like [`FailureClass::ALL`]).
    ///
    /// Equivalent to [`Campaign::run_point_times`] with
    /// [`InjectionPoint::Seu`]; kept as the stable SEU entry point.
    ///
    /// [`sample_injection_times`]: crate::sample_injection_times
    pub fn run_ff_times(
        &self,
        ff: FfId,
        times: &[u64],
        config: &CampaignConfig,
    ) -> [usize; FailureClass::ALL.len()] {
        self.run_point_times(InjectionPoint::Seu(ff), times, config)
    }

    /// Inject exactly the given fault times into one injection point and
    /// return the per-class tallies (indexed like [`FailureClass::ALL`]).
    ///
    /// This is the resumable unit of campaign work for both fault models:
    /// a caller that owns the full injection plan (from
    /// [`sample_injection_times`] on [`InjectionPoint::stream`]) can run
    /// any slice of it, persist the accumulated tallies, and continue
    /// later — the tallies of two slices simply add. Classification
    /// batches the times into 64-lane groups internally, so slicing at
    /// multiples of 64 reproduces the one-shot run exactly; tallies are
    /// order-insensitive, so any slicing yields the same totals.
    ///
    /// [`sample_injection_times`]: crate::sample_injection_times
    pub fn run_point_times(
        &self,
        point: InjectionPoint,
        times: &[u64],
        config: &CampaignConfig,
    ) -> [usize; FailureClass::ALL.len()] {
        let compiled = self.compile_point(point);
        let mut class_counts = [0usize; FailureClass::ALL.len()];
        for chunk in times.chunks(64) {
            let (trace, converged_at) = self.simulate_batch(compiled, chunk, config);
            let golden_view = LaneView::golden(&self.golden.trace);
            for (lane, &inject_cycle) in chunk.iter().enumerate() {
                let view = LaneView::faulty(&self.golden.trace, &trace, lane, converged_at[lane]);
                let class = self.judge.classify(&golden_view, &view, inject_cycle);
                class_counts[class.tally_index()] += 1;
            }
        }
        class_counts
    }

    /// Resolve an injection point against the compiled circuit once, so
    /// the per-batch loop pays no per-call lookup.
    fn compile_point(&self, point: InjectionPoint) -> CompiledPoint {
        match point {
            InjectionPoint::Seu(ff) => CompiledPoint::Seu(ff),
            InjectionPoint::Set(net) => CompiledPoint::Set(self.cc.fault_site(net)),
        }
    }

    /// Simulate up to 64 injections into one point (one per lane),
    /// returning the faulty output trace and, per lane, the cycle from
    /// which the state provably equals golden again (`None` if it never
    /// re-converged).
    fn simulate_batch(
        &self,
        point: CompiledPoint,
        times: &[u64],
        config: &CampaignConfig,
    ) -> (OutputTrace, Vec<Option<u64>>) {
        debug_assert!(!times.is_empty() && times.len() <= 64);
        let end = self.stimulus.num_cycles();
        let t0 = *times.iter().min().expect("non-empty batch");
        debug_assert!(t0 < end, "injection beyond testbench end");

        let mut state = self.golden.restore(self.cc, t0);
        let mut frame = InputFrame::new(self.cc.num_inputs());
        let mut trace = OutputTrace::new(t0, end, self.watch.len());

        let active: u64 = if times.len() == 64 {
            !0
        } else {
            (1u64 << times.len()) - 1
        };
        let mut pending = active; // lanes whose fault has not happened yet
        let mut converged = 0u64; // lanes whose state returned to golden
        let mut converged_at: Vec<Option<u64>> = vec![None; times.len()];

        for cycle in t0..end {
            frame.clear();
            self.stimulus.drive(cycle, &mut frame);
            frame.apply(self.cc, &mut state);

            // Lanes whose injection is scheduled for this cycle.
            let mut fault_mask = 0u64;
            for (lane, &t) in times.iter().enumerate() {
                if t == cycle {
                    fault_mask |= 1u64 << lane;
                }
            }
            if fault_mask != 0 {
                pending &= !fault_mask;
                // A faulted lane is no longer converged (relevant when
                // the fault lands after an earlier convergence —
                // impossible with one fault per lane, but kept for
                // robustness).
                converged &= !fault_mask;
            }
            match point {
                // SEU: flip the state the cycle starts with, before
                // combinational evaluation.
                CompiledPoint::Seu(ff) => {
                    if fault_mask != 0 {
                        state.flip_ff(self.cc, ff, fault_mask);
                    }
                    state.eval(self.cc);
                }
                // SET: XOR-force the net for exactly this evaluation.
                CompiledPoint::Set(site) => {
                    if fault_mask != 0 {
                        state.eval_forced_site(self.cc, site, fault_mask);
                    } else {
                        state.eval(self.cc);
                    }
                }
            }
            trace.record(self.cc, self.watch, &state);
            state.tick(self.cc);

            if config.early_exit && pending == 0 {
                let next = cycle + 1;
                if next < end {
                    let diff = state.diff_lanes(self.cc, self.golden.journal.state_at(next));
                    let newly = active & !diff & !converged;
                    if newly != 0 {
                        for (lane, at) in converged_at.iter_mut().enumerate() {
                            if newly & (1u64 << lane) != 0 {
                                *at = Some(next);
                            }
                        }
                        converged |= newly;
                    }
                    if converged == active {
                        break;
                    }
                }
            }
        }
        (trace, converged_at)
    }

    /// Run the full flat campaign over every flip-flop, sequentially.
    pub fn run(&self, config: &CampaignConfig) -> FdrTable {
        let results = self
            .all_ffs()
            .map(|ff| self.run_ff(ff, config))
            .collect::<Vec<_>>();
        FdrTable::from_results(self.cc.num_ffs(), results, config.injections_per_ff)
    }

    /// Run the full flat campaign with rayon worker threads.
    pub fn run_parallel(&self, config: &CampaignConfig) -> FdrTable {
        self.run_parallel_subset(&self.all_ffs().collect::<Vec<_>>(), config, |_, _| {})
    }

    /// Run the campaign for a subset of flip-flops (e.g. only the training
    /// set of the ML flow), in parallel, with a progress callback
    /// `(done, total)`.
    pub fn run_parallel_subset(
        &self,
        ffs: &[FfId],
        config: &CampaignConfig,
        progress: impl Fn(usize, usize) + Sync,
    ) -> FdrTable {
        let done = AtomicUsize::new(0);
        let total = ffs.len();
        let results: Vec<FfCampaignResult> = ffs
            .par_iter()
            .map(|&ff| {
                let r = self.run_ff(ff, config);
                let d = done.fetch_add(1, Ordering::Relaxed) + 1;
                progress(d, total);
                r
            })
            .collect();
        FdrTable::from_results(self.cc.num_ffs(), results, config.injections_per_ff)
    }

    /// Run a flat SET campaign over the given nets (typically
    /// [`CompiledCircuit::comb_output_nets`]), in parallel, with a
    /// progress callback `(done, total)`.
    pub fn run_set_parallel(
        &self,
        nets: &[NetId],
        config: &CampaignConfig,
        progress: impl Fn(usize, usize) + Sync,
    ) -> SetDeratingTable {
        let done = AtomicUsize::new(0);
        let total = nets.len();
        let results: Vec<NetSetResult> = nets
            .par_iter()
            .map(|&net| {
                let r = self.run_net(net, config);
                let d = done.fetch_add(1, Ordering::Relaxed) + 1;
                progress(d, total);
                r
            })
            .collect();
        SetDeratingTable::from_results(results, config.injections_per_ff)
    }

    fn all_ffs(&self) -> impl Iterator<Item = FfId> {
        (0..self.cc.num_ffs()).map(FfId::from_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::judge::OutputMismatchJudge;
    use ffr_netlist::NetlistBuilder;

    /// A circuit with a sharply bimodal FDR population: a live data path
    /// (every upset visible) and a dead register (never visible).
    fn probe_circuit() -> CompiledCircuit {
        let mut b = NetlistBuilder::new("probe");
        let en = b.input("en", 1);
        // Live path: counter driving outputs.
        let live = b.reg("live", 4);
        let next = b.inc(&live.q());
        b.connect_en(&live, &en, &next).unwrap();
        b.output("value", &live.q());
        // Dead register: toggles but drives nothing observable.
        let dead = b.reg("dead", 4);
        let dnext = b.inc(&dead.q());
        b.connect(&dead, &dnext).unwrap();
        // Keep `dead` from being optimised away conceptually: reduce it
        // into a net that is ANDed with constant 0 before the output.
        let red = b.reduce_xor(&dead.q());
        let zero = b.zero_bit();
        let masked = b.and(&red, &zero);
        let out = b.or(&live.q().bit(0), &masked);
        b.output("mixed", &out);
        CompiledCircuit::compile(b.finish().unwrap()).unwrap()
    }

    struct AlwaysOn;

    impl Stimulus for AlwaysOn {
        fn num_cycles(&self) -> u64 {
            120
        }

        fn drive(&self, _cycle: u64, frame: &mut InputFrame) {
            frame.set(0, true);
        }
    }

    #[test]
    fn live_ffs_fail_dead_ffs_do_not() {
        let cc = probe_circuit();
        let watch = WatchList::all(&cc);
        let judge = OutputMismatchJudge::new();
        let campaign = Campaign::new(&cc, &AlwaysOn, &watch, &judge);
        let config = CampaignConfig::new(10..100)
            .with_injections(24)
            .with_seed(3);
        let table = campaign.run(&config);

        let netlist = cc.netlist();
        for (ff, _) in netlist.ffs() {
            let name = netlist.ff_name(ff).to_string();
            let fdr = table.fdr(ff).expect("full campaign covers all FFs");
            if name.starts_with("live") {
                assert!(
                    fdr > 0.9,
                    "live FF {name} should almost always fail, fdr={fdr}"
                );
            } else if name.starts_with("dead") {
                assert_eq!(fdr, 0.0, "dead FF {name} must be benign");
            }
        }
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let cc = probe_circuit();
        let watch = WatchList::all(&cc);
        let judge = OutputMismatchJudge::new();
        let campaign = Campaign::new(&cc, &AlwaysOn, &watch, &judge);
        let config = CampaignConfig::new(10..100)
            .with_injections(16)
            .with_seed(7);
        let seq = campaign.run(&config);
        let par = campaign.run_parallel(&config);
        for (ff, _) in cc.netlist().ffs() {
            assert_eq!(seq.fdr(ff), par.fdr(ff));
        }
    }

    #[test]
    fn early_exit_matches_full_simulation() {
        let cc = probe_circuit();
        let watch = WatchList::all(&cc);
        let judge = OutputMismatchJudge::new();
        let campaign = Campaign::new(&cc, &AlwaysOn, &watch, &judge);
        let mut fast = CampaignConfig::new(10..100)
            .with_injections(32)
            .with_seed(11);
        let mut slow = fast.clone();
        fast.early_exit = true;
        slow.early_exit = false;
        let a = campaign.run(&fast);
        let b = campaign.run(&slow);
        for (ff, _) in cc.netlist().ffs() {
            assert_eq!(a.fdr(ff), b.fdr(ff), "{}", cc.netlist().ff_name(ff));
        }
    }

    #[test]
    fn subset_campaign_covers_only_subset() {
        let cc = probe_circuit();
        let watch = WatchList::all(&cc);
        let judge = OutputMismatchJudge::new();
        let campaign = Campaign::new(&cc, &AlwaysOn, &watch, &judge);
        let config = CampaignConfig::new(10..100).with_injections(8);
        let subset = vec![FfId::from_index(0), FfId::from_index(5)];
        let table = campaign.run_parallel_subset(&subset, &config, |_, _| {});
        assert!(table.fdr(FfId::from_index(0)).is_some());
        assert!(table.fdr(FfId::from_index(5)).is_some());
        assert!(table.fdr(FfId::from_index(1)).is_none());
        assert_eq!(table.covered().count(), 2);
    }

    #[test]
    fn injection_plans_are_reproducible_across_campaigns() {
        let cc = probe_circuit();
        let watch = WatchList::all(&cc);
        let judge = OutputMismatchJudge::new();
        let campaign = Campaign::new(&cc, &AlwaysOn, &watch, &judge);
        let config = CampaignConfig::new(10..100)
            .with_injections(16)
            .with_seed(5);
        let t1 = campaign.run(&config);
        let t2 = campaign.run(&config);
        for (ff, _) in cc.netlist().ffs() {
            assert_eq!(t1.fdr(ff), t2.fdr(ff));
        }
    }
}
