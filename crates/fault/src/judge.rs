//! Failure classification interfaces.

use crate::model::FailureClass;
use ffr_sim::LaneView;

/// Classifies the outcome of one fault scenario by inspecting the
/// watched-output traces.
///
/// Implementations receive a [`LaneView`] of the golden run and one of the
/// faulty scenario (which transparently serves golden data outside the
/// simulated window), plus the injection cycle. They must be `Sync`: the
/// campaign classifies scenarios from multiple worker threads.
pub trait FailureJudge: Sync {
    /// Classify one fault scenario.
    fn classify(
        &self,
        golden: &LaneView<'_>,
        faulty: &LaneView<'_>,
        inject_cycle: u64,
    ) -> FailureClass;
}

/// Circuit-agnostic judge: any deviation of any watched output from the
/// golden trace, at or after the injection cycle, is a failure.
///
/// This implements the strictest failure criterion (pure output de-rating,
/// no application-level masking) and is the right default for circuits
/// without a packet-level notion of "function". An optional settling
/// allowance ignores deviations in the first `grace_cycles` after injection.
#[derive(Debug, Clone, Default)]
pub struct OutputMismatchJudge {
    /// Deviations within `inject_cycle + grace_cycles` are ignored.
    pub grace_cycles: u64,
}

impl OutputMismatchJudge {
    /// Judge with zero grace cycles.
    pub fn new() -> OutputMismatchJudge {
        OutputMismatchJudge { grace_cycles: 0 }
    }
}

impl FailureJudge for OutputMismatchJudge {
    fn classify(
        &self,
        golden: &LaneView<'_>,
        faulty: &LaneView<'_>,
        inject_cycle: u64,
    ) -> FailureClass {
        let from = inject_cycle.saturating_add(self.grace_cycles);
        for cycle in from..golden.num_cycles() {
            for w in 0..golden.width() {
                if golden.bit(w, cycle) != faulty.bit(w, cycle) {
                    return FailureClass::OutputMismatch;
                }
            }
        }
        FailureClass::Benign
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffr_sim::OutputTrace;

    #[test]
    fn mismatch_judge_detects_and_ignores() {
        // Golden: output 0 low forever, 8 cycles.
        let golden_trace = OutputTrace::new(0, 8, 1);
        // Faulty trace identical (all zero) over 2..8.
        let faulty_same = OutputTrace::new(2, 8, 1);
        let g = LaneView::golden(&golden_trace);
        let f = LaneView::faulty(&golden_trace, &faulty_same, 0, None);
        let judge = OutputMismatchJudge::new();
        assert_eq!(judge.classify(&g, &f, 2), FailureClass::Benign);

        // A faulty trace with lane 5 high at cycle 4.
        let mut faulty_diff = OutputTrace::new(2, 8, 1);
        faulty_diff.set_word(0, 4, 1u64 << 5);
        let f2 = LaneView::faulty(&golden_trace, &faulty_diff, 5, None);
        assert_eq!(judge.classify(&g, &f2, 2), FailureClass::OutputMismatch);
        // The same scenario seen from lane 6 is benign.
        let f3 = LaneView::faulty(&golden_trace, &faulty_diff, 6, None);
        assert_eq!(judge.classify(&g, &f3, 2), FailureClass::Benign);
        // Grace period swallows the deviation.
        let lenient = OutputMismatchJudge { grace_cycles: 4 };
        assert_eq!(lenient.classify(&g, &f2, 2), FailureClass::Benign);
    }
}
