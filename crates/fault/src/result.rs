//! Campaign results: per-flip-flop Functional De-Rating factors.

use crate::model::FailureClass;
use ffr_netlist::FfId;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io;
use std::path::Path;

/// Tallied outcome of all injections into one flip-flop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FfCampaignResult {
    ff: FfId,
    class_counts: Vec<usize>,
}

impl FfCampaignResult {
    /// Build a result from the per-class tallies (indexed like
    /// [`FailureClass::ALL`]).
    pub fn new(ff: FfId, class_counts: [usize; FailureClass::ALL.len()]) -> FfCampaignResult {
        FfCampaignResult {
            ff,
            class_counts: class_counts.to_vec(),
        }
    }

    /// The flip-flop this result belongs to.
    pub fn ff(&self) -> FfId {
        self.ff
    }

    /// Total injections performed.
    pub fn injections(&self) -> usize {
        self.class_counts.iter().sum()
    }

    /// Injections classified as functional failures.
    pub fn failures(&self) -> usize {
        failures_in(&self.class_counts)
    }

    /// Tally for one class.
    pub fn count(&self, class: FailureClass) -> usize {
        self.class_counts[class.tally_index()]
    }

    /// The Functional De-Rating factor: failures / injections.
    pub fn fdr(&self) -> f64 {
        failure_fraction(self.failures(), self.injections())
    }
}

/// Failure fraction of a tally: `failures / injections`, defined as 0 for
/// an empty tally.
///
/// This is the single definition of the de-rating division — the SEU
/// per-flip-flop FDR ([`FfCampaignResult::fdr`]) and the SET per-net
/// de-rating factor ([`crate::NetSetResult::derating`]) are both this
/// fraction, and both need the same division-by-zero guard.
pub fn failure_fraction(failures: usize, injections: usize) -> f64 {
    if injections == 0 {
        0.0
    } else {
        failures as f64 / injections as f64
    }
}

/// Failures in a per-class tally vector (indexed like
/// [`FailureClass::ALL`]) — the single definition of which classes count
/// as functional failures, shared with external tally accumulators such
/// as the resumable campaign checkpoint.
pub fn failures_in(class_counts: &[usize]) -> usize {
    FailureClass::ALL
        .iter()
        .filter(|c| c.is_failure())
        .map(|c| class_counts[c.tally_index()])
        .sum()
}

/// Per-flip-flop FDR results of a (possibly partial) campaign.
///
/// A full flat campaign covers every flip-flop; the ML flow's reference
/// generation covers only the training subset. Uncovered flip-flops report
/// `None`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FdrTable {
    per_ff: Vec<Option<FfCampaignResult>>,
    injections_per_ff: usize,
}

impl FdrTable {
    /// Assemble a table for a circuit with `num_ffs` flip-flops from
    /// individual results.
    ///
    /// # Panics
    ///
    /// Panics if a result references a flip-flop out of range or two
    /// results target the same flip-flop.
    pub fn from_results(
        num_ffs: usize,
        results: Vec<FfCampaignResult>,
        injections_per_ff: usize,
    ) -> FdrTable {
        let mut per_ff: Vec<Option<FfCampaignResult>> = vec![None; num_ffs];
        for r in results {
            let slot = &mut per_ff[r.ff().index()];
            assert!(slot.is_none(), "duplicate result for FF {}", r.ff());
            *slot = Some(r);
        }
        FdrTable {
            per_ff,
            injections_per_ff,
        }
    }

    /// Number of flip-flops in the circuit (covered or not).
    pub fn num_ffs(&self) -> usize {
        self.per_ff.len()
    }

    /// Configured injections per flip-flop.
    pub fn injections_per_ff(&self) -> usize {
        self.injections_per_ff
    }

    /// FDR of one flip-flop, if it was covered.
    pub fn fdr(&self, ff: FfId) -> Option<f64> {
        self.per_ff[ff.index()].as_ref().map(|r| r.fdr())
    }

    /// Full result record of one flip-flop, if covered.
    pub fn result(&self, ff: FfId) -> Option<&FfCampaignResult> {
        self.per_ff[ff.index()].as_ref()
    }

    /// Iterate over covered flip-flops.
    pub fn covered(&self) -> impl Iterator<Item = &FfCampaignResult> {
        self.per_ff.iter().flatten()
    }

    /// Dense FDR vector over **all** flip-flops.
    ///
    /// # Panics
    ///
    /// Panics if the table does not cover every flip-flop.
    pub fn dense_fdr(&self) -> Vec<f64> {
        self.per_ff
            .iter()
            .enumerate()
            .map(|(i, r)| {
                r.as_ref()
                    .unwrap_or_else(|| panic!("FF {i} not covered by campaign"))
                    .fdr()
            })
            .collect()
    }

    /// Average FDR over covered flip-flops — the circuit-level functional
    /// de-rating (assuming a uniform raw SEU rate per flip-flop).
    pub fn circuit_fdr(&self) -> f64 {
        let mut n = 0usize;
        let mut sum = 0.0;
        for r in self.covered() {
            n += 1;
            sum += r.fdr();
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Total per-class tallies over covered flip-flops.
    pub fn class_totals(&self) -> Vec<(FailureClass, usize)> {
        FailureClass::ALL
            .iter()
            .map(|&c| (c, self.covered().map(|r| r.count(c)).sum()))
            .collect()
    }

    /// Histogram of FDR values over covered flip-flops.
    pub fn histogram(&self, bins: usize) -> FdrHistogram {
        FdrHistogram::of(self.covered().map(|r| r.fdr()), bins)
    }

    /// Wilson 95 % confidence interval of one flip-flop's FDR, if covered.
    pub fn confidence(&self, ff: FfId) -> Option<(f64, f64)> {
        self.result(ff)
            .map(|r| crate::sampling::wilson_interval(r.failures(), r.injections(), 1.96))
    }

    /// Render the table as CSV (`ff,injections,failures,fdr,ci_low,ci_high`),
    /// covered flip-flops only.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("ff,injections,failures,fdr,ci_low,ci_high\n");
        for r in self.covered() {
            let (lo, hi) = crate::sampling::wilson_interval(r.failures(), r.injections(), 1.96);
            let _ = writeln!(
                out,
                "{},{},{},{:.6},{:.6},{:.6}",
                r.ff(),
                r.injections(),
                r.failures(),
                r.fdr(),
                lo,
                hi
            );
        }
        out
    }

    /// Serialize the table to pretty JSON at `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O and serialization failures.
    pub fn save_json(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_string_pretty(self).map_err(io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Load a table previously written by [`FdrTable::save_json`].
    ///
    /// # Errors
    ///
    /// Propagates I/O and deserialization failures.
    pub fn load_json(path: &Path) -> io::Result<FdrTable> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text).map_err(io::Error::other)
    }
}

/// Fixed-width histogram over FDR values in `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FdrHistogram {
    counts: Vec<usize>,
    total: usize,
}

impl FdrHistogram {
    /// Histogram of `values` with `bins` equal-width bins over `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    pub fn of(values: impl Iterator<Item = f64>, bins: usize) -> FdrHistogram {
        assert!(bins > 0);
        let mut counts = vec![0usize; bins];
        let mut total = 0usize;
        for v in values {
            let idx = ((v * bins as f64) as usize).min(bins - 1);
            counts[idx] += 1;
            total += 1;
        }
        FdrHistogram { counts, total }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Total number of values.
    pub fn total(&self) -> usize {
        self.total
    }
}

impl fmt::Display for FdrHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bins = self.counts.len();
        let max = self.counts.iter().copied().max().unwrap_or(1).max(1);
        for (i, &c) in self.counts.iter().enumerate() {
            let lo = i as f64 / bins as f64;
            let hi = (i + 1) as f64 / bins as f64;
            let bar = "#".repeat(c * 40 / max);
            writeln!(f, "[{lo:.2},{hi:.2}) {c:>6} {bar}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(ff: usize, benign: usize, corrupt: usize, hang: usize) -> FfCampaignResult {
        let mut counts = [0usize; FailureClass::ALL.len()];
        counts[FailureClass::Benign.tally_index()] = benign;
        counts[FailureClass::PayloadCorruption.tally_index()] = corrupt;
        counts[FailureClass::Hang.tally_index()] = hang;
        FfCampaignResult::new(FfId::from_index(ff), counts)
    }

    #[test]
    fn fdr_math() {
        let r = result(0, 150, 15, 5);
        assert_eq!(r.injections(), 170);
        assert_eq!(r.failures(), 20);
        assert!((r.fdr() - 20.0 / 170.0).abs() < 1e-12);
        assert_eq!(r.count(FailureClass::Hang), 5);
    }

    #[test]
    fn table_aggregation() {
        let table = FdrTable::from_results(3, vec![result(0, 10, 0, 0), result(2, 0, 10, 0)], 10);
        assert_eq!(table.num_ffs(), 3);
        assert_eq!(table.fdr(FfId::from_index(0)), Some(0.0));
        assert_eq!(table.fdr(FfId::from_index(1)), None);
        assert_eq!(table.fdr(FfId::from_index(2)), Some(1.0));
        assert_eq!(table.covered().count(), 2);
        assert!((table.circuit_fdr() - 0.5).abs() < 1e-12);
        let totals = table.class_totals();
        assert_eq!(totals[FailureClass::Benign.tally_index()].1, 10);
    }

    #[test]
    #[should_panic(expected = "duplicate result")]
    fn duplicate_result_panics() {
        let _ = FdrTable::from_results(2, vec![result(0, 1, 0, 0), result(0, 0, 1, 0)], 1);
    }

    #[test]
    #[should_panic(expected = "not covered")]
    fn dense_fdr_requires_full_coverage() {
        let table = FdrTable::from_results(2, vec![result(0, 1, 0, 0)], 1);
        let _ = table.dense_fdr();
    }

    #[test]
    fn json_round_trip() {
        let table = FdrTable::from_results(2, vec![result(0, 3, 1, 0), result(1, 4, 0, 0)], 4);
        let dir = std::env::temp_dir().join("ffr_fault_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fdr.json");
        table.save_json(&path).unwrap();
        let loaded = FdrTable::load_json(&path).unwrap();
        assert_eq!(loaded, table);
    }

    #[test]
    fn confidence_and_csv() {
        let table =
            FdrTable::from_results(2, vec![result(0, 150, 15, 5), result(1, 170, 0, 0)], 170);
        let (lo, hi) = table.confidence(FfId::from_index(0)).unwrap();
        let p = 20.0 / 170.0;
        assert!(lo < p && p < hi);
        let (lo1, hi1) = table.confidence(FfId::from_index(1)).unwrap();
        assert_eq!(lo1, 0.0);
        assert!(hi1 > 0.0 && hi1 < 0.05);
        let csv = table.to_csv();
        assert!(csv.starts_with("ff,injections,failures"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn histogram_bins() {
        let h = FdrHistogram::of([0.0, 0.05, 0.5, 0.95, 1.0].into_iter(), 10);
        assert_eq!(h.total(), 5);
        assert_eq!(h.counts()[0], 2); // 0.0 and 0.05
        assert_eq!(h.counts()[5], 1); // 0.5
        assert_eq!(h.counts()[9], 2); // 0.95 and 1.0 (clamped)
        let s = h.to_string();
        assert!(s.contains('#'));
    }
}
