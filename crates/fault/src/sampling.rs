//! Statistical sampling of injection times and campaign sizing.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Draw `n` injection cycles uniformly (with replacement) from `window`,
/// deterministically derived from `(seed, stream)`.
///
/// Using a per-flip-flop `stream` keeps the campaign reproducible and
/// order-independent: the plan for flip-flop *k* does not depend on how
/// many other flip-flops were sampled before it.
///
/// The returned times are sorted ascending, which lets the campaign engine
/// batch them into 64-lane groups with a tight restart window.
///
/// ```
/// use ffr_fault::sample_injection_times;
///
/// let plan = sample_injection_times(2019, 7, 100..500, 170);
/// assert_eq!(plan.len(), 170);
/// assert!(plan.iter().all(|&t| (100..500).contains(&t)));
/// // Same (seed, stream, window) → same plan, no matter who asks when.
/// assert_eq!(plan, sample_injection_times(2019, 7, 100..500, 170));
/// ```
///
/// # Panics
///
/// Panics if the window is empty.
pub fn sample_injection_times(
    seed: u64,
    stream: u64,
    window: std::ops::Range<u64>,
    n: usize,
) -> Vec<u64> {
    assert!(window.start < window.end, "empty injection window");
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut times: Vec<u64> = (0..n).map(|_| rng.gen_range(window.clone())).collect();
    times.sort_unstable();
    times
}

/// Sample size required for a statistical fault-injection campaign
/// (Leveugle et al., "Statistical fault injection: Quantified error and
/// confidence", DATE 2009):
///
/// ```text
/// n = N / (1 + e²·(N−1) / (t²·p·(1−p)))
/// ```
///
/// * `population` — total fault universe `N` (e.g. flip-flops × cycles),
/// * `margin` — desired error margin `e` (e.g. 0.05),
/// * `confidence_t` — the normal quantile `t` (1.96 for 95 %, 2.58 for
///   99 %),
/// * `p` — the a-priori failure probability (0.5 is the conservative
///   worst case).
///
/// # Panics
///
/// Panics if `margin` or `p` are outside `(0, 1)`.
pub fn required_sample_size(population: u64, margin: f64, confidence_t: f64, p: f64) -> u64 {
    assert!(margin > 0.0 && margin < 1.0, "margin must be in (0,1)");
    assert!(p > 0.0 && p < 1.0, "p must be in (0,1)");
    let n = population as f64;
    let e2 = margin * margin;
    let t2 = confidence_t * confidence_t;
    let denom = 1.0 + e2 * (n - 1.0) / (t2 * p * (1.0 - p));
    (n / denom).ceil() as u64
}

/// The supported confidence levels of [`z_for_confidence`], as
/// `(percent, normal quantile)` pairs.
pub const CONFIDENCE_QUANTILES: [(u32, f64); 4] =
    [(90, 1.645), (95, 1.96), (98, 2.326), (99, 2.576)];

/// The two-sided normal quantile for a confidence level given in percent
/// (`None` for levels outside [`CONFIDENCE_QUANTILES`]).
///
/// This is the single source of the `@95`-style confidence notation used
/// by campaign policy specs (`wilson:0.05@95`), so the spec parser, the
/// Wilson stopping rule and Leveugle et al.'s sizing formula
/// ([`required_sample_size`]) all agree on what a percentage means.
///
/// ```
/// use ffr_fault::{wilson_interval, z_for_confidence};
///
/// let z95 = z_for_confidence(95).unwrap();
/// assert_eq!(z95, 1.96);
/// // 0 failures in 64 injections: the 95 % upper bound is already
/// // below 6 % — the reasoning behind Wilson-CI early stopping.
/// let (lo, hi) = wilson_interval(0, 64, z95);
/// assert_eq!(lo, 0.0);
/// assert!(hi < 0.06);
/// ```
pub fn z_for_confidence(percent: u32) -> Option<f64> {
    CONFIDENCE_QUANTILES
        .iter()
        .find(|&&(p, _)| p == percent)
        .map(|&(_, z)| z)
}

/// The inverse of [`z_for_confidence`]: the confidence percentage of a
/// quantile, if it is one of the supported levels (exact match).
pub fn confidence_for_z(z: f64) -> Option<u32> {
    CONFIDENCE_QUANTILES
        .iter()
        .find(|&&(_, q)| q == z)
        .map(|&(p, _)| p)
}

/// Wilson score interval for an estimated failure probability.
///
/// Returns the `(low, high)` bounds of the FDR estimate after observing
/// `failures` out of `n` injections, at normal quantile `z` (1.96 for
/// 95 %). Used to report per-flip-flop confidence alongside the point
/// estimate.
///
/// ```
/// use ffr_fault::wilson_interval;
///
/// // 20 failures out of 170 injections, 95 % confidence.
/// let (lo, hi) = wilson_interval(20, 170, 1.96);
/// let p = 20.0 / 170.0;
/// assert!(lo < p && p < hi);
/// // Ten times the observations tighten the interval.
/// let (lo2, hi2) = wilson_interval(200, 1700, 1.96);
/// assert!(hi2 - lo2 < hi - lo);
/// ```
///
/// # Panics
///
/// Panics if `n == 0` or `failures > n`.
pub fn wilson_interval(failures: usize, n: usize, z: f64) -> (f64, f64) {
    assert!(n > 0, "no observations");
    assert!(failures <= n, "more failures than observations");
    let nf = n as f64;
    let p = failures as f64 / nf;
    let z2 = z * z;
    let denom = 1.0 + z2 / nf;
    let center = (p + z2 / (2.0 * nf)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / nf + z2 / (4.0 * nf * nf)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_interval_basics() {
        // Zero failures still leave non-zero upper uncertainty.
        let (lo, hi) = wilson_interval(0, 170, 1.96);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.05, "hi = {hi}");
        // Point estimate is inside the interval.
        let (lo, hi) = wilson_interval(20, 170, 1.96);
        let p = 20.0 / 170.0;
        assert!(lo < p && p < hi);
        // More samples tighten the interval.
        let (lo2, hi2) = wilson_interval(200, 1700, 1.96);
        assert!(hi2 - lo2 < hi - lo);
        // Symmetric extreme.
        let (lo, hi) = wilson_interval(170, 170, 1.96);
        assert!(lo > 0.95 && hi == 1.0);
    }

    #[test]
    #[should_panic(expected = "no observations")]
    fn wilson_zero_n_panics() {
        let _ = wilson_interval(0, 0, 1.96);
    }

    #[test]
    fn sampling_is_deterministic_and_in_window() {
        let a = sample_injection_times(42, 7, 100..500, 170);
        let b = sample_injection_times(42, 7, 100..500, 170);
        assert_eq!(a, b);
        assert_eq!(a.len(), 170);
        assert!(a.iter().all(|&t| (100..500).contains(&t)));
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "sorted");
    }

    #[test]
    fn different_streams_differ() {
        let a = sample_injection_times(42, 1, 0..10_000, 50);
        let b = sample_injection_times(42, 2, 0..10_000, 50);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty injection window")]
    fn empty_window_panics() {
        let _ = sample_injection_times(0, 0, 5..5, 1);
    }

    #[test]
    fn confidence_quantiles_round_trip() {
        for (percent, z) in CONFIDENCE_QUANTILES {
            assert_eq!(z_for_confidence(percent), Some(z));
            assert_eq!(confidence_for_z(z), Some(percent));
        }
        assert_eq!(z_for_confidence(42), None);
        assert_eq!(confidence_for_z(1.0), None);
    }

    #[test]
    fn sample_size_formula_known_values() {
        // Large population, 95 % confidence, 5 % margin, p = 0.5 → ≈ 384.
        let n = required_sample_size(10_000_000, 0.05, 1.96, 0.5);
        assert!((380..=390).contains(&n), "got {n}");
        // Tighter margin needs more samples.
        let n1 = required_sample_size(1_000_000, 0.01, 1.96, 0.5);
        assert!(n1 > n);
        // Sample never exceeds the population.
        let n2 = required_sample_size(100, 0.05, 1.96, 0.5);
        assert!(n2 <= 100);
    }

    #[test]
    fn paper_scale_injections_are_plausible() {
        // The paper uses 170 injections per flip-flop. With a per-FF fault
        // universe of a few thousand cycles, a ~7.5 % margin at 95 %
        // confidence lands in that region — sanity-check the formula
        // reproduces the order of magnitude.
        let per_ff = required_sample_size(3_000, 0.075, 1.96, 0.5);
        assert!((140..=200).contains(&per_ff), "got {per_ff}");
    }
}
