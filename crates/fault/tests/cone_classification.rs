//! Property tests: cone-restricted and frontier campaign simulation
//! classify every injection exactly like full-circuit simulation.
//!
//! The cone and frontier paths must be *optimisations*, not
//! approximations — for both fault models, any injection target and any
//! batch of injection times, the per-class tallies (and therefore every
//! FDR and SET derating table built from them) must match the full
//! evaluation bit for bit across all three evaluation paths.

use ffr_circuits::corpus::CorpusSpec;
use ffr_fault::{Campaign, CampaignConfig, FailureClass, InjectionPoint, OutputMismatchJudge};
use ffr_netlist::{Bus, FfId, NetId, NetlistBuilder};
use ffr_sim::{CompiledCircuit, InputFrame, Stimulus, WatchList};
use proptest::prelude::*;

/// A small sequential design with feedback, cross-register logic and
/// several observable outputs (same shape as the sim crate's
/// `cone_equivalence.rs`).
fn circuit(width: usize) -> CompiledCircuit {
    let mut b = NetlistBuilder::new("cone_cls");
    let a = b.input("a", width);
    let en = b.input("en", 1);
    let r1 = b.reg("r1", width);
    let (sum, carry) = b.add(&r1.q(), &a);
    b.connect_en(&r1, &en, &sum).unwrap();
    let r2 = b.reg("r2", width);
    let x = b.xor(&r1.q(), &a);
    b.connect(&r2, &x).unwrap();
    let red = b.reduce_xor(&r2.q());
    b.output("sum", &r1.q());
    b.output("parity", &red);
    b.output("carry", &Bus::single(carry.net(0)));
    CompiledCircuit::compile(b.finish().unwrap()).unwrap()
}

/// Deterministic broadcast stimulus: a pure function of the cycle.
struct MixStimulus {
    width: usize,
    cycles: u64,
}

impl Stimulus for MixStimulus {
    fn num_cycles(&self) -> u64 {
        self.cycles
    }

    fn drive(&self, cycle: u64, frame: &mut InputFrame) {
        let mut x = cycle
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x ^= x >> 29;
        for bit in 0..self.width {
            frame.set(bit, (x >> bit) & 1 == 1);
        }
        frame.set(self.width, (x >> 21) & 1 == 1);
    }
}

/// Input-count-generic deterministic stimulus for arbitrary (corpus)
/// circuits: every input bit is a hash of `(cycle, bit)`.
struct HashStimulus {
    inputs: usize,
    cycles: u64,
}

impl Stimulus for HashStimulus {
    fn num_cycles(&self) -> u64 {
        self.cycles
    }

    fn drive(&self, cycle: u64, frame: &mut InputFrame) {
        for bit in 0..self.inputs {
            let mut x = cycle
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((bit as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
            x ^= x >> 31;
            x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^= x >> 29;
            frame.set(bit, x & 1 == 1);
        }
    }
}

/// Every interesting SET target: gate outputs, flip-flop Q nets and
/// primary inputs (driverless source sites).
fn set_targets(cc: &CompiledCircuit) -> Vec<NetId> {
    let mut targets = cc.comb_output_nets();
    targets.extend((0..cc.num_ffs()).map(|i| cc.netlist().ff_q_net(FfId::from_index(i))));
    targets.extend(cc.netlist().primary_inputs().iter().copied());
    targets
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `run_point_times` with the default frontier path tallies every
    /// failure class identically to both ablation paths (static cone and
    /// full circuit), for both fault models and arbitrary batches of
    /// injection times.
    #[test]
    fn cone_tallies_equal_full_tallies(
        width in 2usize..6,
        seu in any::<bool>(),
        pick in 0usize..64,
        raw_times in proptest::collection::vec(0u64..1000, 1..80),
        cycles in 24u64..48,
    ) {
        let cc = circuit(width);
        let stim = MixStimulus { width, cycles };
        let watch = WatchList::all(&cc);
        let judge = OutputMismatchJudge::new();
        let campaign = Campaign::new(&cc, &stim, &watch, &judge);

        let point = if seu {
            InjectionPoint::Seu(FfId::from_index(pick % cc.num_ffs()))
        } else {
            let nets = set_targets(&cc);
            InjectionPoint::Set(nets[pick % nets.len()])
        };
        let times: Vec<u64> = raw_times.iter().map(|t| t % cycles).collect();

        let base = CampaignConfig::new(0..cycles);
        let frontier = campaign.run_point_times(point, &times, &base.clone());
        let cone = campaign.run_point_times(point, &times, &base.clone().with_frontier(false));
        let full = campaign.run_point_times(point, &times, &base.with_cone(false));
        prop_assert_eq!(frontier, cone);
        prop_assert_eq!(cone, full);
        prop_assert_eq!(
            full.iter().sum::<usize>(),
            times.len(),
            "every injection classified exactly once"
        );
    }

    /// Corpus-wide conformance: the same three-way tally identity holds
    /// over *arbitrary generated corpus circuits* — `CorpusSpec::sampled`
    /// maps free integers onto every generator family (counters, LFSR
    /// pipelines, ALUs, FIFOs, CRCs, register files, seeded mixes), so
    /// the frontier and cone paths are proven against structures no
    /// hand-written testbench enumerates.
    #[test]
    fn corpus_tallies_equal_full_tallies(
        kind in 0usize..7,
        size_a in any::<usize>(),
        size_b in any::<usize>(),
        structure_seed in any::<u64>(),
        seu in any::<bool>(),
        pick in 0usize..64,
        raw_times in proptest::collection::vec(0u64..1000, 1..64),
        cycles in 24u64..40,
    ) {
        let spec = CorpusSpec::sampled(kind, size_a, size_b, structure_seed);
        let cc = CompiledCircuit::compile(spec.build()).unwrap();
        let stim = HashStimulus { inputs: cc.num_inputs(), cycles };
        let watch = WatchList::all(&cc);
        let judge = OutputMismatchJudge::new();
        let campaign = Campaign::new(&cc, &stim, &watch, &judge);

        let point = if seu {
            InjectionPoint::Seu(FfId::from_index(pick % cc.num_ffs()))
        } else {
            let nets = set_targets(&cc);
            InjectionPoint::Set(nets[pick % nets.len()])
        };
        let times: Vec<u64> = raw_times.iter().map(|t| t % cycles).collect();

        let base = CampaignConfig::new(0..cycles);
        let frontier = campaign.run_point_times(point, &times, &base.clone());
        let cone = campaign.run_point_times(point, &times, &base.clone().with_frontier(false));
        let full = campaign.run_point_times(point, &times, &base.with_cone(false));
        prop_assert_eq!(frontier, cone, "frontier/cone tallies for {}", spec.id());
        prop_assert_eq!(cone, full, "cone/full tallies for {}", spec.id());
    }
}

/// Whole-table equivalence: an SEU campaign over every flip-flop produces
/// the same FDR table on the frontier, static-cone and full-circuit paths
/// — including with early exit disabled, which forces full-window
/// simulation everywhere.
#[test]
fn fdr_tables_identical_across_eval_paths() {
    let cc = circuit(4);
    let stim = MixStimulus {
        width: 4,
        cycles: 96,
    };
    let watch = WatchList::all(&cc);
    let judge = OutputMismatchJudge::new();
    let campaign = Campaign::new(&cc, &stim, &watch, &judge);

    for early_exit in [true, false] {
        let mut base = CampaignConfig::new(8..88).with_injections(48).with_seed(19);
        base.early_exit = early_exit;
        let frontier = campaign.run(&base.clone());
        let cone = campaign.run(&base.clone().with_frontier(false));
        let full = campaign.run(&base.clone().with_cone(false));
        for (ff, _) in cc.netlist().ffs() {
            assert_eq!(
                frontier.fdr(ff),
                cone.fdr(ff),
                "frontier/cone FDR mismatch for {} (early_exit={early_exit})",
                cc.netlist().ff_name(ff)
            );
            assert_eq!(
                cone.fdr(ff),
                full.fdr(ff),
                "cone/full FDR mismatch for {} (early_exit={early_exit})",
                cc.netlist().ff_name(ff)
            );
        }
    }
}

/// Whole-table equivalence for the SET fault model: a derating campaign
/// over every interesting net (gate outputs, Q nets, source inputs)
/// produces the same table on all three evaluation paths.
#[test]
fn set_tables_identical_across_eval_paths() {
    let cc = circuit(3);
    let stim = MixStimulus {
        width: 3,
        cycles: 72,
    };
    let watch = WatchList::all(&cc);
    let judge = OutputMismatchJudge::new();
    let campaign = Campaign::new(&cc, &stim, &watch, &judge);
    let nets = set_targets(&cc);

    let base = CampaignConfig::new(4..68).with_injections(32).with_seed(23);
    let frontier = campaign.run_set_parallel(&nets, &base.clone(), |_, _| {});
    let cone = campaign.run_set_parallel(&nets, &base.clone().with_frontier(false), |_, _| {});
    let full = campaign.run_set_parallel(&nets, &base.with_cone(false), |_, _| {});
    for &net in &nets {
        assert_eq!(
            frontier.derating(net),
            cone.derating(net),
            "frontier/cone SET derating mismatch for net {net}"
        );
        assert_eq!(
            cone.derating(net),
            full.derating(net),
            "cone/full SET derating mismatch for net {net}"
        );
    }
}

/// Scratch reuse across points and batches leaves no residue: running a
/// SET campaign twice through the same `PointRunner`/`PointScratch` pair
/// (and interleaving other points in between) reproduces the first
/// tallies exactly.
#[test]
fn scratch_reuse_leaves_no_residue() {
    let cc = circuit(3);
    let stim = MixStimulus {
        width: 3,
        cycles: 64,
    };
    let watch = WatchList::all(&cc);
    let judge = OutputMismatchJudge::new();
    let campaign = Campaign::new(&cc, &stim, &watch, &judge);
    let config = CampaignConfig::new(0..64);

    let times: Vec<u64> = (0..64).map(|i| (i * 7) % 64).collect();
    let mut scratch = campaign.point_scratch();
    // (cone, frontier) covers all three evaluation paths; interleaving
    // them through the same scratch also proves the frontier worklist is
    // fully drained/re-attached between batches of different paths.
    for (cone, frontier) in [(true, true), (true, false), (false, false)] {
        let config = config.clone().with_cone(cone).with_frontier(frontier);
        for point in set_targets(&cc)
            .into_iter()
            .map(InjectionPoint::Set)
            .chain((0..cc.num_ffs()).map(|i| InjectionPoint::Seu(FfId::from_index(i))))
        {
            let mut runner = campaign.point_runner(point);
            let first = campaign.run_point_times_with(&mut runner, &mut scratch, &times, &config);
            let fresh = campaign.run_point_times(point, &times, &config);
            assert_eq!(first, fresh, "reused scratch diverged for {point:?}");
            let again = campaign.run_point_times_with(&mut runner, &mut scratch, &times, &config);
            assert_eq!(first, again, "second pass diverged for {point:?}");
        }
    }
    let _ = FailureClass::ALL; // tallies cover all classes by construction
}
