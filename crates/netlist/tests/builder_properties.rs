//! Property tests of the netlist builder's structural invariants.

use ffr_netlist::{CellKind, NetlistBuilder};
use proptest::prelude::*;

/// A compact recipe interpreted into builder calls; every recipe must
/// produce a valid netlist.
fn build(ops: &[u8], width: usize, with_reg: bool) -> ffr_netlist::Netlist {
    let mut b = NetlistBuilder::new("prop");
    let a = b.input("a", width);
    let c = b.input("c", width);
    let mut pool = vec![a, c];
    for (i, &op) in ops.iter().enumerate() {
        let x = pool[(op as usize) % pool.len()].clone();
        let y = pool[(op as usize / 5) % pool.len()].clone();
        let e = match op % 11 {
            0 => b.and(&x, &y),
            1 => b.or(&x, &y),
            2 => b.xor(&x, &y),
            3 => b.nand(&x, &y),
            4 => b.nor(&x, &y),
            5 => b.xnor(&x, &y),
            6 => b.not(&x),
            7 => b.add(&x, &y).0,
            8 => b.sub(&x, &y).0,
            9 => {
                let s = b.reduce_or(&y);
                b.mux(&s, &x, &y)
            }
            _ => {
                let amount = (op as usize / 13) % (width + 1);
                b.shl_const(&x, amount)
            }
        };
        if with_reg && op % 3 == 0 {
            let r = b.reg(&format!("r{i}"), width);
            b.connect(&r, &e).expect("fresh reg");
            pool.push(r.q());
        } else {
            pool.push(e);
        }
    }
    let out = pool.last().expect("non-empty").clone();
    b.output("out", &out);
    b.finish().expect("recipe produces a valid netlist")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated netlist validates and has consistent indices.
    #[test]
    fn builder_invariants(
        ops in proptest::collection::vec(0u8..=255, 1..24),
        width in 1usize..8,
        with_reg in any::<bool>(),
    ) {
        let n = build(&ops, width, with_reg);
        prop_assert!(n.validate().is_ok());
        // Driver/reader tables are mutually consistent.
        for (cid, cell) in n.cells() {
            prop_assert_eq!(n.driver(cell.output()), Some(cid));
            for &input in cell.inputs() {
                prop_assert!(n.readers(input).contains(&cid), "reader table incomplete");
            }
            prop_assert_eq!(cell.inputs().len(), cell.kind().num_inputs());
        }
        // Every flip-flop id maps back to a sequential cell.
        for (ff, cid) in n.ffs() {
            prop_assert!(n.cell(cid).kind().is_sequential());
            prop_assert_eq!(n.ff_of_cell(cid), Some(ff));
        }
        // Bus registry is consistent.
        for bus in n.buses() {
            prop_assert!(bus.len() > 1);
            for (pos, &ff) in bus.ffs().iter().enumerate() {
                let (bi, p) = n.bus_of_ff(ff).expect("member resolves");
                prop_assert_eq!(n.buses()[bi].name(), bus.name());
                prop_assert_eq!(p, pos);
            }
        }
    }

    /// Drive strength never decreases with fanout, across the whole
    /// netlist.
    #[test]
    fn drive_strengths_track_fanout(
        ops in proptest::collection::vec(0u8..=255, 1..20),
        width in 1usize..6,
    ) {
        let n = build(&ops, width, true);
        for (_, cell) in n.cells() {
            let fanout = n.readers(cell.output()).len();
            let expected = ffr_netlist::DriveStrength::for_fanout(fanout);
            prop_assert_eq!(cell.drive(), expected);
        }
    }

    /// Tie cells are shared: at most one Const0 and one Const1 per design.
    #[test]
    fn tie_cells_are_shared(
        values in proptest::collection::vec(0u64..256, 1..8),
    ) {
        let mut b = NetlistBuilder::new("ties");
        let a = b.input("a", 8);
        let mut acc = a;
        for &v in &values {
            let lit = b.lit(8, v);
            acc = b.xor(&acc, &lit);
        }
        b.output("o", &acc);
        let n = b.finish().expect("valid");
        let c0 = n.cells().filter(|(_, c)| c.kind() == CellKind::Const0).count();
        let c1 = n.cells().filter(|(_, c)| c.kind() == CellKind::Const1).count();
        prop_assert!(c0 <= 1, "{c0} const0 cells");
        prop_assert!(c1 <= 1, "{c1} const1 cells");
    }
}
