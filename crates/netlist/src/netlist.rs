//! The immutable, validated gate-level netlist and its identifier types.

use crate::cell::{CellKind, DriveStrength};
use crate::error::NetlistError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a net (a single-bit wire) inside a [`Netlist`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NetId(pub(crate) u32);

/// Identifier of a cell instance inside a [`Netlist`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CellId(pub(crate) u32);

/// Identifier of a flip-flop: a dense index over the sequential cells of a
/// [`Netlist`], in declaration order.
///
/// This is the index space that the fault-injection campaign, the feature
/// matrix and the FDR table all share.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FfId(pub(crate) u32);

macro_rules! impl_id {
    ($t:ty) => {
        impl $t {
            /// Dense index of this identifier.
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Build an identifier from a dense index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("id index overflow"))
            }
        }

        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

impl_id!(NetId);
impl_id!(CellId);
impl_id!(FfId);

/// A single-bit wire.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Net {
    pub(crate) name: String,
}

impl Net {
    /// Name of the net (auto-generated `n<k>` if never named explicitly).
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// A standard-cell instance.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cell {
    pub(crate) name: String,
    pub(crate) kind: CellKind,
    pub(crate) drive: DriveStrength,
    pub(crate) inputs: Vec<NetId>,
    pub(crate) output: NetId,
}

impl Cell {
    /// Instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Library cell kind.
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// Drive strength chosen for the instance.
    pub fn drive(&self) -> DriveStrength {
        self.drive
    }

    /// Input nets, in pin order (see [`CellKind::input_pin_names`]).
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Output net.
    pub fn output(&self) -> NetId {
        self.output
    }
}

/// A register bus: an ordered group of flip-flops that the RTL declared as a
/// single multi-bit register (e.g. `tx_fifo_rdptr[4:0]`).
///
/// Index 0 is the least-significant bit. The paper's *Part of Bus*, *Bus
/// Position* and *Bus Length* features are derived from this table.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusInfo {
    pub(crate) name: String,
    pub(crate) ffs: Vec<FfId>,
}

impl BusInfo {
    /// Declared register name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Member flip-flops, LSB first.
    pub fn ffs(&self) -> &[FfId] {
        &self.ffs
    }

    /// Number of bits in the bus.
    pub fn len(&self) -> usize {
        self.ffs.len()
    }

    /// `true` if the bus has no bits (never produced by the builder).
    pub fn is_empty(&self) -> bool {
        self.ffs.is_empty()
    }
}

/// An immutable, validated gate-level netlist.
///
/// Create one with [`NetlistBuilder`](crate::NetlistBuilder) or by parsing
/// structural Verilog with [`verilog::parse`](crate::verilog::parse).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Netlist {
    pub(crate) name: String,
    pub(crate) nets: Vec<Net>,
    pub(crate) cells: Vec<Cell>,
    pub(crate) inputs: Vec<NetId>,
    pub(crate) outputs: Vec<(String, NetId)>,
    pub(crate) ffs: Vec<CellId>,
    pub(crate) ff_init: Vec<bool>,
    pub(crate) buses: Vec<BusInfo>,
    pub(crate) driver: Vec<Option<CellId>>,
    pub(crate) readers: Vec<Vec<CellId>>,
}

impl Netlist {
    /// Module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Number of cell instances (combinational + sequential).
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of flip-flops.
    pub fn num_ffs(&self) -> usize {
        self.ffs.len()
    }

    /// Net accessor.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Cell accessor.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Iterate over all cells with their ids.
    pub fn cells(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (CellId::from_index(i), c))
    }

    /// Iterate over all nets with their ids.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets
            .iter()
            .enumerate()
            .map(|(i, n)| (NetId::from_index(i), n))
    }

    /// Primary inputs, in declaration order.
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary outputs as `(port name, net)` pairs, in declaration order.
    pub fn primary_outputs(&self) -> &[(String, NetId)] {
        &self.outputs
    }

    /// Index of the primary input with the given net name, if any.
    pub fn input_index(&self, name: &str) -> Option<usize> {
        self.inputs
            .iter()
            .position(|&n| self.nets[n.index()].name == name)
    }

    /// Index of the primary output with the given port name, if any.
    pub fn output_index(&self, name: &str) -> Option<usize> {
        self.outputs.iter().position(|(p, _)| p == name)
    }

    /// Iterate over flip-flops as `(ff id, cell id)` pairs.
    pub fn ffs(&self) -> impl Iterator<Item = (FfId, CellId)> + '_ {
        self.ffs
            .iter()
            .enumerate()
            .map(|(i, &c)| (FfId::from_index(i), c))
    }

    /// The cell implementing a flip-flop.
    pub fn ff_cell(&self, ff: FfId) -> &Cell {
        &self.cells[self.ffs[ff.index()].index()]
    }

    /// Cell id of a flip-flop.
    pub fn ff_cell_id(&self, ff: FfId) -> CellId {
        self.ffs[ff.index()]
    }

    /// `FfId` of a sequential cell, if the cell is a flip-flop.
    pub fn ff_of_cell(&self, cell: CellId) -> Option<FfId> {
        // ffs is sorted by construction (cells are appended in order).
        self.ffs.binary_search(&cell).ok().map(FfId::from_index)
    }

    /// Data-input net of a flip-flop.
    pub fn ff_d_net(&self, ff: FfId) -> NetId {
        self.ff_cell(ff).inputs[0]
    }

    /// Output (Q) net of a flip-flop.
    pub fn ff_q_net(&self, ff: FfId) -> NetId {
        self.ff_cell(ff).output
    }

    /// Instance name of a flip-flop.
    pub fn ff_name(&self, ff: FfId) -> &str {
        &self.ff_cell(ff).name
    }

    /// Power-on value of a flip-flop.
    pub fn ff_init(&self, ff: FfId) -> bool {
        self.ff_init[ff.index()]
    }

    /// Register buses declared by the RTL.
    pub fn buses(&self) -> &[BusInfo] {
        &self.buses
    }

    /// Bus membership of a flip-flop: `(bus index, position within bus)`.
    pub fn bus_of_ff(&self, ff: FfId) -> Option<(usize, usize)> {
        // Buses are small and few; a linear scan keeps the data structure
        // simple. Heavy consumers should build their own map once.
        for (bi, bus) in self.buses.iter().enumerate() {
            if let Some(pos) = bus.ffs.iter().position(|&f| f == ff) {
                return Some((bi, pos));
            }
        }
        None
    }

    /// The cell driving a net (`None` for primary inputs).
    pub fn driver(&self, net: NetId) -> Option<CellId> {
        self.driver[net.index()]
    }

    /// Cells reading a net.
    pub fn readers(&self, net: NetId) -> &[CellId] {
        &self.readers[net.index()]
    }

    /// `true` if the net is a primary input.
    pub fn is_primary_input(&self, net: NetId) -> bool {
        self.driver[net.index()].is_none()
    }

    /// `true` if the net drives a primary output port.
    pub fn is_primary_output(&self, net: NetId) -> bool {
        self.outputs.iter().any(|&(_, n)| n == net)
    }

    /// A stable structural hash of the netlist (FNV-1a over a canonical
    /// walk of cells, connectivity, flip-flops, ports and bus metadata).
    ///
    /// Nets are identified by *name* (names are unique), never by their
    /// internal numbering, so the hash is invariant under net renumbering
    /// and therefore preserved by a lossless round trip (e.g. through
    /// [`crate::verilog`], whose parser re-interns nets in a different
    /// order). Anything else — names, cell order, port order, init
    /// values, bus membership — is hashed exactly, making this a cheap
    /// fingerprint for corpus catalogs and artifact keys.
    pub fn content_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
            // Length-prefix-free framing: a sentinel byte between fields.
            h ^= 0xff;
            h = h.wrapping_mul(PRIME);
        };
        let net_name = |id: NetId| self.nets[id.index()].name.as_bytes();
        eat(self.name.as_bytes());
        // The net-name *set*, order-independently: sorted.
        let mut names: Vec<&str> = self.nets.iter().map(|n| n.name.as_str()).collect();
        names.sort_unstable();
        for name in names {
            eat(name.as_bytes());
        }
        for cell in &self.cells {
            eat(cell.name.as_bytes());
            eat(cell.kind.library_name().as_bytes());
            eat(&[cell.drive as u8]);
            for &input in &cell.inputs {
                eat(net_name(input));
            }
            eat(net_name(cell.output));
        }
        for &input in &self.inputs {
            eat(net_name(input));
        }
        for (name, net) in &self.outputs {
            eat(name.as_bytes());
            eat(net_name(*net));
        }
        for &ff in &self.ffs {
            eat(self.cells[ff.index()].name.as_bytes());
        }
        for &init in &self.ff_init {
            eat(&[u8::from(init)]);
        }
        for bus in &self.buses {
            eat(bus.name.as_bytes());
            for &ff in &bus.ffs {
                eat(self.cells[self.ffs[ff.index()].index()].name.as_bytes());
            }
        }
        h
    }

    /// Find a net by name.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.nets
            .iter()
            .position(|n| n.name == name)
            .map(NetId::from_index)
    }

    /// Find a flip-flop by instance name.
    pub fn find_ff(&self, name: &str) -> Option<FfId> {
        self.ffs()
            .find(|&(_, c)| self.cells[c.index()].name == name)
            .map(|(f, _)| f)
    }

    /// Check the structural invariants of the netlist.
    ///
    /// # Errors
    ///
    /// Returns an error if a net is undriven (and not a primary input), has
    /// multiple drivers, or if names collide. Combinational-cycle detection
    /// is performed by the simulator's compiler, which needs the topological
    /// order anyway.
    pub fn validate(&self) -> Result<(), NetlistError> {
        let mut driven = vec![false; self.nets.len()];
        for &pi in &self.inputs {
            driven[pi.index()] = true;
        }
        for cell in &self.cells {
            let o = cell.output.index();
            if driven[o] {
                return Err(NetlistError::MultipleDrivers {
                    net: self.nets[o].name.clone(),
                });
            }
            driven[o] = true;
        }
        for (i, d) in driven.iter().enumerate() {
            if !d {
                return Err(NetlistError::UndrivenNet {
                    net: self.nets[i].name.clone(),
                });
            }
        }
        let mut names: HashMap<&str, ()> = HashMap::with_capacity(self.cells.len());
        for cell in &self.cells {
            if names.insert(&cell.name, ()).is_some() {
                return Err(NetlistError::DuplicateName {
                    name: cell.name.clone(),
                });
            }
        }
        Ok(())
    }

    /// Total flip-flop count per declared bus, plus the number of
    /// single-bit (non-bus) flip-flops. Convenience for reporting.
    pub fn bus_summary(&self) -> (usize, usize) {
        let in_buses: usize = self.buses.iter().map(|b| b.ffs.len()).sum();
        (self.buses.len(), self.num_ffs() - in_buses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    fn tiny() -> Netlist {
        let mut b = NetlistBuilder::new("tiny");
        let a = b.input("a", 1);
        let x = b.input("x", 1);
        let r = b.reg("r", 1);
        let d = b.and(&a, &x);
        let d2 = b.xor(&d, &r.q());
        b.connect(&r, &d2).unwrap();
        b.output("o", &r.q());
        b.finish().unwrap()
    }

    #[test]
    fn ids_round_trip() {
        assert_eq!(NetId::from_index(42).index(), 42);
        assert_eq!(CellId::from_index(7).index(), 7);
        assert_eq!(FfId::from_index(0).index(), 0);
        assert_eq!(format!("{}", NetId::from_index(3)), "3");
    }

    #[test]
    fn tiny_netlist_shape() {
        let n = tiny();
        assert_eq!(n.num_ffs(), 1);
        assert_eq!(n.primary_inputs().len(), 2);
        assert_eq!(n.primary_outputs().len(), 1);
        assert!(n.validate().is_ok());
        let ff = FfId::from_index(0);
        assert_eq!(n.ff_name(ff), "r_reg[0]");
        assert!(!n.ff_init(ff));
        // The register q net is read by the xor and the output buffer; the
        // buffer's own output is the port net.
        let q = n.ff_q_net(ff);
        assert!(!n.is_primary_output(q));
        assert_eq!(n.readers(q).len(), 2);
        let (_, port_net) = &n.primary_outputs()[0];
        assert!(n.is_primary_output(*port_net));
        assert!(n.readers(*port_net).is_empty());
    }

    #[test]
    fn find_helpers() {
        let n = tiny();
        assert!(n.find_net("a").is_some());
        assert!(n.find_net("nope").is_none());
        assert!(n.find_ff("r_reg[0]").is_some());
        assert_eq!(n.input_index("x"), Some(1));
        assert_eq!(n.output_index("o"), Some(0));
        assert_eq!(n.output_index("nope"), None);
    }

    #[test]
    fn ff_of_cell_is_inverse_of_ff_cell_id() {
        let n = tiny();
        for (ff, cell) in n.ffs() {
            assert_eq!(n.ff_of_cell(cell), Some(ff));
        }
        // A combinational cell is not a flip-flop.
        for (id, c) in n.cells() {
            if !c.kind().is_sequential() {
                assert_eq!(n.ff_of_cell(id), None);
            }
        }
    }

    #[test]
    fn bus_of_ff_reports_membership() {
        let mut b = NetlistBuilder::new("bus");
        let a = b.input("a", 4);
        let r = b.reg("word", 4);
        b.connect(&r, &a).unwrap();
        b.output("o", &r.q());
        let n = b.finish().unwrap();
        assert_eq!(n.buses().len(), 1);
        assert_eq!(n.buses()[0].name(), "word");
        assert_eq!(n.buses()[0].len(), 4);
        assert!(!n.buses()[0].is_empty());
        for pos in 0..4 {
            let ff = n.buses()[0].ffs()[pos];
            assert_eq!(n.bus_of_ff(ff), Some((0, pos)));
        }
        let (nbuses, singles) = n.bus_summary();
        assert_eq!(nbuses, 1);
        assert_eq!(singles, 0);
    }
}
