use std::fmt;

/// Errors produced while constructing, validating or parsing netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A register was driven (`connect`) more than once.
    RegisterAlreadyConnected {
        /// Name of the register.
        name: String,
    },
    /// A register was never driven before `finish`.
    RegisterUnconnected {
        /// Name of the register.
        name: String,
    },
    /// Two buses in a bitwise operation have different widths.
    WidthMismatch {
        /// Describes the operation that failed.
        context: String,
        /// Width of the left operand.
        left: usize,
        /// Width of the right operand.
        right: usize,
    },
    /// A bus of an invalid width (e.g. zero, or >64 for literal ops) was used.
    InvalidWidth {
        /// Describes the operation that failed.
        context: String,
        /// The offending width.
        width: usize,
    },
    /// A net has no driver and is not a primary input.
    UndrivenNet {
        /// Name of the net.
        net: String,
    },
    /// A net has more than one driver.
    MultipleDrivers {
        /// Name of the net.
        net: String,
    },
    /// A name (port, net, instance) was declared twice.
    DuplicateName {
        /// The duplicated name.
        name: String,
    },
    /// The structural-Verilog parser failed.
    Parse {
        /// Line number (1-based) where parsing failed.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// The netlist contains a combinational cycle.
    CombinationalCycle {
        /// Names of some cells on the cycle (truncated for readability).
        cells: Vec<String>,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::RegisterAlreadyConnected { name } => {
                write!(f, "register `{name}` is already connected to a driver")
            }
            NetlistError::RegisterUnconnected { name } => {
                write!(f, "register `{name}` was never connected to a driver")
            }
            NetlistError::WidthMismatch {
                context,
                left,
                right,
            } => write!(f, "width mismatch in {context}: {left} vs {right}"),
            NetlistError::InvalidWidth { context, width } => {
                write!(f, "invalid bus width {width} in {context}")
            }
            NetlistError::UndrivenNet { net } => write!(f, "net `{net}` has no driver"),
            NetlistError::MultipleDrivers { net } => {
                write!(f, "net `{net}` has more than one driver")
            }
            NetlistError::DuplicateName { name } => write!(f, "duplicate name `{name}`"),
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            NetlistError::CombinationalCycle { cells } => {
                write!(
                    f,
                    "combinational cycle through cells: {}",
                    cells.join(" -> ")
                )
            }
        }
    }
}

impl std::error::Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NetlistError::WidthMismatch {
            context: "and".into(),
            left: 4,
            right: 8,
        };
        let s = e.to_string();
        assert!(s.contains("and"));
        assert!(s.contains('4'));
        assert!(s.contains('8'));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error + Send + Sync> =
            Box::new(NetlistError::DuplicateName { name: "clk".into() });
        assert!(e.to_string().contains("clk"));
    }
}
