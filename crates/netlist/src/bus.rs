//! Multi-bit wire bundles used by the RTL-style builder.

use crate::netlist::NetId;

/// An ordered bundle of single-bit nets, LSB first.
///
/// `Bus` is a lightweight value: cloning copies only net ids. All logic
/// operators live on [`NetlistBuilder`](crate::NetlistBuilder) because they
/// allocate gates; `Bus` itself only provides structural manipulation
/// (slicing, concatenation, bit access).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bus {
    nets: Vec<NetId>,
}

impl Bus {
    /// Bundle existing nets into a bus (LSB first).
    ///
    /// # Panics
    ///
    /// Panics if `nets` is empty.
    pub fn from_nets(nets: Vec<NetId>) -> Bus {
        assert!(!nets.is_empty(), "a bus must have at least one bit");
        Bus { nets }
    }

    /// A single-bit bus.
    pub fn single(net: NetId) -> Bus {
        Bus { nets: vec![net] }
    }

    /// Number of bits.
    pub fn width(&self) -> usize {
        self.nets.len()
    }

    /// The nets of the bus, LSB first.
    pub fn nets(&self) -> &[NetId] {
        &self.nets
    }

    /// Net of bit `i` (0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics if `i >= width()`.
    pub fn net(&self, i: usize) -> NetId {
        self.nets[i]
    }

    /// Bit `i` as a single-bit bus.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width()`.
    pub fn bit(&self, i: usize) -> Bus {
        Bus::single(self.nets[i])
    }

    /// Least-significant bit as a single-bit bus.
    pub fn lsb(&self) -> Bus {
        self.bit(0)
    }

    /// Most-significant bit as a single-bit bus.
    pub fn msb(&self) -> Bus {
        self.bit(self.width() - 1)
    }

    /// Bits `range` as a new bus (`lo..hi`, LSB-based, half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bus {
        assert!(
            range.start < range.end && range.end <= self.width(),
            "invalid bus slice {range:?} of width {}",
            self.width()
        );
        Bus {
            nets: self.nets[range].to_vec(),
        }
    }

    /// Concatenate `self` (low part) with `high` (high part).
    pub fn concat(&self, high: &Bus) -> Bus {
        let mut nets = self.nets.clone();
        nets.extend_from_slice(&high.nets);
        Bus { nets }
    }

    /// Iterate over the bits as single-bit buses, LSB first.
    pub fn bits(&self) -> impl Iterator<Item = Bus> + '_ {
        self.nets.iter().map(|&n| Bus::single(n))
    }
}

impl From<NetId> for Bus {
    fn from(net: NetId) -> Bus {
        Bus::single(net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[usize]) -> Vec<NetId> {
        v.iter().map(|&i| NetId::from_index(i)).collect()
    }

    #[test]
    fn structure_ops() {
        let b = Bus::from_nets(ids(&[0, 1, 2, 3]));
        assert_eq!(b.width(), 4);
        assert_eq!(b.net(2), NetId::from_index(2));
        assert_eq!(b.lsb().net(0), NetId::from_index(0));
        assert_eq!(b.msb().net(0), NetId::from_index(3));
        let s = b.slice(1..3);
        assert_eq!(s.nets(), &ids(&[1, 2])[..]);
        let c = s.concat(&b.bit(0));
        assert_eq!(c.nets(), &ids(&[1, 2, 0])[..]);
        assert_eq!(b.bits().count(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn empty_bus_panics() {
        let _ = Bus::from_nets(vec![]);
    }

    #[test]
    #[should_panic(expected = "invalid bus slice")]
    fn bad_slice_panics() {
        let b = Bus::from_nets(ids(&[0, 1]));
        let _ = b.slice(1..5);
    }

    #[test]
    fn from_net_id() {
        let b: Bus = NetId::from_index(9).into();
        assert_eq!(b.width(), 1);
    }
}
