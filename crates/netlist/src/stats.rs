//! Summary statistics for a netlist.

use crate::cell::CellKind;
use crate::netlist::Netlist;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Aggregate counts describing a [`Netlist`], mirroring the "design
/// characteristics" tables reliability papers print for their case studies.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetlistStats {
    /// Module name.
    pub name: String,
    /// Total number of nets.
    pub nets: usize,
    /// Total cell instances.
    pub cells: usize,
    /// Combinational cell instances.
    pub combinational: usize,
    /// Flip-flop instances.
    pub flip_flops: usize,
    /// Primary input bits.
    pub inputs: usize,
    /// Primary output bits.
    pub outputs: usize,
    /// Declared register buses.
    pub buses: usize,
    /// Flip-flops not belonging to any bus.
    pub single_bit_ffs: usize,
    /// Instance count per cell kind, indexed like [`CellKind::ALL`].
    pub per_kind: Vec<(String, usize)>,
}

impl NetlistStats {
    /// Compute statistics for a netlist.
    pub fn of(netlist: &Netlist) -> NetlistStats {
        let mut per_kind_counts = [0usize; CellKind::ALL.len()];
        for (_, cell) in netlist.cells() {
            let idx = CellKind::ALL
                .iter()
                .position(|&k| k == cell.kind())
                .expect("kind in ALL");
            per_kind_counts[idx] += 1;
        }
        let per_kind: Vec<(String, usize)> = CellKind::ALL
            .iter()
            .zip(per_kind_counts)
            .filter(|&(_, c)| c > 0)
            .map(|(k, c)| (k.library_name().to_string(), c))
            .collect();
        let (buses, single_bit_ffs) = netlist.bus_summary();
        NetlistStats {
            name: netlist.name().to_string(),
            nets: netlist.num_nets(),
            cells: netlist.num_cells(),
            combinational: netlist.num_cells() - netlist.num_ffs(),
            flip_flops: netlist.num_ffs(),
            inputs: netlist.primary_inputs().len(),
            outputs: netlist.primary_outputs().len(),
            buses,
            single_bit_ffs,
            per_kind,
        }
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "design `{}`", self.name)?;
        writeln!(f, "  nets:           {}", self.nets)?;
        writeln!(f, "  cells:          {}", self.cells)?;
        writeln!(f, "  combinational:  {}", self.combinational)?;
        writeln!(f, "  flip-flops:     {}", self.flip_flops)?;
        writeln!(f, "  inputs/outputs: {}/{}", self.inputs, self.outputs)?;
        writeln!(
            f,
            "  buses:          {} ({} single-bit FFs)",
            self.buses, self.single_bit_ffs
        )?;
        for (kind, count) in &self.per_kind {
            writeln!(f, "    {kind:<8} {count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    #[test]
    fn stats_add_up() {
        let mut b = NetlistBuilder::new("s");
        let a = b.input("a", 3);
        let bq = b.input("b", 3);
        let x = b.xor(&a, &bq);
        let r = b.reg("r", 3);
        b.connect(&r, &x).unwrap();
        b.output("o", &r.q());
        let n = b.finish().unwrap();
        let stats = NetlistStats::of(&n);
        assert_eq!(stats.flip_flops, 3);
        assert_eq!(stats.cells, stats.combinational + stats.flip_flops);
        assert_eq!(stats.inputs, 6);
        assert_eq!(stats.outputs, 3);
        assert_eq!(stats.buses, 1);
        let total: usize = stats.per_kind.iter().map(|(_, c)| c).sum();
        assert_eq!(total, stats.cells);
        let display = stats.to_string();
        assert!(display.contains("flip-flops"));
        assert!(display.contains("DFF"));
    }
}
