use serde::{Deserialize, Serialize};
use std::fmt;

/// The standard-cell vocabulary used by every netlist in this workspace.
///
/// The set mirrors the subset of the NanGate FreePDK45 Open Cell Library that
/// the paper's synthesized 10GE MAC netlist uses: simple one- and two-input
/// combinational gates, a 2:1 multiplexer, constant drivers (tie cells) and a
/// rising-edge D flip-flop. Wider logic is composed from these by the
/// [`NetlistBuilder`](crate::NetlistBuilder), the same way a synthesis tool
/// maps RTL onto the library.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// Tie-low constant driver (`LOGIC0`).
    Const0,
    /// Tie-high constant driver (`LOGIC1`).
    Const1,
    /// Non-inverting buffer (`BUF`).
    Buf,
    /// Inverter (`INV`).
    Not,
    /// 2-input AND (`AND2`).
    And2,
    /// 2-input NAND (`NAND2`).
    Nand2,
    /// 2-input OR (`OR2`).
    Or2,
    /// 2-input NOR (`NOR2`).
    Nor2,
    /// 2-input XOR (`XOR2`).
    Xor2,
    /// 2-input XNOR (`XNOR2`).
    Xnor2,
    /// 2:1 multiplexer (`MUX2`); inputs are `[a, b, s]`, output is
    /// `a` when `s = 0` and `b` when `s = 1`.
    Mux2,
    /// Rising-edge D flip-flop (`DFF`); input is `[d]`, output is `q`.
    Dff,
}

impl CellKind {
    /// All cell kinds, in a stable order.
    pub const ALL: [CellKind; 12] = [
        CellKind::Const0,
        CellKind::Const1,
        CellKind::Buf,
        CellKind::Not,
        CellKind::And2,
        CellKind::Nand2,
        CellKind::Or2,
        CellKind::Nor2,
        CellKind::Xor2,
        CellKind::Xnor2,
        CellKind::Mux2,
        CellKind::Dff,
    ];

    /// Number of input pins the cell has.
    pub fn num_inputs(self) -> usize {
        match self {
            CellKind::Const0 | CellKind::Const1 => 0,
            CellKind::Buf | CellKind::Not | CellKind::Dff => 1,
            CellKind::And2
            | CellKind::Nand2
            | CellKind::Or2
            | CellKind::Nor2
            | CellKind::Xor2
            | CellKind::Xnor2 => 2,
            CellKind::Mux2 => 3,
        }
    }

    /// `true` for the flip-flop, `false` for combinational cells.
    pub fn is_sequential(self) -> bool {
        matches!(self, CellKind::Dff)
    }

    /// `true` for constant (tie) cells.
    pub fn is_constant(self) -> bool {
        matches!(self, CellKind::Const0 | CellKind::Const1)
    }

    /// Evaluate the cell bit-parallel over 64 simulation lanes.
    ///
    /// Unused operands are ignored (e.g. `b`/`c` for an inverter). The
    /// flip-flop evaluates as a wire (`d`); sequencing is handled by the
    /// simulator, which only calls this for combinational kinds.
    #[inline(always)]
    pub fn eval(self, a: u64, b: u64, c: u64) -> u64 {
        match self {
            CellKind::Const0 => 0,
            CellKind::Const1 => !0,
            CellKind::Buf => a,
            CellKind::Not => !a,
            CellKind::And2 => a & b,
            CellKind::Nand2 => !(a & b),
            CellKind::Or2 => a | b,
            CellKind::Nor2 => !(a | b),
            CellKind::Xor2 => a ^ b,
            CellKind::Xnor2 => !(a ^ b),
            CellKind::Mux2 => (a & !c) | (b & c),
            CellKind::Dff => a,
        }
    }

    /// Library cell base name (NanGate-style, without drive-strength suffix).
    pub fn library_name(self) -> &'static str {
        match self {
            CellKind::Const0 => "LOGIC0",
            CellKind::Const1 => "LOGIC1",
            CellKind::Buf => "BUF",
            CellKind::Not => "INV",
            CellKind::And2 => "AND2",
            CellKind::Nand2 => "NAND2",
            CellKind::Or2 => "OR2",
            CellKind::Nor2 => "NOR2",
            CellKind::Xor2 => "XOR2",
            CellKind::Xnor2 => "XNOR2",
            CellKind::Mux2 => "MUX2",
            CellKind::Dff => "DFF",
        }
    }

    /// Inverse of [`CellKind::library_name`].
    pub fn from_library_name(name: &str) -> Option<CellKind> {
        Some(match name {
            "LOGIC0" => CellKind::Const0,
            "LOGIC1" => CellKind::Const1,
            "BUF" => CellKind::Buf,
            "INV" => CellKind::Not,
            "AND2" => CellKind::And2,
            "NAND2" => CellKind::Nand2,
            "OR2" => CellKind::Or2,
            "NOR2" => CellKind::Nor2,
            "XOR2" => CellKind::Xor2,
            "XNOR2" => CellKind::Xnor2,
            "MUX2" => CellKind::Mux2,
            "DFF" => CellKind::Dff,
            _ => return None,
        })
    }

    /// Names of the input pins in the order the netlist stores them,
    /// following NanGate conventions.
    pub fn input_pin_names(self) -> &'static [&'static str] {
        match self {
            CellKind::Const0 | CellKind::Const1 => &[],
            CellKind::Buf | CellKind::Not => &["A"],
            CellKind::And2 | CellKind::Nand2 | CellKind::Or2 | CellKind::Nor2 => &["A1", "A2"],
            CellKind::Xor2 | CellKind::Xnor2 => &["A", "B"],
            CellKind::Mux2 => &["A", "B", "S"],
            CellKind::Dff => &["D"],
        }
    }

    /// Name of the output pin, following NanGate conventions.
    pub fn output_pin_name(self) -> &'static str {
        match self {
            CellKind::Const0 | CellKind::Const1 | CellKind::Buf | CellKind::Mux2 => "Z",
            CellKind::Not
            | CellKind::And2
            | CellKind::Nand2
            | CellKind::Or2
            | CellKind::Nor2
            | CellKind::Xnor2 => "ZN",
            CellKind::Xor2 => "Z",
            CellKind::Dff => "Q",
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.library_name())
    }
}

/// Drive strength of a mapped cell, as a synthesis tool would pick based on
/// the load the cell has to drive.
///
/// The builder assigns strengths deterministically from fanout during
/// [`NetlistBuilder::finish`](crate::NetlistBuilder::finish); the value is
/// consumed by the feature extractor as the paper's *Flip-Flop Drive
/// Strength* synthesis feature.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum DriveStrength {
    /// Unit drive (`_X1`).
    #[default]
    X1,
    /// Double drive (`_X2`).
    X2,
    /// Quadruple drive (`_X4`).
    X4,
}

impl DriveStrength {
    /// Numeric multiplier of the drive strength (1, 2 or 4).
    pub fn multiplier(self) -> u32 {
        match self {
            DriveStrength::X1 => 1,
            DriveStrength::X2 => 2,
            DriveStrength::X4 => 4,
        }
    }

    /// Strength a synthesis heuristic would choose for the given fanout.
    pub fn for_fanout(fanout: usize) -> DriveStrength {
        match fanout {
            0..=3 => DriveStrength::X1,
            4..=8 => DriveStrength::X2,
            _ => DriveStrength::X4,
        }
    }

    /// Library suffix (`_X1`, `_X2`, `_X4`).
    pub fn suffix(self) -> &'static str {
        match self {
            DriveStrength::X1 => "_X1",
            DriveStrength::X2 => "_X2",
            DriveStrength::X4 => "_X4",
        }
    }

    /// Inverse of [`DriveStrength::suffix`].
    pub fn from_suffix(s: &str) -> Option<DriveStrength> {
        Some(match s {
            "_X0" | "_X1" => DriveStrength::X1,
            "_X2" => DriveStrength::X2,
            "_X4" => DriveStrength::X4,
            _ => return None,
        })
    }
}

impl fmt::Display for DriveStrength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}", self.multiplier())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_truth_tables() {
        // Exhaustive scalar truth tables via lane 0.
        for a in [0u64, 1] {
            for b in [0u64, 1] {
                assert_eq!(CellKind::And2.eval(a, b, 0) & 1, a & b);
                assert_eq!(CellKind::Nand2.eval(a, b, 0) & 1, !(a & b) & 1);
                assert_eq!(CellKind::Or2.eval(a, b, 0) & 1, a | b);
                assert_eq!(CellKind::Nor2.eval(a, b, 0) & 1, !(a | b) & 1);
                assert_eq!(CellKind::Xor2.eval(a, b, 0) & 1, a ^ b);
                assert_eq!(CellKind::Xnor2.eval(a, b, 0) & 1, !(a ^ b) & 1);
                for s in [0u64, 1] {
                    let expect = if s == 1 { b } else { a };
                    assert_eq!(CellKind::Mux2.eval(a, b, s.wrapping_neg()) & 1, expect);
                }
            }
            assert_eq!(CellKind::Not.eval(a, 0, 0) & 1, !a & 1);
            assert_eq!(CellKind::Buf.eval(a, 0, 0) & 1, a);
        }
        assert_eq!(CellKind::Const0.eval(0, 0, 0), 0);
        assert_eq!(CellKind::Const1.eval(0, 0, 0), !0);
    }

    #[test]
    fn eval_is_lane_parallel() {
        let a = 0xDEAD_BEEF_0123_4567u64;
        let b = 0x0F0F_F0F0_AAAA_5555u64;
        let s = 0xFFFF_0000_FFFF_0000u64;
        assert_eq!(CellKind::Mux2.eval(a, b, s), (a & !s) | (b & s));
        assert_eq!(CellKind::Nand2.eval(a, b, 0), !(a & b));
    }

    #[test]
    fn library_name_round_trip() {
        for kind in CellKind::ALL {
            assert_eq!(CellKind::from_library_name(kind.library_name()), Some(kind));
        }
        assert_eq!(CellKind::from_library_name("FOO3"), None);
    }

    #[test]
    fn pin_counts_match_names() {
        for kind in CellKind::ALL {
            assert_eq!(kind.num_inputs(), kind.input_pin_names().len());
        }
    }

    #[test]
    fn drive_strength_heuristic_is_monotonic() {
        let mut last = DriveStrength::X1;
        for fanout in 0..100 {
            let s = DriveStrength::for_fanout(fanout);
            assert!(s >= last, "strength must not decrease with fanout");
            last = s;
        }
        assert_eq!(DriveStrength::for_fanout(0), DriveStrength::X1);
        assert_eq!(DriveStrength::for_fanout(5), DriveStrength::X2);
        assert_eq!(DriveStrength::for_fanout(20), DriveStrength::X4);
    }

    #[test]
    fn drive_strength_suffix_round_trip() {
        for s in [DriveStrength::X1, DriveStrength::X2, DriveStrength::X4] {
            assert_eq!(DriveStrength::from_suffix(s.suffix()), Some(s));
        }
        assert_eq!(DriveStrength::from_suffix("_X8"), None);
    }
}
