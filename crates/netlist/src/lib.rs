//! Gate-level netlist substrate for the Functional De-Rating (FDR) estimation
//! pipeline.
//!
//! This crate provides the circuit representation that everything else in the
//! workspace builds on:
//!
//! * [`CellKind`] — a NanGate-FreePDK45-like standard-cell vocabulary
//!   (2-input gates, inverter/buffer, 2:1 mux, constants and a D flip-flop),
//! * [`Netlist`] — an immutable, validated gate-level netlist with named
//!   nets, primary I/O, a flip-flop table and register-bus metadata,
//! * [`NetlistBuilder`] — an RTL-style construction API ([`Bus`] word
//!   operators, registers with enable/synchronous reset, adders, muxes, …)
//!   that *lowers* everything to the standard-cell vocabulary, the same way
//!   a synthesis tool maps RTL onto a cell library,
//! * [`verilog`] — a structural-Verilog emitter and a parser for the same
//!   subset, so netlists can be round-tripped to disk.
//!
//! The paper this workspace reproduces (Lange et al., DSN 2019) works on a
//! gate-level netlist of the OpenCores 10GE MAC synthesized with NanGate
//! FreePDK45; this crate is the from-scratch substitute for that netlist
//! infrastructure.
//!
//! # Example
//!
//! ```
//! use ffr_netlist::NetlistBuilder;
//!
//! # fn main() -> Result<(), ffr_netlist::NetlistError> {
//! let mut b = NetlistBuilder::new("toggler");
//! let en = b.input("en", 1);
//! let t = b.reg("t", 1);
//! let inv = b.not(&t.q());
//! let next = b.mux(&en, &t.q(), &inv); // hold when en=0, toggle when en=1
//! b.connect(&t, &next)?;
//! b.output("q", &t.q());
//! let netlist = b.finish()?;
//! assert_eq!(netlist.num_ffs(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;
mod cell;
mod error;
pub mod netlist;
pub mod stats;
pub mod verilog;

mod builder;

pub use builder::{NetlistBuilder, RegHandle};
pub use bus::Bus;
pub use cell::{CellKind, DriveStrength};
pub use error::NetlistError;
pub use netlist::{BusInfo, Cell, CellId, FfId, Net, NetId, Netlist};
pub use stats::NetlistStats;
