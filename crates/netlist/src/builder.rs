//! RTL-style netlist construction.
//!
//! [`NetlistBuilder`] plays the role of the synthesis front-end in this
//! workspace: circuits are described with word-level operators (bitwise
//! logic, muxes, adders, comparators, registers with enable / synchronous
//! reset) and everything is lowered on the fly to the standard-cell
//! vocabulary of [`CellKind`].

use crate::bus::Bus;
use crate::cell::{CellKind, DriveStrength};
use crate::error::NetlistError;
use crate::netlist::{BusInfo, Cell, CellId, FfId, Net, NetId, Netlist};
use std::collections::HashSet;

/// Handle to a register declared with [`NetlistBuilder::reg`].
///
/// The register's output ([`RegHandle::q`]) can be used immediately —
/// including in the logic that computes its own next value — and the data
/// input is attached later with one of the `connect*` methods. This two-phase
/// protocol is what makes feedback (state machines, counters) expressible.
#[derive(Clone, Debug)]
pub struct RegHandle {
    pub(crate) index: usize,
    pub(crate) q: Bus,
}

impl RegHandle {
    /// The register's output bus (Q pins of its flip-flops).
    pub fn q(&self) -> Bus {
        self.q.clone()
    }

    /// Width of the register in bits.
    pub fn width(&self) -> usize {
        self.q.width()
    }
}

struct RegInfo {
    name: String,
    q: Bus,
    d: Option<Bus>,
    init: u64,
}

/// Incremental builder producing a validated [`Netlist`].
///
/// See the [crate-level documentation](crate) for a usage example.
///
/// # Panics
///
/// Builder combinators panic on *programming errors* (width mismatches,
/// duplicate port names, out-of-range literals). Errors that depend on the
/// overall construction sequence (double-connecting or forgetting a
/// register) are reported as [`NetlistError`] by [`NetlistBuilder::connect`]
/// and [`NetlistBuilder::finish`].
pub struct NetlistBuilder {
    name: String,
    nets: Vec<Net>,
    cells: Vec<Cell>,
    inputs: Vec<NetId>,
    outputs: Vec<(String, NetId)>,
    regs: Vec<RegInfo>,
    port_names: HashSet<String>,
    const0: Option<NetId>,
    const1: Option<NetId>,
}

impl NetlistBuilder {
    /// Start building a netlist for a module called `name`.
    pub fn new(name: impl Into<String>) -> NetlistBuilder {
        NetlistBuilder {
            name: name.into(),
            nets: Vec::new(),
            cells: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            regs: Vec::new(),
            port_names: HashSet::new(),
            const0: None,
            const1: None,
        }
    }

    fn new_net(&mut self, name: Option<String>) -> NetId {
        let id = NetId::from_index(self.nets.len());
        let name = name.unwrap_or_else(|| format!("n{}", id.index()));
        self.nets.push(Net { name });
        id
    }

    fn new_cell(&mut self, kind: CellKind, inputs: Vec<NetId>, out_name: Option<String>) -> NetId {
        debug_assert_eq!(inputs.len(), kind.num_inputs());
        let out = self.new_net(out_name);
        let name = format!("U{}", self.cells.len());
        self.cells.push(Cell {
            name,
            kind,
            drive: DriveStrength::X1,
            inputs,
            output: out,
        });
        out
    }

    /// The module name this builder was created with.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of cells created so far (before flip-flop materialisation).
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    // ------------------------------------------------------------------
    // Ports and constants
    // ------------------------------------------------------------------

    /// Declare a primary input of the given width.
    ///
    /// # Panics
    ///
    /// Panics if the name was already used for a port or `width == 0`.
    pub fn input(&mut self, name: &str, width: usize) -> Bus {
        assert!(width > 0, "input `{name}` must have width > 0");
        assert!(
            self.port_names.insert(name.to_string()),
            "duplicate port name `{name}`"
        );
        let nets: Vec<NetId> = (0..width)
            .map(|i| {
                let bit_name = if width == 1 {
                    name.to_string()
                } else {
                    format!("{name}[{i}]")
                };
                let id = self.new_net(Some(bit_name));
                self.inputs.push(id);
                id
            })
            .collect();
        Bus::from_nets(nets)
    }

    /// Declare a primary output port driven by `bus`.
    ///
    /// An output buffer is inserted per bit (as synthesis tools do), so the
    /// port is a dedicated net named after the port.
    ///
    /// # Panics
    ///
    /// Panics if the name was already used for a port.
    pub fn output(&mut self, name: &str, bus: &Bus) {
        assert!(
            self.port_names.insert(name.to_string()),
            "duplicate port name `{name}`"
        );
        for (i, &net) in bus.nets().iter().enumerate() {
            let bit_name = if bus.width() == 1 {
                name.to_string()
            } else {
                format!("{name}[{i}]")
            };
            let out = self.new_cell(CellKind::Buf, vec![net], Some(bit_name.clone()));
            self.outputs.push((bit_name, out));
        }
    }

    fn const0_net(&mut self) -> NetId {
        if let Some(n) = self.const0 {
            return n;
        }
        let n = self.new_cell(CellKind::Const0, vec![], Some("const0".into()));
        self.const0 = Some(n);
        n
    }

    fn const1_net(&mut self) -> NetId {
        if let Some(n) = self.const1 {
            return n;
        }
        let n = self.new_cell(CellKind::Const1, vec![], Some("const1".into()));
        self.const1 = Some(n);
        n
    }

    /// A `width`-bit constant bus holding `value` (LSB first).
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64, or if `value` does not fit.
    pub fn lit(&mut self, width: usize, value: u64) -> Bus {
        assert!(
            width > 0 && width <= 64,
            "literal width {width} out of range"
        );
        if width < 64 {
            assert!(
                value < (1u64 << width),
                "literal value {value} does not fit in {width} bits"
            );
        }
        let nets: Vec<NetId> = (0..width)
            .map(|i| {
                if (value >> i) & 1 == 1 {
                    self.const1_net()
                } else {
                    self.const0_net()
                }
            })
            .collect();
        Bus::from_nets(nets)
    }

    /// A single-bit constant 0.
    pub fn zero_bit(&mut self) -> Bus {
        Bus::single(self.const0_net())
    }

    /// A single-bit constant 1.
    pub fn one_bit(&mut self) -> Bus {
        Bus::single(self.const1_net())
    }

    // ------------------------------------------------------------------
    // Gate-level primitives
    // ------------------------------------------------------------------

    /// Instantiate a single gate and return its output net.
    ///
    /// # Panics
    ///
    /// Panics if the number of inputs does not match the cell kind, or if
    /// a sequential kind is requested (use [`NetlistBuilder::reg`]).
    pub fn gate(&mut self, kind: CellKind, inputs: &[NetId]) -> NetId {
        assert!(!kind.is_sequential(), "use reg() to create flip-flops");
        assert_eq!(
            inputs.len(),
            kind.num_inputs(),
            "{kind} expects {} inputs",
            kind.num_inputs()
        );
        self.new_cell(kind, inputs.to_vec(), None)
    }

    fn zip_gate(&mut self, kind: CellKind, a: &Bus, b: &Bus, op: &str) -> Bus {
        assert_eq!(
            a.width(),
            b.width(),
            "width mismatch in {op}: {} vs {}",
            a.width(),
            b.width()
        );
        let nets: Vec<NetId> = a
            .nets()
            .iter()
            .zip(b.nets())
            .map(|(&x, &y)| self.gate(kind, &[x, y]))
            .collect();
        Bus::from_nets(nets)
    }

    /// Bitwise AND.
    pub fn and(&mut self, a: &Bus, b: &Bus) -> Bus {
        self.zip_gate(CellKind::And2, a, b, "and")
    }

    /// Bitwise NAND.
    pub fn nand(&mut self, a: &Bus, b: &Bus) -> Bus {
        self.zip_gate(CellKind::Nand2, a, b, "nand")
    }

    /// Bitwise OR.
    pub fn or(&mut self, a: &Bus, b: &Bus) -> Bus {
        self.zip_gate(CellKind::Or2, a, b, "or")
    }

    /// Bitwise NOR.
    pub fn nor(&mut self, a: &Bus, b: &Bus) -> Bus {
        self.zip_gate(CellKind::Nor2, a, b, "nor")
    }

    /// Bitwise XOR.
    pub fn xor(&mut self, a: &Bus, b: &Bus) -> Bus {
        self.zip_gate(CellKind::Xor2, a, b, "xor")
    }

    /// Bitwise XNOR.
    pub fn xnor(&mut self, a: &Bus, b: &Bus) -> Bus {
        self.zip_gate(CellKind::Xnor2, a, b, "xnor")
    }

    /// Bitwise NOT.
    pub fn not(&mut self, a: &Bus) -> Bus {
        let nets: Vec<NetId> = a
            .nets()
            .iter()
            .map(|&x| self.gate(CellKind::Not, &[x]))
            .collect();
        Bus::from_nets(nets)
    }

    /// Buffer every bit (used to model fanout repair; rarely needed directly).
    pub fn buf(&mut self, a: &Bus) -> Bus {
        let nets: Vec<NetId> = a
            .nets()
            .iter()
            .map(|&x| self.gate(CellKind::Buf, &[x]))
            .collect();
        Bus::from_nets(nets)
    }

    /// Per-bit 2:1 multiplexer: returns `a` when `sel = 0`, `b` when `sel = 1`.
    ///
    /// # Panics
    ///
    /// Panics if `sel` is not single-bit or `a`/`b` widths differ.
    pub fn mux(&mut self, sel: &Bus, a: &Bus, b: &Bus) -> Bus {
        assert_eq!(sel.width(), 1, "mux select must be a single bit");
        assert_eq!(
            a.width(),
            b.width(),
            "width mismatch in mux: {} vs {}",
            a.width(),
            b.width()
        );
        let s = sel.net(0);
        let nets: Vec<NetId> = a
            .nets()
            .iter()
            .zip(b.nets())
            .map(|(&x, &y)| self.gate(CellKind::Mux2, &[x, y, s]))
            .collect();
        Bus::from_nets(nets)
    }

    /// Replicate a single-bit bus `width` times.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is not single-bit.
    pub fn repeat(&mut self, bit: &Bus, width: usize) -> Bus {
        assert_eq!(bit.width(), 1, "repeat takes a single-bit bus");
        Bus::from_nets(vec![bit.net(0); width])
    }

    /// Zero-extend `a` to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width < a.width()`.
    pub fn zext(&mut self, a: &Bus, width: usize) -> Bus {
        assert!(width >= a.width(), "zext target narrower than source");
        if width == a.width() {
            return a.clone();
        }
        let zeros = self.lit(width - a.width(), 0);
        a.concat(&zeros)
    }

    // ------------------------------------------------------------------
    // Reductions, selection and arithmetic
    // ------------------------------------------------------------------

    fn reduce(&mut self, kind: CellKind, a: &Bus) -> Bus {
        let mut layer: Vec<NetId> = a.nets().to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    next.push(self.gate(kind, &[pair[0], pair[1]]));
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
        }
        Bus::single(layer[0])
    }

    /// AND of all bits.
    pub fn reduce_and(&mut self, a: &Bus) -> Bus {
        self.reduce(CellKind::And2, a)
    }

    /// OR of all bits.
    pub fn reduce_or(&mut self, a: &Bus) -> Bus {
        self.reduce(CellKind::Or2, a)
    }

    /// XOR of all bits (parity).
    pub fn reduce_xor(&mut self, a: &Bus) -> Bus {
        self.reduce(CellKind::Xor2, a)
    }

    /// `sel`-controlled selection among `options` (a binary mux tree).
    ///
    /// Selector values beyond `options.len() - 1` return the last option.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty, the widths differ, or
    /// `options.len() > 2^sel.width()`.
    pub fn select(&mut self, sel: &Bus, options: &[Bus]) -> Bus {
        assert!(!options.is_empty(), "select needs at least one option");
        let w = options[0].width();
        for o in options {
            assert_eq!(o.width(), w, "select options must share a width");
        }
        assert!(
            options.len() <= 1usize << sel.width(),
            "too many options ({}) for a {}-bit selector",
            options.len(),
            sel.width()
        );
        self.select_rec(sel, options, sel.width())
    }

    fn select_rec(&mut self, sel: &Bus, options: &[Bus], level: usize) -> Bus {
        if options.len() == 1 {
            return options[0].clone();
        }
        let bit = level - 1;
        let half = 1usize << bit;
        if options.len() <= half {
            return self.select_rec(sel, options, bit);
        }
        let low = self.select_rec(sel, &options[..half], bit);
        let high = self.select_rec(sel, &options[half..], bit);
        let s = sel.bit(bit);
        self.mux(&s, &low, &high)
    }

    /// One-hot decode: output bit `i` is 1 iff `sel == i`.
    pub fn decode(&mut self, sel: &Bus) -> Bus {
        let n = 1usize << sel.width();
        let inv: Vec<NetId> = sel
            .nets()
            .iter()
            .map(|&b| self.gate(CellKind::Not, &[b]))
            .collect();
        let nets: Vec<NetId> = (0..n)
            .map(|i| {
                let terms: Vec<NetId> = (0..sel.width())
                    .map(|bit| {
                        if (i >> bit) & 1 == 1 {
                            sel.net(bit)
                        } else {
                            inv[bit]
                        }
                    })
                    .collect();
                self.reduce(CellKind::And2, &Bus::from_nets(terms)).net(0)
            })
            .collect();
        Bus::from_nets(nets)
    }

    /// Ripple-carry addition; returns `(sum, carry_out)`.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn add(&mut self, a: &Bus, b: &Bus) -> (Bus, Bus) {
        assert_eq!(
            a.width(),
            b.width(),
            "width mismatch in add: {} vs {}",
            a.width(),
            b.width()
        );
        let mut carry = self.const0_net();
        let mut sum = Vec::with_capacity(a.width());
        for (&x, &y) in a.nets().iter().zip(b.nets()) {
            let xy = self.gate(CellKind::Xor2, &[x, y]);
            sum.push(self.gate(CellKind::Xor2, &[xy, carry]));
            let and1 = self.gate(CellKind::And2, &[x, y]);
            let and2 = self.gate(CellKind::And2, &[xy, carry]);
            carry = self.gate(CellKind::Or2, &[and1, and2]);
        }
        (Bus::from_nets(sum), Bus::single(carry))
    }

    /// `a + constant` (mod 2^width).
    pub fn add_const(&mut self, a: &Bus, k: u64) -> Bus {
        let b = self.lit(a.width(), k & mask(a.width()));
        self.add(a, &b).0
    }

    /// Increment by one (mod 2^width).
    pub fn inc(&mut self, a: &Bus) -> Bus {
        // Specialised half-adder chain: cheaper than add(a, 1).
        let mut carry = self.const1_net();
        let mut sum = Vec::with_capacity(a.width());
        for &x in a.nets() {
            sum.push(self.gate(CellKind::Xor2, &[x, carry]));
            carry = self.gate(CellKind::And2, &[x, carry]);
        }
        Bus::from_nets(sum)
    }

    /// Two's-complement subtraction `a - b`; returns `(difference, borrow)`.
    pub fn sub(&mut self, a: &Bus, b: &Bus) -> (Bus, Bus) {
        let nb = self.not(b);
        let one = self.lit(a.width(), 1);
        let (nb1, c0) = self.add(&nb, &one);
        let (diff, c1) = self.add(a, &nb1);
        let carry = self.gate(CellKind::Or2, &[c0.net(0), c1.net(0)]);
        let borrow = self.gate(CellKind::Not, &[carry]);
        (diff, Bus::single(borrow))
    }

    /// Equality comparison; returns a single-bit bus.
    pub fn eq(&mut self, a: &Bus, b: &Bus) -> Bus {
        let x = self.xnor(a, b);
        self.reduce_and(&x)
    }

    /// Equality against a constant; cheaper than [`NetlistBuilder::eq`]
    /// because 0-bits use inverters instead of tie cells.
    pub fn eq_const(&mut self, a: &Bus, value: u64) -> Bus {
        assert!(a.width() <= 64, "eq_const supports up to 64 bits");
        if a.width() < 64 {
            assert!(
                value < (1u64 << a.width()),
                "constant {value} does not fit in {} bits",
                a.width()
            );
        }
        let terms: Vec<NetId> = a
            .nets()
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                if (value >> i) & 1 == 1 {
                    n
                } else {
                    self.gate(CellKind::Not, &[n])
                }
            })
            .collect();
        self.reduce(CellKind::And2, &Bus::from_nets(terms))
    }

    /// Unsigned `a < b`; returns a single-bit bus.
    pub fn lt(&mut self, a: &Bus, b: &Bus) -> Bus {
        let (_, borrow) = self.sub(a, b);
        borrow
    }

    /// Logical shift left by a constant amount (zero fill).
    pub fn shl_const(&mut self, a: &Bus, amount: usize) -> Bus {
        if amount == 0 {
            return a.clone();
        }
        if amount >= a.width() {
            return self.lit(a.width(), 0);
        }
        let zeros = self.lit(amount, 0);
        zeros.concat(&a.slice(0..a.width() - amount))
    }

    /// Logical shift right by a constant amount (zero fill).
    pub fn shr_const(&mut self, a: &Bus, amount: usize) -> Bus {
        if amount == 0 {
            return a.clone();
        }
        if amount >= a.width() {
            return self.lit(a.width(), 0);
        }
        let high = self.lit(amount, 0);
        a.slice(amount..a.width()).concat(&high)
    }

    // ------------------------------------------------------------------
    // Registers
    // ------------------------------------------------------------------

    /// Declare a `width`-bit register with power-on value 0.
    pub fn reg(&mut self, name: &str, width: usize) -> RegHandle {
        self.reg_init(name, width, 0)
    }

    /// Declare a `width`-bit register with the given power-on value.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64, the register name is
    /// duplicated, or `init` does not fit.
    pub fn reg_init(&mut self, name: &str, width: usize, init: u64) -> RegHandle {
        assert!(
            width > 0 && width <= 64,
            "register width {width} out of range"
        );
        if width < 64 {
            assert!(
                init < (1u64 << width),
                "init value {init} does not fit in {width} bits"
            );
        }
        assert!(
            !self.regs.iter().any(|r| r.name == name),
            "duplicate register name `{name}`"
        );
        let nets: Vec<NetId> = (0..width)
            .map(|i| {
                let bit_name = if width == 1 {
                    format!("{name}_q")
                } else {
                    format!("{name}_q[{i}]")
                };
                self.new_net(Some(bit_name))
            })
            .collect();
        let q = Bus::from_nets(nets);
        let index = self.regs.len();
        self.regs.push(RegInfo {
            name: name.to_string(),
            q: q.clone(),
            d: None,
            init,
        });
        RegHandle { index, q }
    }

    /// Attach the data input of a register.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::RegisterAlreadyConnected`] if called twice for
    /// the same register.
    ///
    /// # Panics
    ///
    /// Panics if `d` has a different width than the register.
    pub fn connect(&mut self, reg: &RegHandle, d: &Bus) -> Result<(), NetlistError> {
        let info = &mut self.regs[reg.index];
        assert_eq!(
            d.width(),
            info.q.width(),
            "register `{}` width {} driven with {} bits",
            info.name,
            info.q.width(),
            d.width()
        );
        if info.d.is_some() {
            return Err(NetlistError::RegisterAlreadyConnected {
                name: info.name.clone(),
            });
        }
        info.d = Some(d.clone());
        Ok(())
    }

    /// Attach the data input with a clock-enable: the register keeps its
    /// value when `en = 0` and loads `d` when `en = 1`.
    ///
    /// # Errors
    ///
    /// Same as [`NetlistBuilder::connect`].
    pub fn connect_en(&mut self, reg: &RegHandle, en: &Bus, d: &Bus) -> Result<(), NetlistError> {
        let gated = self.mux(en, &reg.q(), d);
        self.connect(reg, &gated)
    }

    /// Attach the data input with optional clock-enable and synchronous
    /// reset (reset has priority and loads `reset_value`).
    ///
    /// # Errors
    ///
    /// Same as [`NetlistBuilder::connect`].
    pub fn connect_en_rst(
        &mut self,
        reg: &RegHandle,
        en: Option<&Bus>,
        rst: Option<(&Bus, u64)>,
        d: &Bus,
    ) -> Result<(), NetlistError> {
        let mut next = match en {
            Some(en) => self.mux(en, &reg.q(), d),
            None => d.clone(),
        };
        if let Some((rst, value)) = rst {
            let rv = self.lit(reg.width(), value & mask(reg.width()));
            next = self.mux(rst, &next, &rv);
        }
        self.connect(reg, &next)
    }

    // ------------------------------------------------------------------
    // Finalisation
    // ------------------------------------------------------------------

    /// Materialise flip-flops, assign drive strengths from fanout, build
    /// connectivity indices and validate the result.
    ///
    /// # Errors
    ///
    /// Returns an error if any register was never connected, or validation
    /// fails (undriven nets, duplicate names).
    pub fn finish(mut self) -> Result<Netlist, NetlistError> {
        // Materialise one DFF cell per register bit, in declaration order.
        let mut ffs = Vec::new();
        let mut ff_init = Vec::new();
        let mut buses = Vec::new();
        let regs = std::mem::take(&mut self.regs);
        for info in &regs {
            let d = info
                .d
                .as_ref()
                .ok_or_else(|| NetlistError::RegisterUnconnected {
                    name: info.name.clone(),
                })?;
            let mut members = Vec::with_capacity(info.q.width());
            for i in 0..info.q.width() {
                let cell_id = CellId::from_index(self.cells.len());
                self.cells.push(Cell {
                    name: format!("{}_reg[{i}]", info.name),
                    kind: CellKind::Dff,
                    drive: DriveStrength::X1,
                    inputs: vec![d.net(i)],
                    output: info.q.net(i),
                });
                members.push(FfId::from_index(ffs.len()));
                ffs.push(cell_id);
                ff_init.push((info.init >> i) & 1 == 1);
            }
            if info.q.width() > 1 {
                buses.push(BusInfo {
                    name: info.name.clone(),
                    ffs: members,
                });
            }
        }

        // Connectivity indices.
        let mut driver: Vec<Option<CellId>> = vec![None; self.nets.len()];
        let mut readers: Vec<Vec<CellId>> = vec![Vec::new(); self.nets.len()];
        for (i, cell) in self.cells.iter().enumerate() {
            let id = CellId::from_index(i);
            driver[cell.output.index()] = Some(id);
            for &inp in &cell.inputs {
                readers[inp.index()].push(id);
            }
        }

        // Drive-strength assignment from fanout, as a synthesis tool would.
        for cell in &mut self.cells {
            let fanout = readers[cell.output.index()].len();
            cell.drive = DriveStrength::for_fanout(fanout);
        }

        let netlist = Netlist {
            name: self.name,
            nets: self.nets,
            cells: self.cells,
            inputs: self.inputs,
            outputs: self.outputs,
            ffs,
            ff_init,
            buses,
            driver,
            readers,
        };
        netlist.validate()?;
        Ok(netlist)
    }
}

fn mask(width: usize) -> u64 {
    if width >= 64 {
        !0
    } else {
        (1u64 << width) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_compiles() {
        let mut b = NetlistBuilder::new("cnt");
        let en = b.input("en", 1);
        let c = b.reg("count", 4);
        let next = b.inc(&c.q());
        b.connect_en(&c, &en, &next).unwrap();
        b.output("value", &c.q());
        let n = b.finish().unwrap();
        assert_eq!(n.num_ffs(), 4);
        assert_eq!(n.buses().len(), 1);
        assert_eq!(n.primary_outputs().len(), 4);
    }

    #[test]
    fn double_connect_is_error() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a", 2);
        let r = b.reg("r", 2);
        b.connect(&r, &a).unwrap();
        let err = b.connect(&r, &a).unwrap_err();
        assert!(matches!(err, NetlistError::RegisterAlreadyConnected { .. }));
    }

    #[test]
    fn unconnected_register_is_error() {
        let mut b = NetlistBuilder::new("m");
        let _a = b.input("a", 1);
        let r = b.reg("r", 1);
        b.output("o", &r.q());
        let err = b.finish().unwrap_err();
        assert!(matches!(err, NetlistError::RegisterUnconnected { .. }));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a", 2);
        let c = b.input("c", 3);
        let _ = b.and(&a, &c);
    }

    #[test]
    #[should_panic(expected = "duplicate port name")]
    fn duplicate_port_panics() {
        let mut b = NetlistBuilder::new("m");
        let _ = b.input("a", 1);
        let _ = b.input("a", 2);
    }

    #[test]
    fn literal_shares_tie_cells() {
        let mut b = NetlistBuilder::new("m");
        let x = b.lit(4, 0b1010);
        let y = b.lit(4, 0b0101);
        // Only two tie cells despite 8 constant bits.
        assert_eq!(b.num_cells(), 2);
        assert_eq!(x.net(1), y.net(0));
        assert_eq!(x.net(0), y.net(1));
    }

    #[test]
    fn decode_is_one_hot_shaped() {
        let mut b = NetlistBuilder::new("m");
        let s = b.input("s", 2);
        let d = b.decode(&s);
        assert_eq!(d.width(), 4);
    }

    #[test]
    fn select_handles_non_power_of_two() {
        let mut b = NetlistBuilder::new("m");
        let s = b.input("s", 2);
        let opts: Vec<Bus> = (0..3).map(|i| b.lit(4, i)).collect();
        let out = b.select(&s, &opts);
        assert_eq!(out.width(), 4);
    }

    #[test]
    fn shifts_preserve_width() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a", 8);
        assert_eq!(b.shl_const(&a, 3).width(), 8);
        assert_eq!(b.shr_const(&a, 3).width(), 8);
        assert_eq!(b.shl_const(&a, 0).width(), 8);
        assert_eq!(b.shl_const(&a, 99).width(), 8);
    }

    #[test]
    fn drive_strength_assigned_by_fanout() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a", 1);
        // One inverter read by many gates.
        let inv = b.not(&a);
        for _ in 0..10 {
            let _ = b.and(&inv, &a);
        }
        let r = b.reg("r", 1);
        b.connect(&r, &inv).unwrap();
        b.output("o", &r.q());
        let n = b.finish().unwrap();
        let inv_cell = n
            .cells()
            .find(|(_, c)| c.kind() == CellKind::Not)
            .map(|(_, c)| c.drive())
            .unwrap();
        assert_eq!(inv_cell, DriveStrength::X4);
    }

    #[test]
    fn init_value_recorded() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a", 3);
        let r = b.reg_init("r", 3, 0b101);
        b.connect(&r, &a).unwrap();
        b.output("o", &r.q());
        let n = b.finish().unwrap();
        assert!(n.ff_init(FfId::from_index(0)));
        assert!(!n.ff_init(FfId::from_index(1)));
        assert!(n.ff_init(FfId::from_index(2)));
    }
}
