//! The paper's 25-column flip-flop feature schema and its extraction.

use crate::graph::FfGraph;
use crate::matrix::FeatureMatrix;
use ffr_netlist::FfId;
use ffr_sim::{ActivityTrace, CompiledCircuit};

/// Version of the extracted feature schema (column set *and* the
/// semantics of each column). Any change to [`FEATURE_NAMES`] or to how a
/// column is computed must bump this: cached feature matrices in the
/// campaign artifact store are keyed by `(circuit hash, stimulus config,
/// schema version)`, so a bump cleanly invalidates stale caches instead of
/// silently feeding old columns to the models.
pub const SCHEMA_VERSION: u32 = 1;

/// The cache-key fragment describing this extractor: schema version plus
/// column count. Campaign store keys embed it so a schema change misses.
pub fn schema_desc() -> String {
    format!(
        "features_schema={SCHEMA_VERSION};cols={}",
        FEATURE_NAMES.len()
    )
}

/// Names of the feature columns, in matrix order.
///
/// Columns 0–17 are *structural*, 18–21 are *synthesis*, 22–24 are
/// *dynamic* — exactly the three source groups of §III-B.
pub const FEATURE_NAMES: [&str; 25] = [
    "ff_fan_in",
    "ff_fan_out",
    "total_ffs_from",
    "total_ffs_to",
    "conn_from_pi",
    "conn_to_po",
    "prox_from_pi_min",
    "prox_from_pi_avg",
    "prox_from_pi_max",
    "prox_to_po_min",
    "prox_to_po_avg",
    "prox_to_po_max",
    "part_of_bus",
    "bus_position",
    "bus_length",
    "const_drivers",
    "has_feedback",
    "feedback_depth",
    "drive_strength",
    "comb_fan_in",
    "comb_fan_out",
    "comb_path_depth",
    "at0",
    "at1",
    "state_changes",
];

/// The three feature-source groups of the paper, for ablation experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FeatureGroup {
    /// Circuit-structure features (graph analysis of the netlist).
    Structural,
    /// Synthesis attributes (drive strength, cones, path depth).
    Synthesis,
    /// Signal-activity features from the golden simulation.
    Dynamic,
}

impl FeatureGroup {
    /// Column range of the group within [`FEATURE_NAMES`].
    pub fn columns(self) -> std::ops::Range<usize> {
        match self {
            FeatureGroup::Structural => 0..18,
            FeatureGroup::Synthesis => 18..22,
            FeatureGroup::Dynamic => 22..25,
        }
    }

    /// All groups.
    pub const ALL: [FeatureGroup; 3] = [
        FeatureGroup::Structural,
        FeatureGroup::Synthesis,
        FeatureGroup::Dynamic,
    ];
}

/// Extract the full 25-column feature matrix (structural + synthesis +
/// dynamic) for every flip-flop.
///
/// `activity` must come from the golden run of the same compiled circuit.
///
/// # Panics
///
/// Panics if `activity` covers a different number of flip-flops than the
/// circuit.
pub fn extract_features(cc: &CompiledCircuit, activity: &ActivityTrace) -> FeatureMatrix {
    assert_eq!(
        activity.num_ffs(),
        cc.num_ffs(),
        "activity trace does not match the circuit"
    );
    let mut m = extract_structural(cc);
    for i in 0..cc.num_ffs() {
        let ff = FfId::from_index(i);
        m.set(i, 22, activity.at0(ff));
        m.set(i, 23, activity.at1(ff));
        m.set(i, 24, activity.state_changes(ff) as f64);
    }
    m
}

/// Extract the structural and synthesis columns only (dynamic columns are
/// zero). Useful when no testbench is available.
pub fn extract_structural(cc: &CompiledCircuit) -> FeatureMatrix {
    let netlist = cc.netlist();
    let graph = FfGraph::build(netlist);
    let n = netlist.num_ffs();
    let (num_pis, num_pos) = graph.num_ios();

    // Stage distances from every PI / to every PO (BFS each).
    let pi_dists: Vec<Vec<u32>> = (0..num_pis).map(|p| graph.distances_from_pi(p)).collect();
    let po_dists: Vec<Vec<u32>> = (0..num_pos).map(|o| graph.distances_to_po(o)).collect();

    // Longest combinational path from each net (for comb_path_depth).
    let depth_from = longest_comb_path_from(cc);

    let ff_names: Vec<String> = netlist
        .ffs()
        .map(|(ff, _)| netlist.ff_name(ff).to_string())
        .collect();
    let mut m = FeatureMatrix::zeros(
        ff_names,
        FEATURE_NAMES.iter().map(|s| s.to_string()).collect(),
    );

    for i in 0..n {
        let ff = FfId::from_index(i);
        let in_cone = graph.input_cone(ff);
        let out_cone = graph.output_cone(ff);

        m.set(i, 0, in_cone.source_ffs.len() as f64);
        m.set(i, 1, out_cone.sink_ffs.len() as f64);
        m.set(i, 2, graph.total_ffs_from(ff) as f64);
        m.set(i, 3, graph.total_ffs_to(ff) as f64);

        // PI connectivity & proximity.
        let mut pi_stages: Vec<u32> = Vec::new();
        for dists in pi_dists.iter() {
            let d = dists[i];
            if d != u32::MAX {
                pi_stages.push(d);
            }
        }
        m.set(i, 4, pi_stages.len() as f64);
        let (mn, avg, mx) = min_avg_max(&pi_stages);
        m.set(i, 6, mn);
        m.set(i, 7, avg);
        m.set(i, 8, mx);

        // PO connectivity & proximity.
        let mut po_stages: Vec<u32> = Vec::new();
        for dists in po_dists.iter() {
            let d = dists[i];
            if d != u32::MAX {
                po_stages.push(d);
            }
        }
        m.set(i, 5, po_stages.len() as f64);
        let (mn, avg, mx) = min_avg_max(&po_stages);
        m.set(i, 9, mn);
        m.set(i, 10, avg);
        m.set(i, 11, mx);

        // Bus membership.
        match netlist.bus_of_ff(ff) {
            Some((bus_idx, pos)) => {
                m.set(i, 12, 1.0);
                m.set(i, 13, pos as f64);
                m.set(i, 14, netlist.buses()[bus_idx].len() as f64);
            }
            None => {
                m.set(i, 12, 0.0);
                m.set(i, 13, -1.0);
                m.set(i, 14, 0.0);
            }
        }

        m.set(i, 15, in_cone.const_drivers as f64);

        match graph.feedback_depth(ff) {
            Some(d) => {
                m.set(i, 16, 1.0);
                m.set(i, 17, d as f64);
            }
            None => {
                m.set(i, 16, 0.0);
                m.set(i, 17, -1.0);
            }
        }

        // Synthesis features.
        let cell = netlist.ff_cell(ff);
        m.set(i, 18, cell.drive().multiplier() as f64);
        m.set(i, 19, in_cone.comb_cells as f64);
        m.set(i, 20, out_cone.comb_cells as f64);
        m.set(i, 21, depth_from[netlist.ff_q_net(ff).index()] as f64);
    }
    m
}

fn min_avg_max(values: &[u32]) -> (f64, f64, f64) {
    if values.is_empty() {
        // Unconnected: mirror the paper's "-1 when absent" convention.
        return (-1.0, -1.0, -1.0);
    }
    let mn = *values.iter().min().expect("non-empty") as f64;
    let mx = *values.iter().max().expect("non-empty") as f64;
    let avg = values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64;
    (mn, avg, mx)
}

/// For every net, the length (in gates) of the longest purely
/// combinational path starting at that net.
fn longest_comb_path_from(cc: &CompiledCircuit) -> Vec<u32> {
    let netlist = cc.netlist();
    // Process compiled ops in reverse topological order: the ops are in
    // forward topological order, so one reverse sweep suffices.
    let mut depth = vec![0u32; netlist.num_nets()];
    for (_, cell) in netlist
        .cells()
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .filter(|(_, c)| !c.kind().is_sequential())
    {
        let out_depth = depth[cell.output().index()];
        for &inp in cell.inputs() {
            let candidate = out_depth + 1;
            if candidate > depth[inp.index()] {
                depth[inp.index()] = candidate;
            }
        }
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffr_circuits::small;
    use ffr_netlist::NetlistBuilder;
    use ffr_sim::{run_testbench, InputFrame, Stimulus, WatchList};

    struct En;

    impl Stimulus for En {
        fn num_cycles(&self) -> u64 {
            64
        }

        fn drive(&self, _c: u64, f: &mut InputFrame) {
            f.set(0, true);
        }
    }

    #[test]
    fn schema_is_consistent() {
        assert_eq!(FEATURE_NAMES.len(), 25);
        let mut covered = vec![false; FEATURE_NAMES.len()];
        for g in FeatureGroup::ALL {
            for c in g.columns() {
                assert!(!covered[c], "column {c} in two groups");
                covered[c] = true;
            }
        }
        assert!(covered.iter().all(|&b| b), "all columns grouped");
    }

    #[test]
    fn counter_features_make_sense() {
        let cc = ffr_sim::CompiledCircuit::compile(small::counter_circuit(4)).unwrap();
        let run = run_testbench(&cc, &En, &WatchList::all(&cc));
        let m = extract_features(&cc, &run.activity);
        assert_eq!(m.num_rows(), 4);
        assert_eq!(m.num_cols(), 25);

        let col = |name: &str| m.column_index(name).unwrap();
        for i in 0..4 {
            // A counter bit feeds back onto itself through the increment.
            assert_eq!(m.get(i, col("has_feedback")), 1.0, "bit {i}");
            assert_eq!(m.get(i, col("feedback_depth")), 1.0, "bit {i}");
            // All bits belong to the 4-bit `count` bus.
            assert_eq!(m.get(i, col("part_of_bus")), 1.0);
            assert_eq!(m.get(i, col("bus_length")), 4.0);
            assert_eq!(m.get(i, col("bus_position")), i as f64);
            // Enabled counter: all bits connected to the single PI at
            // 1 stage (the enable mux is combinational).
            assert_eq!(m.get(i, col("conn_from_pi")), 1.0);
            assert_eq!(m.get(i, col("prox_from_pi_min")), 1.0);
        }
        // Bit 0 toggles every enabled cycle: most state changes.
        let sc0 = m.get(0, col("state_changes"));
        let sc3 = m.get(3, col("state_changes"));
        assert!(sc0 > sc3, "LSB toggles more than MSB: {sc0} vs {sc3}");
        // Duty cycles sum to 1.
        for i in 0..4 {
            let s = m.get(i, col("at0")) + m.get(i, col("at1"));
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn fan_in_fan_out_on_pipeline() {
        let cc = ffr_sim::CompiledCircuit::compile(small::lfsr_pipeline(8, 2)).unwrap();
        let m = extract_structural(&cc);
        let nl = cc.netlist();
        let col = |name: &str| m.column_index(name).unwrap();
        // A middle pipeline stage bit: fan-in 2 (previous stage bit plus
        // itself through the clock-enable hold mux), fan-out 2 (next stage
        // bit plus its own hold mux).
        let ff = nl.find_ff("pipe_s0_reg[3]").unwrap();
        assert_eq!(m.get(ff.index(), col("ff_fan_in")), 2.0);
        assert_eq!(m.get(ff.index(), col("ff_fan_out")), 2.0);
        // LFSR bits influence the whole pipeline downstream.
        let lfsr_ff = nl.find_ff("src_reg[0]").unwrap();
        assert!(m.get(lfsr_ff.index(), col("total_ffs_to")) >= 16.0);
    }

    #[test]
    fn structural_only_leaves_dynamic_zero() {
        let cc = ffr_sim::CompiledCircuit::compile(small::counter_circuit(3)).unwrap();
        let m = extract_structural(&cc);
        let col = |name: &str| m.column_index(name).unwrap();
        for i in 0..3 {
            assert_eq!(m.get(i, col("at0")), 0.0);
            assert_eq!(m.get(i, col("at1")), 0.0);
            assert_eq!(m.get(i, col("state_changes")), 0.0);
        }
    }

    #[test]
    fn comb_path_depth_reflects_logic_depth() {
        // A register feeding a deep ripple adder has a deep output path;
        // one feeding only an output buffer has depth 1.
        let mut b = NetlistBuilder::new("depth");
        let a = b.input("a", 8);
        let deep = b.reg("deep", 8);
        let shallow = b.reg("shallow", 8);
        b.connect(&deep, &a).unwrap();
        b.connect(&shallow, &a).unwrap();
        let (sum, _) = b.add(&deep.q(), &a);
        b.output("sum", &sum);
        b.output("flat", &shallow.q());
        let n = b.finish().unwrap();
        let cc = ffr_sim::CompiledCircuit::compile(n).unwrap();
        let m = extract_structural(&cc);
        let col = m.column_index("comb_path_depth").unwrap();
        let deep0 = cc.netlist().find_ff("deep_reg[0]").unwrap();
        let shallow0 = cc.netlist().find_ff("shallow_reg[0]").unwrap();
        assert!(
            m.get(deep0.index(), col) > m.get(shallow0.index(), col),
            "adder path deeper than buffer path"
        );
        assert_eq!(m.get(shallow0.index(), col), 1.0, "buffer only");
    }

    #[test]
    fn mac_features_extract_without_panic() {
        use ffr_circuits::{Mac10geConfig, MacTestbench, TrafficConfig};
        let (cc, tb, watch, _) =
            MacTestbench::setup(Mac10geConfig::small(), &TrafficConfig::small());
        let run = run_testbench(&cc, &tb, &watch);
        let m = extract_features(&cc, &run.activity);
        assert_eq!(m.num_rows(), cc.num_ffs());
        // FIFO memory rows are wide buses.
        let col = m.column_index("bus_length").unwrap();
        let ff = cc.netlist().find_ff("tx_fifo_mem0_reg[0]").unwrap();
        assert_eq!(m.get(ff.index(), col), 18.0, "W+2 bits per TX FIFO row");
    }
}
