//! Flip-flop-level graph analysis of a gate-level netlist.
//!
//! The netlist is condensed into a directed graph whose nodes are
//! flip-flops, primary inputs and primary outputs, with an edge whenever a
//! purely combinational path connects them. All of the paper's structural
//! features are computed on this condensation.

use ffr_netlist::{FfId, NetId, Netlist};
use std::collections::VecDeque;

/// Result of tracing one flip-flop's combinational input cone.
#[derive(Debug, Clone, Default)]
pub struct InputCone {
    /// Distinct source flip-flops feeding the cone.
    pub source_ffs: Vec<FfId>,
    /// Distinct primary inputs feeding the cone.
    pub source_pis: Vec<usize>,
    /// Number of constant (tie) cells in the cone.
    pub const_drivers: usize,
    /// Number of combinational cells in the cone.
    pub comb_cells: usize,
}

/// Result of tracing one flip-flop's combinational output cone.
#[derive(Debug, Clone, Default)]
pub struct OutputCone {
    /// Distinct flip-flops whose data input the cone reaches.
    pub sink_ffs: Vec<FfId>,
    /// Distinct primary outputs (port indices) the cone reaches.
    pub sink_pos: Vec<usize>,
    /// Number of combinational cells driven by the cone.
    pub comb_cells: usize,
}

/// The flip-flop-level condensation of a netlist.
#[derive(Debug, Clone)]
pub struct FfGraph {
    num_ffs: usize,
    /// `fwd[i]` = flip-flops reachable from FF `i` through combinational
    /// logic only (one sequential stage).
    fwd: Vec<Vec<u32>>,
    /// Reverse adjacency of `fwd`.
    bwd: Vec<Vec<u32>>,
    /// `pi_adj[p]` = flip-flops whose input cone directly contains PI `p`.
    pi_adj: Vec<Vec<u32>>,
    /// `po_adj[o]` = flip-flops whose output cone directly reaches PO `o`.
    po_adj: Vec<Vec<u32>>,
    /// Per-FF input-cone summaries.
    input_cones: Vec<InputCone>,
    /// Per-FF output-cone summaries.
    output_cones: Vec<OutputCone>,
    /// POs directly reachable from primary inputs without crossing any
    /// flip-flop (needed for completeness; unused by the feature set).
    num_pis: usize,
    num_pos: usize,
}

impl FfGraph {
    /// Build the condensation of `netlist`.
    pub fn build(netlist: &Netlist) -> FfGraph {
        let num_ffs = netlist.num_ffs();
        let num_pis = netlist.primary_inputs().len();
        let num_pos = netlist.primary_outputs().len();

        // Map each net to the PO indices it drives (a net can drive at
        // most one PO port bit in builder-produced netlists, but the
        // parser admits sharing).
        let mut po_of_net: Vec<Vec<u32>> = vec![Vec::new(); netlist.num_nets()];
        for (o, (_, net)) in netlist.primary_outputs().iter().enumerate() {
            po_of_net[net.index()].push(o as u32);
        }
        let mut pi_of_net: Vec<Option<u32>> = vec![None; netlist.num_nets()];
        for (p, &net) in netlist.primary_inputs().iter().enumerate() {
            pi_of_net[net.index()] = Some(p as u32);
        }

        let mut input_cones = Vec::with_capacity(num_ffs);
        let mut output_cones = Vec::with_capacity(num_ffs);
        let mut fwd: Vec<Vec<u32>> = vec![Vec::new(); num_ffs];
        let mut bwd: Vec<Vec<u32>> = vec![Vec::new(); num_ffs];
        let mut pi_adj: Vec<Vec<u32>> = vec![Vec::new(); num_pis];
        let mut po_adj: Vec<Vec<u32>> = vec![Vec::new(); num_pos];

        let mut cell_seen = vec![u32::MAX; netlist.num_cells()];
        for (ff, _) in netlist.ffs() {
            let cone = trace_input_cone(netlist, ff, &mut cell_seen, &pi_of_net);
            for &src in &cone.source_ffs {
                fwd[src.index()].push(ff.index() as u32);
                bwd[ff.index()].push(src.index() as u32);
            }
            for &p in &cone.source_pis {
                pi_adj[p].push(ff.index() as u32);
            }
            input_cones.push(cone);
        }
        let mut cell_seen_out = vec![u32::MAX; netlist.num_cells()];
        for (ff, _) in netlist.ffs() {
            let cone = trace_output_cone(netlist, ff, &mut cell_seen_out, &po_of_net);
            for &o in &cone.sink_pos {
                po_adj[o].push(ff.index() as u32);
            }
            output_cones.push(cone);
        }

        FfGraph {
            num_ffs,
            fwd,
            bwd,
            pi_adj,
            po_adj,
            input_cones,
            output_cones,
            num_pis,
            num_pos,
        }
    }

    /// Number of flip-flops.
    pub fn num_ffs(&self) -> usize {
        self.num_ffs
    }

    /// Number of primary inputs / outputs.
    pub fn num_ios(&self) -> (usize, usize) {
        (self.num_pis, self.num_pos)
    }

    /// Input-cone summary of a flip-flop.
    pub fn input_cone(&self, ff: FfId) -> &InputCone {
        &self.input_cones[ff.index()]
    }

    /// Output-cone summary of a flip-flop.
    pub fn output_cone(&self, ff: FfId) -> &OutputCone {
        &self.output_cones[ff.index()]
    }

    /// Direct successors (one sequential stage ahead).
    pub fn successors(&self, ff: FfId) -> &[u32] {
        &self.fwd[ff.index()]
    }

    /// Direct predecessors (one sequential stage back).
    pub fn predecessors(&self, ff: FfId) -> &[u32] {
        &self.bwd[ff.index()]
    }

    /// Number of distinct flip-flops transitively influencing `ff`
    /// (the paper's *Total Flip-Flops from FFi*).
    pub fn total_ffs_from(&self, ff: FfId) -> usize {
        self.reach_count(ff, &self.bwd)
    }

    /// Number of distinct flip-flops transitively influenced by `ff`
    /// (the paper's *Total Flip-Flops to FFi*).
    pub fn total_ffs_to(&self, ff: FfId) -> usize {
        self.reach_count(ff, &self.fwd)
    }

    fn reach_count(&self, start: FfId, adj: &[Vec<u32>]) -> usize {
        let mut seen = vec![false; self.num_ffs];
        let mut queue = VecDeque::new();
        queue.push_back(start.index() as u32);
        let mut count = 0usize;
        // The start node is only counted if re-reached through a cycle.
        let mut start_counted = false;
        seen[start.index()] = true;
        while let Some(n) = queue.pop_front() {
            for &m in &adj[n as usize] {
                if m as usize == start.index() && !start_counted {
                    start_counted = true;
                    count += 1;
                }
                if !seen[m as usize] {
                    seen[m as usize] = true;
                    count += 1;
                    queue.push_back(m);
                }
            }
        }
        count
    }

    /// Length (in sequential stages) of the shortest feedback loop through
    /// `ff`, or `None` if its output never influences its own input.
    /// A length of 1 means Q feeds back to D through combinational logic
    /// alone.
    pub fn feedback_depth(&self, ff: FfId) -> Option<usize> {
        // BFS from ff over fwd; first time we return to ff gives the
        // shortest cycle length.
        let mut dist = vec![u32::MAX; self.num_ffs];
        let mut queue = VecDeque::new();
        let s = ff.index() as u32;
        for &m in &self.fwd[ff.index()] {
            if m == s {
                return Some(1);
            }
            if dist[m as usize] == u32::MAX {
                dist[m as usize] = 1;
                queue.push_back(m);
            }
        }
        while let Some(n) = queue.pop_front() {
            let d = dist[n as usize];
            for &m in &self.fwd[n as usize] {
                if m == s {
                    return Some(d as usize + 1);
                }
                if dist[m as usize] == u32::MAX {
                    dist[m as usize] = d + 1;
                    queue.push_back(m);
                }
            }
        }
        None
    }

    /// Per-FF distance (in stages) from primary input `pi`: a flip-flop
    /// whose input cone contains the PI has distance 1; each further
    /// flip-flop crossing adds 1. `u32::MAX` = unreachable.
    pub fn distances_from_pi(&self, pi: usize) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.num_ffs];
        let mut queue = VecDeque::new();
        for &f in &self.pi_adj[pi] {
            if dist[f as usize] == u32::MAX {
                dist[f as usize] = 1;
                queue.push_back(f);
            }
        }
        self.bfs(&mut dist, &mut queue, &self.fwd);
        dist
    }

    /// Per-FF distance (in stages) to primary output `po`: a flip-flop
    /// whose output cone reaches the PO has distance 1.
    pub fn distances_to_po(&self, po: usize) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.num_ffs];
        let mut queue = VecDeque::new();
        for &f in &self.po_adj[po] {
            if dist[f as usize] == u32::MAX {
                dist[f as usize] = 1;
                queue.push_back(f);
            }
        }
        self.bfs(&mut dist, &mut queue, &self.bwd);
        dist
    }

    fn bfs(&self, dist: &mut [u32], queue: &mut VecDeque<u32>, adj: &[Vec<u32>]) {
        while let Some(n) = queue.pop_front() {
            let d = dist[n as usize];
            for &m in &adj[n as usize] {
                if dist[m as usize] == u32::MAX {
                    dist[m as usize] = d + 1;
                    queue.push_back(m);
                }
            }
        }
    }
}

/// Walk backwards from a flip-flop's D input through combinational cells.
fn trace_input_cone(
    netlist: &Netlist,
    ff: FfId,
    cell_seen: &mut [u32],
    pi_of_net: &[Option<u32>],
) -> InputCone {
    let marker = ff.index() as u32;
    let mut cone = InputCone::default();
    let mut ff_seen = vec![false; netlist.num_ffs()];
    let mut pi_seen = vec![false; pi_of_net.len().max(1)];
    let mut stack: Vec<NetId> = vec![netlist.ff_d_net(ff)];
    let mut net_done: Vec<bool> = vec![false; netlist.num_nets()];
    while let Some(net) = stack.pop() {
        if net_done[net.index()] {
            continue;
        }
        net_done[net.index()] = true;
        if let Some(p) = pi_of_net[net.index()] {
            if !pi_seen[p as usize] {
                pi_seen[p as usize] = true;
                cone.source_pis.push(p as usize);
            }
            continue;
        }
        let Some(driver) = netlist.driver(net) else {
            continue;
        };
        let cell = netlist.cell(driver);
        if cell.kind().is_sequential() {
            let src = netlist.ff_of_cell(driver).expect("dff has FfId");
            if !ff_seen[src.index()] {
                ff_seen[src.index()] = true;
                cone.source_ffs.push(src);
            }
            continue;
        }
        if cell_seen[driver.index()] != marker {
            cell_seen[driver.index()] = marker;
            if cell.kind().is_constant() {
                cone.const_drivers += 1;
            } else {
                cone.comb_cells += 1;
            }
            for &inp in cell.inputs() {
                stack.push(inp);
            }
        }
    }
    cone.source_ffs.sort_unstable();
    cone.source_pis.sort_unstable();
    cone
}

/// Walk forwards from a flip-flop's Q output through combinational cells.
fn trace_output_cone(
    netlist: &Netlist,
    ff: FfId,
    cell_seen: &mut [u32],
    po_of_net: &[Vec<u32>],
) -> OutputCone {
    let marker = ff.index() as u32;
    let mut cone = OutputCone::default();
    let mut ff_seen = vec![false; netlist.num_ffs()];
    let mut po_flags = vec![false; netlist.primary_outputs().len().max(1)];
    let mut stack: Vec<NetId> = vec![netlist.ff_q_net(ff)];
    let mut net_done: Vec<bool> = vec![false; netlist.num_nets()];
    while let Some(net) = stack.pop() {
        if net_done[net.index()] {
            continue;
        }
        net_done[net.index()] = true;
        for &o in &po_of_net[net.index()] {
            if !po_flags[o as usize] {
                po_flags[o as usize] = true;
                cone.sink_pos.push(o as usize);
            }
        }
        for &reader in netlist.readers(net) {
            let cell = netlist.cell(reader);
            if cell.kind().is_sequential() {
                let dst = netlist.ff_of_cell(reader).expect("dff has FfId");
                if !ff_seen[dst.index()] {
                    ff_seen[dst.index()] = true;
                    cone.sink_ffs.push(dst);
                }
                continue;
            }
            if cell_seen[reader.index()] != marker {
                cell_seen[reader.index()] = marker;
                cone.comb_cells += 1;
                stack.push(cell.output());
            }
        }
    }
    cone.sink_ffs.sort_unstable();
    cone.sink_pos.sort_unstable();
    cone
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffr_netlist::NetlistBuilder;

    /// a -> r0 -> r1 -> r2 -> out, with r2 feeding back into r1.
    fn chain_with_loop() -> Netlist {
        let mut b = NetlistBuilder::new("chain");
        let a = b.input("a", 1);
        let r0 = b.reg("r0", 1);
        b.connect(&r0, &a).unwrap();
        let r1 = b.reg("r1", 1);
        let r2 = b.reg("r2", 1);
        let fb = b.xor(&r0.q(), &r2.q());
        b.connect(&r1, &fb).unwrap();
        b.connect(&r2, &r1.q()).unwrap();
        b.output("out", &r2.q());
        b.finish().unwrap()
    }

    #[test]
    fn cones_and_adjacency() {
        let n = chain_with_loop();
        let g = FfGraph::build(&n);
        let r0 = n.find_ff("r0_reg[0]").unwrap();
        let r1 = n.find_ff("r1_reg[0]").unwrap();
        let r2 = n.find_ff("r2_reg[0]").unwrap();

        assert_eq!(g.input_cone(r0).source_ffs, vec![]);
        assert_eq!(g.input_cone(r0).source_pis, vec![0]);
        let mut r1_src = g.input_cone(r1).source_ffs.clone();
        r1_src.sort_unstable();
        assert_eq!(r1_src, vec![r0, r2]);
        assert_eq!(g.input_cone(r1).comb_cells, 1, "one xor");
        assert_eq!(g.output_cone(r2).sink_ffs, vec![r1]);
        // r2 drives the output port through its buffer.
        assert_eq!(g.output_cone(r2).sink_pos, vec![0]);
        assert_eq!(g.successors(r0), &[r1.index() as u32]);
    }

    #[test]
    fn transitive_reachability() {
        let n = chain_with_loop();
        let g = FfGraph::build(&n);
        let r0 = n.find_ff("r0_reg[0]").unwrap();
        let r1 = n.find_ff("r1_reg[0]").unwrap();
        let r2 = n.find_ff("r2_reg[0]").unwrap();
        // r0 influences r1 and r2.
        assert_eq!(g.total_ffs_to(r0), 2);
        // r1 influences r2 and (via the loop) itself.
        assert_eq!(g.total_ffs_to(r1), 2);
        // r2 is influenced by everything (r0, r1) and itself via the loop.
        assert_eq!(g.total_ffs_from(r2), 3);
        assert_eq!(g.total_ffs_from(r0), 0);
    }

    #[test]
    fn feedback_detection() {
        let n = chain_with_loop();
        let g = FfGraph::build(&n);
        let r0 = n.find_ff("r0_reg[0]").unwrap();
        let r1 = n.find_ff("r1_reg[0]").unwrap();
        let r2 = n.find_ff("r2_reg[0]").unwrap();
        assert_eq!(g.feedback_depth(r0), None, "r0 is feed-forward");
        assert_eq!(g.feedback_depth(r1), Some(2), "r1 -> r2 -> r1");
        assert_eq!(g.feedback_depth(r2), Some(2), "r2 -> r1 -> r2");
    }

    #[test]
    fn self_loop_depth_one() {
        let mut b = NetlistBuilder::new("hold");
        let en = b.input("en", 1);
        let r = b.reg("r", 1);
        let inv = b.not(&r.q());
        let next = b.mux(&en, &r.q(), &inv);
        b.connect(&r, &next).unwrap();
        b.output("o", &r.q());
        let n = b.finish().unwrap();
        let g = FfGraph::build(&n);
        assert_eq!(g.feedback_depth(FfId::from_index(0)), Some(1));
    }

    #[test]
    fn pi_po_distances() {
        let n = chain_with_loop();
        let g = FfGraph::build(&n);
        let r0 = n.find_ff("r0_reg[0]").unwrap();
        let r1 = n.find_ff("r1_reg[0]").unwrap();
        let r2 = n.find_ff("r2_reg[0]").unwrap();
        let from_a = g.distances_from_pi(0);
        assert_eq!(from_a[r0.index()], 1);
        assert_eq!(from_a[r1.index()], 2);
        assert_eq!(from_a[r2.index()], 3);
        let to_out = g.distances_to_po(0);
        assert_eq!(to_out[r2.index()], 1);
        assert_eq!(to_out[r1.index()], 2);
        assert_eq!(to_out[r0.index()], 3);
    }

    #[test]
    fn constant_drivers_counted() {
        let mut b = NetlistBuilder::new("konst");
        let a = b.input("a", 4);
        let k = b.lit(4, 0b0101);
        let masked = b.and(&a, &k);
        let r = b.reg("r", 4);
        b.connect(&r, &masked).unwrap();
        b.output("o", &r.q());
        let n = b.finish().unwrap();
        let g = FfGraph::build(&n);
        // Each bit's cone sees exactly one tie cell (const0 or const1).
        for i in 0..4 {
            assert_eq!(
                g.input_cone(FfId::from_index(i)).const_drivers,
                1,
                "bit {i}"
            );
        }
    }
}
