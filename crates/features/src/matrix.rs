//! The per-flip-flop feature matrix and its serialization.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A dense `num_ffs × num_features` matrix with named rows (flip-flop
/// instance names) and named columns (feature names).
///
/// Row order matches [`FfId`](ffr_netlist::FfId) order, so row `i` pairs
/// with the FDR of flip-flop `i` in an
/// `FdrTable` of the `ffr-fault` crate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureMatrix {
    ff_names: Vec<String>,
    feature_names: Vec<String>,
    /// Row-major values.
    values: Vec<f64>,
}

impl FeatureMatrix {
    /// All-zero matrix with the given row and column names.
    pub fn zeros(ff_names: Vec<String>, feature_names: Vec<String>) -> FeatureMatrix {
        let values = vec![0.0; ff_names.len() * feature_names.len()];
        FeatureMatrix {
            ff_names,
            feature_names,
            values,
        }
    }

    /// Number of rows (flip-flops).
    pub fn num_rows(&self) -> usize {
        self.ff_names.len()
    }

    /// Number of feature columns.
    pub fn num_cols(&self) -> usize {
        self.feature_names.len()
    }

    /// Row (flip-flop) names.
    pub fn ff_names(&self) -> &[String] {
        &self.ff_names
    }

    /// Column (feature) names.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Index of a named column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.feature_names.iter().position(|n| n == name)
    }

    /// Value accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.num_rows() && col < self.num_cols());
        self.values[row * self.num_cols() + col]
    }

    /// Value mutator.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.num_rows() && col < self.num_cols());
        let cols = self.num_cols();
        self.values[row * cols + col] = value;
    }

    /// One row as a slice.
    pub fn row(&self, row: usize) -> &[f64] {
        let cols = self.num_cols();
        &self.values[row * cols..(row + 1) * cols]
    }

    /// All rows as `Vec<Vec<f64>>` (the format `ffr-ml` consumes).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        (0..self.num_rows()).map(|r| self.row(r).to_vec()).collect()
    }

    /// `true` if every value is finite (no NaN/Inf) — the precondition the
    /// regression models assert on their training data.
    pub fn is_finite(&self) -> bool {
        self.values.iter().all(|v| v.is_finite())
    }

    /// The row index of a named flip-flop.
    pub fn row_index(&self, ff_name: &str) -> Option<usize> {
        self.ff_names.iter().position(|n| n == ff_name)
    }

    /// Restrict the matrix to the given columns (for feature-group
    /// ablations).
    ///
    /// # Panics
    ///
    /// Panics if a column index is out of range.
    pub fn select_columns(&self, cols: &[usize]) -> FeatureMatrix {
        let feature_names = cols
            .iter()
            .map(|&c| self.feature_names[c].clone())
            .collect();
        let mut out = FeatureMatrix::zeros(self.ff_names.clone(), feature_names);
        for r in 0..self.num_rows() {
            for (j, &c) in cols.iter().enumerate() {
                out.set(r, j, self.get(r, c));
            }
        }
        out
    }

    /// Render as CSV with a header row and the flip-flop name as the first
    /// column.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("ff_name");
        for name in &self.feature_names {
            let _ = write!(out, ",{name}");
        }
        out.push('\n');
        for r in 0..self.num_rows() {
            out.push_str(&self.ff_names[r]);
            for c in 0..self.num_cols() {
                let _ = write!(out, ",{}", self.get(r, c));
            }
            out.push('\n');
        }
        out
    }

    /// Write the matrix as pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates I/O and serialization failures.
    pub fn save_json(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_string_pretty(self).map_err(io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Load a matrix previously written by [`FeatureMatrix::save_json`].
    ///
    /// # Errors
    ///
    /// Propagates I/O and deserialization failures.
    pub fn load_json(path: &Path) -> io::Result<FeatureMatrix> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text).map_err(io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FeatureMatrix {
        let mut m = FeatureMatrix::zeros(
            vec!["ff0".into(), "ff1".into()],
            vec!["a".into(), "b".into(), "c".into()],
        );
        m.set(0, 0, 1.0);
        m.set(0, 2, 3.5);
        m.set(1, 1, -2.0);
        m
    }

    #[test]
    fn get_set_row() {
        let m = sample();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 2), 3.5);
        assert_eq!(m.row(1), &[0.0, -2.0, 0.0]);
        assert_eq!(m.to_rows().len(), 2);
    }

    #[test]
    fn column_selection() {
        let m = sample();
        let s = m.select_columns(&[2, 0]);
        assert_eq!(s.feature_names(), &["c".to_string(), "a".to_string()]);
        assert_eq!(s.get(0, 0), 3.5);
        assert_eq!(s.get(0, 1), 1.0);
    }

    #[test]
    fn csv_format() {
        let csv = sample().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("ff_name,a,b,c"));
        assert_eq!(lines.next(), Some("ff0,1,0,3.5"));
        assert_eq!(lines.next(), Some("ff1,0,-2,0"));
    }

    #[test]
    fn json_round_trip() {
        let m = sample();
        let dir = std::env::temp_dir().join("ffr_features_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.json");
        m.save_json(&path).unwrap();
        assert_eq!(FeatureMatrix::load_json(&path).unwrap(), m);
    }

    #[test]
    #[should_panic]
    fn out_of_range_get_panics() {
        let _ = sample().get(5, 0);
    }
}
