//! Cross-circuit feature alignment.
//!
//! Transfer estimation trains one model on the feature matrices of
//! several circuits and applies it to another. That is only sound when
//! every matrix was extracted under the *same* feature schema — same
//! columns, same order, same extractor version. [`check_schema`] verifies
//! one matrix against the current schema; [`align`] stacks several
//! per-circuit matrices into a single training matrix with per-row
//! provenance, refusing mixed schemas instead of silently mis-pairing
//! columns.

use crate::extract::{schema_desc, FEATURE_NAMES};
use crate::matrix::FeatureMatrix;

/// Provenance of one stacked row: which circuit and flip-flop it came
/// from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowOrigin {
    /// Corpus/circuit id of the source matrix.
    pub circuit: String,
    /// Flip-flop instance name within that circuit.
    pub ff_name: String,
    /// Row index within the source matrix (`FfId` order).
    pub row: usize,
}

/// Several per-circuit feature matrices stacked row-wise under one
/// verified schema.
#[derive(Debug, Clone)]
pub struct StackedFeatures {
    feature_names: Vec<String>,
    rows: Vec<Vec<f64>>,
    origins: Vec<RowOrigin>,
    /// Per-circuit group index of each row, in stacking order — ready for
    /// grouped cross-validation (leave-one-circuit-out).
    groups: Vec<usize>,
    circuits: Vec<String>,
}

impl StackedFeatures {
    /// Column names (identical across all source matrices).
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Stacked rows, in source order (circuits in the order given to
    /// [`align`], rows in `FfId` order within each circuit).
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// Per-row provenance, parallel to [`StackedFeatures::rows`].
    pub fn origins(&self) -> &[RowOrigin] {
        &self.origins
    }

    /// Per-row circuit group index (into [`StackedFeatures::circuits`]),
    /// parallel to [`StackedFeatures::rows`].
    pub fn groups(&self) -> &[usize] {
        &self.groups
    }

    /// Source circuit ids, in stacking order.
    pub fn circuits(&self) -> &[String] {
        &self.circuits
    }

    /// Total number of stacked rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }
}

/// Verify a matrix against the extractor's current schema: the columns
/// must be exactly [`FEATURE_NAMES`] in order and every value finite.
///
/// # Errors
///
/// Returns a message naming the first mismatched column (or the
/// non-finite defect) together with [`schema_desc`], so callers can
/// surface which side is stale.
pub fn check_schema(matrix: &FeatureMatrix) -> Result<(), String> {
    let names = matrix.feature_names();
    if names.len() != FEATURE_NAMES.len() {
        return Err(format!(
            "feature matrix has {} columns, current schema ({}) has {}",
            names.len(),
            schema_desc(),
            FEATURE_NAMES.len()
        ));
    }
    for (i, (have, want)) in names.iter().zip(FEATURE_NAMES.iter()).enumerate() {
        if have != want {
            return Err(format!(
                "feature column {i} is `{have}`, current schema ({}) expects `{want}`",
                schema_desc()
            ));
        }
    }
    if !matrix.is_finite() {
        return Err(format!(
            "feature matrix contains non-finite values (schema {})",
            schema_desc()
        ));
    }
    Ok(())
}

/// Stack per-circuit feature matrices row-wise into one training matrix
/// with provenance and circuit group labels.
///
/// Every matrix is [`check_schema`]-verified first; the stacked order is
/// the given circuit order, rows in `FfId` order within each circuit.
///
/// # Errors
///
/// Fails on an empty input, a duplicate circuit id, or any schema
/// mismatch (the error names the offending circuit).
pub fn align(matrices: &[(String, FeatureMatrix)]) -> Result<StackedFeatures, String> {
    if matrices.is_empty() {
        return Err("no feature matrices to align".to_string());
    }
    let mut circuits: Vec<String> = Vec::with_capacity(matrices.len());
    let mut rows = Vec::new();
    let mut origins = Vec::new();
    let mut groups = Vec::new();
    for (group, (circuit, matrix)) in matrices.iter().enumerate() {
        if circuits.iter().any(|c| c == circuit) {
            return Err(format!("circuit `{circuit}` appears twice in alignment"));
        }
        check_schema(matrix).map_err(|e| format!("circuit `{circuit}`: {e}"))?;
        circuits.push(circuit.clone());
        for row in 0..matrix.num_rows() {
            rows.push(matrix.row(row).to_vec());
            origins.push(RowOrigin {
                circuit: circuit.clone(),
                ff_name: matrix.ff_names()[row].clone(),
                row,
            });
            groups.push(group);
        }
    }
    Ok(StackedFeatures {
        feature_names: FEATURE_NAMES.iter().map(|s| s.to_string()).collect(),
        rows,
        origins,
        groups,
        circuits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema_matrix(ffs: &[&str], fill: f64) -> FeatureMatrix {
        let mut m = FeatureMatrix::zeros(
            ffs.iter().map(|s| s.to_string()).collect(),
            FEATURE_NAMES.iter().map(|s| s.to_string()).collect(),
        );
        for r in 0..m.num_rows() {
            for c in 0..m.num_cols() {
                m.set(r, c, fill + (r * m.num_cols() + c) as f64);
            }
        }
        m
    }

    #[test]
    fn schema_check_accepts_current_schema() {
        assert_eq!(check_schema(&schema_matrix(&["f0"], 0.0)), Ok(()));
    }

    #[test]
    fn schema_check_rejects_wrong_columns() {
        let m = FeatureMatrix::zeros(vec!["f0".into()], vec!["bogus".into()]);
        let err = check_schema(&m).unwrap_err();
        assert!(err.contains("1 columns"), "{err}");

        let mut names: Vec<String> = FEATURE_NAMES.iter().map(|s| s.to_string()).collect();
        names.swap(0, 1);
        let m = FeatureMatrix::zeros(vec!["f0".into()], names);
        let err = check_schema(&m).unwrap_err();
        assert!(err.contains("column 0"), "{err}");
    }

    #[test]
    fn schema_check_rejects_non_finite() {
        let mut m = schema_matrix(&["f0"], 0.0);
        m.set(0, 3, f64::NAN);
        let err = check_schema(&m).unwrap_err();
        assert!(err.contains("non-finite"), "{err}");
    }

    #[test]
    fn align_stacks_with_provenance_and_groups() {
        let a = schema_matrix(&["a0", "a1"], 0.0);
        let b = schema_matrix(&["b0"], 100.0);
        let stacked = align(&[("cir_a".into(), a.clone()), ("cir_b".into(), b.clone())]).unwrap();
        assert_eq!(stacked.num_rows(), 3);
        assert_eq!(stacked.groups(), &[0, 0, 1]);
        assert_eq!(
            stacked.circuits(),
            &["cir_a".to_string(), "cir_b".to_string()]
        );
        assert_eq!(stacked.rows()[0], a.row(0));
        assert_eq!(stacked.rows()[2], b.row(0));
        assert_eq!(
            stacked.origins()[2],
            RowOrigin {
                circuit: "cir_b".into(),
                ff_name: "b0".into(),
                row: 0,
            }
        );
    }

    #[test]
    fn align_rejects_duplicates_and_mismatches() {
        let a = schema_matrix(&["a0"], 0.0);
        assert!(align(&[]).unwrap_err().contains("no feature matrices"));
        let err = align(&[("x".into(), a.clone()), ("x".into(), a.clone())]).unwrap_err();
        assert!(err.contains("twice"), "{err}");
        let bad = FeatureMatrix::zeros(vec!["f".into()], vec!["bogus".into()]);
        let err = align(&[("x".into(), a), ("y".into(), bad)]).unwrap_err();
        assert!(err.contains("circuit `y`"), "{err}");
    }
}
