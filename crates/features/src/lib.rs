//! Per-flip-flop feature extraction (§III-B of the paper).
//!
//! For every flip-flop this crate computes the 25-dimensional feature
//! vector the ML models are trained on, combining:
//!
//! * **structural features** from a graph analysis of the gate-level
//!   netlist — flip-flop fan-in/fan-out, transitive flip-flop reachability,
//!   primary-I/O connectivity and stage proximity (min/avg/max), bus
//!   membership/position/length, constant drivers, feedback loops,
//! * **synthesis features** — drive strength, combinational fan-in/fan-out
//!   cone sizes, combinational path depth,
//! * **dynamic features** from the golden simulation — `@0`, `@1` duty
//!   ratios and the output transition count.
//!
//! Entry point: [`extract_features`]. The result is a [`FeatureMatrix`]
//! whose row order matches [`FfId`](ffr_netlist::FfId) order, ready to be
//! fed to `ffr-ml`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod align;
mod extract;
mod graph;
mod matrix;

pub use align::{align, check_schema, RowOrigin, StackedFeatures};
pub use extract::{
    extract_features, extract_structural, schema_desc, FeatureGroup, FEATURE_NAMES, SCHEMA_VERSION,
};
pub use graph::FfGraph;
pub use matrix::FeatureMatrix;
