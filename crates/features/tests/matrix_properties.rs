//! Property tests of the feature matrix the estimation pipeline trains
//! on: one row per flip-flop, no NaN/Inf anywhere (the regression models
//! assert finite training data), and invariance to the order in which
//! flip-flops happen to be enumerated in the netlist.

use ffr_circuits::{components, small};
use ffr_features::{extract_features, extract_structural, FeatureMatrix, FEATURE_NAMES};
use ffr_netlist::{Netlist, NetlistBuilder};
use ffr_sim::{run_testbench, CompiledCircuit, InputFrame, Stimulus, WatchList};
use proptest::prelude::*;

/// Deterministic stimulus: input `i` follows a fixed bit pattern keyed by
/// the cycle, so dynamic features are reproducible.
struct PatternStim {
    num_inputs: usize,
    cycles: u64,
}

impl Stimulus for PatternStim {
    fn num_cycles(&self) -> u64 {
        self.cycles
    }

    fn drive(&self, cycle: u64, frame: &mut InputFrame) {
        for i in 0..self.num_inputs {
            frame.set(i, (cycle >> (i % 5)) & 1 == 1);
        }
    }
}

fn full_matrix(netlist: Netlist) -> (CompiledCircuit, FeatureMatrix) {
    let cc = CompiledCircuit::compile(netlist).expect("test circuit compiles");
    let stim = PatternStim {
        num_inputs: cc.num_inputs(),
        cycles: 64,
    };
    let run = run_testbench(&cc, &stim, &WatchList::all(&cc));
    let m = extract_features(&cc, &run.activity);
    (cc, m)
}

/// Two independent counters; `swap` flips the declaration order of the
/// two register groups (and nothing else), permuting FF enumeration.
fn two_counter_circuit(wa: usize, wb: usize, swap: bool) -> Netlist {
    let mut b = NetlistBuilder::new("pair");
    let en_a = b.input("en_a", 1);
    let en_b = b.input("en_b", 1);
    let (qa, qb) = if swap {
        let cb = components::counter(&mut b, "b_count", wb, &en_b, None);
        let ca = components::counter(&mut b, "a_count", wa, &en_a, None);
        (ca.q(), cb.q())
    } else {
        let ca = components::counter(&mut b, "a_count", wa, &en_a, None);
        let cb = components::counter(&mut b, "b_count", wb, &en_b, None);
        (ca.q(), cb.q())
    };
    b.output("a", &qa);
    b.output("b", &qb);
    b.finish().expect("pair circuit is well formed")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every small library circuit yields exactly one finite feature row
    /// per flip-flop, for both the structural-only and the full extractor.
    #[test]
    fn one_finite_row_per_ff(counter_w in 2usize..9, alu_w in 2usize..7, depth in 1usize..5) {
        for netlist in [
            small::counter_circuit(counter_w),
            small::lfsr_pipeline(8, depth),
            small::alu_circuit(alu_w),
            small::traffic_light(),
        ] {
            let structural = extract_structural(
                &CompiledCircuit::compile(netlist.clone()).expect("compiles"),
            );
            prop_assert!(structural.is_finite());

            let (cc, m) = full_matrix(netlist);
            prop_assert_eq!(m.num_rows(), cc.num_ffs(), "one row per flip-flop");
            prop_assert_eq!(m.num_cols(), FEATURE_NAMES.len());
            prop_assert!(m.is_finite(), "NaN/Inf in feature matrix");
            // Row names are exactly the circuit's flip-flop names, in
            // FfId order — the pairing the FDR table relies on.
            for (i, name) in m.ff_names().iter().enumerate() {
                prop_assert_eq!(m.row_index(name), Some(i), "duplicate or misplaced row");
            }
        }
    }

    /// A flip-flop's feature vector depends on the circuit, not on the
    /// position the flip-flop happens to occupy in the netlist's
    /// enumeration: swapping the declaration order of two independent
    /// register groups permutes the rows but changes no row's values.
    #[test]
    fn features_are_invariant_to_ff_enumeration_order(wa in 2usize..7, wb in 2usize..7) {
        let (_, normal) = full_matrix(two_counter_circuit(wa, wb, false));
        let (_, swapped) = full_matrix(two_counter_circuit(wa, wb, true));
        prop_assert_eq!(normal.num_rows(), swapped.num_rows());
        // The enumeration genuinely differs…
        prop_assert!(
            normal.ff_names() != swapped.ff_names(),
            "declaration swap must permute FF order for this test to bite"
        );
        // …but each named flip-flop keeps the exact same feature vector.
        for (i, name) in normal.ff_names().iter().enumerate() {
            let j = swapped
                .row_index(name)
                .expect("same flip-flops in both variants");
            prop_assert_eq!(
                normal.row(i),
                swapped.row(j),
                "feature row of `{}` changed with enumeration order",
                name
            );
        }
    }
}
