//! Implementation of the `ffr` command-line interface.
//!
//! Subcommands:
//!
//! * `ffr run`      — start a checkpointed campaign on a named circuit,
//! * `ffr resume`   — continue an interrupted campaign session,
//! * `ffr worker`   — drain a campaign as one worker of a distributed
//!   fleet (lease-based work distribution over a shared directory),
//! * `ffr status`   — progress of a session directory (including
//!   per-worker leases and shards; `--json` for machine consumption),
//! * `ffr stats`    — merged telemetry report of a session directory
//!   (per-worker throughput, phase spans, latency histograms),
//! * `ffr estimate` — ML model selection + FDR prediction for the
//!   flip-flops a budgeted campaign did not measure,
//! * `ffr transfer` — cross-circuit estimation: train on the measured
//!   tables of ≥2 circuits, predict an unseen circuit with zero
//!   injections,
//! * `ffr report`   — render the finished FDR table (and estimate),
//! * `ffr gc`       — sweep the artifact store and/or expired leases.
//!
//! Argument parsing is hand-rolled (`--flag value` pairs) to stay
//! dependency-free; [`main_with_args`] returns the process exit code so
//! the whole CLI is unit-testable without spawning processes.
//!
//! Stderr chatter (progress, warnings) goes through the leveled
//! `ffr-obs` logger: `--quiet` keeps only errors, `-v` enables debug
//! detail, and `FFR_LOG=error|warn|info|debug` sets the default.
//! Stdout stays reserved for product output (tables, reports, `--json`
//! documents), so piping them remains safe at any verbosity.

use crate::adaptive::AdaptivePolicy;
use crate::checkpoint::CampaignCheckpoint;
use crate::estimate::{self, EstimateOptions, EstimateReport};
use crate::runner::{CancelToken, RunOutcome, RunnerOptions};
use crate::session::{self, CampaignManifest, RunRequest, SessionPaths, WorkerRequest};
use crate::spec::CircuitSpec;
use crate::store::ArtifactStore;
use crate::work;
use ffr_core::ModelKind;
use ffr_fault::{FailureClass, FaultKind, FdrTable, SetDeratingTable};
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Duration;

const USAGE: &str = "\
ffr — functional-failure-rate campaign orchestration

USAGE:
    ffr run      --circuit <name> --out <dir> [options]
    ffr resume   --out <dir> [--threads N] [--stop-after-points N]
    ffr worker   --campaign <dir> --worker-id <id> [worker options]
    ffr status   --out <dir> [--json]
    ffr stats    --campaign <dir> [--json]
    ffr estimate --out <dir> [estimate options]
    ffr estimate --circuit <name> --store <dir> [run options] [estimate options]
    ffr transfer --train <spec,spec,…> --eval <spec> --store <dir>
                 [campaign options] [estimate options] [--out <file>]
    ffr report   --out <dir>
    ffr gc       [--store <dir>] [--max-age-days D | --all] [--campaign <dir>]

GLOBAL OPTIONS:
    --quiet                 only errors on stderr (suppresses progress)
    -v                      debug-level stderr logging
                            (FFR_LOG=error|warn|info|debug sets the default;
                            stdout output is unaffected either way)

WORKER OPTIONS:
    --campaign <dir>        shared campaign session directory (all workers
                            of one campaign point at the same directory)
    --worker-id <id>        stable worker identity (lease ownership; reuse
                            after a crash to reclaim own leases instantly)
    --store <dir>           artifact store for this worker (golden-run
                            cache)     [default: the manifest's store]
    --lease-points <n>      points per lease range          [default: 16]
    --lease-ttl-secs <n>    lease expiry without heartbeat  [default: 30]
    --poll-ms <n>           rescan interval while other workers hold the
                            remaining leases                [default: 200]
    run options (--circuit, --fault, --seed, …) passed to the first worker
    bootstrap an uninitialized campaign directory

RUN OPTIONS:
    --circuit <spec>        counter | lfsr | alu | traffic | mac-small | mac
                            | corpus:<id> (generated corpus circuit, e.g.
                              corpus:fifo2x4 — `cnt<w>`, `lfsr<w>x<d>`,
                              `alu<w>`, `fifo<a>x<w>`, `crc<w>`,
                              `regfile<a>x<w>`, `mix<n>s<seed>`)
                            | verilog:<path> (structural Verilog import)
    --fault <model>         seu (flip-flop upsets, default) | set
                            (combinational-net transients)
    --out <dir>             session directory (checkpoint + results)
    --store <dir>           artifact store (caches golden runs and tables)
    --seed <n>              campaign master seed            [default: 2019]
    --stim-seed <n>         stimulus seed                   [default: 1]
    --cycles <n>            testbench cycles (generic circuits) [default: 400]
    --policy <spec>         stopping policy: fixed:<n>, or
                            wilson:<half_width>@<confidence>[:<min>..<max>]
                            (e.g. fixed:170, wilson:0.05@95,
                            wilson:0.02@99:64..340)         [default: fixed:170]
    --injections <n>        shorthand for --policy fixed:<n>
    --adaptive <min:max:hw> shorthand for --policy
                            wilson:<hw>@95:<min>..<max> (e.g. 64:512:0.05)
    --budget <fraction>     measure only this fraction of injection points
                            (a seeded random subset; `ffr estimate` predicts
                            the rest)                       [default: 1.0]
    --checkpoint-every <n>  flush cadence in retired points [default: 32]
    --threads <n>           worker threads                  [default: all cores]
    --stop-after-points <n> stop (resumably) after N retirements
    --force                 ignore a cached final table

ESTIMATE OPTIONS:
    --models <a,b,…>        models to cross-validate
                            (linear,knn,svr,ridge,tree,forest,boosting,mlp)
                            [default: linear,knn,forest,boosting,mlp]
    --folds <n>             stratified CV folds             [default: 5]
    --cv-seed <n>           fold-assignment seed            [default: 2019]
    --grid <n>              hyperparameter candidates per model [default: 3]
    --store <dir>           artifact store override
    --force                 recompute even if a report is cached

TRANSFER OPTIONS:
    --train <spec,spec,…>   ≥2 training circuit specs, each measured by a
                            prior `ffr run` with the same campaign flags
    --eval <spec>           target circuit: per-FF FDRs are predicted from
                            features alone (zero injections; one golden
                            simulation supplies the dynamic features)
    --out <file>            also write the TransferReport JSON (+ .csv)
    campaign options (--seed, --cycles, --policy, …) select which measured
    campaigns to train on; estimate options (--models, --grid, --cv-seed)
    control model selection (CV folds are leave-one-circuit-out)
";

/// Parsed `--flag value` arguments (shared with the `ffrd` entry
/// point in [`crate::service`]).
pub(crate) struct Args {
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    pub(crate) fn parse(args: &[String]) -> Result<Args, String> {
        let mut flags = Vec::new();
        let mut iter = args.iter().peekable();
        while let Some(arg) = iter.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("unexpected argument `{arg}`"));
            };
            let value = match iter.peek() {
                Some(next) if !next.starts_with("--") => Some(iter.next().unwrap().clone()),
                _ => None,
            };
            flags.push((name.to_string(), value));
        }
        Ok(Args { flags })
    }

    fn take(&mut self, name: &str) -> Option<Option<String>> {
        let idx = self.flags.iter().position(|(n, _)| n == name)?;
        Some(self.flags.remove(idx).1)
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    pub(crate) fn value(&mut self, name: &str) -> Result<Option<String>, String> {
        match self.take(name) {
            None => Ok(None),
            Some(Some(v)) => Ok(Some(v)),
            Some(None) => Err(format!("--{name} requires a value")),
        }
    }

    pub(crate) fn parsed<T: std::str::FromStr>(&mut self, name: &str) -> Result<Option<T>, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.value(name)? {
            None => Ok(None),
            Some(v) => v
                .parse::<T>()
                .map(Some)
                .map_err(|e| format!("--{name}: {e}")),
        }
    }

    pub(crate) fn present(&mut self, name: &str) -> Result<bool, String> {
        match self.take(name) {
            None => Ok(false),
            Some(None) => Ok(true),
            Some(Some(v)) => Err(format!("--{name} takes no value (got `{v}`)")),
        }
    }

    pub(crate) fn finish(self) -> Result<(), String> {
        match self.flags.first() {
            None => Ok(()),
            Some((name, _)) => Err(format!("unknown option `--{name}`")),
        }
    }
}

/// The legacy `--adaptive min:max:hw` shorthand: rewritten into the
/// canonical `wilson:` spec and parsed by the one policy grammar, so the
/// shorthand can never drift from what `--policy` accepts.
fn parse_adaptive(spec: &str) -> Result<AdaptivePolicy, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let [min, max, hw] = parts.as_slice() else {
        return Err("expected --adaptive min:max:half_width (e.g. 64:512:0.05)".into());
    };
    format!("wilson:{hw}@95:{min}..{max}")
        .parse()
        .map_err(|e| format!("--adaptive {spec}: {e}"))
}

fn runner_options(args: &mut Args) -> Result<RunnerOptions, String> {
    Ok(RunnerOptions {
        threads: args.parsed::<usize>("threads")?,
        stop_after_points: args.parsed::<usize>("stop-after-points")?,
        ..RunnerOptions::default()
    })
}

/// CLI noun for a campaign's injection points.
fn point_noun(fault: FaultKind) -> &'static str {
    match fault {
        FaultKind::Seu => "flip-flops",
        FaultKind::Set => "nets",
    }
}

fn progress_printer() -> impl Fn(usize, usize) + Sync {
    |done, total| {
        if ffr_obs::log_enabled(ffr_obs::Level::Info) && (done % 16 == 0 || done == total) {
            eprint!("\r[ffr] {done}/{total} injection points retired");
            let _ = std::io::stderr().flush();
        }
    }
}

/// Finish the `\r`-style progress line (a no-op under `--quiet`, which
/// never started one).
fn end_progress_line() {
    if ffr_obs::log_enabled(ffr_obs::Level::Info) {
        eprintln!();
    }
}

fn print_summary(summary: &session::RunSummary) {
    end_progress_line();
    let noun = point_noun(summary.fault);
    if summary.table_from_cache {
        println!(
            "served from artifact cache: {} {noun}, no simulation needed",
            summary.total_points
        );
    } else {
        println!(
            "golden run: {}",
            if summary.golden_from_cache {
                "artifact cache hit"
            } else {
                "captured (cache miss)"
            }
        );
        println!(
            "progress: {}/{} {noun} retired, {} injections executed",
            summary.completed_points, summary.total_points, summary.total_injections
        );
    }
    match summary.outcome {
        RunOutcome::Complete => {
            if let Some(path) = &summary.table_path {
                let table = match summary.fault {
                    FaultKind::Seu => "FDR table",
                    FaultKind::Set => "SET de-rating table",
                };
                println!("{table} written to {}", path.display());
            }
        }
        RunOutcome::Cancelled => {
            println!("campaign interrupted — continue with `ffr resume --out <dir>`");
        }
        RunOutcome::Drained => {
            println!("work source drained — remaining points belong to other workers");
        }
    }
}

/// Parse the shared `ffr run` campaign flags into a [`RunRequest`]
/// (everything except `--out` and the runner knobs). `ffr estimate`
/// reuses this in store mode to reconstruct a campaign's fingerprint.
fn run_request_from_args(args: &mut Args) -> Result<RunRequest, String> {
    let circuit: CircuitSpec = args
        .value("circuit")?
        .ok_or("--circuit is required")?
        .parse()?;
    let mut request = RunRequest::new(circuit);
    apply_campaign_flags(args, &mut request)?;
    Ok(request)
}

/// Apply the campaign flags (everything except `--circuit`) to a
/// request. `ffr transfer` uses this on a template request that is then
/// cloned per circuit, so one set of campaign parameters fingerprints
/// every train/eval campaign identically.
fn apply_campaign_flags(args: &mut Args, request: &mut RunRequest) -> Result<(), String> {
    if let Some(fault) = args.value("fault")? {
        request.fault = FaultKind::parse_cli(&fault)?;
    }
    request.store = args.value("store")?.map(PathBuf::from);
    if let Some(seed) = args.parsed::<u64>("seed")? {
        request.seed = seed;
    }
    if let Some(seed) = args.parsed::<u64>("stim-seed")? {
        request.stim_seed = seed;
    }
    if let Some(cycles) = args.parsed::<u64>("cycles")? {
        request.cycles = cycles;
    }
    let policy = args.value("policy")?;
    let injections = args.parsed::<usize>("injections")?;
    let adaptive = args.value("adaptive")?;
    request.policy = match (policy, injections, adaptive) {
        (Some(_), Some(_), _) | (Some(_), _, Some(_)) | (_, Some(_), Some(_)) => {
            return Err("--policy, --injections and --adaptive are mutually \
                        exclusive (each fully specifies the stopping rule)"
                .into())
        }
        (Some(spec), None, None) => spec.parse()?,
        (None, Some(n), None) => {
            if n == 0 {
                return Err("--injections must be positive".into());
            }
            AdaptivePolicy::fixed(n)
        }
        (None, None, Some(spec)) => parse_adaptive(&spec)?,
        (None, None, None) => AdaptivePolicy::fixed(170),
    };
    if let Some(budget) = args.parsed::<f64>("budget")? {
        request.budget = budget;
    }
    if let Some(every) = args.parsed::<usize>("checkpoint-every")? {
        request.checkpoint_every = every.max(1);
    }
    Ok(())
}

fn cmd_run(mut args: Args) -> Result<i32, String> {
    let out: PathBuf = args.value("out")?.ok_or("--out is required")?.into();
    let mut request = run_request_from_args(&mut args)?;
    request.force = args.present("force")?;
    let options = runner_options(&mut args)?;
    args.finish()?;

    let summary = session::run(
        &request,
        &out,
        &options,
        &CancelToken::new(),
        progress_printer(),
    )
    .map_err(|e| e.to_string())?;
    print_summary(&summary);
    Ok(match summary.outcome {
        RunOutcome::Complete => 0,
        RunOutcome::Cancelled | RunOutcome::Drained => 2,
    })
}

fn cmd_resume(mut args: Args) -> Result<i32, String> {
    let out: PathBuf = args.value("out")?.ok_or("--out is required")?.into();
    let options = runner_options(&mut args)?;
    args.finish()?;
    let summary = session::resume(&out, &options, &CancelToken::new(), progress_printer())
        .map_err(|e| e.to_string())?;
    print_summary(&summary);
    Ok(match summary.outcome {
        RunOutcome::Complete => 0,
        RunOutcome::Cancelled | RunOutcome::Drained => 2,
    })
}

fn cmd_status(mut args: Args) -> Result<i32, String> {
    let out: PathBuf = args.value("out")?.ok_or("--out is required")?.into();
    let json = args.present("json")?;
    args.finish()?;
    let (report, fault) = crate::status::gather_status(&out)?;
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
        return Ok(0);
    }
    println!("campaign session {}", report.session);
    println!("  circuit:     {}", report.circuit);
    println!("  fault:       {}", report.fault);
    println!("  seed:        {}", report.seed);
    println!("  policy:      {}", report.policy);
    println!("  fingerprint: {}", report.fingerprint);
    let noun = point_noun(fault);
    match &report.progress {
        Some(p) => {
            println!(
                "  progress:    {}/{} {noun} retired, {} injections",
                p.completed_points, p.total_points, p.injections
            );
            println!(
                "  state:       {}",
                if p.complete {
                    "complete"
                } else {
                    "resumable (run `ffr resume` or `ffr worker`)"
                }
            );
        }
        None => println!("  progress:    not started"),
    }
    if let Some(t) = &report.telemetry {
        match (t.injections_per_sec, t.eta_secs) {
            (Some(rate), Some(eta)) => {
                println!("  rate:        {rate:.1} injections/s (ETA ~{eta} s)")
            }
            (Some(rate), None) => println!("  rate:        {rate:.1} injections/s"),
            (None, _) => println!("  rate:        not yet measurable"),
        }
    }
    if report.shard_count > 0 {
        println!(
            "  shards:      {} ({} complete)",
            report.shard_count, report.complete_shards
        );
    }
    for w in &report.workers {
        println!(
            "  worker {:<12} {} active lease(s), {} shard(s), {} points retired",
            format!("{}:", w.worker),
            w.active_leases,
            w.shards,
            w.retired_points
        );
    }
    for lease in report.leases.iter().filter(|l| l.expired) {
        println!(
            "  WARNING: stale lease on points {}..{} (worker {}, expired {}s ago) — \
             reclaimed by the next worker, or sweep with `ffr gc --campaign`",
            lease.range_start, lease.range_end, lease.worker, -lease.expires_in_secs
        );
    }
    if let Some(table) = &report.table {
        println!("  results:     {table}");
    }
    Ok(0)
}

fn cmd_stats(mut args: Args) -> Result<i32, String> {
    let dir: PathBuf = match args.value("campaign")? {
        Some(dir) => dir.into(),
        // `--out` is accepted as an alias for symmetry with `ffr status`.
        None => args.value("out")?.ok_or("--campaign is required")?.into(),
    };
    let json = args.present("json")?;
    args.finish()?;
    let stats = crate::stats::CampaignStats::from_session(&dir).map_err(|e| e.to_string())?;
    if json {
        println!("{}", stats.to_json());
    } else {
        print!("{}", stats.render_text());
    }
    Ok(0)
}

fn cmd_worker(mut args: Args) -> Result<i32, String> {
    let out: PathBuf = args
        .value("campaign")?
        .ok_or("--campaign is required")?
        .into();
    let worker_id = args.value("worker-id")?.ok_or("--worker-id is required")?;
    if worker_id.is_empty() {
        return Err("--worker-id must not be empty".into());
    }
    let mut request = WorkerRequest::new(worker_id);
    if let Some(n) = args.parsed::<usize>("lease-points")? {
        if n == 0 {
            return Err("--lease-points must be positive".into());
        }
        request.lease_points = n;
    }
    if let Some(n) = args.parsed::<u64>("lease-ttl-secs")? {
        if n == 0 {
            return Err("--lease-ttl-secs must be positive".into());
        }
        request.lease_ttl = Duration::from_secs(n);
    }
    if let Some(n) = args.parsed::<u64>("poll-ms")? {
        request.poll = Duration::from_millis(n.max(1));
    }
    let options = runner_options(&mut args)?;
    // `--store` is honoured with or without bootstrap flags: a worker
    // attaching to an `ffr run`-initialized campaign still wants golden
    // runs cached.
    request.store = args.value("store")?.map(PathBuf::from);
    if args.has("circuit") {
        let mut init = run_request_from_args(&mut args)?;
        init.store = request.store.clone();
        request.init = Some(init);
    }
    args.finish()?;

    let summary = session::worker(
        &out,
        &request,
        &options,
        &CancelToken::new(),
        progress_printer(),
    )
    .map_err(|e| e.to_string())?;
    end_progress_line();
    let noun = point_noun(summary.fault);
    println!(
        "worker progress: {}/{} {noun} retired, {} injections, {} shard(s) merged",
        summary.completed_points,
        summary.total_points,
        summary.total_injections,
        summary.merged_shards
    );
    if summary.campaign_complete {
        if let Some(path) = &summary.table_path {
            println!("campaign complete — table written to {}", path.display());
        }
        Ok(0)
    } else {
        println!("campaign incomplete — rerun `ffr worker` (or `ffr resume`) to continue");
        Ok(2)
    }
}

/// Parse the `ffr estimate`-specific flags (everything except `--out` /
/// `--store` and the campaign flags of store mode).
fn estimate_options_from_args(args: &mut Args) -> Result<EstimateOptions, String> {
    let mut options = EstimateOptions::default();
    if let Some(models) = args.value("models")? {
        options.models = models
            .split(',')
            .map(|m| ModelKind::parse_cli(m.trim()))
            .collect::<Result<Vec<_>, _>>()?;
        if options.models.is_empty() {
            return Err("--models needs at least one model".into());
        }
    }
    if let Some(folds) = args.parsed::<usize>("folds")? {
        if folds < 2 {
            return Err("--folds must be at least 2".into());
        }
        options.folds = folds;
    }
    if let Some(seed) = args.parsed::<u64>("cv-seed")? {
        options.cv_seed = seed;
    }
    if let Some(grid) = args.parsed::<usize>("grid")? {
        if grid == 0 {
            return Err("--grid must be positive".into());
        }
        options.grid_budget = grid;
    }
    options.force = args.present("force")?;
    Ok(options)
}

fn print_estimate_report(r: &EstimateReport) {
    println!(
        "estimate for {}: {}/{} flip-flops measured (budget {:.0} %)",
        r.circuit,
        r.measured_ffs,
        r.total_ffs,
        r.budget * 100.0
    );
    println!(
        "  {:<22} {:<26} {:>7} {:>7} {:>7} {:>7}",
        "model", "best params", "MAE", "RMSE", "EV", "R2"
    );
    for m in &r.models {
        let marker = if m.model == r.best_model { '*' } else { ' ' };
        println!(
            "{marker} {:<22} {:<26} {:>7.3} {:>7.3} {:>7.3} {:>7.3}",
            m.display_name, m.best_params, m.cv_mae, m.cv_rmse, m.cv_ev, m.cv_r2
        );
    }
    println!(
        "circuit-level FFR: {:.4} (measured-subset mean {:.4})",
        r.circuit_ffr, r.measured_fdr_mean
    );
    println!(
        "injections: {} spent vs {} for a full campaign ({:.1}x savings)",
        r.injections_spent, r.full_campaign_injections, r.injection_savings
    );
}

fn cmd_estimate(mut args: Args) -> Result<i32, String> {
    let out = args.value("out")?.map(PathBuf::from);
    let summary = match out {
        Some(out) => {
            let mut options = estimate_options_from_args(&mut args)?;
            options.store = args.value("store")?.map(PathBuf::from);
            args.finish()?;
            estimate::estimate_session(&out, &options).map_err(|e| e.to_string())?
        }
        None => {
            let request = run_request_from_args(&mut args)?;
            let options = estimate_options_from_args(&mut args)?;
            args.finish()?;
            estimate::estimate_from_store(&request, &options).map_err(|e| e.to_string())?
        }
    };
    if summary.report_from_cache {
        println!("served from artifact cache: no model was refitted");
    }
    print_estimate_report(&summary.report);
    if let Some(path) = &summary.json_path {
        println!("estimate written to {}", path.display());
    }
    Ok(0)
}

fn cmd_transfer(mut args: Args) -> Result<i32, String> {
    let train_list = args.value("train")?.ok_or("--train is required")?;
    let eval_spec = args.value("eval")?.ok_or("--eval is required")?;
    let out = args.value("out")?.map(PathBuf::from);
    let mut options = estimate_options_from_args(&mut args)?;
    // One set of campaign flags parameterizes every circuit, so the
    // train fingerprints match the `ffr run`s that measured them.
    let mut template = RunRequest::new(eval_spec.parse()?);
    apply_campaign_flags(&mut args, &mut template)?;
    args.finish()?;
    options.store = template.store.clone();
    let train: Vec<RunRequest> = train_list
        .split(',')
        .map(|spec| -> Result<RunRequest, String> {
            let mut request = template.clone();
            request.circuit = spec.trim().parse()?;
            request.circuit.validate_sources()?;
            Ok(request)
        })
        .collect::<Result<_, _>>()?;
    template.circuit.validate_sources()?;

    let summary = crate::transfer::transfer_from_store(&train, &template, &options)
        .map_err(|e| e.to_string())?;
    let report = &summary.report;
    if summary.report_from_cache {
        println!("served from artifact cache: no model was refitted");
    }
    println!(
        "transfer: {} training circuits, {} measured flip-flops, {} injections spent",
        report.train.len(),
        report.train_rows,
        report.injections_spent
    );
    println!(
        "  {:<22} {:<26} {:>7} {:>7} {:>7}",
        "model", "best params", "MAE", "RMSE", "R2"
    );
    for m in &report.models {
        let marker = if m.model == report.best_model {
            '*'
        } else {
            ' '
        };
        println!(
            "{marker} {:<22} {:<26} {:>7.3} {:>7.3} {:>7.3}",
            m.display_name, m.best_params, m.cv_mae, m.cv_rmse, m.cv_r2
        );
    }
    println!(
        "model selection: {} CV (held-out circuits only)",
        report.cv_protocol
    );
    println!("\nper-circuit holdout quality of the winner:");
    for t in &report.train {
        println!(
            "  {:<18} {:>4} FFs  MAE {:>6.3}  R2 {:>7.3}  FFR {:.4} vs measured {:.4}",
            t.circuit, t.measured_ffs, t.holdout_mae, t.holdout_r2, t.predicted_ffr, t.measured_ffr
        );
    }
    println!(
        "\npredicted FFR of {}: {:.4} over {} flip-flops ({} injections on the target)",
        report.eval_circuit, report.predicted_ffr, report.eval_total_ffs, report.eval_injections
    );
    if let Some(r) = &report.reference {
        println!(
            "measured reference: FFR {:.4} ({} FFs) — MAE {:.3}, RMSE {:.3}, R2 {:.3}, ΔFFR {:+.4}",
            r.measured_ffr, r.measured_ffs, r.mae, r.rmse, r.r2, r.ffr_delta
        );
    }
    if let Some(out) = out {
        report.save_json(&out).map_err(|e| e.to_string())?;
        let csv = out.with_extension("csv");
        crate::store::atomic_write(&csv, &report.to_csv()).map_err(|e| e.to_string())?;
        println!(
            "transfer report written to {} (+ {})",
            out.display(),
            csv.display()
        );
    }
    Ok(0)
}

fn cmd_report(mut args: Args) -> Result<i32, String> {
    let out: PathBuf = args.value("out")?.ok_or("--out is required")?.into();
    args.finish()?;
    let paths = SessionPaths::new(&out);
    let manifest = CampaignManifest::load(&paths.manifest()).map_err(|e| e.to_string())?;
    match manifest.fault {
        FaultKind::Seu => {
            let table = FdrTable::load_json(&paths.fdr_json())
                .map_err(|e| format!("no finished campaign in {}: {e}", out.display()))?;
            println!(
                "FDR table: {} flip-flops ({} covered)",
                table.num_ffs(),
                table.covered().count()
            );
            println!("circuit-level FDR: {:.4}", table.circuit_fdr());
            println!("\nfailure-class totals:");
            for (class, count) in table.class_totals() {
                if class != FailureClass::Benign && count > 0 {
                    println!("  {class:<20} {count}");
                }
            }
            let injections: usize = table.covered().map(|r| r.injections()).sum();
            println!("total injections: {injections}");
            println!("\nFDR histogram (10 bins):");
            print!("{}", table.histogram(10));
            if paths.estimate_json().exists() {
                let report =
                    EstimateReport::load_json(&paths.estimate_json()).map_err(|e| e.to_string())?;
                println!();
                print_estimate_report(&report);
            }
        }
        FaultKind::Set => {
            let table = SetDeratingTable::load_json(&paths.set_json())
                .map_err(|e| format!("no finished campaign in {}: {e}", out.display()))?;
            println!("SET de-rating table: {} nets covered", table.num_nets());
            println!(
                "circuit-level SET de-rating: {:.4}",
                table.circuit_derating()
            );
            println!("\nfailure-class totals:");
            for (class, count) in table.class_totals() {
                if class != FailureClass::Benign && count > 0 {
                    println!("  {class:<20} {count}");
                }
            }
            let injections: usize = table.covered().map(|r| r.injections()).sum();
            println!("total injections: {injections}");
            println!("\nde-rating histogram (10 bins):");
            print!("{}", table.histogram(10));
        }
    }
    Ok(0)
}

fn cmd_gc(mut args: Args) -> Result<i32, String> {
    let store_dir = args.value("store")?.map(PathBuf::from);
    let campaign_dir = args.value("campaign")?.map(PathBuf::from);
    let max_age_days = args.parsed::<u64>("max-age-days")?;
    let all = args.present("all")?;
    args.finish()?;
    if store_dir.is_none() && campaign_dir.is_none() {
        return Err("pass --store <dir> and/or --campaign <dir>".into());
    }
    if all && max_age_days.is_some() {
        return Err("--all and --max-age-days are mutually exclusive".into());
    }
    if store_dir.is_none() && (all || max_age_days.is_some()) {
        return Err("--all / --max-age-days apply to --store sweeps".into());
    }
    if let Some(store_dir) = store_dir {
        let max_age = if all {
            None
        } else {
            Some(Duration::from_secs(
                60 * 60 * 24 * max_age_days.unwrap_or(30),
            ))
        };
        let store = ArtifactStore::open(&store_dir).map_err(|e| e.to_string())?;
        let report = store.gc(max_age).map_err(|e| e.to_string())?;
        println!(
            "gc: removed {} artifacts ({} bytes), kept {}",
            report.removed, report.reclaimed_bytes, report.kept
        );
    }
    if let Some(campaign_dir) = campaign_dir {
        let paths = SessionPaths::new(&campaign_dir);
        let (removed, kept) =
            work::sweep_expired_leases(&paths.leases_dir()).map_err(|e| e.to_string())?;
        println!("gc: removed {removed} expired lease(s), kept {kept} live");
        // Once the merged checkpoint is durably complete, the per-range
        // shards are a redundant copy of its point records.
        let complete = CampaignCheckpoint::load(&paths.checkpoint())
            .map(|cp| cp.is_complete())
            .unwrap_or(false);
        if complete {
            let shards = work::sweep_shards(&paths.shards_dir()).map_err(|e| e.to_string())?;
            println!("gc: removed {shards} shard checkpoint(s) of the completed campaign");
            // Telemetry logs are diagnostics, not results: they are only
            // swept once the campaign is durably complete (never while
            // workers may still be appending).
            let logs =
                crate::stats::sweep_telemetry(&paths.telemetry_dir()).map_err(|e| e.to_string())?;
            if logs > 0 {
                println!("gc: removed {logs} telemetry log(s) of the completed campaign");
            }
        }
    }
    Ok(0)
}

/// Run the CLI with explicit arguments (exit-code return; testable).
///
/// The stderr verbosity flags (`--quiet`, `-v`) are consumed here, before
/// subcommand parsing, so they work in any position; `FFR_LOG` sets the
/// default level.
pub fn main_with_args(args: &[String]) -> i32 {
    ffr_obs::init_log_from_env();
    let mut argv: Vec<String> = Vec::with_capacity(args.len());
    for arg in args {
        match arg.as_str() {
            "--quiet" => ffr_obs::set_log_level(ffr_obs::Level::Error),
            "-v" | "--verbose" => ffr_obs::set_log_level(ffr_obs::Level::Debug),
            _ => argv.push(arg.clone()),
        }
    }
    let Some((command, rest)) = argv.split_first() else {
        eprint!("{USAGE}");
        return 64;
    };
    let parsed = match Args::parse(rest) {
        Ok(a) => a,
        Err(e) => {
            ffr_obs::error!("error: {e}");
            return 64;
        }
    };
    let result = match command.as_str() {
        "run" => cmd_run(parsed),
        "resume" => cmd_resume(parsed),
        "worker" => cmd_worker(parsed),
        "status" => cmd_status(parsed),
        "stats" => cmd_stats(parsed),
        "estimate" => cmd_estimate(parsed),
        "transfer" => cmd_transfer(parsed),
        "report" => cmd_report(parsed),
        "gc" => cmd_gc(parsed),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            return 0;
        }
        other => Err(format!("unknown command `{other}`; try `ffr help`")),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            ffr_obs::error!("error: {e}");
            64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn arg_parser_basics() {
        let mut args =
            Args::parse(&strs(&["--circuit", "counter", "--force", "--seed", "9"])).unwrap();
        assert_eq!(args.value("circuit").unwrap().as_deref(), Some("counter"));
        assert!(args.present("force").unwrap());
        assert_eq!(args.parsed::<u64>("seed").unwrap(), Some(9));
        args.finish().unwrap();

        let mut args = Args::parse(&strs(&["--unknown", "x"])).unwrap();
        let _ = args.take("other");
        assert!(args.finish().is_err());
        assert!(Args::parse(&strs(&["positional"])).is_err());
    }

    #[test]
    fn adaptive_spec_parsing() {
        let p = parse_adaptive("64:512:0.05").unwrap();
        assert_eq!(p.min_injections, 64);
        assert_eq!(p.max_injections, 512);
        assert_eq!(p.ci_half_width, Some(0.05));
        assert!(parse_adaptive("64:512").is_err());
        assert!(parse_adaptive("512:64:0.05").is_err());
        assert!(parse_adaptive("64:512:0.9").is_err());
    }

    #[test]
    fn policy_flag_parsing_and_exclusivity() {
        let request = |flags: &[&str]| -> Result<crate::session::RunRequest, String> {
            let mut all = vec!["--circuit", "counter"];
            all.extend_from_slice(flags);
            let mut args = Args::parse(&strs(&all)).unwrap();
            let request = run_request_from_args(&mut args)?;
            args.finish()?;
            Ok(request)
        };

        // --policy takes the canonical spec grammar…
        let r = request(&["--policy", "wilson:0.05@95:64..170"]).unwrap();
        assert_eq!(r.policy.to_string(), "wilson:0.05@95:64..170");
        let r = request(&["--policy", "fixed:96"]).unwrap();
        assert_eq!(r.policy, AdaptivePolicy::fixed(96));

        // …the legacy shorthands still work…
        let r = request(&["--injections", "64"]).unwrap();
        assert_eq!(r.policy, AdaptivePolicy::fixed(64));
        let r = request(&["--adaptive", "64:512:0.05"]).unwrap();
        assert_eq!(r.policy.to_string(), "wilson:0.05@95:64..512");
        let r = request(&[]).unwrap();
        assert_eq!(r.policy, AdaptivePolicy::fixed(170));

        // …and the three notations are mutually exclusive.
        for flags in [
            &["--policy", "fixed:96", "--injections", "64"][..],
            &["--policy", "fixed:96", "--adaptive", "64:512:0.05"][..],
            &["--injections", "64", "--adaptive", "64:512:0.05"][..],
        ] {
            let err = request(flags).unwrap_err();
            assert!(err.contains("mutually exclusive"), "{flags:?}: {err}");
        }
        assert!(request(&["--policy", "bogus:1"]).is_err());
        assert!(request(&["--injections", "0"]).is_err());
    }

    #[test]
    fn unknown_command_fails_cleanly() {
        assert_eq!(main_with_args(&strs(&["frobnicate"])), 64);
        assert_eq!(main_with_args(&strs(&["help"])), 0);
        assert_eq!(main_with_args(&[]), 64);
    }

    #[test]
    fn end_to_end_run_kill_resume_via_cli() {
        let base = std::env::temp_dir().join(format!("ffr_cli_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let out = base.join("session");
        let store = base.join("store");
        let out_s = out.to_string_lossy().into_owned();
        let store_s = store.to_string_lossy().into_owned();

        // Run with an injected stop after 2 FFs (simulated kill).
        let code = main_with_args(&strs(&[
            "run",
            "--circuit",
            "counter",
            "--out",
            &out_s,
            "--store",
            &store_s,
            "--cycles",
            "160",
            "--injections",
            "64",
            "--checkpoint-every",
            "1",
            "--stop-after-points",
            "2",
        ]));
        assert_eq!(code, 2, "interrupted run exits with 2");
        assert!(out.join("checkpoint.json").exists());
        assert!(!out.join("fdr.json").exists());

        // Status works on the partial session.
        assert_eq!(main_with_args(&strs(&["status", "--out", &out_s])), 0);

        // Resume to completion.
        let code = main_with_args(&strs(&["resume", "--out", &out_s]));
        assert_eq!(code, 0);
        assert!(out.join("fdr.json").exists());
        assert_eq!(main_with_args(&strs(&["report", "--out", &out_s])), 0);

        // A fresh run with identical parameters is served from the cache.
        let out2 = base.join("session2");
        let out2_s = out2.to_string_lossy().into_owned();
        let code = main_with_args(&strs(&[
            "run",
            "--circuit",
            "counter",
            "--out",
            &out2_s,
            "--store",
            &store_s,
            "--cycles",
            "160",
            "--injections",
            "64",
        ]));
        assert_eq!(code, 0);
        assert_eq!(
            std::fs::read(out.join("fdr.json")).unwrap(),
            std::fs::read(out2.join("fdr.json")).unwrap()
        );

        // gc --all empties the store.
        assert_eq!(
            main_with_args(&strs(&["gc", "--store", &store_s, "--all"])),
            0
        );
    }

    #[test]
    fn set_campaign_via_cli_kill_resume_report() {
        let base = std::env::temp_dir().join(format!("ffr_cli_set_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let out = base.join("session");
        let out_s = out.to_string_lossy().into_owned();

        // Interrupted SET run…
        let code = main_with_args(&strs(&[
            "run",
            "--circuit",
            "counter",
            "--fault",
            "set",
            "--out",
            &out_s,
            "--cycles",
            "160",
            "--injections",
            "48",
            "--checkpoint-every",
            "1",
            "--stop-after-points",
            "2",
        ]));
        assert_eq!(code, 2, "interrupted run exits with 2");
        assert!(out.join("checkpoint.json").exists());
        assert!(!out.join("set-derating.json").exists());

        // …resumes to a SET de-rating table and reports it.
        assert_eq!(main_with_args(&strs(&["resume", "--out", &out_s])), 0);
        assert!(out.join("set-derating.json").exists());
        assert!(out.join("set-derating.csv").exists());
        assert_eq!(main_with_args(&strs(&["status", "--out", &out_s])), 0);
        assert_eq!(main_with_args(&strs(&["report", "--out", &out_s])), 0);

        // Unknown fault model fails cleanly.
        let code = main_with_args(&strs(&[
            "run",
            "--circuit",
            "counter",
            "--fault",
            "sbu",
            "--out",
            &out_s,
        ]));
        assert_eq!(code, 64);

        let _ = std::fs::remove_dir_all(&base);
    }
}
