//! Implementation of the `ffr` command-line interface.
//!
//! Subcommands:
//!
//! * `ffr run`      — start a checkpointed campaign on a named circuit,
//! * `ffr resume`   — continue an interrupted campaign session,
//! * `ffr status`   — progress of a session directory,
//! * `ffr estimate` — ML model selection + FDR prediction for the
//!   flip-flops a budgeted campaign did not measure,
//! * `ffr report`   — render the finished FDR table (and estimate),
//! * `ffr gc`       — sweep the artifact store.
//!
//! Argument parsing is hand-rolled (`--flag value` pairs) to stay
//! dependency-free; [`main_with_args`] returns the process exit code so
//! the whole CLI is unit-testable without spawning processes.

use crate::adaptive::AdaptivePolicy;
use crate::checkpoint::CampaignCheckpoint;
use crate::estimate::{self, EstimateOptions, EstimateReport};
use crate::runner::{CancelToken, RunOutcome, RunnerOptions};
use crate::session::{self, CampaignManifest, RunRequest, SessionPaths};
use crate::spec::CircuitSpec;
use crate::store::ArtifactStore;
use ffr_core::ModelKind;
use ffr_fault::{FailureClass, FaultKind, FdrTable, SetDeratingTable};
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Duration;

const USAGE: &str = "\
ffr — functional-failure-rate campaign orchestration

USAGE:
    ffr run      --circuit <name> --out <dir> [options]
    ffr resume   --out <dir> [--threads N] [--stop-after-points N]
    ffr status   --out <dir>
    ffr estimate --out <dir> [estimate options]
    ffr estimate --circuit <name> --store <dir> [run options] [estimate options]
    ffr report   --out <dir>
    ffr gc       --store <dir> [--max-age-days D | --all]

RUN OPTIONS:
    --circuit <name>        counter | lfsr | alu | traffic | mac-small | mac
    --fault <model>         seu (flip-flop upsets, default) | set
                            (combinational-net transients)
    --out <dir>             session directory (checkpoint + results)
    --store <dir>           artifact store (caches golden runs and tables)
    --seed <n>              campaign master seed            [default: 2019]
    --stim-seed <n>         stimulus seed                   [default: 1]
    --cycles <n>            testbench cycles (generic circuits) [default: 400]
    --injections <n>        fixed injections per point      [default: 170]
    --adaptive <min:max:hw> adaptive stopping: min/max injections and
                            target Wilson 95% CI half-width (e.g. 64:512:0.05)
    --budget <fraction>     measure only this fraction of injection points
                            (a seeded random subset; `ffr estimate` predicts
                            the rest)                       [default: 1.0]
    --checkpoint-every <n>  flush cadence in retired points [default: 32]
    --threads <n>           worker threads                  [default: all cores]
    --stop-after-points <n> stop (resumably) after N retirements
    --force                 ignore a cached final table

ESTIMATE OPTIONS:
    --models <a,b,…>        models to cross-validate
                            (linear,knn,svr,ridge,tree,forest,boosting,mlp)
                            [default: linear,knn,forest,boosting,mlp]
    --folds <n>             stratified CV folds             [default: 5]
    --cv-seed <n>           fold-assignment seed            [default: 2019]
    --grid <n>              hyperparameter candidates per model [default: 3]
    --store <dir>           artifact store override
    --force                 recompute even if a report is cached
";

/// Parsed `--flag value` arguments.
struct Args {
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(args: &[String]) -> Result<Args, String> {
        let mut flags = Vec::new();
        let mut iter = args.iter().peekable();
        while let Some(arg) = iter.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("unexpected argument `{arg}`"));
            };
            let value = match iter.peek() {
                Some(next) if !next.starts_with("--") => Some(iter.next().unwrap().clone()),
                _ => None,
            };
            flags.push((name.to_string(), value));
        }
        Ok(Args { flags })
    }

    fn take(&mut self, name: &str) -> Option<Option<String>> {
        let idx = self.flags.iter().position(|(n, _)| n == name)?;
        Some(self.flags.remove(idx).1)
    }

    fn value(&mut self, name: &str) -> Result<Option<String>, String> {
        match self.take(name) {
            None => Ok(None),
            Some(Some(v)) => Ok(Some(v)),
            Some(None) => Err(format!("--{name} requires a value")),
        }
    }

    fn parsed<T: std::str::FromStr>(&mut self, name: &str) -> Result<Option<T>, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.value(name)? {
            None => Ok(None),
            Some(v) => v
                .parse::<T>()
                .map(Some)
                .map_err(|e| format!("--{name}: {e}")),
        }
    }

    fn present(&mut self, name: &str) -> Result<bool, String> {
        match self.take(name) {
            None => Ok(false),
            Some(None) => Ok(true),
            Some(Some(v)) => Err(format!("--{name} takes no value (got `{v}`)")),
        }
    }

    fn finish(self) -> Result<(), String> {
        match self.flags.first() {
            None => Ok(()),
            Some((name, _)) => Err(format!("unknown option `--{name}`")),
        }
    }
}

fn parse_adaptive(spec: &str) -> Result<AdaptivePolicy, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    if parts.len() != 3 {
        return Err("expected --adaptive min:max:half_width (e.g. 64:512:0.05)".into());
    }
    let min: usize = parts[0].parse().map_err(|e| format!("adaptive min: {e}"))?;
    let max: usize = parts[1].parse().map_err(|e| format!("adaptive max: {e}"))?;
    let hw: f64 = parts[2]
        .parse()
        .map_err(|e| format!("adaptive half-width: {e}"))?;
    if min > max {
        return Err("adaptive min must not exceed max".into());
    }
    if !(hw > 0.0 && hw < 0.5) {
        return Err("adaptive half-width must be in (0, 0.5)".into());
    }
    Ok(AdaptivePolicy::adaptive(min, max, hw))
}

fn runner_options(args: &mut Args) -> Result<RunnerOptions, String> {
    Ok(RunnerOptions {
        threads: args.parsed::<usize>("threads")?,
        stop_after_points: args.parsed::<usize>("stop-after-points")?,
        ..RunnerOptions::default()
    })
}

/// CLI noun for a campaign's injection points.
fn point_noun(fault: FaultKind) -> &'static str {
    match fault {
        FaultKind::Seu => "flip-flops",
        FaultKind::Set => "nets",
    }
}

fn progress_printer() -> impl Fn(usize, usize) + Sync {
    |done, total| {
        if done % 16 == 0 || done == total {
            eprint!("\r[ffr] {done}/{total} injection points retired");
            let _ = std::io::stderr().flush();
        }
    }
}

fn print_summary(summary: &session::RunSummary) {
    eprintln!();
    let noun = point_noun(summary.fault);
    if summary.table_from_cache {
        println!(
            "served from artifact cache: {} {noun}, no simulation needed",
            summary.total_points
        );
    } else {
        println!(
            "golden run: {}",
            if summary.golden_from_cache {
                "artifact cache hit"
            } else {
                "captured (cache miss)"
            }
        );
        println!(
            "progress: {}/{} {noun} retired, {} injections executed",
            summary.completed_points, summary.total_points, summary.total_injections
        );
    }
    match summary.outcome {
        RunOutcome::Complete => {
            if let Some(path) = &summary.table_path {
                let table = match summary.fault {
                    FaultKind::Seu => "FDR table",
                    FaultKind::Set => "SET de-rating table",
                };
                println!("{table} written to {}", path.display());
            }
        }
        RunOutcome::Cancelled => {
            println!("campaign interrupted — continue with `ffr resume --out <dir>`");
        }
    }
}

/// Parse the shared `ffr run` campaign flags into a [`RunRequest`]
/// (everything except `--out` and the runner knobs). `ffr estimate`
/// reuses this in store mode to reconstruct a campaign's fingerprint.
fn run_request_from_args(args: &mut Args) -> Result<RunRequest, String> {
    let circuit: CircuitSpec = args
        .value("circuit")?
        .ok_or("--circuit is required")?
        .parse()?;
    let mut request = RunRequest::new(circuit);
    if let Some(fault) = args.value("fault")? {
        request.fault = FaultKind::parse_cli(&fault)?;
    }
    request.store = args.value("store")?.map(PathBuf::from);
    if let Some(seed) = args.parsed::<u64>("seed")? {
        request.seed = seed;
    }
    if let Some(seed) = args.parsed::<u64>("stim-seed")? {
        request.stim_seed = seed;
    }
    if let Some(cycles) = args.parsed::<u64>("cycles")? {
        request.cycles = cycles;
    }
    let injections = args.parsed::<usize>("injections")?;
    let adaptive = args.value("adaptive")?;
    request.policy = match (injections, adaptive) {
        (Some(_), Some(_)) => {
            return Err("--injections and --adaptive are mutually exclusive \
                        (the adaptive spec carries its own max)"
                .into())
        }
        (None, Some(spec)) => parse_adaptive(&spec)?,
        (Some(n), None) => AdaptivePolicy::fixed(n),
        (None, None) => AdaptivePolicy::fixed(170),
    };
    if let Some(budget) = args.parsed::<f64>("budget")? {
        request.budget = budget;
    }
    if let Some(every) = args.parsed::<usize>("checkpoint-every")? {
        request.checkpoint_every = every.max(1);
    }
    Ok(request)
}

fn cmd_run(mut args: Args) -> Result<i32, String> {
    let out: PathBuf = args.value("out")?.ok_or("--out is required")?.into();
    let mut request = run_request_from_args(&mut args)?;
    request.force = args.present("force")?;
    let options = runner_options(&mut args)?;
    args.finish()?;

    let summary = session::run(
        &request,
        &out,
        &options,
        &CancelToken::new(),
        progress_printer(),
    )
    .map_err(|e| e.to_string())?;
    print_summary(&summary);
    Ok(match summary.outcome {
        RunOutcome::Complete => 0,
        RunOutcome::Cancelled => 2,
    })
}

fn cmd_resume(mut args: Args) -> Result<i32, String> {
    let out: PathBuf = args.value("out")?.ok_or("--out is required")?.into();
    let options = runner_options(&mut args)?;
    args.finish()?;
    let summary = session::resume(&out, &options, &CancelToken::new(), progress_printer())
        .map_err(|e| e.to_string())?;
    print_summary(&summary);
    Ok(match summary.outcome {
        RunOutcome::Complete => 0,
        RunOutcome::Cancelled => 2,
    })
}

fn cmd_status(mut args: Args) -> Result<i32, String> {
    let out: PathBuf = args.value("out")?.ok_or("--out is required")?.into();
    args.finish()?;
    let paths = SessionPaths::new(&out);
    let manifest = CampaignManifest::load(&paths.manifest()).map_err(|e| e.to_string())?;
    println!("campaign session {}", out.display());
    println!("  circuit:     {}", manifest.circuit);
    println!("  fault:       {}", manifest.fault);
    println!("  seed:        {}", manifest.seed);
    println!("  policy:      {}", manifest.policy.describe());
    println!("  fingerprint: {}", manifest.fingerprint);
    match CampaignCheckpoint::load(&paths.checkpoint()) {
        Ok(cp) => {
            println!(
                "  progress:    {}/{} {} retired, {} injections",
                cp.completed_points(),
                cp.num_points,
                point_noun(manifest.fault),
                cp.total_injections()
            );
            println!(
                "  state:       {}",
                if cp.is_complete() {
                    "complete"
                } else {
                    "resumable (run `ffr resume`)"
                }
            );
        }
        Err(_) => println!("  progress:    not started"),
    }
    let table = paths.table_json(manifest.fault);
    if table.exists() {
        println!("  results:     {}", table.display());
    }
    Ok(0)
}

/// Parse the `ffr estimate`-specific flags (everything except `--out` /
/// `--store` and the campaign flags of store mode).
fn estimate_options_from_args(args: &mut Args) -> Result<EstimateOptions, String> {
    let mut options = EstimateOptions::default();
    if let Some(models) = args.value("models")? {
        options.models = models
            .split(',')
            .map(|m| ModelKind::parse_cli(m.trim()))
            .collect::<Result<Vec<_>, _>>()?;
        if options.models.is_empty() {
            return Err("--models needs at least one model".into());
        }
    }
    if let Some(folds) = args.parsed::<usize>("folds")? {
        if folds < 2 {
            return Err("--folds must be at least 2".into());
        }
        options.folds = folds;
    }
    if let Some(seed) = args.parsed::<u64>("cv-seed")? {
        options.cv_seed = seed;
    }
    if let Some(grid) = args.parsed::<usize>("grid")? {
        if grid == 0 {
            return Err("--grid must be positive".into());
        }
        options.grid_budget = grid;
    }
    options.force = args.present("force")?;
    Ok(options)
}

fn print_estimate_report(r: &EstimateReport) {
    println!(
        "estimate for {}: {}/{} flip-flops measured (budget {:.0} %)",
        r.circuit,
        r.measured_ffs,
        r.total_ffs,
        r.budget * 100.0
    );
    println!(
        "  {:<22} {:<26} {:>7} {:>7} {:>7} {:>7}",
        "model", "best params", "MAE", "RMSE", "EV", "R2"
    );
    for m in &r.models {
        let marker = if m.model == r.best_model { '*' } else { ' ' };
        println!(
            "{marker} {:<22} {:<26} {:>7.3} {:>7.3} {:>7.3} {:>7.3}",
            m.display_name, m.best_params, m.cv_mae, m.cv_rmse, m.cv_ev, m.cv_r2
        );
    }
    println!(
        "circuit-level FFR: {:.4} (measured-subset mean {:.4})",
        r.circuit_ffr, r.measured_fdr_mean
    );
    println!(
        "injections: {} spent vs {} for a full campaign ({:.1}x savings)",
        r.injections_spent, r.full_campaign_injections, r.injection_savings
    );
}

fn cmd_estimate(mut args: Args) -> Result<i32, String> {
    let out = args.value("out")?.map(PathBuf::from);
    let summary = match out {
        Some(out) => {
            let mut options = estimate_options_from_args(&mut args)?;
            options.store = args.value("store")?.map(PathBuf::from);
            args.finish()?;
            estimate::estimate_session(&out, &options).map_err(|e| e.to_string())?
        }
        None => {
            let request = run_request_from_args(&mut args)?;
            let options = estimate_options_from_args(&mut args)?;
            args.finish()?;
            estimate::estimate_from_store(&request, &options).map_err(|e| e.to_string())?
        }
    };
    if summary.report_from_cache {
        println!("served from artifact cache: no model was refitted");
    }
    print_estimate_report(&summary.report);
    if let Some(path) = &summary.json_path {
        println!("estimate written to {}", path.display());
    }
    Ok(0)
}

fn cmd_report(mut args: Args) -> Result<i32, String> {
    let out: PathBuf = args.value("out")?.ok_or("--out is required")?.into();
    args.finish()?;
    let paths = SessionPaths::new(&out);
    let manifest = CampaignManifest::load(&paths.manifest()).map_err(|e| e.to_string())?;
    match manifest.fault {
        FaultKind::Seu => {
            let table = FdrTable::load_json(&paths.fdr_json())
                .map_err(|e| format!("no finished campaign in {}: {e}", out.display()))?;
            println!(
                "FDR table: {} flip-flops ({} covered)",
                table.num_ffs(),
                table.covered().count()
            );
            println!("circuit-level FDR: {:.4}", table.circuit_fdr());
            println!("\nfailure-class totals:");
            for (class, count) in table.class_totals() {
                if class != FailureClass::Benign && count > 0 {
                    println!("  {class:<20} {count}");
                }
            }
            let injections: usize = table.covered().map(|r| r.injections()).sum();
            println!("total injections: {injections}");
            println!("\nFDR histogram (10 bins):");
            print!("{}", table.histogram(10));
            if paths.estimate_json().exists() {
                let report =
                    EstimateReport::load_json(&paths.estimate_json()).map_err(|e| e.to_string())?;
                println!();
                print_estimate_report(&report);
            }
        }
        FaultKind::Set => {
            let table = SetDeratingTable::load_json(&paths.set_json())
                .map_err(|e| format!("no finished campaign in {}: {e}", out.display()))?;
            println!("SET de-rating table: {} nets covered", table.num_nets());
            println!(
                "circuit-level SET de-rating: {:.4}",
                table.circuit_derating()
            );
            println!("\nfailure-class totals:");
            for (class, count) in table.class_totals() {
                if class != FailureClass::Benign && count > 0 {
                    println!("  {class:<20} {count}");
                }
            }
            let injections: usize = table.covered().map(|r| r.injections()).sum();
            println!("total injections: {injections}");
            println!("\nde-rating histogram (10 bins):");
            print!("{}", table.histogram(10));
        }
    }
    Ok(0)
}

fn cmd_gc(mut args: Args) -> Result<i32, String> {
    let store_dir: PathBuf = args.value("store")?.ok_or("--store is required")?.into();
    let max_age_days = args.parsed::<u64>("max-age-days")?;
    let all = args.present("all")?;
    args.finish()?;
    if all && max_age_days.is_some() {
        return Err("--all and --max-age-days are mutually exclusive".into());
    }
    let max_age = if all {
        None
    } else {
        Some(Duration::from_secs(
            60 * 60 * 24 * max_age_days.unwrap_or(30),
        ))
    };
    let store = ArtifactStore::open(&store_dir).map_err(|e| e.to_string())?;
    let report = store.gc(max_age).map_err(|e| e.to_string())?;
    println!(
        "gc: removed {} artifacts ({} bytes), kept {}",
        report.removed, report.reclaimed_bytes, report.kept
    );
    Ok(0)
}

/// Run the CLI with explicit arguments (exit-code return; testable).
pub fn main_with_args(args: &[String]) -> i32 {
    let Some((command, rest)) = args.split_first() else {
        eprint!("{USAGE}");
        return 64;
    };
    let parsed = match Args::parse(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return 64;
        }
    };
    let result = match command.as_str() {
        "run" => cmd_run(parsed),
        "resume" => cmd_resume(parsed),
        "status" => cmd_status(parsed),
        "estimate" => cmd_estimate(parsed),
        "report" => cmd_report(parsed),
        "gc" => cmd_gc(parsed),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            return 0;
        }
        other => Err(format!("unknown command `{other}`; try `ffr help`")),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn arg_parser_basics() {
        let mut args =
            Args::parse(&strs(&["--circuit", "counter", "--force", "--seed", "9"])).unwrap();
        assert_eq!(args.value("circuit").unwrap().as_deref(), Some("counter"));
        assert!(args.present("force").unwrap());
        assert_eq!(args.parsed::<u64>("seed").unwrap(), Some(9));
        args.finish().unwrap();

        let mut args = Args::parse(&strs(&["--unknown", "x"])).unwrap();
        let _ = args.take("other");
        assert!(args.finish().is_err());
        assert!(Args::parse(&strs(&["positional"])).is_err());
    }

    #[test]
    fn adaptive_spec_parsing() {
        let p = parse_adaptive("64:512:0.05").unwrap();
        assert_eq!(p.min_injections, 64);
        assert_eq!(p.max_injections, 512);
        assert_eq!(p.ci_half_width, Some(0.05));
        assert!(parse_adaptive("64:512").is_err());
        assert!(parse_adaptive("512:64:0.05").is_err());
        assert!(parse_adaptive("64:512:0.9").is_err());
    }

    #[test]
    fn unknown_command_fails_cleanly() {
        assert_eq!(main_with_args(&strs(&["frobnicate"])), 64);
        assert_eq!(main_with_args(&strs(&["help"])), 0);
        assert_eq!(main_with_args(&[]), 64);
    }

    #[test]
    fn end_to_end_run_kill_resume_via_cli() {
        let base = std::env::temp_dir().join(format!("ffr_cli_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let out = base.join("session");
        let store = base.join("store");
        let out_s = out.to_string_lossy().into_owned();
        let store_s = store.to_string_lossy().into_owned();

        // Run with an injected stop after 2 FFs (simulated kill).
        let code = main_with_args(&strs(&[
            "run",
            "--circuit",
            "counter",
            "--out",
            &out_s,
            "--store",
            &store_s,
            "--cycles",
            "160",
            "--injections",
            "64",
            "--checkpoint-every",
            "1",
            "--stop-after-points",
            "2",
        ]));
        assert_eq!(code, 2, "interrupted run exits with 2");
        assert!(out.join("checkpoint.json").exists());
        assert!(!out.join("fdr.json").exists());

        // Status works on the partial session.
        assert_eq!(main_with_args(&strs(&["status", "--out", &out_s])), 0);

        // Resume to completion.
        let code = main_with_args(&strs(&["resume", "--out", &out_s]));
        assert_eq!(code, 0);
        assert!(out.join("fdr.json").exists());
        assert_eq!(main_with_args(&strs(&["report", "--out", &out_s])), 0);

        // A fresh run with identical parameters is served from the cache.
        let out2 = base.join("session2");
        let out2_s = out2.to_string_lossy().into_owned();
        let code = main_with_args(&strs(&[
            "run",
            "--circuit",
            "counter",
            "--out",
            &out2_s,
            "--store",
            &store_s,
            "--cycles",
            "160",
            "--injections",
            "64",
        ]));
        assert_eq!(code, 0);
        assert_eq!(
            std::fs::read(out.join("fdr.json")).unwrap(),
            std::fs::read(out2.join("fdr.json")).unwrap()
        );

        // gc --all empties the store.
        assert_eq!(
            main_with_args(&strs(&["gc", "--store", &store_s, "--all"])),
            0
        );
    }

    #[test]
    fn set_campaign_via_cli_kill_resume_report() {
        let base = std::env::temp_dir().join(format!("ffr_cli_set_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let out = base.join("session");
        let out_s = out.to_string_lossy().into_owned();

        // Interrupted SET run…
        let code = main_with_args(&strs(&[
            "run",
            "--circuit",
            "counter",
            "--fault",
            "set",
            "--out",
            &out_s,
            "--cycles",
            "160",
            "--injections",
            "48",
            "--checkpoint-every",
            "1",
            "--stop-after-points",
            "2",
        ]));
        assert_eq!(code, 2, "interrupted run exits with 2");
        assert!(out.join("checkpoint.json").exists());
        assert!(!out.join("set-derating.json").exists());

        // …resumes to a SET de-rating table and reports it.
        assert_eq!(main_with_args(&strs(&["resume", "--out", &out_s])), 0);
        assert!(out.join("set-derating.json").exists());
        assert!(out.join("set-derating.csv").exists());
        assert_eq!(main_with_args(&strs(&["status", "--out", &out_s])), 0);
        assert_eq!(main_with_args(&strs(&["report", "--out", &out_s])), 0);

        // Unknown fault model fails cleanly.
        let code = main_with_args(&strs(&[
            "run",
            "--circuit",
            "counter",
            "--fault",
            "sbu",
            "--out",
            &out_s,
        ]));
        assert_eq!(code, 64);

        let _ = std::fs::remove_dir_all(&base);
    }
}
