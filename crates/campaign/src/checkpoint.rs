//! Durable campaign progress: per-flip-flop tallies that can be saved
//! mid-run and resumed bit-identically.
//!
//! The unit of resumable work is a **64-injection chunk** of one
//! flip-flop (one bit-parallel simulation batch). A flip-flop's injection
//! plan is fully determined by `(seed, ff, window, max_injections)` via
//! [`ffr_fault::sample_injection_times`], so the checkpoint does not need
//! to persist RNG state — only how far into the plan each flip-flop got
//! and the class tallies accumulated so far. Tallies of disjoint plan
//! slices add, and the adaptive stopping rule is a pure function of the
//! tallies, so a resumed campaign makes exactly the decisions an
//! uninterrupted one would have made.

use crate::adaptive::AdaptivePolicy;
use ffr_fault::{FailureClass, FdrTable, FfCampaignResult};
use ffr_netlist::FfId;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// Checkpoint file format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Progress of one flip-flop's injection plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FfProgress {
    /// Flip-flop index.
    pub ff: u32,
    /// Injections executed so far (a multiple of the chunk size except
    /// when the plan is exhausted).
    pub injections_done: usize,
    /// Per-class tallies so far, indexed like [`FailureClass::ALL`].
    pub counts: Vec<usize>,
    /// `true` once the stopping rule has retired this flip-flop.
    pub complete: bool,
}

impl FfProgress {
    /// Fresh, empty progress for a flip-flop.
    pub fn new(ff: FfId) -> FfProgress {
        FfProgress {
            ff: ff.index() as u32,
            injections_done: 0,
            counts: vec![0; FailureClass::ALL.len()],
            complete: false,
        }
    }

    /// Failures observed so far.
    pub fn failures(&self) -> usize {
        ffr_fault::failures_in(&self.counts)
    }

    /// Fold one chunk's tallies into this progress record.
    pub fn absorb(&mut self, chunk_counts: &[usize; FailureClass::ALL.len()], injections: usize) {
        for (total, &n) in self.counts.iter_mut().zip(chunk_counts.iter()) {
            *total += n;
        }
        self.injections_done += injections;
    }
}

/// The campaign parameters a checkpoint binds to.
///
/// Stored inside the checkpoint so `resume` can verify it is continuing
/// the same campaign (same plan, same stopping rule) before trusting the
/// tallies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointParams {
    /// Master campaign seed.
    pub seed: u64,
    /// Injection window start (inclusive).
    pub window_start: u64,
    /// Injection window end (exclusive).
    pub window_end: u64,
    /// Adaptive stopping policy.
    pub policy: AdaptivePolicy,
}

/// A resumable snapshot of campaign progress.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignCheckpoint {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Store key of the netlist + campaign config this checkpoint belongs
    /// to (rendered like [`crate::StoreKey`]).
    pub fingerprint: String,
    /// The campaign parameters.
    pub params: CheckpointParams,
    /// Number of flip-flops in the circuit.
    pub num_ffs: usize,
    /// Per-flip-flop progress, indexed by flip-flop.
    pub ffs: Vec<FfProgress>,
}

impl CampaignCheckpoint {
    /// Fresh checkpoint covering every flip-flop of a circuit.
    pub fn fresh(
        fingerprint: String,
        params: CheckpointParams,
        num_ffs: usize,
    ) -> CampaignCheckpoint {
        CampaignCheckpoint {
            version: CHECKPOINT_VERSION,
            fingerprint,
            params,
            num_ffs,
            ffs: (0..num_ffs)
                .map(|i| FfProgress::new(FfId::from_index(i)))
                .collect(),
        }
    }

    /// Number of retired flip-flops.
    pub fn completed_ffs(&self) -> usize {
        self.ffs.iter().filter(|p| p.complete).count()
    }

    /// Total injections executed so far.
    pub fn total_injections(&self) -> usize {
        self.ffs.iter().map(|p| p.injections_done).sum()
    }

    /// `true` once every flip-flop is retired.
    pub fn is_complete(&self) -> bool {
        self.ffs.iter().all(|p| p.complete)
    }

    /// Assemble the final FDR table from a completed campaign.
    ///
    /// # Panics
    ///
    /// Panics if the campaign is not complete.
    pub fn to_fdr_table(&self) -> FdrTable {
        assert!(
            self.is_complete(),
            "campaign still has unfinished flip-flops"
        );
        let results = self
            .ffs
            .iter()
            .map(|p| {
                let mut counts = [0usize; FailureClass::ALL.len()];
                counts.copy_from_slice(&p.counts);
                FfCampaignResult::new(FfId::from_index(p.ff as usize), counts)
            })
            .collect();
        FdrTable::from_results(self.num_ffs, results, self.params.policy.max_injections)
    }

    /// Serialize to pretty JSON at `path` via a temp file + atomic rename,
    /// so a kill mid-save leaves the previous checkpoint intact.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_string_pretty(self).map_err(io::Error::other)?;
        crate::store::atomic_write(path, &json)
    }

    /// Load a checkpoint previously written by [`CampaignCheckpoint::save`].
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, undecodable files, or a version mismatch.
    pub fn load(path: &Path) -> io::Result<CampaignCheckpoint> {
        let text = std::fs::read_to_string(path)?;
        let cp: CampaignCheckpoint = serde_json::from_str(&text).map_err(io::Error::other)?;
        if cp.version != CHECKPOINT_VERSION {
            return Err(io::Error::other(format!(
                "checkpoint version {} unsupported (expected {CHECKPOINT_VERSION})",
                cp.version
            )));
        }
        Ok(cp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CheckpointParams {
        CheckpointParams {
            seed: 7,
            window_start: 10,
            window_end: 100,
            policy: AdaptivePolicy::fixed(128),
        }
    }

    #[test]
    fn fresh_checkpoint_is_empty() {
        let cp = CampaignCheckpoint::fresh("k".into(), params(), 4);
        assert_eq!(cp.ffs.len(), 4);
        assert_eq!(cp.completed_ffs(), 0);
        assert_eq!(cp.total_injections(), 0);
        assert!(!cp.is_complete());
    }

    #[test]
    fn absorb_accumulates() {
        let mut p = FfProgress::new(FfId::from_index(2));
        let mut chunk = [0usize; FailureClass::ALL.len()];
        chunk[FailureClass::Benign.tally_index()] = 60;
        chunk[FailureClass::OutputMismatch.tally_index()] = 4;
        p.absorb(&chunk, 64);
        p.absorb(&chunk, 64);
        assert_eq!(p.injections_done, 128);
        assert_eq!(p.failures(), 8);
        assert_eq!(p.counts[FailureClass::Benign.tally_index()], 120);
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("ffr_ckpt_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let mut cp = CampaignCheckpoint::fresh("abc".into(), params(), 3);
        cp.ffs[1].complete = true;
        cp.ffs[1].injections_done = 128;
        cp.save(&path).unwrap();
        let loaded = CampaignCheckpoint::load(&path).unwrap();
        assert_eq!(loaded, cp);
    }

    #[test]
    fn to_fdr_table_requires_completion() {
        let mut cp = CampaignCheckpoint::fresh("k".into(), params(), 2);
        for p in &mut cp.ffs {
            p.counts[FailureClass::Benign.tally_index()] = 48;
            p.counts[FailureClass::OutputMismatch.tally_index()] = 16;
            p.injections_done = 64;
            p.complete = true;
        }
        let table = cp.to_fdr_table();
        assert_eq!(table.num_ffs(), 2);
        assert_eq!(table.fdr(FfId::from_index(0)), Some(0.25));
    }
}
