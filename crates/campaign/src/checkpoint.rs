//! Durable campaign progress: per-injection-point tallies that can be
//! saved mid-run and resumed bit-identically.
//!
//! The unit of resumable work is a **64-injection chunk** of one
//! [`InjectionPoint`] (one bit-parallel simulation batch) — a flip-flop
//! for SEU campaigns, a combinational net for SET campaigns. A point's
//! injection plan is fully determined by `(seed, point, window,
//! max_injections)` via [`ffr_fault::sample_injection_times`] on
//! [`InjectionPoint::stream`], so the checkpoint does not need to persist
//! RNG state — only how far into the plan each point got and the class
//! tallies accumulated so far. Tallies of disjoint plan slices add, and
//! the adaptive stopping rule is a pure function of the tallies, so a
//! resumed campaign makes exactly the decisions an uninterrupted one
//! would have made.

use crate::adaptive::AdaptivePolicy;
use ffr_fault::{
    FailureClass, FaultKind, FdrTable, FfCampaignResult, InjectionPoint, NetSetResult,
    SetDeratingTable,
};
use ffr_netlist::{FfId, NetId};
use serde::{Deserialize, Serialize};
use std::io;
use std::ops::Range;
use std::path::Path;

/// Checkpoint file format version (2: fault-model-generic point records).
pub const CHECKPOINT_VERSION: u32 = 2;

/// Shard checkpoint file format version.
pub const SHARD_VERSION: u32 = 1;

/// Progress of one injection point's plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PointProgress {
    /// Raw index of the point within its fault model's id space
    /// (flip-flop index for SEU, net index for SET) — see
    /// [`InjectionPoint::raw_index`].
    pub point: u32,
    /// Injections executed so far (a multiple of the chunk size except
    /// when the plan is exhausted).
    pub injections_done: usize,
    /// Per-class tallies so far, indexed like [`FailureClass::ALL`].
    pub counts: Vec<usize>,
    /// `true` once the stopping rule has retired this point.
    pub complete: bool,
}

impl PointProgress {
    /// Fresh, empty progress for an injection point.
    pub fn new(point: u32) -> PointProgress {
        PointProgress {
            point,
            injections_done: 0,
            counts: vec![0; FailureClass::ALL.len()],
            complete: false,
        }
    }

    /// Failures observed so far.
    pub fn failures(&self) -> usize {
        ffr_fault::failures_in(&self.counts)
    }

    /// Fold one chunk's tallies into this progress record.
    pub fn absorb(&mut self, chunk_counts: &[usize; FailureClass::ALL.len()], injections: usize) {
        for (total, &n) in self.counts.iter_mut().zip(chunk_counts.iter()) {
            *total += n;
        }
        self.injections_done += injections;
    }
}

/// The campaign parameters a checkpoint binds to.
///
/// Stored inside the checkpoint so `resume` can verify it is continuing
/// the same campaign (same fault model, same plan, same stopping rule)
/// before trusting the tallies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointParams {
    /// Fault model of the campaign ([`FaultKind::Seu`] targets every
    /// flip-flop; [`FaultKind::Set`] targets combinational nets).
    pub fault: FaultKind,
    /// Master campaign seed.
    pub seed: u64,
    /// Injection window start (inclusive).
    pub window_start: u64,
    /// Injection window end (exclusive).
    pub window_end: u64,
    /// Adaptive stopping policy.
    pub policy: AdaptivePolicy,
}

/// A resumable snapshot of campaign progress.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignCheckpoint {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Store key of the netlist + campaign config this checkpoint belongs
    /// to (rendered like [`crate::StoreKey`]).
    pub fingerprint: String,
    /// The campaign parameters.
    pub params: CheckpointParams,
    /// Number of targeted injection points.
    pub num_points: usize,
    /// Per-point progress.
    pub points: Vec<PointProgress>,
}

impl CampaignCheckpoint {
    /// Fresh checkpoint covering the given raw point ids (see
    /// [`InjectionPoint::raw_index`]).
    pub fn fresh(
        fingerprint: String,
        params: CheckpointParams,
        point_ids: impl IntoIterator<Item = u32>,
    ) -> CampaignCheckpoint {
        let points: Vec<PointProgress> = point_ids.into_iter().map(PointProgress::new).collect();
        CampaignCheckpoint {
            version: CHECKPOINT_VERSION,
            fingerprint,
            params,
            num_points: points.len(),
            points,
        }
    }

    /// Fresh SEU checkpoint covering every flip-flop of a circuit.
    pub fn fresh_seu(
        fingerprint: String,
        params: CheckpointParams,
        num_ffs: usize,
    ) -> CampaignCheckpoint {
        assert_eq!(params.fault, FaultKind::Seu);
        CampaignCheckpoint::fresh(fingerprint, params, 0..num_ffs as u32)
    }

    /// Fresh SET checkpoint covering the given nets (typically
    /// [`ffr_sim::CompiledCircuit::comb_output_nets`]).
    pub fn fresh_set(
        fingerprint: String,
        params: CheckpointParams,
        nets: &[NetId],
    ) -> CampaignCheckpoint {
        assert_eq!(params.fault, FaultKind::Set);
        CampaignCheckpoint::fresh(fingerprint, params, nets.iter().map(|n| n.index() as u32))
    }

    /// The injection point of one progress record.
    pub fn point(&self, index: usize) -> InjectionPoint {
        InjectionPoint::from_raw(self.params.fault, self.points[index].point as usize)
    }

    /// Number of retired points.
    pub fn completed_points(&self) -> usize {
        self.points.iter().filter(|p| p.complete).count()
    }

    /// Total injections executed so far.
    pub fn total_injections(&self) -> usize {
        self.points.iter().map(|p| p.injections_done).sum()
    }

    /// `true` once every point is retired.
    pub fn is_complete(&self) -> bool {
        self.points.iter().all(|p| p.complete)
    }

    /// Assemble the final FDR table from a completed SEU campaign that
    /// covered every flip-flop of the circuit.
    ///
    /// # Panics
    ///
    /// Panics if the campaign is not complete or not an SEU campaign.
    pub fn to_fdr_table(&self) -> FdrTable {
        self.to_fdr_table_for(self.num_points)
    }

    /// Assemble the FDR table of a completed SEU campaign over a circuit
    /// with `num_ffs` flip-flops. For budgeted campaigns the checkpoint
    /// covers only a measured subset, so `num_ffs` exceeds
    /// [`CampaignCheckpoint::num_points`] and the table reports the
    /// unmeasured flip-flops as uncovered (`fdr() == None`) — exactly the
    /// partial table `ffr estimate` trains on.
    ///
    /// # Panics
    ///
    /// Panics if the campaign is not complete, not an SEU campaign, or a
    /// point id is out of range for `num_ffs`.
    pub fn to_fdr_table_for(&self, num_ffs: usize) -> FdrTable {
        assert_eq!(
            self.params.fault,
            FaultKind::Seu,
            "FDR tables come from SEU campaigns (use to_set_table)"
        );
        assert!(
            self.is_complete(),
            "campaign still has unfinished injection points"
        );
        let results = self
            .points
            .iter()
            .map(|p| {
                let mut counts = [0usize; FailureClass::ALL.len()];
                counts.copy_from_slice(&p.counts);
                FfCampaignResult::new(FfId::from_index(p.point as usize), counts)
            })
            .collect();
        FdrTable::from_results(num_ffs, results, self.params.policy.max_injections)
    }

    /// Assemble the final de-rating table from a completed SET campaign.
    ///
    /// # Panics
    ///
    /// Panics if the campaign is not complete or not a SET campaign.
    pub fn to_set_table(&self) -> SetDeratingTable {
        assert_eq!(
            self.params.fault,
            FaultKind::Set,
            "de-rating tables come from SET campaigns (use to_fdr_table)"
        );
        assert!(
            self.is_complete(),
            "campaign still has unfinished injection points"
        );
        let results = self
            .points
            .iter()
            .map(|p| {
                let mut counts = [0usize; FailureClass::ALL.len()];
                counts.copy_from_slice(&p.counts);
                NetSetResult::new(NetId::from_index(p.point as usize), counts)
            })
            .collect();
        SetDeratingTable::from_results(results, self.params.policy.max_injections)
    }

    /// Serialize to pretty JSON at `path` via a temp file + atomic rename,
    /// so a kill mid-save leaves the previous checkpoint intact.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_string_pretty(self).map_err(io::Error::other)?;
        crate::store::atomic_write(path, &json)
    }

    /// [`CampaignCheckpoint::save`] plus flush-latency telemetry: the
    /// serialize-and-rename time lands in the `checkpoint.flush_us`
    /// histogram of `recorder`, so `ffr stats` can report how much of a
    /// campaign went into durability.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save_recorded(&self, path: &Path, recorder: &ffr_obs::Recorder) -> io::Result<()> {
        if !recorder.enabled() {
            return self.save(path);
        }
        let t0 = std::time::Instant::now();
        let result = self.save(path);
        recorder.observe_us("checkpoint.flush_us", t0.elapsed().as_micros() as u64);
        recorder.count("checkpoint.flushes", 1);
        result
    }

    /// Load a checkpoint previously written by [`CampaignCheckpoint::save`].
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, undecodable files, or a version mismatch.
    /// The version is probed before full deserialization, so a v1
    /// checkpoint reports "version 1 unsupported" rather than a
    /// missing-field decode error.
    pub fn load(path: &Path) -> io::Result<CampaignCheckpoint> {
        let text = std::fs::read_to_string(path)?;
        match crate::store::probe_version(&text) {
            Some(v) if v != CHECKPOINT_VERSION as u64 => {
                return Err(io::Error::other(format!(
                    "checkpoint version {v} unsupported (expected {CHECKPOINT_VERSION})"
                )))
            }
            _ => {}
        }
        serde_json::from_str(&text).map_err(io::Error::other)
    }

    /// Extract the shard covering point indices `range` (a snapshot of
    /// this checkpoint's records, stamped with the flushing worker's id).
    ///
    /// # Panics
    ///
    /// Panics if `range` exceeds the point list.
    pub fn shard(&self, worker: &str, range: Range<usize>) -> ShardCheckpoint {
        ShardCheckpoint {
            version: SHARD_VERSION,
            fingerprint: self.fingerprint.clone(),
            worker: worker.to_string(),
            range_start: range.start,
            range_end: range.end,
            points: self.points[range].to_vec(),
        }
    }

    /// Merge a shard's records into this checkpoint, point-indexed.
    ///
    /// The merge is **deterministic and order-independent**: for every
    /// point the record with more executed injections wins, and because a
    /// point's injection plan and stopping decisions are pure functions
    /// of `(seed, point, window, policy)`, two records with equal
    /// `injections_done` for the same point are *identical* — no matter
    /// which worker produced them, or whether an expired lease made two
    /// workers compute the same range. Merging any set of shards (in any
    /// order, with any overlap) into the same base therefore yields a
    /// byte-identical checkpoint, and hence a byte-identical final table.
    ///
    /// Returns how many point records the shard advanced.
    ///
    /// # Errors
    ///
    /// Fails if the shard belongs to a different campaign (fingerprint),
    /// covers points outside this checkpoint, or its point ids do not
    /// match the checkpoint's at the same indices.
    pub fn merge_shard(&mut self, shard: &ShardCheckpoint) -> io::Result<usize> {
        if shard.fingerprint != self.fingerprint {
            return Err(io::Error::other(format!(
                "shard fingerprint {} does not match campaign {}",
                shard.fingerprint, self.fingerprint
            )));
        }
        if shard.range_end > self.points.len()
            || shard.range_start > shard.range_end
            || shard.points.len() != shard.range_end - shard.range_start
        {
            return Err(io::Error::other(format!(
                "shard range {}..{} ({} records) does not fit a {}-point campaign",
                shard.range_start,
                shard.range_end,
                shard.points.len(),
                self.points.len()
            )));
        }
        let mut advanced = 0;
        for (offset, record) in shard.points.iter().enumerate() {
            let index = shard.range_start + offset;
            let mine = &mut self.points[index];
            if record.point != mine.point {
                return Err(io::Error::other(format!(
                    "shard point id {} at index {index} does not match campaign point id {}",
                    record.point, mine.point
                )));
            }
            if record.injections_done > mine.injections_done
                || (record.injections_done == mine.injections_done
                    && record.complete
                    && !mine.complete)
            {
                *mine = record.clone();
                advanced += 1;
            }
        }
        Ok(advanced)
    }
}

/// A worker's durable progress over one contiguous range of a campaign's
/// injection points — the unit of crash-safe state in distributed
/// draining. Each worker flushes only the shards of the lease ranges it
/// holds (atomic renames, like the main checkpoint), so workers never
/// contend on one file; [`CampaignCheckpoint::merge_shard`] folds shards
/// back into the full picture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardCheckpoint {
    /// Format version ([`SHARD_VERSION`]).
    pub version: u32,
    /// Campaign fingerprint this shard belongs to (must match the
    /// manifest/checkpoint before the records are trusted).
    pub fingerprint: String,
    /// Id of the worker that last flushed this shard.
    pub worker: String,
    /// First covered point index (into the campaign checkpoint's point
    /// list — *not* a raw flip-flop/net id).
    pub range_start: usize,
    /// One past the last covered point index.
    pub range_end: usize,
    /// Progress records for points `range_start..range_end`.
    pub points: Vec<PointProgress>,
}

impl ShardCheckpoint {
    /// The covered point-index range.
    pub fn range(&self) -> Range<usize> {
        self.range_start..self.range_end
    }

    /// `true` once every point in the shard is retired.
    pub fn is_complete(&self) -> bool {
        self.points.iter().all(|p| p.complete)
    }

    /// Number of retired points in the shard.
    pub fn completed_points(&self) -> usize {
        self.points.iter().filter(|p| p.complete).count()
    }

    /// Serialize to JSON at `path` via a temp file + atomic rename.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_string_pretty(self).map_err(io::Error::other)?;
        crate::store::atomic_write(path, &json)
    }

    /// Load a shard written by [`ShardCheckpoint::save`].
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, undecodable files, or a version mismatch.
    pub fn load(path: &Path) -> io::Result<ShardCheckpoint> {
        let text = std::fs::read_to_string(path)?;
        match crate::store::probe_version(&text) {
            Some(v) if v != SHARD_VERSION as u64 => {
                return Err(io::Error::other(format!(
                    "shard version {v} unsupported (expected {SHARD_VERSION})"
                )))
            }
            _ => {}
        }
        serde_json::from_str(&text).map_err(io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(fault: FaultKind) -> CheckpointParams {
        CheckpointParams {
            fault,
            seed: 7,
            window_start: 10,
            window_end: 100,
            policy: AdaptivePolicy::fixed(128),
        }
    }

    #[test]
    fn fresh_checkpoint_is_empty() {
        let cp = CampaignCheckpoint::fresh_seu("k".into(), params(FaultKind::Seu), 4);
        assert_eq!(cp.points.len(), 4);
        assert_eq!(cp.completed_points(), 0);
        assert_eq!(cp.total_injections(), 0);
        assert!(!cp.is_complete());
        assert_eq!(cp.point(2), InjectionPoint::from_raw(FaultKind::Seu, 2));
    }

    #[test]
    fn fresh_set_checkpoint_records_net_ids() {
        let nets = [NetId::from_index(9), NetId::from_index(4)];
        let cp = CampaignCheckpoint::fresh_set("k".into(), params(FaultKind::Set), &nets);
        assert_eq!(cp.num_points, 2);
        assert_eq!(cp.point(0), InjectionPoint::Set(NetId::from_index(9)));
        assert_eq!(cp.point(1), InjectionPoint::Set(NetId::from_index(4)));
    }

    #[test]
    fn absorb_accumulates() {
        let mut p = PointProgress::new(2);
        let mut chunk = [0usize; FailureClass::ALL.len()];
        chunk[FailureClass::Benign.tally_index()] = 60;
        chunk[FailureClass::OutputMismatch.tally_index()] = 4;
        p.absorb(&chunk, 64);
        p.absorb(&chunk, 64);
        assert_eq!(p.injections_done, 128);
        assert_eq!(p.failures(), 8);
        assert_eq!(p.counts[FailureClass::Benign.tally_index()], 120);
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("ffr_ckpt_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let mut cp = CampaignCheckpoint::fresh_seu("abc".into(), params(FaultKind::Seu), 3);
        cp.points[1].complete = true;
        cp.points[1].injections_done = 128;
        cp.save(&path).unwrap();
        let loaded = CampaignCheckpoint::load(&path).unwrap();
        assert_eq!(loaded, cp);
    }

    #[test]
    fn v1_checkpoint_reports_version_not_missing_fields() {
        // A PR-1-era checkpoint (version 1, pre-fault-model fields) must
        // fail with the version message, not an opaque decode error.
        let dir = std::env::temp_dir().join(format!("ffr_ckpt_v1_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        std::fs::write(
            &path,
            r#"{"version":1,"fingerprint":"x","params":{"seed":1,"window_start":0,"window_end":9,"policy":{"min_injections":1,"max_injections":1,"z":1.96,"ci_half_width":null}},"num_ffs":1,"ffs":[]}"#,
        )
        .unwrap();
        let err = CampaignCheckpoint::load(&path).unwrap_err();
        assert!(
            err.to_string().contains("version 1 unsupported"),
            "got: {err}"
        );
    }

    #[test]
    fn to_fdr_table_requires_completion() {
        let mut cp = CampaignCheckpoint::fresh_seu("k".into(), params(FaultKind::Seu), 2);
        for p in &mut cp.points {
            p.counts[FailureClass::Benign.tally_index()] = 48;
            p.counts[FailureClass::OutputMismatch.tally_index()] = 16;
            p.injections_done = 64;
            p.complete = true;
        }
        let table = cp.to_fdr_table();
        assert_eq!(table.num_ffs(), 2);
        assert_eq!(table.fdr(FfId::from_index(0)), Some(0.25));
    }

    #[test]
    fn to_set_table_from_completed_set_campaign() {
        let nets = [NetId::from_index(7), NetId::from_index(3)];
        let mut cp = CampaignCheckpoint::fresh_set("k".into(), params(FaultKind::Set), &nets);
        for p in &mut cp.points {
            p.counts[FailureClass::Benign.tally_index()] = 32;
            p.counts[FailureClass::OutputMismatch.tally_index()] = 32;
            p.injections_done = 64;
            p.complete = true;
        }
        let table = cp.to_set_table();
        assert_eq!(table.num_nets(), 2);
        assert_eq!(table.derating(NetId::from_index(3)), Some(0.5));
        assert_eq!(table.derating(NetId::from_index(5)), None);
    }

    #[test]
    fn partial_fdr_table_reports_unmeasured_ffs_uncovered() {
        // A budgeted campaign measured FFs 1 and 4 of a 6-FF circuit.
        let mut cp = CampaignCheckpoint::fresh("k".into(), params(FaultKind::Seu), [1u32, 4]);
        for p in &mut cp.points {
            p.counts[FailureClass::Benign.tally_index()] = 96;
            p.counts[FailureClass::OutputMismatch.tally_index()] = 32;
            p.injections_done = 128;
            p.complete = true;
        }
        let table = cp.to_fdr_table_for(6);
        assert_eq!(table.num_ffs(), 6);
        assert_eq!(table.covered().count(), 2);
        assert_eq!(table.fdr(FfId::from_index(1)), Some(0.25));
        assert_eq!(table.fdr(FfId::from_index(0)), None);
        assert_eq!(table.fdr(FfId::from_index(5)), None);
    }

    fn progressed(cp: &CampaignCheckpoint, index: usize, injections: usize) -> CampaignCheckpoint {
        let mut cp = cp.clone();
        cp.points[index].counts[FailureClass::Benign.tally_index()] = injections;
        cp.points[index].injections_done = injections;
        cp.points[index].complete = injections >= 128;
        cp
    }

    #[test]
    fn shard_slice_merge_round_trip() {
        let base = CampaignCheckpoint::fresh_seu("k".into(), params(FaultKind::Seu), 6);
        let worked = progressed(&progressed(&base, 2, 128), 3, 64);
        let shard = worked.shard("w1", 2..4);
        assert_eq!(shard.worker, "w1");
        assert_eq!(shard.range(), 2..4);
        assert_eq!(shard.completed_points(), 1);
        assert!(!shard.is_complete());

        // Merging the shard into a fresh base reproduces the progress.
        let mut merged = base.clone();
        assert_eq!(merged.merge_shard(&shard).unwrap(), 2);
        assert_eq!(merged, worked);
        // Idempotent: merging again advances nothing and changes nothing.
        assert_eq!(merged.merge_shard(&shard).unwrap(), 0);
        assert_eq!(merged, worked);
    }

    #[test]
    fn shard_merge_is_order_independent_and_prefers_progress() {
        let base = CampaignCheckpoint::fresh_seu("k".into(), params(FaultKind::Seu), 4);
        // Two overlapping shards of the same deterministic campaign: one
        // worker got further into point 1's plan than the other.
        let early = progressed(&base, 1, 64).shard("w1", 0..2);
        let late = progressed(&base, 1, 128).shard("w2", 1..3);
        let mut ab = base.clone();
        ab.merge_shard(&early).unwrap();
        ab.merge_shard(&late).unwrap();
        let mut ba = base.clone();
        ba.merge_shard(&late).unwrap();
        ba.merge_shard(&early).unwrap();
        assert_eq!(ab, ba, "merge order must not matter");
        assert_eq!(ab.points[1].injections_done, 128);
        assert!(ab.points[1].complete);
    }

    #[test]
    fn shard_merge_rejects_foreign_or_misaligned_shards() {
        let mut cp = CampaignCheckpoint::fresh_seu("k".into(), params(FaultKind::Seu), 4);
        let foreign = CampaignCheckpoint::fresh_seu("other".into(), params(FaultKind::Seu), 4)
            .shard("w", 0..2);
        assert!(cp.merge_shard(&foreign).is_err(), "fingerprint mismatch");

        let mut oversized = cp.shard("w", 2..4);
        oversized.range_end = 9;
        assert!(cp.merge_shard(&oversized).is_err(), "range out of bounds");

        // A budgeted campaign over different point ids at the same
        // indices must be rejected even with a (forged) fingerprint.
        let mut wrong_ids =
            CampaignCheckpoint::fresh("k".into(), params(FaultKind::Seu), [7u32, 8, 9, 10])
                .shard("w", 0..2);
        wrong_ids.fingerprint = "k".into();
        assert!(cp.merge_shard(&wrong_ids).is_err(), "point-id mismatch");
    }

    #[test]
    fn shard_save_load_round_trip_and_version_guard() {
        let dir = std::env::temp_dir().join(format!("ffr_shard_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard.json");
        let cp = CampaignCheckpoint::fresh_seu("k".into(), params(FaultKind::Seu), 5);
        let shard = progressed(&cp, 3, 128).shard("w9", 2..5);
        shard.save(&path).unwrap();
        assert_eq!(ShardCheckpoint::load(&path).unwrap(), shard);

        std::fs::write(&path, r#"{"version":99,"fingerprint":"k"}"#).unwrap();
        let err = ShardCheckpoint::load(&path).unwrap_err();
        assert!(err.to_string().contains("version 99 unsupported"), "{err}");
    }

    #[test]
    #[should_panic(expected = "SEU campaigns")]
    fn fdr_table_from_set_campaign_panics() {
        let mut cp = CampaignCheckpoint::fresh_set(
            "k".into(),
            params(FaultKind::Set),
            &[NetId::from_index(0)],
        );
        cp.points[0].complete = true;
        let _ = cp.to_fdr_table();
    }
}
