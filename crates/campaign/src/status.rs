//! Session status assembly: the library surface behind `ffr status` and
//! the `ffrd` service's `GET /campaigns/<id>/status`.
//!
//! [`gather_status`] merges the on-disk view of one campaign session —
//! manifest, single-process checkpoint, worker shards, lease files,
//! telemetry logs — into a [`StatusReport`], which serializes to the
//! `ffr status --json` document. The CLI renders the same report as
//! text; the service serves it verbatim, so the two can never drift.
//!
//! # JSON schema notes (version [`STATUS_SCHEMA_VERSION`])
//!
//! * `telemetry.injections_per_sec` is a number or **null** — never
//!   `NaN`/`inf` (which are not JSON). It is null while the rate is
//!   unknown: no telemetry record has both a positive injection count
//!   and a positive measure duration yet (e.g. a worker SIGKILLed
//!   before its first span flush, or a campaign served entirely from
//!   cache in zero measured time).
//! * `telemetry.eta_secs` is a number or null: null once complete,
//!   before any point has been retired, or while the rate is unknown.
//! * `telemetry` itself is present whenever the session has telemetry
//!   logs, even if both rates are still null; it is absent only when
//!   telemetry is disabled or the logs are empty.
//! * `leases[].expired` reflects **observed file age** (mtime vs. the
//!   local clock, the same signal reclaim uses); `expires_in_secs` is
//!   the raw stamp difference, a diagnostic that can disagree under
//!   clock skew.
//!
//! Version history: v2 made `injections_per_sec` nullable and switched
//! `expired` to observed age; v1 omitted `telemetry` whenever the rate
//! was unknown and emitted `expired` from unix-stamp comparison.

use crate::checkpoint::CampaignCheckpoint;
use crate::session::{CampaignManifest, SessionPaths};
use crate::work;
use ffr_fault::FaultKind;
use serde::Serialize;
use std::path::Path;

/// Schema version of the `ffr status --json` document (bumped on any
/// backwards-incompatible change; adding fields is compatible).
pub const STATUS_SCHEMA_VERSION: u64 = 2;

/// One lease as reported by `ffr status`.
#[derive(Debug, Clone, Serialize)]
pub struct LeaseStatus {
    /// First leased point index.
    pub range_start: usize,
    /// One past the last leased point index.
    pub range_end: usize,
    /// Holding worker id.
    pub worker: String,
    /// Seconds until the record's expiry stamp (negative once past).
    /// Diagnostic only: the stamps come from the holder's clock, so this
    /// can disagree with `expired` under cross-host clock skew.
    pub expires_in_secs: i64,
    /// `true` once the lease file has outlived its TTL without a
    /// heartbeat, by observed file age — the signal reclaim acts on.
    pub expired: bool,
}

/// One worker's aggregate progress as reported by `ffr status`.
#[derive(Debug, Clone, Serialize)]
pub struct WorkerStatus {
    /// Worker id.
    pub worker: String,
    /// Leases currently held and live.
    pub active_leases: usize,
    /// Held leases that have outlived their TTL (holder likely dead).
    pub stale_leases: usize,
    /// Shard checkpoints attributed to this worker.
    pub shards: usize,
    /// Points retired across those shards.
    pub retired_points: usize,
}

/// Campaign-level progress as reported by `ffr status`.
#[derive(Debug, Clone, Serialize)]
pub struct ProgressStatus {
    /// Injection points fully retired.
    pub completed_points: usize,
    /// Total injection points of the campaign (or a lower bound in
    /// shard-only sessions; see [`gather_status`]).
    pub total_points: usize,
    /// Injections executed so far.
    pub injections: usize,
    /// `true` once every point is retired.
    pub complete: bool,
}

/// Live rates derived from the session's telemetry logs, when available.
#[derive(Debug, Clone, Serialize)]
pub struct TelemetryStatus {
    /// Observed injection throughput (injections per worker-second of
    /// measurement), or `None` while unknown — zero injections or zero
    /// measured time so far. Never `NaN`/`inf`.
    pub injections_per_sec: Option<f64>,
    /// Estimated seconds to retire the remaining points at that rate
    /// (absent once complete, before any point has been retired, or
    /// while the rate is unknown).
    pub eta_secs: Option<u64>,
}

/// The full `ffr status` report (also the `--json` document).
#[derive(Debug, Serialize)]
pub struct StatusReport {
    /// [`STATUS_SCHEMA_VERSION`].
    pub schema_version: u64,
    /// Session directory the report describes.
    pub session: String,
    /// Circuit name from the manifest.
    pub circuit: String,
    /// Fault model (`seu` / `set`).
    pub fault: String,
    /// Campaign master seed.
    pub seed: u64,
    /// Stopping-policy spec.
    pub policy: String,
    /// Campaign fingerprint.
    pub fingerprint: String,
    /// Merged progress (base checkpoint + every shard); `None` before the
    /// campaign has any checkpoint or shard.
    pub progress: Option<ProgressStatus>,
    /// Per-worker breakdown of distributed draining (empty for
    /// single-process sessions).
    pub workers: Vec<WorkerStatus>,
    /// Live leases on disk.
    pub leases: Vec<LeaseStatus>,
    /// Shard checkpoints on disk.
    pub shard_count: usize,
    /// How many of those shards are complete.
    pub complete_shards: usize,
    /// Path of the finished table, once published.
    pub table: Option<String>,
    /// Live rate / ETA estimates from the telemetry logs (absent when
    /// telemetry is disabled or empty; see the schema notes in the
    /// [module docs](self)).
    pub telemetry: Option<TelemetryStatus>,
}

/// Rate/ETA block from merged telemetry + progress, with every division
/// edge case clamped to `None` instead of `NaN`/`inf`: zero measured
/// time, zero injections, zero completed points, completed campaigns,
/// and (defensively) any non-finite intermediate.
fn telemetry_status(
    stats: &crate::stats::CampaignStats,
    progress: Option<&ProgressStatus>,
) -> TelemetryStatus {
    let rate = stats
        .injections_per_sec()
        .filter(|r| r.is_finite() && *r > 0.0);
    let eta_secs = rate.and_then(|rate| {
        let p = progress?;
        if p.complete || p.completed_points == 0 {
            return None;
        }
        let per_point = p.injections as f64 / p.completed_points as f64;
        let remaining = p.total_points.saturating_sub(p.completed_points) as f64;
        let eta = remaining * per_point / rate;
        eta.is_finite().then(|| eta.round() as u64)
    });
    TelemetryStatus {
        injections_per_sec: rate.map(|r| (r * 10.0).round() / 10.0),
        eta_secs,
    }
}

/// Assemble the status of a session directory: manifest facts plus a
/// merged view of the single-process checkpoint and any worker shards.
/// Returns the fault model alongside for fault-dependent rendering.
///
/// # Errors
///
/// Returns a rendered message when the session has no readable manifest
/// or a directory scan fails.
pub fn gather_status(out: &Path) -> Result<(StatusReport, FaultKind), String> {
    let paths = SessionPaths::new(out);
    let manifest = CampaignManifest::load(&paths.manifest()).map_err(|e| e.to_string())?;
    let shards = work::list_shards(&paths.shards_dir()).map_err(|e| e.to_string())?;
    let lease_files = work::list_leases(&paths.leases_dir()).map_err(|e| e.to_string())?;
    let now = work::unix_now();

    // Progress: merge every shard into the base checkpoint when one
    // exists; otherwise aggregate over the shards alone (worker-only
    // sessions have no checkpoint.json until completion).
    let progress = match CampaignCheckpoint::load(&paths.checkpoint()) {
        Ok(mut cp) => {
            for shard in &shards {
                // Foreign/stale shards are a display concern here, not a
                // hard error — skip them.
                let _ = cp.merge_shard(shard);
            }
            Some(ProgressStatus {
                completed_points: cp.completed_points(),
                total_points: cp.num_points,
                injections: cp.total_injections(),
                complete: cp.is_complete(),
            })
        }
        Err(_) if !shards.is_empty() => {
            // Deduplicate by point index: workers launched with different
            // --lease-points leave overlapping shards (same progress,
            // different range cuts), which a plain sum would double-count.
            let mut per_point: std::collections::HashMap<usize, (bool, usize)> =
                std::collections::HashMap::new();
            for shard in &shards {
                for (offset, record) in shard.points.iter().enumerate() {
                    let entry = per_point
                        .entry(shard.range_start + offset)
                        .or_insert((false, 0));
                    entry.0 |= record.complete;
                    entry.1 = entry.1.max(record.injections_done);
                }
            }
            Some(ProgressStatus {
                completed_points: per_point.values().filter(|(complete, _)| *complete).count(),
                // Shards cover claimed ranges only; unclaimed ranges are
                // invisible without re-deriving the circuit, so this is a
                // lower bound on the total.
                total_points: per_point.len(),
                injections: per_point.values().map(|(_, injections)| injections).sum(),
                complete: false,
            })
        }
        Err(_) => None,
    };

    let leases: Vec<LeaseStatus> = lease_files
        .iter()
        .filter_map(|info| {
            let record = info.record.as_ref()?;
            Some(LeaseStatus {
                range_start: record.range_start,
                range_end: record.range_end,
                worker: record.worker.clone(),
                expires_in_secs: record.expires_unix as i64 - now as i64,
                expired: record.expired_by_age(info.modified),
            })
        })
        .collect();

    // Per-worker rollup across leases and shard provenance.
    let mut workers: Vec<WorkerStatus> = Vec::new();
    let worker_entry = |workers: &mut Vec<WorkerStatus>, id: &str| -> usize {
        match workers.iter().position(|w| w.worker == id) {
            Some(i) => i,
            None => {
                workers.push(WorkerStatus {
                    worker: id.to_string(),
                    active_leases: 0,
                    stale_leases: 0,
                    shards: 0,
                    retired_points: 0,
                });
                workers.len() - 1
            }
        }
    };
    for lease in &leases {
        let i = worker_entry(&mut workers, &lease.worker);
        if lease.expired {
            workers[i].stale_leases += 1;
        } else {
            workers[i].active_leases += 1;
        }
    }
    for shard in &shards {
        let i = worker_entry(&mut workers, &shard.worker);
        workers[i].shards += 1;
        workers[i].retired_points += shard.completed_points();
    }
    workers.sort_by(|a, b| a.worker.cmp(&b.worker));

    // Live rates: telemetry never gates status — a session without logs
    // (FFR_TELEMETRY=0, or pre-telemetry sessions) just omits the field.
    // With logs present the field is always emitted, its rates clamped
    // to null while unknown (see the schema notes).
    let telemetry = crate::stats::CampaignStats::from_session(out)
        .ok()
        .filter(|stats| !stats.is_empty())
        .map(|stats| telemetry_status(&stats, progress.as_ref()));

    let table = paths.table_json(manifest.fault);
    let report = StatusReport {
        schema_version: STATUS_SCHEMA_VERSION,
        session: out.display().to_string(),
        circuit: manifest.circuit.clone(),
        fault: manifest.fault.to_string(),
        seed: manifest.seed,
        policy: manifest.policy.to_string(),
        fingerprint: manifest.fingerprint.clone(),
        progress,
        workers,
        complete_shards: shards.iter().filter(|s| s.is_complete()).count(),
        shard_count: shards.len(),
        leases,
        table: table.exists().then(|| table.display().to_string()),
        telemetry,
    };
    Ok((report, manifest.fault))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{CampaignStats, WorkerStats};

    fn progress(completed: usize, total: usize, injections: usize) -> ProgressStatus {
        ProgressStatus {
            completed_points: completed,
            total_points: total,
            injections,
            complete: completed == total,
        }
    }

    fn stats_with(injections: u64, measure_us: u64) -> CampaignStats {
        CampaignStats {
            workers: vec![WorkerStats {
                injections,
                measure_us,
                ..WorkerStats::default()
            }],
            ..CampaignStats::default()
        }
    }

    #[test]
    fn zero_duration_rates_clamp_to_none_and_stay_valid_json() {
        // A worker SIGKILLed before its first span flush: injections
        // counted, zero measured time. The old schema emitted inf here.
        for (injections, measure_us) in [(0, 0), (128, 0), (0, 55_000)] {
            let t = telemetry_status(
                &stats_with(injections, measure_us),
                Some(&progress(2, 8, 128)),
            );
            assert_eq!(t.injections_per_sec, None, "{injections}/{measure_us}");
            assert_eq!(t.eta_secs, None);
            let json = serde_json::to_string_pretty(&t).unwrap();
            assert!(!json.contains("inf") && !json.contains("NaN"), "{json}");
            serde_json::parse_value_complete(&json).expect("valid JSON");
        }
    }

    #[test]
    fn eta_is_absent_when_complete_or_nothing_retired() {
        let stats = stats_with(640, 2_000_000);
        let t = telemetry_status(&stats, Some(&progress(8, 8, 640)));
        assert!(t.injections_per_sec.is_some());
        assert_eq!(t.eta_secs, None, "complete campaign has no ETA");
        let t = telemetry_status(&stats, Some(&progress(0, 8, 0)));
        assert_eq!(t.eta_secs, None, "no per-point cost observable yet");
        let t = telemetry_status(&stats, None);
        assert_eq!(t.eta_secs, None, "no progress view at all");
    }

    #[test]
    fn healthy_rates_round_trip() {
        // 640 injections over 2 s → 320/s; 4 of 8 points at 160
        // injections each → 640 more injections → ETA 2 s.
        let t = telemetry_status(&stats_with(640, 2_000_000), Some(&progress(4, 8, 640)));
        assert_eq!(t.injections_per_sec, Some(320.0));
        assert_eq!(t.eta_secs, Some(2));
    }
}
