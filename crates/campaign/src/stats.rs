//! Telemetry aggregation for `ffr stats`.
//!
//! Reads the per-worker JSONL event logs under a campaign session's
//! `telemetry/` directory (see [`ffr_obs::Recorder`]) and merges them into
//! a per-worker / per-phase throughput and latency report. Merging is
//! **order-independent**: workers are keyed and sorted by id, counters add,
//! and histograms merge bucket-wise, so the report does not depend on which
//! worker's log is read first.
//!
//! A SIGKILLed writer leaves at most one truncated final line in its log;
//! unparseable lines are counted in [`CampaignStats::skipped_lines`] and
//! otherwise ignored — they are never fatal.
//!
//! # Schema note: rates are nullable, never `NaN`/`inf`
//!
//! Derived rates ([`WorkerStats::injections_per_sec`],
//! [`CampaignStats::injections_per_sec`]) return `Option<f64>` and
//! serialize as a JSON number **or `null`** — never `NaN`/`inf`, which
//! are not JSON. A rate is null while it is unknowable: zero injections
//! or zero measured time so far (a worker SIGKILLed before its first
//! span flush, or a campaign served entirely from cache). The `ffr
//! status --json` telemetry block follows the same convention (see
//! [`crate::status`]).

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use ffr_obs::Histogram;
use serde::{Serialize, Value};

/// Schema version of the `ffr stats --json` output (bumped on any
/// backwards-incompatible change to the report shape).
pub const STATS_SCHEMA_VERSION: u64 = 1;

/// Merged timing of all spans sharing one name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Number of span records.
    pub count: u64,
    /// Summed duration (µs).
    pub total_us: u64,
    /// Longest single span (µs).
    pub max_us: u64,
}

impl SpanStats {
    fn add(&mut self, dur_us: u64) {
        self.count += 1;
        self.total_us = self.total_us.saturating_add(dur_us);
        self.max_us = self.max_us.max(dur_us);
    }

    fn merge(&mut self, other: &SpanStats) {
        self.count += other.count;
        self.total_us = self.total_us.saturating_add(other.total_us);
        self.max_us = self.max_us.max(other.max_us);
    }
}

/// Aggregated telemetry of one worker's event log.
#[derive(Debug, Clone, Default)]
pub struct WorkerStats {
    /// Worker id (the log file stem; also carried in every record).
    pub worker: String,
    /// Parsed records in this worker's log.
    pub records: u64,
    /// Per-name span timings.
    pub spans: BTreeMap<String, SpanStats>,
    /// Monotonic counters (`counter` records plus summed span fields for
    /// `injections`, which survive even a SIGKILLed worker's lost
    /// aggregates).
    pub counters: BTreeMap<String, u64>,
    /// Latency histograms.
    pub hists: BTreeMap<String, Histogram>,
    /// Injections attributed to this worker (counter if present, else the
    /// sum of `range.run` span `injections` fields).
    pub injections: u64,
    /// Time this worker spent measuring (µs): its `phase.measure` spans,
    /// falling back to the sum of its `range.run` spans.
    pub measure_us: u64,
}

impl WorkerStats {
    /// Injections per wall-clock second of measurement, when both are
    /// known.
    pub fn injections_per_sec(&self) -> Option<f64> {
        if self.injections == 0 || self.measure_us == 0 {
            return None;
        }
        Some(self.injections as f64 / (self.measure_us as f64 / 1e6))
    }
}

/// The merged telemetry view of a campaign session.
#[derive(Debug, Clone, Default)]
pub struct CampaignStats {
    /// Per-worker aggregates, sorted by worker id.
    pub workers: Vec<WorkerStats>,
    /// Counters merged across workers.
    pub counters: BTreeMap<String, u64>,
    /// Span timings merged across workers.
    pub spans: BTreeMap<String, SpanStats>,
    /// Latency histograms merged across workers.
    pub hists: BTreeMap<String, Histogram>,
    /// Unparseable lines skipped across all logs (e.g. the truncated
    /// final line of a SIGKILLed worker).
    pub skipped_lines: u64,
}

/// A numeric JSON payload as u64 (telemetry records never need more).
fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::U64(n) => Some(*n),
        Value::I64(n) if *n >= 0 => Some(*n as u64),
        Value::F64(x) if *x >= 0.0 && x.is_finite() => Some(*x as u64),
        _ => None,
    }
}

impl CampaignStats {
    /// Read and merge every `*.jsonl` log under a session's `telemetry/`
    /// directory. A missing directory yields empty stats (telemetry may
    /// be disabled); unparseable lines are skipped and counted.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than a missing directory.
    pub fn from_session(session_dir: &Path) -> io::Result<CampaignStats> {
        Self::from_dir(&ffr_obs::telemetry_dir(session_dir))
    }

    /// Read and merge every `*.jsonl` log in `dir` (see
    /// [`CampaignStats::from_session`]).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than a missing directory.
    pub fn from_dir(dir: &Path) -> io::Result<CampaignStats> {
        let mut logs = Vec::new();
        match std::fs::read_dir(dir) {
            Ok(entries) => {
                for entry in entries {
                    let path = entry?.path();
                    if path.extension().and_then(|e| e.to_str()) == Some("jsonl") {
                        logs.push(path);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        // Sort for a deterministic starting order; the merge itself is
        // order-independent regardless.
        logs.sort();

        let mut by_worker: BTreeMap<String, WorkerStats> = BTreeMap::new();
        let mut skipped = 0u64;
        for path in &logs {
            let stem = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("unknown")
                .to_string();
            let text = std::fs::read_to_string(path)?;
            for line in text.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                let Ok(value) = serde_json::parse_value_complete(line) else {
                    skipped += 1;
                    continue;
                };
                let worker = value
                    .get("worker")
                    .and_then(Value::as_str)
                    .unwrap_or(&stem)
                    .to_string();
                let stats = by_worker
                    .entry(worker.clone())
                    .or_insert_with(|| WorkerStats {
                        worker,
                        ..WorkerStats::default()
                    });
                if Self::absorb(stats, &value).is_none() {
                    skipped += 1;
                } else {
                    stats.records += 1;
                }
            }
        }

        let mut merged = CampaignStats {
            workers: Vec::with_capacity(by_worker.len()),
            skipped_lines: skipped,
            ..CampaignStats::default()
        };
        for (_, mut worker) in by_worker {
            // Derived per-worker rates: prefer explicit aggregates, fall
            // back to span fields (which survive a SIGKILL).
            worker.injections = worker
                .counters
                .get("injections")
                .copied()
                .unwrap_or_else(|| {
                    worker
                        .counters
                        .get("range.run.injections")
                        .copied()
                        .unwrap_or(0)
                });
            worker.measure_us = worker
                .spans
                .get("phase.measure")
                .filter(|s| s.total_us > 0)
                .map(|s| s.total_us)
                .or_else(|| worker.spans.get("range.run").map(|s| s.total_us))
                .unwrap_or(0);
            for (name, value) in &worker.counters {
                *merged.counters.entry(name.clone()).or_insert(0) += value;
            }
            for (name, stats) in &worker.spans {
                merged.spans.entry(name.clone()).or_default().merge(stats);
            }
            for (name, hist) in &worker.hists {
                merged.hists.entry(name.clone()).or_default().merge(hist);
            }
            merged.workers.push(worker);
        }
        Ok(merged)
    }

    /// Fold one parsed record into a worker's aggregates; `None` marks a
    /// record that is well-formed JSON but not a telemetry record.
    fn absorb(stats: &mut WorkerStats, value: &Value) -> Option<()> {
        let kind = value.get("kind")?.as_str()?;
        let name = value.get("name")?.as_str()?;
        match kind {
            "event" => {}
            "span" => {
                let dur_us = value.get("dur_us").and_then(as_u64)?;
                stats.spans.entry(name.to_string()).or_default().add(dur_us);
                // Numeric span fields accumulate as `<span>.<field>`
                // pseudo-counters so `ffr stats` can report injection
                // throughput even when a worker was SIGKILLed before its
                // `finish()` emitted the real counters.
                if let Some(Value::Object(entries)) = value.get("fields") {
                    for (key, v) in entries {
                        if let Some(n) = as_u64(v) {
                            *stats.counters.entry(format!("{name}.{key}")).or_insert(0) += n;
                        }
                    }
                }
            }
            "counter" => {
                let delta = value.get("value").and_then(as_u64)?;
                *stats.counters.entry(name.to_string()).or_insert(0) += delta;
            }
            "hist" => {
                let sum_us = value.get("sum_us").and_then(as_u64)?;
                let max_us = value.get("max_us").and_then(as_u64)?;
                let mut sparse = Vec::new();
                for pair in value.get("buckets")?.as_array()? {
                    let pair = pair.as_array()?;
                    if pair.len() != 2 {
                        return None;
                    }
                    sparse.push((as_u64(&pair[0])? as usize, as_u64(&pair[1])?));
                }
                let hist = Histogram::from_sparse(&sparse, sum_us, max_us);
                stats
                    .hists
                    .entry(name.to_string())
                    .or_default()
                    .merge(&hist);
            }
            _ => return None,
        }
        Some(())
    }

    /// `true` when no telemetry was found at all.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Total parsed records across all workers.
    pub fn total_records(&self) -> u64 {
        self.workers.iter().map(|w| w.records).sum()
    }

    /// Injections across all workers.
    pub fn total_injections(&self) -> u64 {
        self.workers.iter().map(|w| w.injections).sum()
    }

    /// Total measuring time across workers (µs; wall-clock per worker,
    /// so parallel workers contribute in parallel).
    pub fn total_measure_us(&self) -> u64 {
        self.workers.iter().map(|w| w.measure_us).sum()
    }

    /// Aggregate injection throughput (injections per worker-second of
    /// measurement), when known.
    pub fn injections_per_sec(&self) -> Option<f64> {
        let injections = self.total_injections();
        let us = self.total_measure_us();
        if injections == 0 || us == 0 {
            return None;
        }
        Some(injections as f64 / (us as f64 / 1e6))
    }

    /// The report as a JSON value tree (used by `ffr stats --json`).
    pub fn to_json_value(&self) -> Value {
        let span_obj = |s: &SpanStats| {
            Value::Object(vec![
                ("count".to_string(), Value::U64(s.count)),
                ("total_us".to_string(), Value::U64(s.total_us)),
                ("max_us".to_string(), Value::U64(s.max_us)),
            ])
        };
        let workers = self
            .workers
            .iter()
            .map(|w| {
                let mut fields = vec![
                    ("worker".to_string(), Value::Str(w.worker.clone())),
                    ("records".to_string(), Value::U64(w.records)),
                    ("injections".to_string(), Value::U64(w.injections)),
                    ("measure_us".to_string(), Value::U64(w.measure_us)),
                ];
                fields.push((
                    "injections_per_sec".to_string(),
                    match w.injections_per_sec() {
                        Some(rate) => Value::F64((rate * 10.0).round() / 10.0),
                        None => Value::Null,
                    },
                ));
                fields.push((
                    "spans".to_string(),
                    Value::Object(
                        w.spans
                            .iter()
                            .map(|(name, s)| (name.clone(), span_obj(s)))
                            .collect(),
                    ),
                ));
                fields.push((
                    "counters".to_string(),
                    Value::Object(
                        w.counters
                            .iter()
                            .map(|(name, &n)| (name.clone(), Value::U64(n)))
                            .collect(),
                    ),
                ));
                Value::Object(fields)
            })
            .collect();
        let hists: Vec<(String, Value)> = self
            .hists
            .iter()
            .map(|(name, h)| {
                (
                    name.clone(),
                    Value::Object(vec![
                        ("count".to_string(), Value::U64(h.count())),
                        ("mean_us".to_string(), Value::U64(h.mean_us())),
                        ("p50_us".to_string(), Value::U64(h.quantile_us(0.5))),
                        ("p95_us".to_string(), Value::U64(h.quantile_us(0.95))),
                        ("max_us".to_string(), Value::U64(h.max_us())),
                    ]),
                )
            })
            .collect();
        Value::Object(vec![
            (
                "schema_version".to_string(),
                Value::U64(STATS_SCHEMA_VERSION),
            ),
            ("workers".to_string(), Value::Array(workers)),
            (
                "spans".to_string(),
                Value::Object(
                    self.spans
                        .iter()
                        .map(|(name, s)| (name.clone(), span_obj(s)))
                        .collect(),
                ),
            ),
            (
                "counters".to_string(),
                Value::Object(
                    self.counters
                        .iter()
                        .map(|(name, &n)| (name.clone(), Value::U64(n)))
                        .collect(),
                ),
            ),
            ("hists".to_string(), Value::Object(hists)),
            ("skipped_lines".to_string(), Value::U64(self.skipped_lines)),
        ])
    }

    /// The report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        struct Raw(Value);
        impl Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        serde_json::to_string_pretty(&Raw(self.to_json_value())).unwrap_or_default()
    }

    /// The human-facing text report.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("no telemetry found (run a campaign first, or unset FFR_TELEMETRY=0)\n");
            return out;
        }
        let _ = writeln!(
            out,
            "telemetry: {} worker log(s), {} record(s), {} skipped line(s)",
            self.workers.len(),
            self.total_records(),
            self.skipped_lines
        );
        let secs = |us: u64| us as f64 / 1e6;

        out.push_str("\nphases (merged):\n");
        let mut any_phase = false;
        for (name, s) in &self.spans {
            if let Some(phase) = name.strip_prefix("phase.") {
                any_phase = true;
                let _ = writeln!(
                    out,
                    "  {phase:<10} {:>4}x  {:>10.3} s total  {:>10.3} s max",
                    s.count,
                    secs(s.total_us),
                    secs(s.max_us)
                );
            }
        }
        if !any_phase {
            out.push_str("  (none recorded)\n");
        }

        out.push_str("\nworkers:\n");
        for w in &self.workers {
            let rate = match w.injections_per_sec() {
                Some(rate) => format!("{rate:.1} inj/s"),
                None => "n/a".to_string(),
            };
            let ranges = w.spans.get("range.run").map_or(0, |s| s.count);
            let _ = writeln!(
                out,
                "  {:<12} {:>8} injections in {:>8.3} s ({rate}), {ranges} range(s)",
                w.worker,
                w.injections,
                secs(w.measure_us)
            );
        }
        if let Some(rate) = self.injections_per_sec() {
            let _ = writeln!(out, "  overall: {rate:.1} injections/worker-second");
        }

        // Cone-restriction effectiveness, derived from the cone.* counters
        // the runner records once per compiled point.
        if let Some(&points) = self.counters.get("cone.points") {
            if points > 0 {
                let avg = |name: &str| {
                    self.counters.get(name).copied().unwrap_or(0) as f64 / points as f64
                };
                let _ = writeln!(
                    out,
                    "\ncone restriction ({points} point(s)):\n  avg cone: {:.1} ops, {:.1} ffs, {:.1} boundary nets; {} cycles skipped by early exit",
                    avg("cone.ops"),
                    avg("cone.ffs"),
                    avg("cone.boundary_nets"),
                    self.counters.get("cone.cycles_saved").copied().unwrap_or(0),
                );
            }
        }

        // Frontier-restriction effectiveness, derived from the frontier.*
        // counters the runner records once per retired point. Evaluated +
        // skipped together equal what the static cone path would have run.
        let evaluated = self
            .counters
            .get("frontier.ops_evaluated")
            .copied()
            .unwrap_or(0);
        let skipped = self
            .counters
            .get("frontier.ops_skipped")
            .copied()
            .unwrap_or(0);
        if evaluated + skipped > 0 {
            let points = self.counters.get("cone.points").copied().unwrap_or(0);
            let frac = evaluated as f64 / (evaluated + skipped) as f64;
            let mean_peak = if points > 0 {
                self.counters.get("frontier.peak").copied().unwrap_or(0) as f64 / points as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "\nfrontier restriction:\n  {evaluated} cone ops evaluated, {skipped} skipped ({:.1}% of static cone work); mean peak frontier {mean_peak:.1} ops/cycle",
                frac * 100.0,
            );
        }

        out.push_str("\ncounters (merged):\n");
        for (name, value) in &self.counters {
            let _ = writeln!(out, "  {name:<28} {value:>12}");
        }

        if !self.hists.is_empty() {
            out.push_str("\nlatencies (merged, µs):\n");
            let _ = writeln!(
                out,
                "  {:<24} {:>8} {:>8} {:>8} {:>8} {:>8}",
                "name", "count", "mean", "p50", "p95", "max"
            );
            for (name, h) in &self.hists {
                let _ = writeln!(
                    out,
                    "  {:<24} {:>8} {:>8} {:>8} {:>8} {:>8}",
                    name,
                    h.count(),
                    h.mean_us(),
                    h.quantile_us(0.5),
                    h.quantile_us(0.95),
                    h.max_us()
                );
            }
        }
        out
    }
}

/// Remove every `*.jsonl` log in a telemetry directory, returning how
/// many were removed. `ffr gc --campaign` calls this only once the
/// campaign is durably complete — never while workers may still append.
///
/// # Errors
///
/// Propagates I/O errors other than a missing directory.
pub fn sweep_telemetry(dir: &Path) -> io::Result<usize> {
    let mut removed = 0;
    match std::fs::read_dir(dir) {
        Ok(entries) => {
            for entry in entries {
                let path = entry?.path();
                if path.extension().and_then(|e| e.to_str()) == Some("jsonl") {
                    std::fs::remove_file(&path)?;
                    removed += 1;
                }
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffr_obs::{Level, Recorder};
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ffr_stats_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn write_worker(dir: &Path, worker: &str, injections: u64) {
        let rec = Recorder::to_dir(dir, worker).unwrap();
        let mut span = rec.span("phase.measure");
        rec.count("injections", injections);
        rec.observe_us("checkpoint.flush_us", 100 + injections);
        rec.event(Level::Debug, "lease.claim", &[("range_start", 0u64.into())]);
        span.field("completed_points", 4u64);
        span.end();
        rec.finish();
    }

    #[test]
    fn merges_workers_order_independently() {
        let a = tmp_dir("order_a");
        let b = tmp_dir("order_b");
        write_worker(&a, "w1", 100);
        write_worker(&a, "w2", 50);
        write_worker(&a, "w3", 25);
        // The same logs under names that list in the reverse order must
        // merge to the same report: merge is keyed by the worker id
        // carried in each record, counters add, hists merge.
        std::fs::create_dir_all(&b).unwrap();
        for (from, to) in [("w1", "z1"), ("w2", "y2"), ("w3", "x3")] {
            std::fs::copy(
                a.join(format!("{from}.jsonl")),
                b.join(format!("{to}.jsonl")),
            )
            .unwrap();
        }
        let sa = CampaignStats::from_dir(&a).unwrap();
        let sb = CampaignStats::from_dir(&b).unwrap();
        assert_eq!(sa.workers.len(), 3);
        assert_eq!(sa.total_injections(), 175);
        assert_eq!(sa.counters, sb.counters);
        assert_eq!(sa.spans, sb.spans);
        assert_eq!(sa.hists, sb.hists);
        assert_eq!(
            sa.workers.iter().map(|w| &w.worker).collect::<Vec<_>>(),
            vec!["w1", "w2", "w3"]
        );
        assert_eq!(sa.to_json(), sb.to_json());
        let json = sa.to_json();
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("phase.measure"));
    }

    #[test]
    fn truncated_final_line_is_skipped_not_fatal() {
        use std::io::Write as _;
        let dir = tmp_dir("truncated");
        write_worker(&dir, "w1", 60);
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("w1.jsonl"))
            .unwrap();
        file.write_all(b"{\"ts_ms\":12,\"worker\":\"w1\",\"ki")
            .unwrap();
        drop(file);
        let stats = CampaignStats::from_dir(&dir).unwrap();
        assert_eq!(stats.skipped_lines, 1);
        assert_eq!(stats.total_injections(), 60);
        assert!(stats.workers[0].injections_per_sec().is_some());
        let text = stats.render_text();
        assert!(text.contains("1 skipped line(s)"), "{text}");
    }

    #[test]
    fn missing_directory_yields_empty_stats() {
        let stats = CampaignStats::from_dir(&tmp_dir("missing")).unwrap();
        assert!(stats.is_empty());
        assert!(stats.render_text().contains("no telemetry"));
    }

    #[test]
    fn zero_duration_rates_serialize_as_null_never_nan() {
        // Every degenerate (injections, measure_us) combination an
        // interrupted worker can leave behind: the rate must clamp to
        // None and the JSON document must stay parseable, with no
        // NaN/inf leaking through (satellite of the status schema v2
        // fix — see the module docs).
        for (injections, measure_us) in [(0, 0), (512, 0), (0, 2_000_000)] {
            let stats = CampaignStats {
                workers: vec![WorkerStats {
                    worker: "w1".to_string(),
                    injections,
                    measure_us,
                    ..WorkerStats::default()
                }],
                ..CampaignStats::default()
            };
            assert_eq!(
                stats.injections_per_sec(),
                None,
                "{injections}/{measure_us}"
            );
            assert_eq!(stats.workers[0].injections_per_sec(), None);
            let json = stats.to_json();
            assert!(!json.contains("inf") && !json.contains("NaN"), "{json}");
            assert!(json.contains("\"injections_per_sec\": null"), "{json}");
            serde_json::parse_value_complete(&json).expect("valid JSON");
        }
    }

    #[test]
    fn sigkilled_worker_rate_comes_from_span_fields() {
        let dir = tmp_dir("sigkill");
        // A worker that died before finish(): only spans on disk.
        let rec = Recorder::to_dir(&dir, "w1").unwrap();
        let mut span = rec.span("range.run");
        span.field("points", 8u64);
        span.field("injections", 96u64);
        span.end();
        drop(rec); // no finish() — counters lost
        let stats = CampaignStats::from_dir(&dir).unwrap();
        assert_eq!(stats.total_injections(), 96);
        assert!(stats.workers[0].measure_us > 0 || stats.workers[0].injections_per_sec().is_none());
    }
}
