//! Campaign sessions: durable, named campaign runs rooted in an output
//! directory.
//!
//! A session directory holds:
//!
//! ```text
//! <out>/
//!   campaign.json     — manifest: circuit, stimulus, seed, policy, store
//!   checkpoint.json   — resumable per-FF progress (atomic rename updates)
//!   fdr.json          — final FDR table (written on completion)
//!   fdr.csv           — final FDR table, CSV rendering
//! ```
//!
//! `run` creates the manifest and drives the campaign; `resume` reloads
//! manifest + checkpoint and continues — the final `fdr.json` is
//! byte-identical either way. When a store is configured, the golden run
//! and the final table are cached content-addressed: a rerun with
//! identical inputs is served from the cache without re-simulating
//! anything.

use crate::adaptive::AdaptivePolicy;
use crate::checkpoint::{CampaignCheckpoint, CheckpointParams};
use crate::runner::{run_resumable, CancelToken, RunOutcome, RunnerOptions};
use crate::spec::CircuitSpec;
use crate::store::{ArtifactKind, ArtifactStore, StoreKey};
use ffr_fault::{Campaign, FdrTable};
use ffr_sim::GoldenRun;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};

/// Manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

/// Shortest testbench that still leaves a non-empty injection window
/// with settling margins (see [`CircuitSpec::prepare`]).
pub const MIN_CYCLES: u64 = 32;

/// Everything needed to reproduce (and resume) a campaign run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignManifest {
    /// Format version ([`MANIFEST_VERSION`]).
    pub version: u32,
    /// Circuit name (parsed by [`CircuitSpec`]).
    pub circuit: String,
    /// Stimulus seed.
    pub stim_seed: u64,
    /// Testbench length for the generic stimulus (ignored by the MAC
    /// testbench, which derives its own schedule).
    pub cycles: u64,
    /// Campaign master seed.
    pub seed: u64,
    /// Adaptive stopping policy.
    pub policy: AdaptivePolicy,
    /// Checkpoint flush cadence, in retired flip-flops.
    pub checkpoint_every_ffs: usize,
    /// Artifact store root (`None` disables caching).
    pub store: Option<String>,
    /// Content fingerprint of (netlist, stimulus, campaign params); also
    /// the store key of the final table.
    pub fingerprint: String,
}

impl CampaignManifest {
    /// Save as pretty JSON (atomic rename).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_string_pretty(self).map_err(io::Error::other)?;
        crate::store::atomic_write(path, &json)
    }

    /// Load a manifest written by [`CampaignManifest::save`].
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, undecodable files or a version mismatch.
    pub fn load(path: &Path) -> io::Result<CampaignManifest> {
        let text = std::fs::read_to_string(path)?;
        let m: CampaignManifest = serde_json::from_str(&text).map_err(io::Error::other)?;
        if m.version != MANIFEST_VERSION {
            return Err(io::Error::other(format!(
                "manifest version {} unsupported (expected {MANIFEST_VERSION})",
                m.version
            )));
        }
        Ok(m)
    }
}

/// Well-known file locations inside a session directory.
#[derive(Debug, Clone)]
pub struct SessionPaths {
    /// The session root.
    pub out_dir: PathBuf,
}

impl SessionPaths {
    /// Paths rooted at `out_dir`.
    pub fn new(out_dir: impl Into<PathBuf>) -> SessionPaths {
        SessionPaths {
            out_dir: out_dir.into(),
        }
    }

    /// The manifest file.
    pub fn manifest(&self) -> PathBuf {
        self.out_dir.join("campaign.json")
    }

    /// The resumable checkpoint file.
    pub fn checkpoint(&self) -> PathBuf {
        self.out_dir.join("checkpoint.json")
    }

    /// The final FDR table (JSON).
    pub fn fdr_json(&self) -> PathBuf {
        self.out_dir.join("fdr.json")
    }

    /// The final FDR table (CSV).
    pub fn fdr_csv(&self) -> PathBuf {
        self.out_dir.join("fdr.csv")
    }
}

/// Parameters for starting a fresh campaign session.
#[derive(Debug, Clone)]
pub struct RunRequest {
    /// Circuit to run on.
    pub circuit: CircuitSpec,
    /// Stimulus seed.
    pub stim_seed: u64,
    /// Testbench length for generic circuits.
    pub cycles: u64,
    /// Campaign master seed.
    pub seed: u64,
    /// Stopping policy.
    pub policy: AdaptivePolicy,
    /// Checkpoint flush cadence.
    pub checkpoint_every_ffs: usize,
    /// Artifact store root (`None` disables caching).
    pub store: Option<PathBuf>,
    /// Ignore a cached final table and re-run.
    pub force: bool,
}

impl RunRequest {
    /// Sensible defaults for a circuit: paper-style fixed 170-injection
    /// policy, checkpoint every 32 flip-flops, no store.
    pub fn new(circuit: CircuitSpec) -> RunRequest {
        RunRequest {
            circuit,
            stim_seed: 1,
            cycles: 400,
            seed: 2019,
            policy: AdaptivePolicy::fixed(170),
            checkpoint_every_ffs: 32,
            store: None,
            force: false,
        }
    }
}

/// Outcome summary of a `run`/`resume` invocation.
#[derive(Debug)]
pub struct RunSummary {
    /// How the runner ended (cache-served runs report `Complete`).
    pub outcome: RunOutcome,
    /// `true` if the golden run came from the artifact store.
    pub golden_from_cache: bool,
    /// `true` if the final table was served from the artifact store
    /// without simulating anything.
    pub table_from_cache: bool,
    /// Retired flip-flops.
    pub completed_ffs: usize,
    /// Total flip-flops.
    pub total_ffs: usize,
    /// Injections executed so far (all invocations).
    pub total_injections: usize,
    /// Path of the final FDR table, once complete.
    pub fdr_path: Option<PathBuf>,
}

fn open_store(path: &Option<String>) -> io::Result<Option<ArtifactStore>> {
    match path {
        None => Ok(None),
        Some(p) => Ok(Some(ArtifactStore::open(p)?)),
    }
}

/// Start (or restart) a campaign session in `out_dir`.
///
/// # Errors
///
/// Fails on I/O errors, or if `out_dir` already holds a checkpoint for a
/// different campaign (use [`resume`] to continue one).
pub fn run(
    request: &RunRequest,
    out_dir: &Path,
    options: &RunnerOptions,
    cancel: &CancelToken,
    progress: impl Fn(usize, usize) + Sync,
) -> io::Result<RunSummary> {
    if request.cycles < MIN_CYCLES {
        return Err(io::Error::other(format!(
            "--cycles {} is too short for an injection window (minimum {MIN_CYCLES})",
            request.cycles
        )));
    }
    std::fs::create_dir_all(out_dir)?;
    let paths = SessionPaths::new(out_dir);
    let prepared = request.circuit.prepare(request.stim_seed, request.cycles);
    let window = prepared.window.clone();

    // The campaign fingerprint covers the netlist, the stimulus and every
    // campaign parameter.
    let campaign_desc = format!(
        "{};window={}..{};seed={};policy={}",
        prepared.config_desc,
        window.start,
        window.end,
        request.seed,
        request.policy.describe()
    );
    let fdr_key = StoreKey::of(prepared.cc.netlist(), &campaign_desc);

    let manifest = CampaignManifest {
        version: MANIFEST_VERSION,
        circuit: request.circuit.spec_string(),
        stim_seed: request.stim_seed,
        cycles: request.cycles,
        seed: request.seed,
        policy: request.policy.clone(),
        checkpoint_every_ffs: request.checkpoint_every_ffs,
        store: request
            .store
            .as_ref()
            .map(|p| p.to_string_lossy().into_owned()),
        fingerprint: fdr_key.to_string(),
    };

    // Refuse to clobber a different campaign's session directory. The
    // checkpoint is validated BEFORE the manifest is (re)written, so a
    // directory with a readable checkpoint but a damaged manifest never
    // loses the original campaign's parameters to an unrelated run.
    let checkpoint = match CampaignCheckpoint::load(&paths.checkpoint()) {
        Ok(cp) if cp.fingerprint == manifest.fingerprint => Some(cp),
        Ok(_) => {
            return Err(io::Error::other(format!(
                "checkpoint in {} belongs to a different campaign; \
                 remove it or use a fresh --out directory",
                out_dir.display()
            )))
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => None,
        Err(e) => return Err(e),
    };
    if let Ok(existing) = CampaignManifest::load(&paths.manifest()) {
        if existing.fingerprint != manifest.fingerprint {
            return Err(io::Error::other(format!(
                "{} already holds a campaign with different parameters \
                 (fingerprint {} vs {}); use a fresh --out directory",
                out_dir.display(),
                existing.fingerprint,
                manifest.fingerprint
            )));
        }
    }
    manifest.save(&paths.manifest())?;

    let store = open_store(&manifest.store)?;

    // Fast path: final table already in the store and no partial
    // checkpoint to honour.
    if !request.force && checkpoint.is_none() {
        if let Some(store) = &store {
            if let Some(table) = store.get::<FdrTable>(ArtifactKind::FdrTable, &fdr_key)? {
                table.save_json(&paths.fdr_json())?;
                std::fs::write(paths.fdr_csv(), table.to_csv())?;
                return Ok(RunSummary {
                    outcome: RunOutcome::Complete,
                    golden_from_cache: true,
                    table_from_cache: true,
                    completed_ffs: prepared.cc.num_ffs(),
                    total_ffs: prepared.cc.num_ffs(),
                    total_injections: 0,
                    fdr_path: Some(paths.fdr_json()),
                });
            }
        }
    }
    let checkpoint = checkpoint.unwrap_or_else(|| {
        CampaignCheckpoint::fresh(
            manifest.fingerprint.clone(),
            CheckpointParams {
                seed: request.seed,
                window_start: window.start,
                window_end: window.end,
                policy: request.policy.clone(),
            },
            prepared.cc.num_ffs(),
        )
    });

    drive(
        prepared, manifest, checkpoint, paths, store, options, cancel, progress,
    )
}

/// Resume the campaign session in `out_dir` from its manifest and
/// checkpoint.
///
/// # Errors
///
/// Fails on I/O errors or if the directory holds no session.
pub fn resume(
    out_dir: &Path,
    options: &RunnerOptions,
    cancel: &CancelToken,
    progress: impl Fn(usize, usize) + Sync,
) -> io::Result<RunSummary> {
    let paths = SessionPaths::new(out_dir);
    let manifest = CampaignManifest::load(&paths.manifest()).map_err(|e| {
        io::Error::other(format!(
            "no campaign session in {} ({e})",
            out_dir.display()
        ))
    })?;
    let circuit: CircuitSpec = manifest.circuit.parse().map_err(io::Error::other)?;
    let prepared = circuit.prepare(manifest.stim_seed, manifest.cycles);
    let checkpoint = CampaignCheckpoint::load(&paths.checkpoint())?;
    if checkpoint.fingerprint != manifest.fingerprint {
        return Err(io::Error::other(
            "checkpoint does not match the session manifest",
        ));
    }
    let store = open_store(&manifest.store)?;
    drive(
        prepared, manifest, checkpoint, paths, store, options, cancel, progress,
    )
}

#[allow(clippy::too_many_arguments)]
fn drive(
    prepared: crate::spec::PreparedCircuit,
    manifest: CampaignManifest,
    mut checkpoint: CampaignCheckpoint,
    paths: SessionPaths,
    store: Option<ArtifactStore>,
    options: &RunnerOptions,
    cancel: &CancelToken,
    progress: impl Fn(usize, usize) + Sync,
) -> io::Result<RunSummary> {
    // Golden run: cache by (netlist, stimulus) — campaign parameters do
    // not affect it, so every policy/seed shares one golden artifact.
    let golden_key = StoreKey::of(prepared.cc.netlist(), &prepared.config_desc);
    let mut golden_from_cache = false;
    let golden = match &store {
        Some(store) => match store.get::<GoldenRun>(ArtifactKind::GoldenRun, &golden_key)? {
            Some(golden) => {
                golden_from_cache = true;
                golden
            }
            None => {
                let golden = GoldenRun::capture(&prepared.cc, &prepared.stimulus, &prepared.watch);
                store.put(ArtifactKind::GoldenRun, &golden_key, &golden)?;
                golden
            }
        },
        None => GoldenRun::capture(&prepared.cc, &prepared.stimulus, &prepared.watch),
    };

    let judge = prepared.judge_spec.build(&golden);
    let campaign = Campaign::with_golden(
        &prepared.cc,
        &prepared.stimulus,
        &prepared.watch,
        &judge,
        golden,
    );

    let checkpoint_path = paths.checkpoint();
    let mut runner_options = options.clone();
    runner_options.checkpoint_every_ffs = manifest.checkpoint_every_ffs;
    let outcome = run_resumable(
        &campaign,
        &mut checkpoint,
        &runner_options,
        cancel,
        |cp| cp.save(&checkpoint_path),
        progress,
    )?;

    let mut fdr_path = None;
    if outcome == RunOutcome::Complete {
        let table = checkpoint.to_fdr_table();
        table.save_json(&paths.fdr_json())?;
        std::fs::write(paths.fdr_csv(), table.to_csv())?;
        fdr_path = Some(paths.fdr_json());
        if let Some(store) = &store {
            let fdr_key: StoreKey = parse_key(&manifest.fingerprint)?;
            store.put(ArtifactKind::FdrTable, &fdr_key, &table)?;
        }
    }

    Ok(RunSummary {
        outcome,
        golden_from_cache,
        table_from_cache: false,
        completed_ffs: checkpoint.completed_ffs(),
        total_ffs: checkpoint.num_ffs,
        total_injections: checkpoint.total_injections(),
        fdr_path,
    })
}

fn parse_key(rendered: &str) -> io::Result<StoreKey> {
    let (netlist, config) = rendered
        .split_once('-')
        .ok_or_else(|| io::Error::other("malformed fingerprint"))?;
    Ok(StoreKey {
        netlist: u64::from_str_radix(netlist, 16).map_err(io::Error::other)?,
        config: u64::from_str_radix(config, 16).map_err(io::Error::other)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ffr_session_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn quick_request(store: Option<PathBuf>) -> RunRequest {
        RunRequest {
            circuit: CircuitSpec::Counter { width: 6 },
            stim_seed: 1,
            cycles: 160,
            seed: 7,
            policy: AdaptivePolicy::fixed(64),
            checkpoint_every_ffs: 2,
            store,
            force: false,
        }
    }

    #[test]
    fn run_produces_table_and_cache_round_trip() {
        let out = tmp_dir("run");
        let store_dir = tmp_dir("run_store");
        let request = quick_request(Some(store_dir));
        let summary = run(
            &request,
            &out,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(summary.outcome, RunOutcome::Complete);
        assert!(!summary.golden_from_cache);
        assert!(!summary.table_from_cache);
        let first = std::fs::read(out.join("fdr.json")).unwrap();

        // Second run: served from the artifact cache, no simulation.
        let out2 = tmp_dir("run2");
        let summary2 = run(
            &request,
            &out2,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        assert!(summary2.table_from_cache);
        assert_eq!(summary2.total_injections, 0);
        let second = std::fs::read(out2.join("fdr.json")).unwrap();
        assert_eq!(first, second, "cache-served table must be byte-identical");
    }

    #[test]
    fn kill_and_resume_is_byte_identical() {
        // Uninterrupted reference run.
        let out_ref = tmp_dir("ref");
        let request = quick_request(None);
        run(
            &request,
            &out_ref,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        let reference = std::fs::read(out_ref.join("fdr.json")).unwrap();

        // Killed after two retirements…
        let out = tmp_dir("killed");
        let summary = run(
            &request,
            &out,
            &RunnerOptions {
                stop_after_ffs: Some(2),
                threads: Some(2),
                ..RunnerOptions::default()
            },
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(summary.outcome, RunOutcome::Cancelled);
        assert!(!out.join("fdr.json").exists());
        assert!(out.join("checkpoint.json").exists());

        // …and resumed to completion.
        let summary = resume(
            &out,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(summary.outcome, RunOutcome::Complete);
        let resumed = std::fs::read(out.join("fdr.json")).unwrap();
        assert_eq!(reference, resumed, "resume must be byte-identical");
    }

    #[test]
    fn mismatched_session_directory_is_refused() {
        let out = tmp_dir("mismatch");
        let request = quick_request(None);
        run(
            &request,
            &out,
            &RunnerOptions {
                stop_after_ffs: Some(1),
                ..RunnerOptions::default()
            },
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        // Same directory, different campaign seed → refused (the live
        // checkpoint is checked first, before anything is overwritten).
        let mut other = quick_request(None);
        other.seed = 999;
        let err = run(
            &other,
            &out,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap_err();
        assert!(err.to_string().contains("different campaign"), "{err}");

        // Even with a damaged manifest, the refusal happens before the
        // manifest is rewritten — the checkpoint still wins, and the
        // corrupt manifest is left for the user to inspect.
        let manifest_path = out.join("campaign.json");
        std::fs::write(&manifest_path, "{corrupt").unwrap();
        let err = run(
            &other,
            &out,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap_err();
        assert!(err.to_string().contains("different campaign"), "{err}");
        assert_eq!(
            std::fs::read_to_string(&manifest_path).unwrap(),
            "{corrupt",
            "a refused run must not clobber the existing manifest"
        );

        // A matching run (same fingerprint) may repair the manifest and
        // resume from the checkpoint.
        let summary = run(
            &request,
            &out,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(summary.outcome, RunOutcome::Complete);
    }

    #[test]
    fn short_testbench_is_rejected_cleanly() {
        let out = tmp_dir("short");
        let mut request = quick_request(None);
        request.cycles = 2;
        let err = run(
            &request,
            &out,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap_err();
        assert!(err.to_string().contains("too short"), "{err}");
        assert!(
            !out.exists(),
            "rejected run must not create the session dir"
        );
    }
}
