//! Campaign sessions: durable, named campaign runs rooted in an output
//! directory.
//!
//! A session directory holds:
//!
//! ```text
//! <out>/
//!   campaign.json        — manifest: circuit, fault model, stimulus, seed,
//!                          policy, store
//!   checkpoint.json      — resumable per-point progress (atomic renames)
//!   fdr.json / fdr.csv   — final SEU FDR table (written on completion)
//!   set-derating.json / set-derating.csv
//!                        — final SET de-rating table (SET campaigns)
//! ```
//!
//! `run` creates the manifest and drives the campaign; `resume` reloads
//! manifest + checkpoint and continues — the final table is
//! byte-identical either way, for both fault models. When a store is
//! configured, the golden run and the final table are cached
//! content-addressed: a rerun with identical inputs is served from the
//! cache without re-simulating anything.

use crate::adaptive::AdaptivePolicy;
use crate::checkpoint::{CampaignCheckpoint, CheckpointParams};
use crate::runner::{run_resumable, run_with_source, CancelToken, RunOutcome, RunnerOptions};
use crate::spec::CircuitSpec;
use crate::store::{ArtifactKind, ArtifactStore, StoreKey};
use crate::work::{self, LeaseQueue};
use ffr_fault::{Campaign, FaultKind, FdrTable, SetDeratingTable};
use ffr_sim::GoldenRun;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Manifest format version (3: budgeted sessions — v2 manifests lack the
/// `budget` field).
pub const MANIFEST_VERSION: u32 = 3;

/// Shortest testbench that still leaves a non-empty injection window
/// with settling margins (see [`CircuitSpec::prepare`]).
pub const MIN_CYCLES: u64 = 32;

/// Everything needed to reproduce (and resume) a campaign run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignManifest {
    /// Format version ([`MANIFEST_VERSION`]).
    pub version: u32,
    /// Circuit name (parsed by [`CircuitSpec`]).
    pub circuit: String,
    /// Fault model of the campaign.
    pub fault: FaultKind,
    /// Stimulus seed.
    pub stim_seed: u64,
    /// Testbench length for the generic stimulus (ignored by the MAC
    /// testbench, which derives its own schedule).
    pub cycles: u64,
    /// Campaign master seed.
    pub seed: u64,
    /// Adaptive stopping policy.
    pub policy: AdaptivePolicy,
    /// Measurement budget: the fraction of injection points actually
    /// fault-injected (1.0 = full campaign). A budgeted SEU session
    /// produces a *partial* FDR table whose unmeasured flip-flops are
    /// filled in by `ffr estimate`.
    pub budget: f64,
    /// Checkpoint flush cadence, in retired injection points.
    pub checkpoint_every: usize,
    /// Artifact store root (`None` disables caching).
    pub store: Option<String>,
    /// Content fingerprint of (netlist, stimulus, campaign params); also
    /// the store key of the final table.
    pub fingerprint: String,
}

impl CampaignManifest {
    /// Save as pretty JSON (atomic rename).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_string_pretty(self).map_err(io::Error::other)?;
        crate::store::atomic_write(path, &json)
    }

    /// Load a manifest written by [`CampaignManifest::save`].
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, undecodable files or a version mismatch. The
    /// version is probed before full deserialization, so a v1 manifest
    /// reports "version 1 unsupported" rather than a missing-field
    /// decode error.
    pub fn load(path: &Path) -> io::Result<CampaignManifest> {
        let text = std::fs::read_to_string(path)?;
        match crate::store::probe_version(&text) {
            Some(v) if v != MANIFEST_VERSION as u64 => {
                return Err(io::Error::other(format!(
                    "manifest version {v} unsupported (expected {MANIFEST_VERSION})"
                )))
            }
            _ => {}
        }
        serde_json::from_str(&text).map_err(io::Error::other)
    }
}

/// Well-known file locations inside a session directory.
#[derive(Debug, Clone)]
pub struct SessionPaths {
    /// The session root.
    pub out_dir: PathBuf,
}

impl SessionPaths {
    /// Paths rooted at `out_dir`.
    pub fn new(out_dir: impl Into<PathBuf>) -> SessionPaths {
        SessionPaths {
            out_dir: out_dir.into(),
        }
    }

    /// The manifest file.
    pub fn manifest(&self) -> PathBuf {
        self.out_dir.join("campaign.json")
    }

    /// The resumable checkpoint file.
    pub fn checkpoint(&self) -> PathBuf {
        self.out_dir.join("checkpoint.json")
    }

    /// The final SEU FDR table (JSON).
    pub fn fdr_json(&self) -> PathBuf {
        self.out_dir.join("fdr.json")
    }

    /// The final SEU FDR table (CSV).
    pub fn fdr_csv(&self) -> PathBuf {
        self.out_dir.join("fdr.csv")
    }

    /// The final SET de-rating table (JSON).
    pub fn set_json(&self) -> PathBuf {
        self.out_dir.join("set-derating.json")
    }

    /// The final SET de-rating table (CSV).
    pub fn set_csv(&self) -> PathBuf {
        self.out_dir.join("set-derating.csv")
    }

    /// The ML estimation report (JSON), written by `ffr estimate`.
    pub fn estimate_json(&self) -> PathBuf {
        self.out_dir.join("estimate.json")
    }

    /// The per-flip-flop estimate table (CSV), written by `ffr estimate`.
    pub fn estimate_csv(&self) -> PathBuf {
        self.out_dir.join("estimate.csv")
    }

    /// The final result table (JSON) of a campaign with the given fault
    /// model.
    pub fn table_json(&self, fault: FaultKind) -> PathBuf {
        match fault {
            FaultKind::Seu => self.fdr_json(),
            FaultKind::Set => self.set_json(),
        }
    }

    /// The final result table (CSV) of a campaign with the given fault
    /// model.
    pub fn table_csv(&self, fault: FaultKind) -> PathBuf {
        match fault {
            FaultKind::Seu => self.fdr_csv(),
            FaultKind::Set => self.set_csv(),
        }
    }

    /// The lease directory of distributed (`ffr worker`) draining.
    pub fn leases_dir(&self) -> PathBuf {
        self.out_dir.join("leases")
    }

    /// The shard-checkpoint directory of distributed draining.
    pub fn shards_dir(&self) -> PathBuf {
        self.out_dir.join("shards")
    }

    /// The telemetry directory (per-worker JSONL event logs). Explicitly
    /// outside the artifact store and the campaign fingerprint: telemetry
    /// never participates in resume/merge determinism or cache keys.
    pub fn telemetry_dir(&self) -> PathBuf {
        ffr_obs::telemetry_dir(&self.out_dir)
    }
}

/// Parameters for starting a fresh campaign session.
#[derive(Debug, Clone)]
pub struct RunRequest {
    /// Circuit to run on.
    pub circuit: CircuitSpec,
    /// Fault model: SEU over every flip-flop, or SET over every
    /// combinational net.
    pub fault: FaultKind,
    /// Stimulus seed.
    pub stim_seed: u64,
    /// Testbench length for generic circuits.
    pub cycles: u64,
    /// Campaign master seed.
    pub seed: u64,
    /// Stopping policy.
    pub policy: AdaptivePolicy,
    /// Measurement budget: fraction of injection points to fault-inject
    /// (1.0 = all of them). Budgeted SEU campaigns measure a seeded random
    /// flip-flop subset; `ffr estimate` predicts the rest.
    pub budget: f64,
    /// Checkpoint flush cadence.
    pub checkpoint_every: usize,
    /// Artifact store root (`None` disables caching).
    pub store: Option<PathBuf>,
    /// Ignore a cached final table and re-run.
    pub force: bool,
}

impl RunRequest {
    /// Sensible defaults for a circuit: SEU fault model, paper-style fixed
    /// 170-injection policy, checkpoint every 32 points, no store.
    pub fn new(circuit: CircuitSpec) -> RunRequest {
        RunRequest {
            circuit,
            fault: FaultKind::Seu,
            stim_seed: 1,
            cycles: 400,
            seed: 2019,
            policy: AdaptivePolicy::fixed(170),
            budget: 1.0,
            checkpoint_every: 32,
            store: None,
            force: false,
        }
    }
}

/// Outcome summary of a `run`/`resume` invocation.
#[derive(Debug)]
pub struct RunSummary {
    /// Fault model of the session.
    pub fault: FaultKind,
    /// How the runner ended (cache-served runs report `Complete`).
    pub outcome: RunOutcome,
    /// `true` if the golden run came from the artifact store.
    pub golden_from_cache: bool,
    /// `true` if the final table was served from the artifact store
    /// without simulating anything.
    pub table_from_cache: bool,
    /// Retired injection points.
    pub completed_points: usize,
    /// Total injection points.
    pub total_points: usize,
    /// Injections executed so far (all invocations).
    pub total_injections: usize,
    /// Path of the final result table, once complete.
    pub table_path: Option<PathBuf>,
}

fn open_store(path: &Option<String>) -> io::Result<Option<ArtifactStore>> {
    match path {
        None => Ok(None),
        Some(p) => Ok(Some(ArtifactStore::open(p)?)),
    }
}

/// The two final-table types behind one interface, so cache serving and
/// completion write-out are implemented once instead of per fault model.
trait CampaignTable: serde::Serialize + serde::Deserialize + Sized {
    /// Store kind of the table artifact.
    const KIND: ArtifactKind;
    fn save_json(&self, path: &Path) -> io::Result<()>;
    fn to_csv(&self) -> String;
}

impl CampaignTable for FdrTable {
    const KIND: ArtifactKind = ArtifactKind::FdrTable;
    fn save_json(&self, path: &Path) -> io::Result<()> {
        FdrTable::save_json(self, path)
    }
    fn to_csv(&self) -> String {
        FdrTable::to_csv(self)
    }
}

impl CampaignTable for SetDeratingTable {
    const KIND: ArtifactKind = ArtifactKind::SetTable;
    fn save_json(&self, path: &Path) -> io::Result<()> {
        SetDeratingTable::save_json(self, path)
    }
    fn to_csv(&self) -> String {
        SetDeratingTable::to_csv(self)
    }
}

/// Write the session's final table files (JSON + CSV).
fn write_table_files<T: CampaignTable>(
    table: &T,
    paths: &SessionPaths,
    fault: FaultKind,
) -> io::Result<()> {
    table.save_json(&paths.table_json(fault))?;
    std::fs::write(paths.table_csv(fault), table.to_csv())
}

/// Serve the final table from the artifact store if cached; returns
/// whether it was.
fn serve_cached_table<T: CampaignTable>(
    store: &ArtifactStore,
    key: &StoreKey,
    paths: &SessionPaths,
    fault: FaultKind,
) -> io::Result<bool> {
    match store.get::<T>(T::KIND, key)? {
        Some(table) => {
            write_table_files(&table, paths, fault)?;
            Ok(true)
        }
        None => Ok(false),
    }
}

/// Write the final table files and publish the table to the store.
fn publish_table<T: CampaignTable>(
    table: &T,
    paths: &SessionPaths,
    fault: FaultKind,
    store: &Option<ArtifactStore>,
    key: &StoreKey,
) -> io::Result<()> {
    write_table_files(table, paths, fault)?;
    if let Some(store) = store {
        store.put(T::KIND, key, table)?;
    }
    Ok(())
}

/// The campaign's injection-point ids for a circuit: every flip-flop for
/// SEU, every combinational op output net for SET.
fn point_ids(fault: FaultKind, cc: &ffr_sim::CompiledCircuit) -> Vec<u32> {
    match fault {
        FaultKind::Seu => (0..cc.num_ffs() as u32).collect(),
        FaultKind::Set => cc
            .comb_output_nets()
            .iter()
            .map(|n| n.index() as u32)
            .collect(),
    }
}

/// The injection points actually measured under a budget: a seeded random
/// subset of [`point_ids`] (at least two points), in ascending id order.
///
/// The subset is a pure function of `(circuit, fault, budget, seed)` — the
/// shuffle RNG stream is domain-separated from the injection-plan streams
/// — so budgeted runs resume and cache-serve exactly like full ones.
pub(crate) fn budgeted_point_ids(
    fault: FaultKind,
    cc: &ffr_sim::CompiledCircuit,
    budget: f64,
    seed: u64,
) -> Vec<u32> {
    use rand::seq::SliceRandom;
    use rand_chacha::rand_core::SeedableRng;
    let mut ids = point_ids(fault, cc);
    if budget >= 1.0 {
        return ids;
    }
    let n = ((ids.len() as f64) * budget).round().max(2.0) as usize;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0xB0D6_E7ED);
    ids.shuffle(&mut rng);
    ids.truncate(n.min(ids.len()));
    ids.sort_unstable();
    ids
}

/// The golden run for a prepared circuit: served from the store when
/// cached — keyed by `(netlist, stimulus config)`, so SEU/SET campaigns,
/// any policy/seed/budget and `ffr estimate` all share one artifact —
/// otherwise captured and published back. Returns whether it was a cache
/// hit. The single definition of the golden-run cache discipline, shared
/// by the campaign driver and the estimation stage.
pub(crate) fn golden_for(
    prepared: &crate::spec::PreparedCircuit,
    store: Option<&ArtifactStore>,
) -> io::Result<(GoldenRun, bool)> {
    let key = StoreKey::of(prepared.cc.netlist(), &prepared.config_desc);
    if let Some(store) = store {
        if let Some(golden) = store.get::<GoldenRun>(ArtifactKind::GoldenRun, &key)? {
            return Ok((golden, true));
        }
    }
    let golden = GoldenRun::capture(&prepared.cc, &prepared.stimulus, &prepared.watch);
    if let Some(store) = store {
        store.put(ArtifactKind::GoldenRun, &key, &golden)?;
    }
    Ok((golden, false))
}

/// The store key of a campaign's final table: a fingerprint of the
/// netlist structure, the stimulus, the fault model and every campaign
/// parameter (window, seed, policy, budget). The policy enters through
/// its canonical spec rendering ([`AdaptivePolicy`]'s `Display`), so two
/// campaigns with different `--policy` values never share a cache entry.
pub fn campaign_table_key(
    request: &RunRequest,
    prepared: &crate::spec::PreparedCircuit,
) -> StoreKey {
    let campaign_desc = format!(
        "{};fault={};window={}..{};seed={};policy={};budget={}",
        prepared.config_desc,
        request.fault,
        prepared.window.start,
        prepared.window.end,
        request.seed,
        request.policy,
        request.budget
    );
    StoreKey::of(prepared.cc.netlist(), &campaign_desc)
}

/// Reject requests that cannot form a valid campaign.
fn validate_request(request: &RunRequest) -> io::Result<()> {
    if request.cycles < MIN_CYCLES {
        return Err(io::Error::other(format!(
            "--cycles {} is too short for an injection window (minimum {MIN_CYCLES})",
            request.cycles
        )));
    }
    if !(request.budget > 0.0 && request.budget <= 1.0) {
        return Err(io::Error::other(format!(
            "--budget {} is not a fraction in (0, 1]",
            request.budget
        )));
    }
    request.circuit.validate_sources().map_err(io::Error::other)
}

/// The manifest a request produces (pure; shared by `run` and `worker`
/// bootstrap so concurrent initializers write identical bytes).
fn manifest_for(request: &RunRequest, table_key: &StoreKey) -> CampaignManifest {
    CampaignManifest {
        version: MANIFEST_VERSION,
        circuit: request.circuit.spec_string(),
        fault: request.fault,
        stim_seed: request.stim_seed,
        cycles: request.cycles,
        seed: request.seed,
        policy: request.policy.clone(),
        budget: request.budget,
        checkpoint_every: request.checkpoint_every,
        store: request
            .store
            .as_ref()
            .map(|p| p.to_string_lossy().into_owned()),
        fingerprint: table_key.to_string(),
    }
}

/// Start (or restart) a campaign session in `out_dir`.
///
/// # Errors
///
/// Fails on I/O errors, or if `out_dir` already holds a checkpoint for a
/// different campaign (use [`resume`] to continue one).
pub fn run(
    request: &RunRequest,
    out_dir: &Path,
    options: &RunnerOptions,
    cancel: &CancelToken,
    progress: impl Fn(usize, usize) + Sync,
) -> io::Result<RunSummary> {
    validate_request(request)?;
    std::fs::create_dir_all(out_dir)?;
    let paths = SessionPaths::new(out_dir);
    let prepared = request.circuit.prepare(request.stim_seed, request.cycles);

    // The campaign fingerprint covers the netlist, the stimulus, the
    // fault model and every campaign parameter.
    let table_key = campaign_table_key(request, &prepared);
    let manifest = manifest_for(request, &table_key);

    // Refuse to clobber a different campaign's session directory. The
    // checkpoint is validated BEFORE the manifest is (re)written, so a
    // directory with a readable checkpoint but a damaged manifest never
    // loses the original campaign's parameters to an unrelated run.
    let checkpoint = match CampaignCheckpoint::load(&paths.checkpoint()) {
        Ok(cp) if cp.fingerprint == manifest.fingerprint => Some(cp),
        Ok(_) => {
            return Err(io::Error::other(format!(
                "checkpoint in {} belongs to a different campaign; \
                 remove it or use a fresh --out directory",
                out_dir.display()
            )))
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => None,
        Err(e) => return Err(e),
    };
    if let Ok(existing) = CampaignManifest::load(&paths.manifest()) {
        if existing.fingerprint != manifest.fingerprint {
            return Err(io::Error::other(format!(
                "{} already holds a campaign with different parameters \
                 (fingerprint {} vs {}); use a fresh --out directory",
                out_dir.display(),
                existing.fingerprint,
                manifest.fingerprint
            )));
        }
    }
    manifest.save(&paths.manifest())?;

    let recorder = ffr_obs::Recorder::for_session(out_dir, "local");
    let store = open_store(&manifest.store)?.map(|s| s.with_recorder(recorder.clone()));

    // Fast path: final table already in the store and no partial
    // checkpoint to honour.
    if !request.force && checkpoint.is_none() {
        if let Some(store) = &store {
            let num_points =
                budgeted_point_ids(request.fault, &prepared.cc, request.budget, request.seed).len();
            let served = match request.fault {
                FaultKind::Seu => {
                    serve_cached_table::<FdrTable>(store, &table_key, &paths, request.fault)?
                }
                FaultKind::Set => serve_cached_table::<SetDeratingTable>(
                    store,
                    &table_key,
                    &paths,
                    request.fault,
                )?,
            };
            if served {
                recorder.finish();
                return Ok(RunSummary {
                    fault: request.fault,
                    outcome: RunOutcome::Complete,
                    golden_from_cache: true,
                    table_from_cache: true,
                    completed_points: num_points,
                    total_points: num_points,
                    total_injections: 0,
                    table_path: Some(paths.table_json(request.fault)),
                });
            }
        }
    }
    let checkpoint = checkpoint.unwrap_or_else(|| fresh_checkpoint(&manifest, &prepared));

    drive(
        prepared, manifest, checkpoint, paths, store, options, cancel, progress, recorder,
    )
}

/// Resume the campaign session in `out_dir` from its manifest and
/// checkpoint.
///
/// Shard checkpoints left behind by `ffr worker` processes are discovered
/// and merged first, so a partially worker-drained campaign can be
/// finished single-process (the result is byte-identical either way).
///
/// # Errors
///
/// Fails on I/O errors or if the directory holds no session (a manifest
/// with neither a checkpoint nor any shards).
pub fn resume(
    out_dir: &Path,
    options: &RunnerOptions,
    cancel: &CancelToken,
    progress: impl Fn(usize, usize) + Sync,
) -> io::Result<RunSummary> {
    let paths = SessionPaths::new(out_dir);
    let manifest = CampaignManifest::load(&paths.manifest()).map_err(|e| {
        io::Error::other(format!(
            "no campaign session in {} ({e})",
            out_dir.display()
        ))
    })?;
    let circuit: CircuitSpec = manifest.circuit.parse().map_err(io::Error::other)?;
    let prepared = circuit.prepare(manifest.stim_seed, manifest.cycles);
    let mut checkpoint = match CampaignCheckpoint::load(&paths.checkpoint()) {
        Ok(cp) => cp,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            // Worker-drained sessions keep their progress in shards until
            // completion; resume can pick that up from a fresh base.
            if work::list_shards(&paths.shards_dir())?.is_empty() {
                return Err(e);
            }
            fresh_checkpoint(&manifest, &prepared)
        }
        Err(e) => return Err(e),
    };
    if checkpoint.fingerprint != manifest.fingerprint {
        return Err(io::Error::other(
            "checkpoint does not match the session manifest",
        ));
    }
    if checkpoint.params.fault != manifest.fault {
        return Err(io::Error::other(
            "checkpoint fault model does not match the session manifest",
        ));
    }
    let recorder = ffr_obs::Recorder::for_session(out_dir, "local");
    {
        let mut span = recorder.span("phase.merge");
        let merged = merge_shards(&paths, &mut checkpoint)?;
        span.field("shards", merged);
    }
    let store = open_store(&manifest.store)?.map(|s| s.with_recorder(recorder.clone()));
    drive(
        prepared, manifest, checkpoint, paths, store, options, cancel, progress, recorder,
    )
}

#[allow(clippy::too_many_arguments)]
fn drive(
    prepared: crate::spec::PreparedCircuit,
    manifest: CampaignManifest,
    mut checkpoint: CampaignCheckpoint,
    paths: SessionPaths,
    store: Option<ArtifactStore>,
    options: &RunnerOptions,
    cancel: &CancelToken,
    progress: impl Fn(usize, usize) + Sync,
    recorder: ffr_obs::Recorder,
) -> io::Result<RunSummary> {
    let (golden, golden_from_cache) = {
        let mut span = recorder.span("phase.golden");
        let got = golden_for(&prepared, store.as_ref())?;
        span.field("cached", got.1);
        got
    };

    let judge = prepared.judge_spec.build(&golden);
    let campaign = Campaign::with_golden(
        &prepared.cc,
        &prepared.stimulus,
        &prepared.watch,
        &judge,
        golden,
    );

    let checkpoint_path = paths.checkpoint();
    let mut runner_options = options.clone();
    runner_options.checkpoint_every = manifest.checkpoint_every;
    runner_options.recorder = recorder.clone();
    let outcome = {
        let mut span = recorder.span("phase.measure");
        let outcome = run_resumable(
            &campaign,
            &mut checkpoint,
            &runner_options,
            cancel,
            |cp| cp.save_recorded(&checkpoint_path, &recorder),
            progress,
        )?;
        span.field("completed_points", checkpoint.completed_points());
        span.field("total_injections", checkpoint.total_injections());
        outcome
    };

    let mut table_path = None;
    if outcome == RunOutcome::Complete {
        let _span = recorder.span("phase.publish");
        table_path = Some(publish_completed(
            &checkpoint,
            prepared.cc.num_ffs(),
            &manifest,
            &paths,
            &store,
        )?);
    }
    recorder.finish();

    Ok(RunSummary {
        fault: manifest.fault,
        outcome,
        golden_from_cache,
        table_from_cache: false,
        completed_points: checkpoint.completed_points(),
        total_points: checkpoint.num_points,
        total_injections: checkpoint.total_injections(),
        table_path,
    })
}

/// Write the final table files (JSON + CSV + store artifact) of a
/// completed campaign and return the JSON path.
fn publish_completed(
    checkpoint: &CampaignCheckpoint,
    num_ffs: usize,
    manifest: &CampaignManifest,
    paths: &SessionPaths,
    store: &Option<ArtifactStore>,
) -> io::Result<PathBuf> {
    let key: StoreKey = parse_key(&manifest.fingerprint)?;
    match manifest.fault {
        FaultKind::Seu => publish_table(
            &checkpoint.to_fdr_table_for(num_ffs),
            paths,
            manifest.fault,
            store,
            &key,
        )?,
        FaultKind::Set => publish_table(
            &checkpoint.to_set_table(),
            paths,
            manifest.fault,
            store,
            &key,
        )?,
    }
    Ok(paths.table_json(manifest.fault))
}

/// The deterministic fresh checkpoint of a manifest's campaign: every
/// worker (and `resume` over a shard-only session) derives the same base,
/// so no coordination is needed to create it.
fn fresh_checkpoint(
    manifest: &CampaignManifest,
    prepared: &crate::spec::PreparedCircuit,
) -> CampaignCheckpoint {
    CampaignCheckpoint::fresh(
        manifest.fingerprint.clone(),
        CheckpointParams {
            fault: manifest.fault,
            seed: manifest.seed,
            window_start: prepared.window.start,
            window_end: prepared.window.end,
            policy: manifest.policy.clone(),
        },
        budgeted_point_ids(manifest.fault, &prepared.cc, manifest.budget, manifest.seed),
    )
}

/// Discover the session's shard checkpoints and merge them into
/// `checkpoint` (point-indexed, order-independent — see
/// [`CampaignCheckpoint::merge_shard`]). Returns how many shards were
/// merged.
///
/// # Errors
///
/// Fails on I/O errors or if a shard belongs to a different campaign.
pub fn merge_shards(
    paths: &SessionPaths,
    checkpoint: &mut CampaignCheckpoint,
) -> io::Result<usize> {
    let shards = work::list_shards(&paths.shards_dir())?;
    let count = shards.len();
    for shard in shards {
        checkpoint.merge_shard(&shard)?;
    }
    Ok(count)
}

/// The "same directory, different campaign" refusal shared by every
/// bootstrap path.
fn fingerprint_conflict(out_dir: &Path, existing: &str, ours: &str) -> io::Error {
    io::Error::other(format!(
        "{} already holds a campaign with different parameters \
         (fingerprint {existing} vs {ours}); use a fresh campaign directory",
        out_dir.display()
    ))
}

/// Prepare a campaign directory for `request`: validate the request,
/// create the directory and publish the manifest — or adopt an existing
/// manifest if it describes the *same* campaign (same fingerprint).
///
/// This is the single campaign-bootstrap primitive shared by `ffr worker
/// --circuit …` and the `ffrd` service's `POST /campaigns` handler.
/// Concurrent initializers race benignly: exactly one wins the
/// create-exclusive publish, and losers adopt the winner's manifest
/// (which is byte-identical when the parameters agree).
///
/// # Errors
///
/// Fails on I/O errors, an invalid request, or an existing manifest with
/// a different fingerprint.
pub fn prepare_campaign(request: &RunRequest, out_dir: &Path) -> io::Result<CampaignManifest> {
    validate_request(request)?;
    let paths = SessionPaths::new(out_dir);
    let prepared = request.circuit.prepare(request.stim_seed, request.cycles);
    let manifest = manifest_for(request, &campaign_table_key(request, &prepared));
    match CampaignManifest::load(&paths.manifest()) {
        Ok(existing) => {
            if existing.fingerprint != manifest.fingerprint {
                return Err(fingerprint_conflict(
                    out_dir,
                    &existing.fingerprint,
                    &manifest.fingerprint,
                ));
            }
            Ok(existing)
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            std::fs::create_dir_all(out_dir)?;
            let json = serde_json::to_string_pretty(&manifest).map_err(io::Error::other)?;
            // Exactly one bootstrapper wins (create-exclusive); losers
            // adopt the winner's manifest — and are refused here if their
            // parameters describe a different campaign, instead of
            // silently mixing two campaigns' shards in one directory.
            if crate::store::create_exclusive(&paths.manifest(), &json)? {
                Ok(manifest)
            } else {
                let existing = CampaignManifest::load(&paths.manifest())?;
                if existing.fingerprint != manifest.fingerprint {
                    return Err(fingerprint_conflict(
                        out_dir,
                        &existing.fingerprint,
                        &manifest.fingerprint,
                    ));
                }
                Ok(existing)
            }
        }
        Err(e) => Err(e),
    }
}

/// How long a worker without bootstrap flags waits for a sibling
/// bootstrapper to publish the campaign manifest before giving up.
const BOOTSTRAP_WAIT: Duration = Duration::from_secs(15);

/// Parameters of one `ffr worker` invocation.
#[derive(Debug, Clone)]
pub struct WorkerRequest {
    /// Stable identity of this worker (lease ownership, shard
    /// provenance). Reusing an id after a crash lets the new incarnation
    /// reclaim its own stale leases immediately.
    pub worker_id: String,
    /// Points per lease range (small = better balance, large = less
    /// lease I/O).
    pub lease_points: usize,
    /// Lease time-to-live; must comfortably exceed the heartbeat
    /// interval (`ttl / 3`).
    pub lease_ttl: Duration,
    /// Rescan interval while other workers hold the remaining leases.
    pub poll: Duration,
    /// Artifact store override for this worker (golden-run caching);
    /// `None` uses the store recorded in the campaign manifest.
    pub store: Option<PathBuf>,
    /// Campaign parameters for bootstrapping an uninitialized campaign
    /// directory; verified against the manifest when one exists.
    pub init: Option<RunRequest>,
}

impl WorkerRequest {
    /// Defaults: 16-point leases, 30 s TTL, 200 ms poll.
    pub fn new(worker_id: impl Into<String>) -> WorkerRequest {
        WorkerRequest {
            worker_id: worker_id.into(),
            lease_points: 16,
            lease_ttl: Duration::from_secs(30),
            poll: Duration::from_millis(200),
            store: None,
            init: None,
        }
    }
}

/// Outcome summary of one `ffr worker` invocation.
#[derive(Debug)]
pub struct WorkerSummary {
    /// Fault model of the session.
    pub fault: FaultKind,
    /// How this worker's runner ended ([`RunOutcome::Drained`] means
    /// other workers computed part of the campaign).
    pub outcome: RunOutcome,
    /// `true` once the whole campaign (all shards merged) is complete —
    /// in that case this worker also published the final table.
    pub campaign_complete: bool,
    /// Shards merged into the final view (all workers').
    pub merged_shards: usize,
    /// Retired points in the merged view.
    pub completed_points: usize,
    /// Total injection points of the campaign.
    pub total_points: usize,
    /// Injections executed across all workers (merged view).
    pub total_injections: usize,
    /// `true` if the golden run came from the artifact store.
    pub golden_from_cache: bool,
    /// Path of the final result table, once the campaign is complete.
    pub table_path: Option<PathBuf>,
}

/// Drain a campaign as one worker of a distributed fleet.
///
/// The worker leases point ranges from the session directory's
/// [`LeaseQueue`], computes them, flushes per-range shard checkpoints,
/// and heartbeats its leases from a background thread. It keeps claiming
/// until every range has a complete shard (waiting out other workers'
/// live leases, reclaiming expired ones) or until cancelled. The **last**
/// worker standing observes global completion, merges all shards and
/// publishes the final table — byte-identical to a single-process
/// `ffr run`, no matter how the work was distributed. If several workers
/// observe completion simultaneously they all publish identical bytes
/// through atomic renames, so the race is benign.
///
/// # Errors
///
/// Fails on I/O errors, an uninitialized campaign directory without
/// `init` parameters, or parameters conflicting with the existing
/// manifest.
pub fn worker(
    out_dir: &Path,
    request: &WorkerRequest,
    options: &RunnerOptions,
    cancel: &CancelToken,
    progress: impl Fn(usize, usize) + Sync,
) -> io::Result<WorkerSummary> {
    let paths = SessionPaths::new(out_dir);
    // The manifest is the shared campaign definition: an existing one
    // wins; otherwise the worker's own campaign flags bootstrap it
    // through the same primitive the `ffrd` service uses.
    let manifest = match &request.init {
        Some(init) => prepare_campaign(init, out_dir)?,
        None => match CampaignManifest::load(&paths.manifest()) {
            Ok(existing) => existing,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                // A sibling worker launched with bootstrap flags (or the
                // service) may still be preparing its circuit (seconds
                // at paper scale) before the manifest lands; wait
                // briefly rather than abandoning the fleet. A
                // bootstrapper creates the campaign directory before
                // that slow preparation, so a missing directory means
                // nobody is coming — fail fast.
                let deadline = std::time::Instant::now() + BOOTSTRAP_WAIT;
                loop {
                    if cancel.is_cancelled()
                        || !out_dir.exists()
                        || std::time::Instant::now() >= deadline
                    {
                        return Err(io::Error::other(format!(
                            "no campaign session in {} — initialize one with `ffr run`, \
                             or pass --circuit (plus campaign flags) to the first worker",
                            out_dir.display()
                        )));
                    }
                    std::thread::sleep(request.poll.max(Duration::from_millis(50)));
                    match CampaignManifest::load(&paths.manifest()) {
                        Ok(manifest) => break manifest,
                        Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                        Err(e) => return Err(e),
                    }
                }
            }
            Err(e) => return Err(e),
        },
    };

    let circuit: CircuitSpec = manifest.circuit.parse().map_err(io::Error::other)?;
    let prepared = circuit.prepare(manifest.stim_seed, manifest.cycles);
    // Base progress: the session's single-process checkpoint when one
    // exists (e.g. an interrupted `ffr run` being finished by workers),
    // else the deterministic fresh base. Other workers' progress arrives
    // later via shard hydration and the final merge.
    let mut checkpoint = match CampaignCheckpoint::load(&paths.checkpoint()) {
        Ok(cp) if cp.fingerprint == manifest.fingerprint => cp,
        Ok(_) => {
            return Err(io::Error::other(
                "checkpoint does not match the session manifest",
            ))
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => fresh_checkpoint(&manifest, &prepared),
        Err(e) => return Err(e),
    };
    let recorder = ffr_obs::Recorder::for_session(out_dir, &request.worker_id);
    let store = match &request.store {
        Some(path) => Some(ArtifactStore::open(path)?),
        None => open_store(&manifest.store)?,
    }
    .map(|s| s.with_recorder(recorder.clone()));
    let (golden, golden_from_cache) = {
        let mut span = recorder.span("phase.golden");
        let got = golden_for(&prepared, store.as_ref())?;
        span.field("cached", got.1);
        got
    };
    let judge = prepared.judge_spec.build(&golden);
    let campaign = Campaign::with_golden(
        &prepared.cc,
        &prepared.stimulus,
        &prepared.watch,
        &judge,
        golden,
    );

    let queue = LeaseQueue::open(
        out_dir,
        manifest.fingerprint.clone(),
        request.worker_id.clone(),
        checkpoint.points.len(),
        request.lease_points,
        request.lease_ttl,
        request.poll,
        cancel.clone(),
    )?
    .with_recorder(recorder.clone());

    let mut runner_options = options.clone();
    runner_options.checkpoint_every = manifest.checkpoint_every;
    runner_options.recorder = recorder.clone();
    let stop_heartbeat = AtomicBool::new(false);
    let run_result = std::thread::scope(|scope| {
        let heartbeat = scope.spawn(|| {
            let interval = (request.lease_ttl / 3).max(Duration::from_millis(50));
            let mut last = std::time::Instant::now();
            while !stop_heartbeat.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(25));
                if last.elapsed() >= interval {
                    // A missed heartbeat is survivable: the lease expires
                    // and the range is recomputed identically elsewhere.
                    let _ = queue.refresh_held();
                    last = std::time::Instant::now();
                }
            }
        });
        let mut span = recorder.span("phase.measure");
        let result = run_with_source(
            &campaign,
            &mut checkpoint,
            &queue,
            &runner_options,
            cancel,
            |cp| queue.flush_held(cp),
            progress,
        );
        span.field("completed_points", checkpoint.completed_points());
        drop(span);
        stop_heartbeat.store(true, Ordering::Relaxed);
        heartbeat.join().expect("heartbeat thread");
        result
    });
    // Release still-held leases — on cancellation *and* on error — so
    // another worker can take over immediately instead of waiting out the
    // TTL; the partial shards are already flushed.
    queue.release_held();
    let outcome = run_result?;

    let merged_shards = {
        let mut span = recorder.span("phase.merge");
        let merged = merge_shards(&paths, &mut checkpoint)?;
        span.field("shards", merged);
        merged
    };
    let campaign_complete = checkpoint.is_complete();
    let mut table_path = None;
    if campaign_complete {
        let _span = recorder.span("phase.publish");
        checkpoint.save_recorded(&paths.checkpoint(), &recorder)?;
        table_path = Some(publish_completed(
            &checkpoint,
            prepared.cc.num_ffs(),
            &manifest,
            &paths,
            &store,
        )?);
    }
    recorder.finish();
    Ok(WorkerSummary {
        fault: manifest.fault,
        outcome,
        campaign_complete,
        merged_shards,
        completed_points: checkpoint.completed_points(),
        total_points: checkpoint.num_points,
        total_injections: checkpoint.total_injections(),
        golden_from_cache,
        table_path,
    })
}

pub(crate) fn parse_key(rendered: &str) -> io::Result<StoreKey> {
    let (netlist, config) = rendered
        .split_once('-')
        .ok_or_else(|| io::Error::other("malformed fingerprint"))?;
    Ok(StoreKey {
        netlist: u64::from_str_radix(netlist, 16).map_err(io::Error::other)?,
        config: u64::from_str_radix(config, 16).map_err(io::Error::other)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ffr_session_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn quick_request(store: Option<PathBuf>) -> RunRequest {
        RunRequest {
            circuit: CircuitSpec::Counter { width: 6 },
            fault: FaultKind::Seu,
            stim_seed: 1,
            cycles: 160,
            seed: 7,
            policy: AdaptivePolicy::fixed(64),
            budget: 1.0,
            checkpoint_every: 2,
            store,
            force: false,
        }
    }

    #[test]
    fn run_produces_table_and_cache_round_trip() {
        let out = tmp_dir("run");
        let store_dir = tmp_dir("run_store");
        let request = quick_request(Some(store_dir));
        let summary = run(
            &request,
            &out,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(summary.outcome, RunOutcome::Complete);
        assert!(!summary.golden_from_cache);
        assert!(!summary.table_from_cache);
        let first = std::fs::read(out.join("fdr.json")).unwrap();

        // Second run: served from the artifact cache, no simulation.
        let out2 = tmp_dir("run2");
        let summary2 = run(
            &request,
            &out2,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        assert!(summary2.table_from_cache);
        assert_eq!(summary2.total_injections, 0);
        let second = std::fs::read(out2.join("fdr.json")).unwrap();
        assert_eq!(first, second, "cache-served table must be byte-identical");
    }

    #[test]
    fn set_session_produces_derating_table_and_cache_round_trip() {
        let out = tmp_dir("set_run");
        let store_dir = tmp_dir("set_store");
        let mut request = quick_request(Some(store_dir));
        request.fault = FaultKind::Set;
        let summary = run(
            &request,
            &out,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(summary.fault, FaultKind::Set);
        assert_eq!(summary.outcome, RunOutcome::Complete);
        assert!(summary.total_points > 0, "counter has combinational nets");
        let table = SetDeratingTable::load_json(&out.join("set-derating.json")).unwrap();
        assert_eq!(table.num_nets(), summary.total_points);
        assert!(!out.join("fdr.json").exists(), "SET session writes no FDR");
        let first = std::fs::read(out.join("set-derating.json")).unwrap();

        // Cache-served rerun is byte-identical.
        let out2 = tmp_dir("set_run2");
        let summary2 = run(
            &request,
            &out2,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        assert!(summary2.table_from_cache);
        let second = std::fs::read(out2.join("set-derating.json")).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn seu_and_set_sessions_have_distinct_fingerprints() {
        let seu = quick_request(None);
        let mut set = quick_request(None);
        set.fault = FaultKind::Set;
        let out_seu = tmp_dir("fp_seu");
        let out_set = tmp_dir("fp_set");
        run(
            &seu,
            &out_seu,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        run(
            &set,
            &out_set,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        let a = CampaignManifest::load(&SessionPaths::new(&out_seu).manifest()).unwrap();
        let b = CampaignManifest::load(&SessionPaths::new(&out_set).manifest()).unwrap();
        assert_ne!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn distinct_policies_get_distinct_fingerprints() {
        // Same circuit/seed/stimulus, different stopping policies: every
        // fingerprint must differ, so the campaigns cache independently.
        let prepared = CircuitSpec::Counter { width: 6 }.prepare(1, 160);
        let policies = [
            "fixed:170",
            "fixed:64",
            "wilson:0.05@95:64..170",
            "wilson:0.05@99:64..170",
            "wilson:0.02@95:64..170",
            "wilson:0.05@95:32..170",
            "wilson:0.05@95:64..340",
        ];
        let keys: Vec<String> = policies
            .iter()
            .map(|p| {
                let mut request = quick_request(None);
                request.policy = p.parse().unwrap();
                campaign_table_key(&request, &prepared).to_string()
            })
            .collect();
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(
                    keys[i], keys[j],
                    "{} and {} must not share a fingerprint",
                    policies[i], policies[j]
                );
            }
        }
    }

    #[test]
    fn wilson_policy_kill_and_resume_retires_identically() {
        // Under a non-default adaptive policy, an interrupted campaign
        // must resume to the byte-identical table — same per-FF injection
        // spend, same retirement decisions.
        let mut request = quick_request(None);
        request.circuit = CircuitSpec::Lfsr { width: 8, depth: 2 };
        request.policy = "wilson:0.02@99:64..256".parse().unwrap();

        let out_ref = tmp_dir("wilson_ref");
        run(
            &request,
            &out_ref,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        let reference = std::fs::read(out_ref.join("fdr.json")).unwrap();
        let ref_cp = CampaignCheckpoint::load(&out_ref.join("checkpoint.json")).unwrap();
        let spends: Vec<usize> = ref_cp.points.iter().map(|p| p.injections_done).collect();
        assert!(
            spends.iter().any(|&n| n < 256) && spends.iter().all(|&n| n > 64),
            "the tight 99 % policy should push every point past the floor \
             and still retire some before the cap (got {spends:?})"
        );

        let out = tmp_dir("wilson_killed");
        let summary = run(
            &request,
            &out,
            &RunnerOptions {
                stop_after_points: Some(2),
                threads: Some(2),
                ..RunnerOptions::default()
            },
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(summary.outcome, RunOutcome::Cancelled);
        let summary = resume(
            &out,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(summary.outcome, RunOutcome::Complete);
        assert_eq!(
            reference,
            std::fs::read(out.join("fdr.json")).unwrap(),
            "wilson-policy resume must be byte-identical"
        );
        let resumed_cp = CampaignCheckpoint::load(&out.join("checkpoint.json")).unwrap();
        assert_eq!(
            spends,
            resumed_cp
                .points
                .iter()
                .map(|p| p.injections_done)
                .collect::<Vec<_>>(),
            "resume must retire every point after identical injections"
        );
    }

    #[test]
    fn kill_and_resume_is_byte_identical() {
        // Uninterrupted reference run.
        let out_ref = tmp_dir("ref");
        let request = quick_request(None);
        run(
            &request,
            &out_ref,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        let reference = std::fs::read(out_ref.join("fdr.json")).unwrap();

        // Killed after two retirements…
        let out = tmp_dir("killed");
        let summary = run(
            &request,
            &out,
            &RunnerOptions {
                stop_after_points: Some(2),
                threads: Some(2),
                ..RunnerOptions::default()
            },
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(summary.outcome, RunOutcome::Cancelled);
        assert!(!out.join("fdr.json").exists());
        assert!(out.join("checkpoint.json").exists());

        // …and resumed to completion.
        let summary = resume(
            &out,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(summary.outcome, RunOutcome::Complete);
        let resumed = std::fs::read(out.join("fdr.json")).unwrap();
        assert_eq!(reference, resumed, "resume must be byte-identical");
    }

    #[test]
    fn set_kill_and_resume_is_byte_identical() {
        let out_ref = tmp_dir("set_ref");
        let mut request = quick_request(None);
        request.fault = FaultKind::Set;
        run(
            &request,
            &out_ref,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        let reference = std::fs::read(out_ref.join("set-derating.json")).unwrap();

        let out = tmp_dir("set_killed");
        let summary = run(
            &request,
            &out,
            &RunnerOptions {
                stop_after_points: Some(2),
                threads: Some(2),
                ..RunnerOptions::default()
            },
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(summary.outcome, RunOutcome::Cancelled);
        assert!(!out.join("set-derating.json").exists());

        let summary = resume(
            &out,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(summary.outcome, RunOutcome::Complete);
        let resumed = std::fs::read(out.join("set-derating.json")).unwrap();
        assert_eq!(reference, resumed, "SET resume must be byte-identical");
    }

    #[test]
    fn mismatched_session_directory_is_refused() {
        let out = tmp_dir("mismatch");
        let request = quick_request(None);
        run(
            &request,
            &out,
            &RunnerOptions {
                stop_after_points: Some(1),
                ..RunnerOptions::default()
            },
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        // Same directory, different campaign seed → refused (the live
        // checkpoint is checked first, before anything is overwritten).
        let mut other = quick_request(None);
        other.seed = 999;
        let err = run(
            &other,
            &out,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap_err();
        assert!(err.to_string().contains("different campaign"), "{err}");

        // A fault-model switch on the same directory is just as much a
        // different campaign.
        let mut set = quick_request(None);
        set.fault = FaultKind::Set;
        let err = run(
            &set,
            &out,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap_err();
        assert!(err.to_string().contains("different campaign"), "{err}");

        // Even with a damaged manifest, the refusal happens before the
        // manifest is rewritten — the checkpoint still wins, and the
        // corrupt manifest is left for the user to inspect.
        let manifest_path = out.join("campaign.json");
        std::fs::write(&manifest_path, "{corrupt").unwrap();
        let err = run(
            &other,
            &out,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap_err();
        assert!(err.to_string().contains("different campaign"), "{err}");
        assert_eq!(
            std::fs::read_to_string(&manifest_path).unwrap(),
            "{corrupt",
            "a refused run must not clobber the existing manifest"
        );

        // A matching run (same fingerprint) may repair the manifest and
        // resume from the checkpoint.
        let summary = run(
            &request,
            &out,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(summary.outcome, RunOutcome::Complete);
    }

    #[test]
    fn budgeted_session_measures_a_subset_and_resumes() {
        // Full-budget reference on a circuit with enough flip-flops for a
        // 40 % subset to be a strict subset.
        let mut request = quick_request(None);
        request.circuit = CircuitSpec::Lfsr { width: 8, depth: 2 };
        request.budget = 0.4;
        let out = tmp_dir("budget");
        let summary = run(
            &request,
            &out,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(summary.outcome, RunOutcome::Complete);
        let table = ffr_fault::FdrTable::load_json(&out.join("fdr.json")).unwrap();
        let expected = ((table.num_ffs() as f64) * 0.4).round() as usize;
        assert_eq!(summary.total_points, expected);
        assert_eq!(table.covered().count(), expected);
        assert!(table.covered().count() < table.num_ffs());

        // A different budget is a different campaign (fingerprint).
        let manifest = CampaignManifest::load(&SessionPaths::new(&out).manifest()).unwrap();
        assert_eq!(manifest.budget, 0.4);
        let mut full = request.clone();
        full.budget = 1.0;
        let err = run(
            &full,
            &out,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap_err();
        assert!(err.to_string().contains("different campaign"), "{err}");

        // Kill/resume on a budgeted campaign stays byte-identical.
        let out2 = tmp_dir("budget_killed");
        let summary = run(
            &request,
            &out2,
            &RunnerOptions {
                stop_after_points: Some(1),
                ..RunnerOptions::default()
            },
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(summary.outcome, RunOutcome::Cancelled);
        resume(
            &out2,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(
            std::fs::read(out.join("fdr.json")).unwrap(),
            std::fs::read(out2.join("fdr.json")).unwrap()
        );
    }

    #[test]
    fn worker_drains_campaign_byte_identical_to_run() {
        // Single-process reference.
        let request = quick_request(None);
        let out_ref = tmp_dir("worker_ref");
        run(
            &request,
            &out_ref,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        let reference = std::fs::read(out_ref.join("fdr.json")).unwrap();

        // One worker bootstraps an empty campaign dir and drains it all.
        let out = tmp_dir("worker");
        let mut wreq = WorkerRequest::new("w1");
        wreq.lease_points = 2;
        wreq.init = Some(request.clone());
        let summary = worker(
            &out,
            &wreq,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(summary.outcome, RunOutcome::Complete);
        assert!(summary.campaign_complete);
        assert!(summary.merged_shards > 0);
        assert_eq!(
            std::fs::read(out.join("fdr.json")).unwrap(),
            reference,
            "worker-drained table must be byte-identical to ffr run"
        );
        // Completed ranges leave shards but no leases behind.
        assert!(
            crate::work::list_leases(&SessionPaths::new(&out).leases_dir())
                .unwrap()
                .is_empty()
        );

        // A later worker (no init flags) finds a finished campaign.
        let summary2 = worker(
            &out,
            &WorkerRequest::new("w2"),
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        assert!(summary2.campaign_complete);

        // A store override without bootstrap flags (the README's worker
        // invocation) caches the golden run across worker invocations.
        let store_dir = tmp_dir("worker_store");
        let mut wreq_store = WorkerRequest::new("w5");
        wreq_store.store = Some(store_dir);
        let first = worker(
            &out,
            &wreq_store,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        assert!(!first.golden_from_cache);
        let second = worker(
            &out,
            &wreq_store,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        assert!(second.golden_from_cache);

        // Conflicting init parameters are refused.
        let mut other = request.clone();
        other.seed = 4242;
        let mut wreq_bad = WorkerRequest::new("w3");
        wreq_bad.init = Some(other);
        let err = worker(
            &out,
            &wreq_bad,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap_err();
        assert!(err.to_string().contains("different parameters"), "{err}");

        // An uninitialized dir without init flags fails with guidance.
        let empty = tmp_dir("worker_empty");
        let err = worker(
            &empty,
            &WorkerRequest::new("w4"),
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap_err();
        assert!(err.to_string().contains("no campaign session"), "{err}");
    }

    #[test]
    fn worker_drains_set_campaign_byte_identical_to_run() {
        let mut request = quick_request(None);
        request.fault = FaultKind::Set;
        let out_ref = tmp_dir("worker_set_ref");
        run(
            &request,
            &out_ref,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        let reference = std::fs::read(out_ref.join("set-derating.json")).unwrap();

        let out = tmp_dir("worker_set");
        let mut wreq = WorkerRequest::new("w1");
        wreq.lease_points = 4;
        wreq.init = Some(request);
        let summary = worker(
            &out,
            &wreq,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(summary.fault, FaultKind::Set);
        assert!(summary.campaign_complete);
        assert_eq!(
            std::fs::read(out.join("set-derating.json")).unwrap(),
            reference,
            "worker-drained SET table must be byte-identical to ffr run"
        );
    }

    #[test]
    fn concurrent_workers_share_one_campaign() {
        let mut request = quick_request(None);
        request.circuit = CircuitSpec::Lfsr { width: 8, depth: 2 };
        let out_ref = tmp_dir("conc_ref");
        run(
            &request,
            &out_ref,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        let reference = std::fs::read(out_ref.join("fdr.json")).unwrap();

        // Two workers race the same campaign directory from scratch
        // (manifest bootstrap race included).
        let out = tmp_dir("conc");
        std::thread::scope(|scope| {
            for id in ["a", "b"] {
                let out = &out;
                let request = &request;
                scope.spawn(move || {
                    let mut wreq = WorkerRequest::new(id);
                    wreq.lease_points = 3;
                    wreq.init = Some(request.clone());
                    worker(
                        out,
                        &wreq,
                        &RunnerOptions {
                            threads: Some(1),
                            ..RunnerOptions::default()
                        },
                        &CancelToken::new(),
                        |_, _| {},
                    )
                    .unwrap();
                });
            }
        });
        assert_eq!(
            std::fs::read(out.join("fdr.json")).unwrap(),
            reference,
            "concurrently drained campaign must be byte-identical"
        );
        // Both workers' shard provenance is visible.
        let shards = crate::work::list_shards(&SessionPaths::new(&out).shards_dir()).unwrap();
        assert!(shards.iter().all(|s| s.is_complete()));
    }

    #[test]
    fn worker_finishes_an_interrupted_run_and_resume_merges_shards() {
        // An `ffr run` interrupted after 2 points…
        let request = quick_request(None);
        let out = tmp_dir("worker_takeover");
        let summary = run(
            &request,
            &out,
            &RunnerOptions {
                stop_after_points: Some(2),
                ..RunnerOptions::default()
            },
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(summary.outcome, RunOutcome::Cancelled);

        // …is finished by a worker (base checkpoint + shards)…
        let mut wreq = WorkerRequest::new("w1");
        wreq.lease_points = 2;
        let summary = worker(
            &out,
            &wreq,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        assert!(summary.campaign_complete);

        // …matching the uninterrupted reference.
        let out_ref = tmp_dir("worker_takeover_ref");
        run(
            &request,
            &out_ref,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(
            std::fs::read(out.join("fdr.json")).unwrap(),
            std::fs::read(out_ref.join("fdr.json")).unwrap()
        );

        // `ffr resume` on a worker session with leftover shards also
        // reports completion (shard merge path).
        let summary = resume(
            &out,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(summary.outcome, RunOutcome::Complete);
    }

    #[test]
    fn bad_budget_is_rejected_cleanly() {
        for bad in [0.0, -0.5, 1.5] {
            let out = tmp_dir("bad_budget");
            let mut request = quick_request(None);
            request.budget = bad;
            let err = run(
                &request,
                &out,
                &RunnerOptions::default(),
                &CancelToken::new(),
                |_, _| {},
            )
            .unwrap_err();
            assert!(err.to_string().contains("budget"), "{err}");
        }
    }

    #[test]
    fn short_testbench_is_rejected_cleanly() {
        let out = tmp_dir("short");
        let mut request = quick_request(None);
        request.cycles = 2;
        let err = run(
            &request,
            &out,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap_err();
        assert!(err.to_string().contains("too short"), "{err}");
        assert!(
            !out.exists(),
            "rejected run must not create the session dir"
        );
    }
}
