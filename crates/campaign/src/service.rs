//! The `ffrd` campaign service: a multi-tenant HTTP front-end over the
//! session/worker machinery.
//!
//! `ffrd` is a long-running, dependency-free HTTP/1.1 server built on
//! `std::net` and a fixed thread pool. It accepts campaign submissions
//! as JSON, prepares one session directory per campaign under a shared
//! root (through [`crate::session::prepare_campaign`], the same
//! primitive `ffr worker --circuit …` bootstraps with), and lets `ffr
//! worker` fleets pointed at those directories drain the work through
//! the existing [`crate::work::LeaseQueue`] — which hands out the most
//! expensive remaining ranges first (see `LeaseQueue::claim`). The
//! service itself never simulates a cycle; it is a control plane over
//! durable on-disk state, so killing and restarting it loses nothing.
//!
//! # HTTP surface
//!
//! All bodies are JSON; responses close the connection
//! (`Connection: close`).
//!
//! | Method & path                  | Meaning                              |
//! |--------------------------------|--------------------------------------|
//! | `GET /healthz`                 | liveness probe → `{"ok":true}`       |
//! | `POST /campaigns`              | submit a campaign (see below)        |
//! | `GET /campaigns`               | list known campaigns                 |
//! | `GET /campaigns/<id>`          | one campaign's manifest summary      |
//! | `GET /campaigns/<id>/status`   | live progress — the exact            |
//! |                                | `ffr status --json` document         |
//! | `GET /campaigns/<id>/estimate` | the ML estimation report, computed   |
//! |                                | on first request once the campaign   |
//! |                                | is complete                          |
//!
//! A submission body names the campaign and its parameters; everything
//! except `id` and `circuit` is optional and defaults like `ffr run`:
//!
//! ```json
//! {
//!   "id": "mac8-wilson",
//!   "circuit": "mac:8x8",
//!   "fault": "seu",
//!   "policy": "wilson:0.05@95:64..170",
//!   "budget": 0.4,
//!   "cycles": 400,
//!   "seed": 2019,
//!   "stim_seed": 1,
//!   "checkpoint_every": 32
//! }
//! ```
//!
//! `POST /campaigns` answers `201` on first submission, `200` when the
//! identical campaign already exists (idempotent resubmit), `409` when
//! the id is taken by a campaign with a different fingerprint, and
//! `400` on malformed bodies or invalid parameters. Campaign ids are
//! path-safe names: ASCII letters, digits, `._-`, no leading dot.
//!
//! Workers attach with plain `ffr worker --campaign <root>/<id>`; the
//! manifest is already on disk, so no worker needs bootstrap flags.

use crate::session::{self, CampaignManifest, RunRequest, SessionPaths};
use crate::spec::CircuitSpec;
use ffr_fault::FaultKind;
use serde::Value;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-connection I/O timeout: the server only talks to local clients
/// and small bodies, so anything slower is a stuck peer.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// Upper bound on request head + body, far above any legitimate
/// submission.
const MAX_REQUEST_BYTES: usize = 256 * 1024;

/// Configuration of one `ffrd` instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port).
    pub listen: String,
    /// Directory holding one session directory per campaign id.
    pub root: PathBuf,
    /// Artifact store configured into every submitted campaign
    /// (golden-run/table caching); `None` disables caching.
    pub store: Option<PathBuf>,
    /// Connection-handler threads.
    pub threads: usize,
}

impl ServiceConfig {
    /// Loopback on an ephemeral port, four handler threads, no store.
    pub fn new(root: impl Into<PathBuf>) -> ServiceConfig {
        ServiceConfig {
            listen: "127.0.0.1:0".to_string(),
            root: root.into(),
            store: None,
            threads: 4,
        }
    }
}

/// Immutable state shared by every connection handler.
#[derive(Debug)]
struct ServiceCtx {
    root: PathBuf,
    store: Option<PathBuf>,
}

/// A running service: its bound address plus the handles needed to shut
/// it down cleanly (used by tests; the `ffrd` binary just runs forever).
#[derive(Debug)]
pub struct ServiceHandle {
    addr: SocketAddr,
    cancel: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl ServiceHandle {
    /// The bound listen address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain in-flight connections and join every
    /// thread.
    pub fn shutdown(mut self) {
        self.cancel.store(true, Ordering::Relaxed);
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Bind, spawn the acceptor and handler pool, and return immediately.
///
/// # Errors
///
/// Fails if the root directory cannot be created or the address cannot
/// be bound.
pub fn serve(config: &ServiceConfig) -> io::Result<ServiceHandle> {
    std::fs::create_dir_all(&config.root)?;
    let listener = TcpListener::bind(config.listen.as_str())?;
    let addr = listener.local_addr()?;
    // Non-blocking accept lets the acceptor poll the shutdown flag; the
    // accepted streams themselves are switched back to blocking reads.
    listener.set_nonblocking(true)?;

    let cancel = Arc::new(AtomicBool::new(false));
    let ctx = Arc::new(ServiceCtx {
        root: config.root.clone(),
        store: config.store.clone(),
    });
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let mut threads = Vec::with_capacity(config.threads.max(1) + 1);
    for _ in 0..config.threads.max(1) {
        let rx = Arc::clone(&rx);
        let ctx = Arc::clone(&ctx);
        threads.push(std::thread::spawn(move || loop {
            // Holding the lock only for the recv keeps the pool simple:
            // one queue, whichever thread is free picks up the next
            // connection. The channel closing (acceptor gone) ends the
            // thread.
            let stream = match rx.lock() {
                Ok(guard) => guard.recv(),
                Err(_) => break,
            };
            match stream {
                Ok(stream) => handle_connection(stream, &ctx),
                Err(_) => break,
            }
        }));
    }
    let accept_cancel = Arc::clone(&cancel);
    threads.push(std::thread::spawn(move || {
        loop {
            if accept_cancel.load(Ordering::Relaxed) {
                break;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                // Transient accept errors (e.g. a peer resetting during
                // the handshake) should not kill the server.
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
        // Dropping the sender lets the handler pool drain and exit.
    }));
    Ok(ServiceHandle {
        addr,
        cancel,
        threads,
    })
}

// ---------------------------------------------------------------------------
// HTTP plumbing
// ---------------------------------------------------------------------------

/// One parsed request: method, path, raw query string and (possibly
/// empty) body.
struct Request {
    method: String,
    path: String,
    query: String,
    body: String,
}

/// One response about to be written: status code plus JSON body.
struct Response {
    status: u16,
    body: String,
}

impl Response {
    fn json(status: u16, value: &Value) -> Response {
        Response {
            status,
            body: serde_json::to_string_pretty(value).unwrap_or_else(|_| "{}".to_string()),
        }
    }

    fn error(status: u16, message: impl std::fmt::Display) -> Response {
        Response::json(
            status,
            &obj(vec![("error", Value::Str(message.to_string()))]),
        )
    }
}

/// Shorthand for a JSON object value.
fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        _ => "Internal Server Error",
    }
}

/// Read one HTTP/1.1 request: head until `\r\n\r\n`, then exactly
/// `Content-Length` body bytes. No chunked encoding, no keep-alive —
/// the service always answers `Connection: close`.
fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(i) = find_blank_line(&buf) {
            break i;
        }
        if buf.len() > MAX_REQUEST_BYTES {
            return Err(io::Error::other("request head too large"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::other("connection closed mid-request"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let target = parts.next().unwrap_or_default();
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    if method.is_empty() || !path.starts_with('/') {
        return Err(io::Error::other("malformed request line"));
    }
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| io::Error::other("bad Content-Length"))?;
            }
        }
    }
    if content_length > MAX_REQUEST_BYTES {
        return Err(io::Error::other("request body too large"));
    }
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::other("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let body = String::from_utf8(body).map_err(|_| io::Error::other("body is not UTF-8"))?;
    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn write_response(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        reason(response.status),
        response.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

fn handle_connection(mut stream: TcpStream, ctx: &ServiceCtx) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let response = match read_request(&mut stream) {
        Ok(request) => route(&request, ctx),
        Err(e) => Response::error(400, e),
    };
    // The peer may already be gone; nothing useful to do about it.
    let _ = write_response(&mut stream, &response);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

fn route(request: &Request, ctx: &ServiceCtx) -> Response {
    let segments: Vec<&str> = request
        .path
        .trim_matches('/')
        .split('/')
        .filter(|s| !s.is_empty())
        .collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Response::json(200, &obj(vec![("ok", Value::Bool(true))])),
        ("POST", ["campaigns"]) => post_campaign(&request.body, ctx),
        ("GET", ["campaigns"]) => list_campaigns(ctx),
        ("GET", ["campaigns", id]) => campaign_summary(id, ctx),
        ("GET", ["campaigns", id, "status"]) => campaign_status(id, ctx),
        ("GET", ["campaigns", id, "estimate"]) => campaign_estimate(id, &request.query, ctx),
        (_, ["healthz" | "campaigns", ..]) => Response::error(405, "method not allowed"),
        _ => Response::error(404, format!("no such endpoint: {}", request.path)),
    }
}

/// Path-safe campaign ids: non-empty, ASCII `[A-Za-z0-9._-]`, no
/// leading dot (hidden files / `..` traversal), bounded length.
fn valid_campaign_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && !id.starts_with('.')
        && id
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

fn field_u64(value: &Value, key: &str) -> Result<Option<u64>, String> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::U64(n)) => Ok(Some(*n)),
        Some(other) => Err(format!(
            "`{key}` must be a non-negative integer (got {})",
            other.type_name()
        )),
    }
}

fn field_f64(value: &Value, key: &str) -> Result<Option<f64>, String> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::F64(f)) => Ok(Some(*f)),
        Some(Value::U64(n)) => Ok(Some(*n as f64)),
        Some(Value::I64(n)) => Ok(Some(*n as f64)),
        Some(other) => Err(format!(
            "`{key}` must be a number (got {})",
            other.type_name()
        )),
    }
}

fn field_str<'v>(value: &'v Value, key: &str) -> Result<Option<&'v str>, String> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s)),
        Some(other) => Err(format!(
            "`{key}` must be a string (got {})",
            other.type_name()
        )),
    }
}

/// Parse a `POST /campaigns` body into `(id, RunRequest)`. Defaults
/// mirror `ffr run`: SEU, `fixed:170`, full budget, seed 2019.
fn parse_submission(body: &str) -> Result<(String, RunRequest), String> {
    let value = serde_json::parse_value_complete(body).map_err(|e| format!("bad JSON: {e}"))?;
    let id = field_str(&value, "id")?.ok_or("`id` (string) is required")?;
    if !valid_campaign_id(id) {
        return Err(format!(
            "`{id}` is not a valid campaign id (ASCII letters, digits, `._-`, \
             no leading dot, at most 64 chars)"
        ));
    }
    let circuit: CircuitSpec = field_str(&value, "circuit")?
        .ok_or("`circuit` (string) is required")?
        .parse()?;
    let mut request = RunRequest::new(circuit);
    if let Some(fault) = field_str(&value, "fault")? {
        request.fault = FaultKind::parse_cli(fault)?;
    }
    if let Some(policy) = field_str(&value, "policy")? {
        request.policy = policy.parse()?;
    }
    if let Some(seed) = field_u64(&value, "seed")? {
        request.seed = seed;
    }
    if let Some(seed) = field_u64(&value, "stim_seed")? {
        request.stim_seed = seed;
    }
    if let Some(cycles) = field_u64(&value, "cycles")? {
        request.cycles = cycles;
    }
    if let Some(budget) = field_f64(&value, "budget")? {
        request.budget = budget;
    }
    if let Some(every) = field_u64(&value, "checkpoint_every")? {
        request.checkpoint_every = (every as usize).max(1);
    }
    Ok((id.to_string(), request))
}

fn manifest_entry(id: &str, manifest: &CampaignManifest, paths: &SessionPaths) -> Value {
    obj(vec![
        ("id", Value::Str(id.to_string())),
        ("circuit", Value::Str(manifest.circuit.clone())),
        ("fault", Value::Str(manifest.fault.to_string())),
        ("policy", Value::Str(manifest.policy.to_string())),
        ("seed", Value::U64(manifest.seed)),
        ("budget", Value::F64(manifest.budget)),
        ("fingerprint", Value::Str(manifest.fingerprint.clone())),
        ("session", Value::Str(paths.out_dir.display().to_string())),
        (
            "complete",
            Value::Bool(paths.table_json(manifest.fault).exists()),
        ),
    ])
}

fn post_campaign(body: &str, ctx: &ServiceCtx) -> Response {
    let (id, mut request) = match parse_submission(body) {
        Ok(parsed) => parsed,
        Err(e) => return Response::error(400, e),
    };
    // The service's store policy wins: every campaign it hosts shares
    // one artifact store (or none), regardless of the submission.
    request.store = ctx.store.clone();
    let dir = ctx.root.join(&id);
    let paths = SessionPaths::new(&dir);
    let existed = paths.manifest().exists();
    match session::prepare_campaign(&request, &dir) {
        Ok(manifest) => Response::json(
            if existed { 200 } else { 201 },
            &manifest_entry(&id, &manifest, &paths),
        ),
        Err(e) => {
            let message = e.to_string();
            if message.contains("different parameters") {
                Response::error(409, message)
            } else {
                // Validation failures (short testbench, bad budget) are
                // the client's; anything else is an I/O surprise.
                Response::error(400, message)
            }
        }
    }
}

fn list_campaigns(ctx: &ServiceCtx) -> Response {
    let mut ids: Vec<String> = match std::fs::read_dir(&ctx.root) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .filter(|e| e.path().join("campaign.json").is_file())
            .filter_map(|e| e.file_name().into_string().ok())
            .collect(),
        Err(e) => return Response::error(500, e),
    };
    ids.sort();
    let campaigns: Vec<Value> = ids
        .iter()
        .filter_map(|id| {
            let paths = SessionPaths::new(ctx.root.join(id));
            let manifest = CampaignManifest::load(&paths.manifest()).ok()?;
            Some(manifest_entry(id, &manifest, &paths))
        })
        .collect();
    Response::json(200, &obj(vec![("campaigns", Value::Array(campaigns))]))
}

fn campaign_summary(id: &str, ctx: &ServiceCtx) -> Response {
    if !valid_campaign_id(id) {
        return Response::error(400, "invalid campaign id");
    }
    let paths = SessionPaths::new(ctx.root.join(id));
    match CampaignManifest::load(&paths.manifest()) {
        Ok(manifest) => Response::json(200, &manifest_entry(id, &manifest, &paths)),
        Err(_) => Response::error(404, format!("no campaign `{id}`")),
    }
}

fn campaign_status(id: &str, ctx: &ServiceCtx) -> Response {
    if !valid_campaign_id(id) {
        return Response::error(400, "invalid campaign id");
    }
    let dir = ctx.root.join(id);
    if !dir.join("campaign.json").is_file() {
        return Response::error(404, format!("no campaign `{id}`"));
    }
    match crate::status::gather_status(&dir) {
        // The verbatim `ffr status --json` document: one schema for the
        // CLI and the service.
        Ok((report, _fault)) => Response {
            status: 200,
            body: serde_json::to_string_pretty(&report).unwrap_or_else(|_| "{}".to_string()),
        },
        Err(e) => Response::error(500, e),
    }
}

/// Estimate options from an `/estimate` query string (e.g.
/// `?models=linear,forest&grid=1&folds=4`). The same knobs as `ffr
/// estimate`; unknown keys are refused so typos fail loudly.
fn estimate_options_from_query(
    query: &str,
    ctx: &ServiceCtx,
) -> Result<crate::estimate::EstimateOptions, String> {
    let mut options = crate::estimate::EstimateOptions {
        store: ctx.store.clone(),
        ..Default::default()
    };
    for pair in query.split('&').filter(|s| !s.is_empty()) {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| format!("malformed query parameter `{pair}`"))?;
        match key {
            "models" => {
                options.models = value
                    .split(',')
                    .map(|m| ffr_core::ModelKind::parse_cli(m.trim()))
                    .collect::<Result<Vec<_>, _>>()?;
                if options.models.is_empty() {
                    return Err("`models` needs at least one model".to_string());
                }
            }
            "folds" => {
                options.folds = value.parse().map_err(|e| format!("folds: {e}"))?;
                if options.folds < 2 {
                    return Err("`folds` must be at least 2".to_string());
                }
            }
            "grid" => {
                options.grid_budget = value.parse().map_err(|e| format!("grid: {e}"))?;
                if options.grid_budget == 0 {
                    return Err("`grid` must be positive".to_string());
                }
            }
            "cv_seed" => {
                options.cv_seed = value.parse().map_err(|e| format!("cv_seed: {e}"))?;
            }
            _ => return Err(format!("unknown query parameter `{key}`")),
        }
    }
    Ok(options)
}

fn campaign_estimate(id: &str, query: &str, ctx: &ServiceCtx) -> Response {
    if !valid_campaign_id(id) {
        return Response::error(400, "invalid campaign id");
    }
    let dir = ctx.root.join(id);
    let paths = SessionPaths::new(&dir);
    if !paths.manifest().is_file() {
        return Response::error(404, format!("no campaign `{id}`"));
    }
    if !paths.estimate_json().is_file() {
        // Compute on first request. Concurrent requests may race the
        // computation; both write identical bytes via atomic renames,
        // so the race is benign (just redundant work).
        let options = match estimate_options_from_query(query, ctx) {
            Ok(options) => options,
            Err(e) => return Response::error(400, e),
        };
        if let Err(e) = crate::estimate::estimate_session(&dir, &options) {
            // Not estimable yet (incomplete campaign, SET session, …):
            // the resource exists but is not ready.
            return Response::error(409, e);
        }
    }
    match std::fs::read_to_string(paths.estimate_json()) {
        Ok(body) => Response { status: 200, body },
        Err(e) => Response::error(500, e),
    }
}

// ---------------------------------------------------------------------------
// The `ffrd` entry point
// ---------------------------------------------------------------------------

const USAGE: &str = "\
ffrd — campaign service over the ffr session machinery

USAGE:
    ffrd --root <dir> [OPTIONS]

OPTIONS:
    --root <dir>       directory holding one session per campaign (required)
    --listen <addr>    bind address                  [default: 127.0.0.1:7878]
    --store <dir>      artifact store for all hosted campaigns
    --threads <n>      connection-handler threads    [default: 4]
    --quiet            only log errors
    -v, --verbose      debug logging

The bound address is also written to <root>/ffrd.addr, so scripts can
submit to `--listen 127.0.0.1:0` servers without parsing logs.

ENDPOINTS:
    GET  /healthz                    liveness
    POST /campaigns                  submit {\"id\", \"circuit\", …}
    GET  /campaigns                  list campaigns
    GET  /campaigns/<id>             manifest summary
    GET  /campaigns/<id>/status      ffr status --json document
    GET  /campaigns/<id>/estimate    estimation report (computed on demand)

Drain submitted campaigns with:  ffr worker --campaign <root>/<id>
";

/// `ffrd` main: parse flags, serve until killed. Returns the process
/// exit code (64 for usage errors).
pub fn ffrd_main(args: &[String]) -> i32 {
    ffr_obs::init_log_from_env();
    let mut argv: Vec<String> = Vec::with_capacity(args.len());
    for arg in args {
        match arg.as_str() {
            "--quiet" => ffr_obs::set_log_level(ffr_obs::Level::Error),
            "-v" | "--verbose" => ffr_obs::set_log_level(ffr_obs::Level::Debug),
            "--help" | "-h" | "help" => {
                print!("{USAGE}");
                return 0;
            }
            _ => argv.push(arg.clone()),
        }
    }
    match ffrd_serve_from_args(&argv) {
        Ok(handle) => {
            // The binary has no shutdown path of its own: it serves
            // until the process is killed. Parking the main thread
            // keeps the handle (and its pool) alive.
            drop(handle);
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        }
        Err(e) => {
            ffr_obs::error!("error: {e}");
            64
        }
    }
}

/// Parse `ffrd` flags, start the service and write `<root>/ffrd.addr`.
fn ffrd_serve_from_args(argv: &[String]) -> Result<ServiceHandle, String> {
    let mut args = crate::cli::Args::parse(argv)?;
    let root: PathBuf = args.value("root")?.ok_or("--root is required")?.into();
    let mut config = ServiceConfig::new(root);
    if let Some(listen) = args.value("listen")? {
        config.listen = listen;
    } else {
        config.listen = "127.0.0.1:7878".to_string();
    }
    config.store = args.value("store")?.map(PathBuf::from);
    if let Some(threads) = args.parsed::<usize>("threads")? {
        config.threads = threads.max(1);
    }
    args.finish()?;
    let handle = serve(&config).map_err(|e| e.to_string())?;
    // Published for scripts (and the process tests): the one place the
    // resolved ephemeral port can be read back from.
    crate::store::atomic_write(
        &config.root.join("ffrd.addr"),
        &format!("{}\n", handle.addr()),
    )
    .map_err(|e| e.to_string())?;
    ffr_obs::info!("ffrd listening on http://{}", handle.addr());
    ffr_obs::info!("campaign root: {}", config.root.display());
    Ok(handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{CancelToken, RunnerOptions};
    use crate::session::WorkerRequest;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ffrd_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Minimal blocking HTTP client: one request, one response.
    fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(IO_TIMEOUT)).unwrap();
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: ffrd\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let status: u16 = response
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let payload = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, payload)
    }

    #[test]
    fn submission_parsing_validates_ids_and_shapes() {
        let (id, request) = parse_submission(
            r#"{"id":"c1","circuit":"counter:6","cycles":160,"policy":"fixed:64","budget":0.5}"#,
        )
        .unwrap();
        assert_eq!(id, "c1");
        assert_eq!(request.cycles, 160);
        assert_eq!(request.budget, 0.5);
        assert_eq!(request.policy.to_string(), "fixed:64");

        for bad in [
            r#"{"circuit":"counter:6"}"#,                      // no id
            r#"{"id":"../evil","circuit":"counter:6"}"#,       // traversal
            r#"{"id":".hidden","circuit":"counter:6"}"#,       // leading dot
            r#"{"id":"c1"}"#,                                  // no circuit
            r#"{"id":"c1","circuit":"nosuch:9"}"#,             // unknown circuit
            r#"{"id":"c1","circuit":"counter:6","seed":"x"}"#, // wrong type
            "not json",
        ] {
            assert!(parse_submission(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn service_round_trip_submit_drain_status() {
        let root = tmp_dir("svc");
        let handle = serve(&ServiceConfig::new(&root)).unwrap();
        let addr = handle.addr();

        let (status, body) = http(addr, "GET", "/healthz", "");
        assert_eq!(status, 200, "{body}");

        // Submit → 201; identical resubmit → 200; conflicting → 409.
        let submission =
            r#"{"id":"c1","circuit":"counter:6","cycles":160,"seed":7,"policy":"fixed:64"}"#;
        let (status, body) = http(addr, "POST", "/campaigns", submission);
        assert_eq!(status, 201, "{body}");
        assert!(body.contains("\"fingerprint\""), "{body}");
        let (status, _) = http(addr, "POST", "/campaigns", submission);
        assert_eq!(status, 200);
        let conflicting =
            r#"{"id":"c1","circuit":"counter:6","cycles":160,"seed":8,"policy":"fixed:64"}"#;
        let (status, body) = http(addr, "POST", "/campaigns", conflicting);
        assert_eq!(status, 409, "{body}");
        let (status, body) = http(addr, "POST", "/campaigns", r#"{"id":"bad"#);
        assert_eq!(status, 400, "{body}");

        // The listing and summary see the submitted campaign.
        let (status, body) = http(addr, "GET", "/campaigns", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"c1\""), "{body}");
        let (status, body) = http(addr, "GET", "/campaigns/c1", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"complete\": false"), "{body}");
        let (status, _) = http(addr, "GET", "/campaigns/nope", "");
        assert_eq!(status, 404);

        // Status before any worker: manifest facts, no progress yet.
        let (status, body) = http(addr, "GET", "/campaigns/c1/status", "");
        assert_eq!(status, 200, "{body}");
        let report = serde_json::parse_value_complete(&body).expect("valid JSON");
        assert_eq!(
            report.get("schema_version"),
            Some(&Value::U64(crate::status::STATUS_SCHEMA_VERSION))
        );

        // A worker attaches to the prepared session directory — no
        // bootstrap flags needed — and drains it.
        let summary = crate::session::worker(
            &root.join("c1"),
            &WorkerRequest::new("w1"),
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        assert!(summary.campaign_complete);

        // Status now reports completion; the summary flips to complete.
        let (status, body) = http(addr, "GET", "/campaigns/c1/status", "");
        assert_eq!(status, 200);
        let report = serde_json::parse_value_complete(&body).expect("valid JSON");
        let progress = report.get("progress").expect("progress present");
        assert_eq!(progress.get("complete"), Some(&Value::Bool(true)), "{body}");
        let (status, body) = http(addr, "GET", "/campaigns/c1", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"complete\": true"), "{body}");

        // Unknown endpoints and methods are refused, not crashed on.
        let (status, _) = http(addr, "GET", "/nope", "");
        assert_eq!(status, 404);
        let (status, _) = http(addr, "DELETE", "/campaigns/c1", "");
        assert_eq!(status, 405);

        handle.shutdown();
    }
}
