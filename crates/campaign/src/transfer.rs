//! `ffr transfer` — cross-circuit FDR estimation with zero injections.
//!
//! The estimate stage trains and predicts within one circuit. This module
//! answers the harder generality question (the train-on-A/B, predict-on-C
//! protocol of "Cross-Layer Reliability … ML-Based Compact Models"):
//!
//! 1. load the **measured** FDR tables + feature matrices of the training
//!    circuits from the artifact store (they must have been measured by
//!    `ffr run` with the same campaign parameters),
//! 2. align the feature matrices under one verified schema
//!    ([`ffr_features::align`]) and stack the measured rows with
//!    per-circuit group labels,
//! 3. select a model by **leave-one-circuit-out** cross-validation
//!    ([`GroupKFold`]) — every candidate is scored only on circuits it
//!    never trained on, the honest proxy for the transfer task,
//! 4. train the winner on all measured rows and predict the per-FF FDR of
//!    the evaluation circuit from its features alone — **zero fault
//!    injections** on the target (one golden simulation supplies the
//!    dynamic feature columns),
//! 5. emit a versioned [`TransferReport`]: per-train-circuit holdout
//!    metrics, the predicted FDR of every target flip-flop, the predicted
//!    circuit FFR, and — when the store happens to hold a measured table
//!    for the target — the measured-reference comparison.
//!
//! Everything downstream of the tables is a pure function of fixed seeds,
//! so rerunning produces a **byte-identical** report; asserted end-to-end
//! by `crates/campaign/tests/cli_transfer.rs`.

use crate::estimate::{load_or_extract_features, EstimateOptions, ModelReport};
use crate::session::{self, RunRequest};
use crate::store::{ArtifactKind, ArtifactStore, StoreKey};
use ffr_fault::{FaultKind, FdrTable};
use ffr_ml::model_selection::{grid_search, GroupKFold};
use ffr_ml::RegressionScores;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// Transfer report format version; bump on breaking shape changes.
pub const TRANSFER_VERSION: u32 = 1;

/// One training circuit's contribution and holdout quality.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainCircuitReport {
    /// Circuit spec string (`corpus:fifo2x4`, `mac-small`, …).
    pub circuit: String,
    /// Campaign fingerprint its FDR table was loaded under.
    pub fingerprint: String,
    /// Measured (fault-injected) flip-flops contributed to training.
    pub measured_ffs: usize,
    /// All flip-flops of the circuit.
    pub total_ffs: usize,
    /// Fault-injection simulations its campaign spent.
    pub injections_spent: usize,
    /// Holdout MAE: the winning model trained on the *other* circuits,
    /// scored on this circuit's measured rows.
    pub holdout_mae: f64,
    /// Holdout RMSE under the same protocol.
    pub holdout_rmse: f64,
    /// Holdout R² under the same protocol.
    pub holdout_r2: f64,
    /// Mean measured FDR of this circuit's measured subset.
    pub measured_ffr: f64,
    /// Mean predicted FDR over the same rows (model never saw them).
    pub predicted_ffr: f64,
    /// `predicted_ffr - measured_ffr`.
    pub ffr_delta: f64,
}

/// Comparison of the zero-injection prediction against a measured
/// reference table of the evaluation circuit (only present when the
/// store already holds one).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReferenceComparison {
    /// Measured flip-flops in the reference table.
    pub measured_ffs: usize,
    /// Mean measured FDR of the reference subset.
    pub measured_ffr: f64,
    /// MAE of predictions vs measurements over the reference subset.
    pub mae: f64,
    /// RMSE over the reference subset.
    pub rmse: f64,
    /// R² over the reference subset.
    pub r2: f64,
    /// `predicted_ffr - measured_ffr` (circuit level).
    pub ffr_delta: f64,
}

/// One predicted flip-flop of the evaluation circuit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferFfRow {
    /// Flip-flop instance name.
    pub ff: String,
    /// Flip-flop index (`FfId` order).
    pub index: usize,
    /// Predicted Functional De-Rating factor (clamped to `[0, 1]`).
    pub fdr: f64,
}

/// The complete output of one `ffr transfer` run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferReport {
    /// Report format version ([`TRANSFER_VERSION`]).
    pub version: u32,
    /// Feature schema the matrices were aligned under.
    pub schema: String,
    /// Training circuits, in the order given on the command line.
    pub train: Vec<TrainCircuitReport>,
    /// Evaluation circuit spec string.
    pub eval_circuit: String,
    /// Campaign fingerprint a measurement of the evaluation circuit
    /// would run under (used to look up the reference table).
    pub eval_fingerprint: String,
    /// Flip-flops of the evaluation circuit (all predicted).
    pub eval_total_ffs: usize,
    /// Cross-validation protocol used for model selection
    /// (`loco:<n circuits>`).
    pub cv_protocol: String,
    /// Fold-assignment seed (stratified tie-breaking inherits it).
    pub cv_seed: u64,
    /// Per-model cross-circuit CV results, in evaluation order.
    pub models: Vec<ModelReport>,
    /// CLI token of the winning model (highest leave-one-circuit-out R²).
    pub best_model: String,
    /// Stacked measured rows the winner trained on.
    pub train_rows: usize,
    /// Total fault injections spent by the training campaigns.
    pub injections_spent: usize,
    /// Fault injections spent on the evaluation circuit: always 0.
    pub eval_injections: usize,
    /// Predicted circuit-level FFR of the evaluation circuit (mean
    /// predicted FDR, uniform raw SEU rate per flip-flop).
    pub predicted_ffr: f64,
    /// Measured-reference comparison, when the store holds a table.
    pub reference: Option<ReferenceComparison>,
    /// Per-flip-flop predictions, in `FfId` order.
    pub per_ff: Vec<TransferFfRow>,
}

impl TransferReport {
    /// Render the per-flip-flop predictions as CSV (`ff,index,fdr`).
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("ff,index,fdr\n");
        for row in &self.per_ff {
            let _ = writeln!(out, "{},{},{:.6}", row.ff, row.index, row.fdr);
        }
        out
    }

    /// Save as pretty JSON (atomic rename).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save_json(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_string_pretty(self).map_err(io::Error::other)?;
        crate::store::atomic_write(path, &json)
    }

    /// Load a report written by [`TransferReport::save_json`].
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, undecodable files or a version mismatch (the
    /// version is probed before full deserialization).
    pub fn load_json(path: &Path) -> io::Result<TransferReport> {
        let text = std::fs::read_to_string(path)?;
        match crate::store::probe_version(&text) {
            Some(v) if v != TRANSFER_VERSION as u64 => {
                return Err(io::Error::other(format!(
                    "transfer report version {v} unsupported (expected {TRANSFER_VERSION})"
                )))
            }
            _ => {}
        }
        serde_json::from_str(&text).map_err(io::Error::other)
    }
}

/// Outcome summary of a transfer run.
#[derive(Debug)]
pub struct TransferSummary {
    /// The computed (or cache-served) report.
    pub report: TransferReport,
    /// `true` if the report was served from the artifact store.
    pub report_from_cache: bool,
}

/// One loaded training circuit: prepared design, measured table,
/// verified features.
struct TrainCircuit {
    spec_string: String,
    fingerprint: StoreKey,
    table: FdrTable,
    features: ffr_features::FeatureMatrix,
    total_ffs: usize,
}

/// Run cross-circuit transfer estimation off the artifact store.
///
/// Every request in `train` must correspond to a completed `ffr run`
/// whose final FDR table the store holds; `eval` only needs a golden
/// simulation (computed and cached on the fly if absent). The report is
/// cached in the store under [`ArtifactKind::Transfer`], keyed by the
/// evaluation netlist plus every input fingerprint and knob.
///
/// # Errors
///
/// Fails on I/O errors, non-SEU requests, fewer than two distinct
/// training circuits, a missing training table, or schema mismatches.
pub fn transfer_from_store(
    train: &[RunRequest],
    eval: &RunRequest,
    options: &EstimateOptions,
) -> io::Result<TransferSummary> {
    if options.models.is_empty() {
        return Err(io::Error::other("no models selected"));
    }
    for request in train.iter().chain(std::iter::once(eval)) {
        if request.fault != FaultKind::Seu {
            return Err(io::Error::other(
                "ffr transfer needs SEU campaigns (per-flip-flop FDR)",
            ));
        }
    }
    if train.len() < 2 {
        return Err(io::Error::other(
            "cross-circuit transfer needs at least 2 training circuits \
             (leave-one-circuit-out model selection)",
        ));
    }
    let eval_spec = eval.circuit.spec_string();
    for (i, a) in train.iter().enumerate() {
        if a.circuit.spec_string() == eval_spec {
            return Err(io::Error::other(format!(
                "evaluation circuit `{eval_spec}` is also a training circuit — \
                 transfer must predict an unseen circuit"
            )));
        }
        for b in &train[..i] {
            if a.circuit.spec_string() == b.circuit.spec_string() {
                return Err(io::Error::other(format!(
                    "training circuit `{}` given twice",
                    a.circuit.spec_string()
                )));
            }
        }
    }

    let store_path = options
        .store
        .clone()
        .or_else(|| eval.store.clone())
        .or_else(|| train.iter().find_map(|r| r.store.clone()))
        .ok_or_else(|| io::Error::other("transfer requires --store"))?;
    let store = ArtifactStore::open(&store_path)?;

    // Load every training circuit: measured table + verified features.
    let mut circuits = Vec::with_capacity(train.len());
    for request in train {
        let prepared = request.circuit.prepare(request.stim_seed, request.cycles);
        let fingerprint = session::campaign_table_key(request, &prepared);
        let table: FdrTable = store
            .get(ArtifactKind::FdrTable, &fingerprint)?
            .ok_or_else(|| {
                io::Error::other(format!(
                    "store {} holds no FDR table for training circuit `{}` \
                     (fingerprint {fingerprint}) — run `ffr run` with the same \
                     parameters first",
                    store_path.display(),
                    request.circuit.spec_string()
                ))
            })?;
        let total_ffs = prepared.cc.num_ffs();
        if table.num_ffs() != total_ffs {
            return Err(io::Error::other(format!(
                "FDR table of `{}` covers {} flip-flops but the circuit has {total_ffs}",
                request.circuit.spec_string(),
                table.num_ffs()
            )));
        }
        if table.covered().count() < 2 {
            return Err(io::Error::other(format!(
                "training circuit `{}` has fewer than 2 measured flip-flops",
                request.circuit.spec_string()
            )));
        }
        let (features, _) = load_or_extract_features(&prepared, Some(&store))?;
        circuits.push(TrainCircuit {
            spec_string: request.circuit.spec_string(),
            fingerprint,
            table,
            features,
            total_ffs,
        });
    }

    // The evaluation circuit needs features only (golden simulation, zero
    // injections) — plus its campaign fingerprint for the report cache
    // key and the optional measured reference.
    let eval_prepared = eval.circuit.prepare(eval.stim_seed, eval.cycles);
    let eval_fingerprint = session::campaign_table_key(eval, &eval_prepared);

    // Report cache: keyed by the evaluation netlist plus every input
    // fingerprint and estimation knob.
    let model_names: Vec<&str> = options.models.iter().map(|m| m.cli_name()).collect();
    let train_prints: Vec<String> = circuits.iter().map(|c| c.fingerprint.to_string()).collect();
    let report_desc = format!(
        "transfer;train={};of={eval_fingerprint};models={};cv_seed={};grid={};{};report_v={TRANSFER_VERSION}",
        train_prints.join("+"),
        model_names.join(","),
        options.cv_seed,
        options.grid_budget,
        ffr_features::schema_desc()
    );
    let report_key = StoreKey::of(eval_prepared.cc.netlist(), &report_desc);
    if !options.force {
        if let Some(report) = store.get::<TransferReport>(ArtifactKind::Transfer, &report_key)? {
            return Ok(TransferSummary {
                report,
                report_from_cache: true,
            });
        }
    }

    let (eval_features, _) = load_or_extract_features(&eval_prepared, Some(&store))?;
    ffr_features::check_schema(&eval_features)
        .map_err(|e| io::Error::other(format!("evaluation circuit `{eval_spec}`: {e}")))?;

    // Align all training matrices under one schema, then keep only the
    // measured rows (with their circuit group labels) for training.
    let aligned = ffr_features::align(
        &circuits
            .iter()
            .map(|c| (c.spec_string.clone(), c.features.clone()))
            .collect::<Vec<_>>(),
    )
    .map_err(io::Error::other)?;
    let measured_fdrs: Vec<std::collections::HashMap<usize, f64>> = circuits
        .iter()
        .map(|c| {
            c.table
                .covered()
                .map(|r| (r.ff().index(), r.fdr()))
                .collect()
        })
        .collect();
    let mut tx: Vec<Vec<f64>> = Vec::new();
    let mut ty: Vec<f64> = Vec::new();
    let mut groups: Vec<usize> = Vec::new();
    for (i, origin) in aligned.origins().iter().enumerate() {
        let group = aligned.groups()[i];
        if let Some(&fdr) = measured_fdrs[group].get(&origin.row) {
            tx.push(aligned.rows()[i].clone());
            ty.push(fdr);
            groups.push(group);
        }
    }

    // Model selection by leave-one-circuit-out CV: every candidate is
    // scored only on circuits it never trained on.
    let folds = GroupKFold::leave_one_out(&groups);
    let cv_protocol = format!("loco:{}", circuits.len());
    let mut model_reports = Vec::with_capacity(options.models.len());
    let mut best: Option<(f64, ffr_core::ModelCandidate)> = None;
    for &kind in &options.models {
        let grid = kind.small_grid(options.grid_budget);
        let search = grid_search(&grid, |c| c.build(), &tx, &ty, &folds);
        let scores = search.best_scores;
        model_reports.push(ModelReport {
            model: kind.cli_name().to_string(),
            display_name: kind.display_name().to_string(),
            best_params: search.best_params.label().to_string(),
            cv_mae: scores.mae,
            cv_max: scores.max,
            cv_rmse: scores.rmse,
            cv_ev: scores.ev,
            cv_r2: scores.r2,
        });
        if best.as_ref().is_none_or(|(r2, _)| scores.r2 > *r2) {
            best = Some((scores.r2, search.best_params));
        }
    }
    let (_, winner) = best.expect("at least one model evaluated");

    // Per-train-circuit holdout quality of the winner: refit on the other
    // circuits, score on the held-out one (the LOCO folds, reused).
    let mut train_reports = Vec::with_capacity(circuits.len());
    for (fold, circuit) in folds.iter().zip(&circuits) {
        let (train_idx, test_idx) = fold;
        let ftx: Vec<Vec<f64>> = train_idx.iter().map(|&i| tx[i].clone()).collect();
        let fty: Vec<f64> = train_idx.iter().map(|&i| ty[i]).collect();
        let vtx: Vec<Vec<f64>> = test_idx.iter().map(|&i| tx[i].clone()).collect();
        let vty: Vec<f64> = test_idx.iter().map(|&i| ty[i]).collect();
        let mut model = winner.build();
        model.fit(&ftx, &fty);
        let predictions: Vec<f64> = model
            .predict(&vtx)
            .into_iter()
            .map(|p| p.clamp(0.0, 1.0))
            .collect();
        let scores = RegressionScores::compute(&vty, &predictions);
        let measured_ffr = mean(&vty);
        let predicted_ffr = mean(&predictions);
        train_reports.push(TrainCircuitReport {
            circuit: circuit.spec_string.clone(),
            fingerprint: circuit.fingerprint.to_string(),
            measured_ffs: circuit.table.covered().count(),
            total_ffs: circuit.total_ffs,
            injections_spent: circuit.table.covered().map(|r| r.injections()).sum(),
            holdout_mae: scores.mae,
            holdout_rmse: scores.rmse,
            holdout_r2: scores.r2,
            measured_ffr,
            predicted_ffr,
            ffr_delta: predicted_ffr - measured_ffr,
        });
    }

    // The transfer itself: train on every measured row, predict every
    // flip-flop of the evaluation circuit from features alone.
    let mut model = winner.build();
    model.fit(&tx, &ty);
    let predictions: Vec<f64> = model
        .predict(&eval_features.to_rows())
        .into_iter()
        .map(|p| p.clamp(0.0, 1.0))
        .collect();
    let predicted_ffr = mean(&predictions);
    let per_ff: Vec<TransferFfRow> = predictions
        .iter()
        .enumerate()
        .map(|(i, &fdr)| TransferFfRow {
            ff: eval_features.ff_names()[i].clone(),
            index: i,
            fdr,
        })
        .collect();

    // Measured reference, when the store already holds a table for the
    // evaluation campaign (e.g. a validation measurement).
    let reference = store
        .get::<FdrTable>(ArtifactKind::FdrTable, &eval_fingerprint)?
        .map(|table| {
            let covered: Vec<(usize, f64)> =
                table.covered().map(|r| (r.ff().index(), r.fdr())).collect();
            let measured: Vec<f64> = covered.iter().map(|&(_, v)| v).collect();
            let predicted: Vec<f64> = covered.iter().map(|&(i, _)| predictions[i]).collect();
            let scores = RegressionScores::compute(&measured, &predicted);
            ReferenceComparison {
                measured_ffs: covered.len(),
                measured_ffr: table.circuit_fdr(),
                mae: scores.mae,
                rmse: scores.rmse,
                r2: scores.r2,
                ffr_delta: predicted_ffr - table.circuit_fdr(),
            }
        });

    let report = TransferReport {
        version: TRANSFER_VERSION,
        schema: ffr_features::schema_desc(),
        train: train_reports,
        eval_circuit: eval_spec,
        eval_fingerprint: eval_fingerprint.to_string(),
        eval_total_ffs: eval_prepared.cc.num_ffs(),
        cv_protocol,
        cv_seed: options.cv_seed,
        models: model_reports,
        best_model: winner.kind().cli_name().to_string(),
        train_rows: tx.len(),
        injections_spent: circuits
            .iter()
            .map(|c| c.table.covered().map(|r| r.injections()).sum::<usize>())
            .sum(),
        eval_injections: 0,
        predicted_ffr,
        reference,
        per_ff,
    };
    store.put(ArtifactKind::Transfer, &report_key, &report)?;
    Ok(TransferSummary {
        report,
        report_from_cache: false,
    })
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::AdaptivePolicy;
    use crate::runner::{CancelToken, RunnerOptions};
    use crate::spec::CircuitSpec;
    use ffr_core::ModelKind;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ffr_transfer_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn request(circuit: CircuitSpec, store: &Path) -> RunRequest {
        RunRequest {
            circuit,
            fault: FaultKind::Seu,
            stim_seed: 1,
            cycles: 200,
            seed: 5,
            policy: AdaptivePolicy::fixed(32),
            budget: 1.0,
            checkpoint_every: 16,
            store: Some(store.to_path_buf()),
            force: false,
        }
    }

    fn run_campaign(req: &RunRequest, out: &Path) {
        session::run(
            req,
            out,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
    }

    fn quick_options(store: &Path) -> EstimateOptions {
        EstimateOptions {
            models: vec![ModelKind::LinearLeastSquares, ModelKind::Knn],
            grid_budget: 1,
            store: Some(store.to_path_buf()),
            ..EstimateOptions::default()
        }
    }

    fn corpus(id: &str) -> CircuitSpec {
        CircuitSpec::Corpus { id: id.to_string() }
    }

    #[test]
    fn transfer_predicts_unseen_circuit_and_caches() {
        let store = tmp_dir("basic_store");
        let train = [
            request(corpus("fifo2x4"), &store),
            request(corpus("regfile2x4"), &store),
        ];
        for (i, req) in train.iter().enumerate() {
            run_campaign(req, &tmp_dir(&format!("basic_out{i}")));
        }
        let eval = request(corpus("fifo2x8"), &store);

        let options = quick_options(&store);
        let summary = transfer_from_store(&train, &eval, &options).unwrap();
        assert!(!summary.report_from_cache);
        let report = &summary.report;
        assert_eq!(report.version, TRANSFER_VERSION);
        assert_eq!(report.train.len(), 2);
        assert_eq!(report.eval_injections, 0);
        assert_eq!(report.per_ff.len(), report.eval_total_ffs);
        assert!(report.per_ff.iter().all(|r| (0.0..=1.0).contains(&r.fdr)));
        assert!((0.0..=1.0).contains(&report.predicted_ffr));
        assert_eq!(report.cv_protocol, "loco:2");
        assert!(report.reference.is_none(), "eval circuit never measured");
        assert!(report.train_rows >= report.train.iter().map(|t| t.measured_ffs).sum::<usize>());

        // Rerun is cache-served and identical.
        let summary2 = transfer_from_store(&train, &eval, &options).unwrap();
        assert!(summary2.report_from_cache);
        assert_eq!(summary2.report, summary.report);

        // A forced rerun recomputes to the same report (determinism).
        let forced = EstimateOptions {
            force: true,
            ..options
        };
        let summary3 = transfer_from_store(&train, &eval, &forced).unwrap();
        assert!(!summary3.report_from_cache);
        assert_eq!(summary3.report, summary.report);
    }

    #[test]
    fn transfer_reports_reference_when_eval_is_measured() {
        let store = tmp_dir("ref_store");
        let train = [
            request(corpus("fifo2x4"), &store),
            request(corpus("regfile2x4"), &store),
        ];
        for (i, req) in train.iter().enumerate() {
            run_campaign(req, &tmp_dir(&format!("ref_out{i}")));
        }
        let eval = request(corpus("cnt8"), &store);
        run_campaign(&eval, &tmp_dir("ref_out_eval"));

        let summary = transfer_from_store(&train, &eval, &quick_options(&store)).unwrap();
        let reference = summary.report.reference.expect("eval was measured");
        assert!(reference.measured_ffs > 0);
        assert!(reference.mae >= 0.0);
        assert!(
            (summary.report.predicted_ffr - reference.measured_ffr - reference.ffr_delta).abs()
                < 1e-12
        );
    }

    #[test]
    fn transfer_rejects_bad_inputs() {
        let store = tmp_dir("rejects_store");
        let a = request(corpus("fifo2x4"), &store);
        let b = request(corpus("regfile2x4"), &store);
        let options = quick_options(&store);

        // Too few training circuits.
        let err = transfer_from_store(std::slice::from_ref(&a), &b, &options).unwrap_err();
        assert!(err.to_string().contains("at least 2"), "{err}");
        // Eval among train.
        let err = transfer_from_store(&[a.clone(), b.clone()], &a.clone(), &options).unwrap_err();
        assert!(err.to_string().contains("unseen circuit"), "{err}");
        // Duplicate train circuit.
        let err = transfer_from_store(&[a.clone(), a.clone()], &b, &options).unwrap_err();
        assert!(err.to_string().contains("twice"), "{err}");
        // Missing table.
        let err = transfer_from_store(
            &[a.clone(), b.clone()],
            &request(corpus("cnt8"), &store),
            &options,
        )
        .unwrap_err();
        assert!(err.to_string().contains("no FDR table"), "{err}");
        // SET request.
        let mut set_req = a;
        set_req.fault = FaultKind::Set;
        let err = transfer_from_store(
            &[set_req, b.clone()],
            &request(corpus("cnt8"), &store),
            &options,
        )
        .unwrap_err();
        assert!(err.to_string().contains("SEU"), "{err}");
    }
}
