//! `ffr estimate` — the ML-assisted estimation stage of the paper's flow.
//!
//! A (possibly budgeted) SEU campaign leaves behind a partial FDR table:
//! measured Functional De-Rating factors for the fault-injected flip-flop
//! subset. This module turns that table into a complete circuit estimate
//! **without simulating anything**:
//!
//! 1. load the partial FDR table (session file, or artifact store),
//! 2. obtain the per-flip-flop feature matrix — served from the store
//!    when cached (keyed by netlist hash + stimulus config + feature
//!    schema version), otherwise extracted from the cached golden run,
//! 3. run cross-validated model selection over a set of [`ModelKind`]s,
//!    each with a small fixed-seed [`grid_search`] budget,
//! 4. train the winning model on the measured subset and predict the FDR
//!    of every unmeasured flip-flop
//!    ([`Estimation::from_measured_with`]),
//! 5. emit a versioned [`EstimateReport`]: per-flip-flop FDRs with
//!    provenance, per-model CV scores (the paper's Table I metrics),
//!    the circuit-level FFR, and the injection savings vs a full
//!    campaign (Tables IV/V of the journal version).
//!
//! Everything downstream of the table is a pure function of fixed seeds,
//! so rerunning `ffr estimate` produces a **byte-identical**
//! `estimate.json` — asserted end-to-end by
//! `crates/campaign/tests/cli_estimate.rs`.

use crate::session::{self, CampaignManifest, RunRequest, SessionPaths};
use crate::spec::PreparedCircuit;
use crate::store::{ArtifactKind, ArtifactStore, StoreKey};
use ffr_core::{Estimation, ModelKind};
use ffr_fault::{FaultKind, FdrTable};
use ffr_features::FeatureMatrix;
use ffr_ml::model_selection::{grid_search, StratifiedKFold};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};

/// Estimate report format version; bump on breaking shape changes.
pub const REPORT_VERSION: u32 = 1;

/// The model kinds `ffr estimate` evaluates by default: the paper's
/// linear + k-NN models plus the strongest future-work ensemble/neural
/// models. SVR is excluded by default only because its fit cost dwarfs
/// the others on large circuits; add it with `--models`.
pub const DEFAULT_MODELS: [ModelKind; 5] = [
    ModelKind::LinearLeastSquares,
    ModelKind::Knn,
    ModelKind::RandomForest,
    ModelKind::GradientBoosting,
    ModelKind::Mlp,
];

/// Tuning knobs of an estimation run.
#[derive(Debug, Clone)]
pub struct EstimateOptions {
    /// Model kinds to cross-validate (winner predicts).
    pub models: Vec<ModelKind>,
    /// Stratified CV folds (clamped to the measured-subset size).
    pub folds: usize,
    /// Fold-assignment seed.
    pub cv_seed: u64,
    /// Hyperparameter candidates evaluated per model kind (the small
    /// grid-search budget; 1 = tuned defaults only).
    pub grid_budget: usize,
    /// Artifact store override (defaults to the session's store).
    pub store: Option<PathBuf>,
    /// Recompute even if a cached report exists in the store.
    pub force: bool,
}

impl Default for EstimateOptions {
    fn default() -> EstimateOptions {
        EstimateOptions {
            models: DEFAULT_MODELS.to_vec(),
            folds: 5,
            cv_seed: 2019,
            grid_budget: 3,
            store: None,
            force: false,
        }
    }
}

/// Cross-validated scores of one evaluated model (mean over test folds;
/// the paper's Table I metric bundle).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelReport {
    /// CLI token of the model kind ([`ModelKind::cli_name`]).
    pub model: String,
    /// Display name matching the paper's table rows.
    pub display_name: String,
    /// Winning hyperparameters of the model's small grid.
    pub best_params: String,
    /// Mean Absolute Error.
    pub cv_mae: f64,
    /// Maximum Absolute Error.
    pub cv_max: f64,
    /// Root Mean Squared Error.
    pub cv_rmse: f64,
    /// Explained Variance.
    pub cv_ev: f64,
    /// Coefficient of determination.
    pub cv_r2: f64,
}

/// One flip-flop's estimate in the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FfEstimateRow {
    /// Flip-flop instance name.
    pub ff: String,
    /// Flip-flop index (`FfId` order).
    pub index: usize,
    /// Estimated (or measured) Functional De-Rating factor.
    pub fdr: f64,
    /// `true` if the value was measured by fault injection.
    pub measured: bool,
}

/// The complete output of one `ffr estimate` run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimateReport {
    /// Report format version ([`REPORT_VERSION`]).
    pub version: u32,
    /// Circuit spec string of the campaign.
    pub circuit: String,
    /// Campaign fingerprint the estimate is derived from.
    pub campaign_fingerprint: String,
    /// Measurement budget of the campaign (fraction of flip-flops).
    pub budget: f64,
    /// Fault-injected flip-flops (the training set).
    pub measured_ffs: usize,
    /// All flip-flops of the circuit.
    pub total_ffs: usize,
    /// Stratified CV folds used for model selection.
    pub cv_folds: usize,
    /// Fold-assignment seed.
    pub cv_seed: u64,
    /// Per-model cross-validation results, in evaluation order.
    pub models: Vec<ModelReport>,
    /// CLI token of the winning model (highest CV R²).
    pub best_model: String,
    /// Mean FDR over the measured subset only.
    pub measured_fdr_mean: f64,
    /// Circuit-level FFR: mean FDR over **all** flip-flops, measured and
    /// predicted (assuming a uniform raw SEU rate per flip-flop).
    pub circuit_ffr: f64,
    /// Fault-injection simulations the budgeted campaign actually spent.
    pub injections_spent: usize,
    /// Simulations a full flat campaign would spend (`total_ffs ×
    /// max injections per point`).
    pub full_campaign_injections: usize,
    /// Cost reduction: `full_campaign_injections / injections_spent`.
    pub injection_savings: f64,
    /// Per-flip-flop estimates, in `FfId` order.
    pub per_ff: Vec<FfEstimateRow>,
}

impl EstimateReport {
    /// Render the per-flip-flop table as CSV
    /// (`ff,index,fdr,source`).
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("ff,index,fdr,source\n");
        for row in &self.per_ff {
            let _ = writeln!(
                out,
                "{},{},{:.6},{}",
                row.ff,
                row.index,
                row.fdr,
                if row.measured {
                    "measured"
                } else {
                    "predicted"
                }
            );
        }
        out
    }

    /// Save as pretty JSON (atomic rename).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save_json(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_string_pretty(self).map_err(io::Error::other)?;
        crate::store::atomic_write(path, &json)
    }

    /// Load a report written by [`EstimateReport::save_json`].
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, undecodable files or a version mismatch; like
    /// the manifest and checkpoint loaders, the version is probed before
    /// full deserialization so foreign versions report the real cause.
    pub fn load_json(path: &Path) -> io::Result<EstimateReport> {
        let text = std::fs::read_to_string(path)?;
        match crate::store::probe_version(&text) {
            Some(v) if v != REPORT_VERSION as u64 => {
                return Err(io::Error::other(format!(
                    "estimate report version {v} unsupported (expected {REPORT_VERSION})"
                )))
            }
            _ => {}
        }
        serde_json::from_str(&text).map_err(io::Error::other)
    }
}

/// Outcome summary of an estimation run.
#[derive(Debug)]
pub struct EstimateSummary {
    /// The computed (or cache-served) report.
    pub report: EstimateReport,
    /// Path of `estimate.json`, when a session directory was written.
    pub json_path: Option<PathBuf>,
    /// `true` if the report was served from the artifact store.
    pub report_from_cache: bool,
    /// `true` if the feature matrix came from the artifact store.
    pub features_from_cache: bool,
}

/// Run the estimation stage on a campaign session directory: read the
/// manifest and partial FDR table, compute (or cache-serve) the report,
/// and write `estimate.json` / `estimate.csv` next to the table.
///
/// # Errors
///
/// Fails on I/O errors, a missing/incomplete session, a SET session, or
/// fewer than two measured flip-flops.
pub fn estimate_session(out_dir: &Path, options: &EstimateOptions) -> io::Result<EstimateSummary> {
    let paths = SessionPaths::new(out_dir);
    let manifest = CampaignManifest::load(&paths.manifest()).map_err(|e| {
        io::Error::other(format!(
            "no campaign session in {} ({e})",
            out_dir.display()
        ))
    })?;
    if manifest.fault != FaultKind::Seu {
        return Err(io::Error::other(
            "ffr estimate needs an SEU campaign (per-flip-flop FDR); \
             this session ran a SET campaign",
        ));
    }
    let circuit: crate::spec::CircuitSpec = manifest.circuit.parse().map_err(io::Error::other)?;
    let prepared = circuit.prepare(manifest.stim_seed, manifest.cycles);
    let store_path = options
        .store
        .clone()
        .or_else(|| manifest.store.as_ref().map(PathBuf::from));
    let store = match &store_path {
        Some(p) => Some(ArtifactStore::open(p)?),
        None => None,
    };

    // The partial FDR table: the session file is authoritative; fall back
    // to the store (the table artifact shares the campaign fingerprint).
    let table = match FdrTable::load_json(&paths.fdr_json()) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            let key = parse_fingerprint(&manifest.fingerprint)?;
            store
                .as_ref()
                .and_then(|s| s.get::<FdrTable>(ArtifactKind::FdrTable, &key).transpose())
                .transpose()?
                .ok_or_else(|| {
                    io::Error::other(format!(
                        "campaign in {} has no FDR table yet — finish it with `ffr resume`",
                        out_dir.display()
                    ))
                })?
        }
        Err(e) => return Err(e),
    };

    let recorder = ffr_obs::Recorder::for_session(out_dir, "estimate");
    let mut summary = estimate_impl(
        &prepared,
        &manifest.circuit,
        &manifest.fingerprint,
        manifest.budget,
        manifest.policy.max_injections,
        &table,
        store.as_ref(),
        options,
        &recorder,
    )?;
    summary.report.save_json(&paths.estimate_json())?;
    crate::store::atomic_write(&paths.estimate_csv(), &summary.report.to_csv())?;
    summary.json_path = Some(paths.estimate_json());
    recorder.finish();
    Ok(summary)
}

/// Run the estimation stage without a session directory: everything is
/// resolved from the artifact store of a previous `ffr run` with the same
/// parameters (`request` must match that run exactly — it determines the
/// campaign fingerprint). The report artifact is written back to the
/// store; no session files are produced.
///
/// # Errors
///
/// Fails on I/O errors, a non-SEU request, or when the store holds no
/// final table for the fingerprint.
pub fn estimate_from_store(
    request: &RunRequest,
    options: &EstimateOptions,
) -> io::Result<EstimateSummary> {
    if request.fault != FaultKind::Seu {
        return Err(io::Error::other(
            "ffr estimate needs an SEU campaign (per-flip-flop FDR)",
        ));
    }
    let store_path = options
        .store
        .clone()
        .or_else(|| request.store.clone())
        .ok_or_else(|| io::Error::other("estimate without --out requires --store"))?;
    let store = ArtifactStore::open(&store_path)?;
    let prepared = request.circuit.prepare(request.stim_seed, request.cycles);
    let table_key = session::campaign_table_key(request, &prepared);
    let table: FdrTable = store
        .get(ArtifactKind::FdrTable, &table_key)?
        .ok_or_else(|| {
            io::Error::other(format!(
                "store {} holds no FDR table for this campaign \
                 (fingerprint {table_key}) — run `ffr run` with the same \
                 parameters first",
                store_path.display()
            ))
        })?;
    estimate_impl(
        &prepared,
        &request.circuit.spec_string(),
        &table_key.to_string(),
        request.budget,
        request.policy.max_injections,
        &table,
        Some(&store),
        options,
        &ffr_obs::Recorder::disabled(),
    )
}

/// Shared estimation core: model selection + prediction + report.
#[allow(clippy::too_many_arguments)]
fn estimate_impl(
    prepared: &PreparedCircuit,
    circuit: &str,
    fingerprint: &str,
    budget: f64,
    max_injections_per_point: usize,
    table: &FdrTable,
    store: Option<&ArtifactStore>,
    options: &EstimateOptions,
    recorder: &ffr_obs::Recorder,
) -> io::Result<EstimateSummary> {
    if options.models.is_empty() {
        return Err(io::Error::other("no models selected"));
    }
    let total_ffs = prepared.cc.num_ffs();
    if table.num_ffs() != total_ffs {
        return Err(io::Error::other(format!(
            "FDR table covers {} flip-flops but the circuit has {total_ffs}",
            table.num_ffs()
        )));
    }
    let measured_ffs = table.covered().count();
    if measured_ffs < 2 {
        return Err(io::Error::other(format!(
            "need at least 2 measured flip-flops to train on (got {measured_ffs})"
        )));
    }

    // Report cache: keyed by the campaign fingerprint plus every
    // estimation knob.
    let model_names: Vec<&str> = options.models.iter().map(|m| m.cli_name()).collect();
    let report_desc = format!(
        "estimate;of={fingerprint};models={};folds={};cv_seed={};grid={};report_v={REPORT_VERSION}",
        model_names.join(","),
        options.folds,
        options.cv_seed,
        options.grid_budget
    );
    let report_key = StoreKey::of(prepared.cc.netlist(), &report_desc);
    if !options.force {
        if let Some(store) = store {
            if let Some(report) = store.get::<EstimateReport>(ArtifactKind::Report, &report_key)? {
                return Ok(EstimateSummary {
                    report,
                    json_path: None,
                    report_from_cache: true,
                    features_from_cache: false,
                });
            }
        }
    }

    let (features, features_from_cache) = load_or_extract_features(prepared, store)?;

    // Train/predict dataset: feature rows of the measured subset, paired
    // with their measured FDRs.
    let rows = features.to_rows();
    let measured: Vec<(usize, f64)> = table.covered().map(|r| (r.ff().index(), r.fdr())).collect();
    let tx: Vec<Vec<f64>> = measured.iter().map(|&(i, _)| rows[i].clone()).collect();
    let ty: Vec<f64> = measured.iter().map(|&(_, v)| v).collect();
    publish_dataset(prepared, fingerprint, store, &measured)?;

    // Stratified CV over the measured subset (every fold sees the full
    // FDR range); fold count clamps to the subset size.
    let folds_n = options.folds.clamp(2, measured_ffs);
    let folds = StratifiedKFold::new(folds_n, options.cv_seed).split(&ty);

    // Per-model small grid search; the overall winner (highest CV R²,
    // first-listed wins ties) predicts the unmeasured flip-flops.
    let mut model_reports = Vec::with_capacity(options.models.len());
    let mut best: Option<(f64, ffr_core::ModelCandidate)> = None;
    for &kind in &options.models {
        let grid = kind.small_grid(options.grid_budget);
        let mut fit_span = recorder.span("estimate.fit");
        fit_span.field("model", kind.cli_name());
        let search = grid_search(&grid, |c| c.build(), &tx, &ty, &folds);
        drop(fit_span);
        let scores = search.best_scores;
        model_reports.push(ModelReport {
            model: kind.cli_name().to_string(),
            display_name: kind.display_name().to_string(),
            best_params: search.best_params.label().to_string(),
            cv_mae: scores.mae,
            cv_max: scores.max,
            cv_rmse: scores.rmse,
            cv_ev: scores.ev,
            cv_r2: scores.r2,
        });
        if best.as_ref().is_none_or(|(r2, _)| scores.r2 > *r2) {
            best = Some((scores.r2, search.best_params));
        }
    }
    let (_, winner) = best.expect("at least one model evaluated");

    let estimation = Estimation::from_measured_with(&features, table, &mut winner.build());
    let per_ff: Vec<FfEstimateRow> = estimation
        .per_ff
        .iter()
        .enumerate()
        .map(|(i, e)| FfEstimateRow {
            ff: features.ff_names()[i].clone(),
            index: i,
            fdr: e.value(),
            measured: e.is_measured(),
        })
        .collect();

    let injections_spent: usize = table.covered().map(|r| r.injections()).sum();
    let full_campaign_injections = total_ffs * max_injections_per_point;
    let report = EstimateReport {
        version: REPORT_VERSION,
        circuit: circuit.to_string(),
        campaign_fingerprint: fingerprint.to_string(),
        budget,
        measured_ffs,
        total_ffs,
        cv_folds: folds_n,
        cv_seed: options.cv_seed,
        models: model_reports,
        best_model: winner.kind().cli_name().to_string(),
        measured_fdr_mean: table.circuit_fdr(),
        circuit_ffr: estimation.circuit_fdr(),
        injections_spent,
        full_campaign_injections,
        injection_savings: if injections_spent == 0 {
            0.0
        } else {
            full_campaign_injections as f64 / injections_spent as f64
        },
        per_ff,
    };
    if let Some(store) = store {
        store.put(ArtifactKind::Report, &report_key, &report)?;
    }
    Ok(EstimateSummary {
        report,
        json_path: None,
        report_from_cache: false,
        features_from_cache,
    })
}

/// The feature matrix for a prepared circuit: served from the store when
/// cached, otherwise extracted from the (cached or captured) golden run
/// and published back. The cache key covers the netlist structure, the
/// stimulus configuration and the feature schema version, so a schema
/// bump or stimulus change invalidates cleanly.
pub(crate) fn load_or_extract_features(
    prepared: &PreparedCircuit,
    store: Option<&ArtifactStore>,
) -> io::Result<(FeatureMatrix, bool)> {
    let features_desc = format!("{};{}", prepared.config_desc, ffr_features::schema_desc());
    let features_key = StoreKey::of(prepared.cc.netlist(), &features_desc);
    if let Some(store) = store {
        if let Some(m) = store.get::<FeatureMatrix>(ArtifactKind::Features, &features_key)? {
            return Ok((m, true));
        }
    }
    // The golden run is only needed for the dynamic feature columns; it
    // shares the campaign driver's cache discipline (`session::golden_for`),
    // so an estimate after a campaign never re-simulates it.
    let (golden, _) = session::golden_for(prepared, store)?;
    let features = ffr_features::extract_features(&prepared.cc, &golden.activity);
    if let Some(store) = store {
        store.put(ArtifactKind::Features, &features_key, &features)?;
    }
    Ok((features, false))
}

/// The train dataset rows `(ff index, measured FDR)` as a store artifact,
/// so external tooling can reproduce the training set of a report.
fn publish_dataset(
    prepared: &PreparedCircuit,
    fingerprint: &str,
    store: Option<&ArtifactStore>,
    measured: &[(usize, f64)],
) -> io::Result<()> {
    let Some(store) = store else { return Ok(()) };
    let dataset_key = StoreKey::of(
        prepared.cc.netlist(),
        &format!(
            "train-dataset;of={fingerprint};{}",
            ffr_features::schema_desc()
        ),
    );
    store.put(ArtifactKind::Dataset, &dataset_key, &measured.to_vec())?;
    Ok(())
}

fn parse_fingerprint(rendered: &str) -> io::Result<StoreKey> {
    session::parse_key(rendered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::AdaptivePolicy;
    use crate::runner::{CancelToken, RunnerOptions};
    use crate::spec::CircuitSpec;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ffr_estimate_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn budgeted_request(store: Option<PathBuf>) -> RunRequest {
        RunRequest {
            circuit: CircuitSpec::Lfsr { width: 8, depth: 2 },
            fault: FaultKind::Seu,
            stim_seed: 1,
            cycles: 200,
            seed: 5,
            policy: AdaptivePolicy::fixed(48),
            budget: 0.4,
            checkpoint_every: 8,
            store,
            force: false,
        }
    }

    fn run_campaign(request: &RunRequest, out: &Path) {
        session::run(
            request,
            out,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
    }

    fn quick_options() -> EstimateOptions {
        EstimateOptions {
            models: vec![
                ModelKind::LinearLeastSquares,
                ModelKind::Knn,
                ModelKind::RandomForest,
                ModelKind::GradientBoosting,
            ],
            folds: 4,
            grid_budget: 2,
            ..EstimateOptions::default()
        }
    }

    #[test]
    fn estimate_session_produces_complete_deterministic_report() {
        let out = tmp_dir("session");
        let store_dir = tmp_dir("session_store");
        let request = budgeted_request(Some(store_dir));
        run_campaign(&request, &out);

        let options = quick_options();
        let summary = estimate_session(&out, &options).unwrap();
        assert!(!summary.report_from_cache);
        let report = &summary.report;
        assert_eq!(report.version, REPORT_VERSION);
        assert_eq!(report.models.len(), 4);
        assert_eq!(report.total_ffs, report.per_ff.len());
        assert!(report.measured_ffs < report.total_ffs);
        assert_eq!(
            report.per_ff.iter().filter(|r| r.measured).count(),
            report.measured_ffs
        );
        assert!(report.per_ff.iter().all(|r| (0.0..=1.0).contains(&r.fdr)));
        assert!((0.0..=1.0).contains(&report.circuit_ffr));
        assert!(report.injection_savings > 1.0, "budgeted campaign saves");
        let json = std::fs::read(out.join("estimate.json")).unwrap();
        let csv = std::fs::read_to_string(out.join("estimate.csv")).unwrap();
        assert_eq!(csv.lines().count(), report.total_ffs + 1);

        // A forced rerun recomputes (features now cache-served) and is
        // byte-identical.
        let forced = EstimateOptions {
            force: true,
            ..options.clone()
        };
        let summary2 = estimate_session(&out, &forced).unwrap();
        assert!(!summary2.report_from_cache);
        assert!(summary2.features_from_cache);
        assert_eq!(json, std::fs::read(out.join("estimate.json")).unwrap());

        // An unforced rerun is served from the report artifact.
        let summary3 = estimate_session(&out, &options).unwrap();
        assert!(summary3.report_from_cache);
        assert_eq!(summary3.report, summary.report);
        assert_eq!(json, std::fs::read(out.join("estimate.json")).unwrap());
    }

    #[test]
    fn estimate_from_store_needs_no_session() {
        let out = tmp_dir("storemode");
        let store_dir = tmp_dir("storemode_store");
        let request = budgeted_request(Some(store_dir.clone()));
        run_campaign(&request, &out);
        // Wipe the session; the store still holds golden run + table.
        std::fs::remove_dir_all(&out).unwrap();

        let summary = estimate_from_store(&request, &quick_options()).unwrap();
        assert!(summary.json_path.is_none());
        assert_eq!(summary.report.total_ffs, summary.report.per_ff.len());

        // The report landed in the store: a session-less rerun serves it.
        let summary2 = estimate_from_store(&request, &quick_options()).unwrap();
        assert!(summary2.report_from_cache);
        assert_eq!(summary2.report, summary.report);
    }

    #[test]
    fn set_sessions_are_rejected() {
        let out = tmp_dir("set");
        let mut request = budgeted_request(None);
        request.fault = FaultKind::Set;
        request.budget = 1.0;
        run_campaign(&request, &out);
        let err = estimate_session(&out, &quick_options()).unwrap_err();
        assert!(err.to_string().contains("SEU"), "{err}");
    }

    #[test]
    fn incomplete_session_is_rejected() {
        let out = tmp_dir("incomplete");
        let request = budgeted_request(None);
        session::run(
            &request,
            &out,
            &RunnerOptions {
                stop_after_points: Some(1),
                ..RunnerOptions::default()
            },
            &CancelToken::new(),
            |_, _| {},
        )
        .unwrap();
        let err = estimate_session(&out, &quick_options()).unwrap_err();
        assert!(err.to_string().contains("resume"), "{err}");
    }

    #[test]
    fn report_artifact_honours_version_kind_and_key_guards() {
        // Regression for the envelope guards on the `report` kind: a
        // version/kind/key mismatch must degrade to a cache miss exactly
        // like the older artifact kinds, and a tampered payload version
        // must be reported as such by the session-file loader (mirroring
        // the checkpoint v1/v2 probes).
        let out = tmp_dir("guards");
        let store_dir = tmp_dir("guards_store");
        let request = budgeted_request(Some(store_dir.clone()));
        run_campaign(&request, &out);
        let options = quick_options();
        estimate_session(&out, &options).unwrap();

        let store = ArtifactStore::open(&store_dir).unwrap();
        let reports: Vec<_> = store
            .list()
            .unwrap()
            .into_iter()
            .filter(|a| a.kind == ArtifactKind::Report)
            .collect();
        assert_eq!(reports.len(), 1, "estimate published one report");
        let path = reports[0].path.clone();
        let key_str = reports[0].file_name.trim_end_matches(".json").to_string();
        let key = session::parse_key(&key_str).unwrap();

        // Sanity: the guarded read round-trips.
        let loaded: Option<EstimateReport> = store.get(ArtifactKind::Report, &key).unwrap();
        assert!(loaded.is_some());
        // Wrong kind and wrong key are misses.
        let wrong_kind: Option<EstimateReport> = store.get(ArtifactKind::Dataset, &key).unwrap();
        assert!(wrong_kind.is_none());
        let wrong_key: Option<EstimateReport> = store
            .get(
                ArtifactKind::Report,
                &StoreKey {
                    netlist: key.netlist ^ 1,
                    config: key.config,
                },
            )
            .unwrap();
        assert!(wrong_key.is_none());
        // A foreign envelope format version is a miss, not a decode error.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(
            &path,
            text.replace("\"format_version\":1", "\"format_version\":999"),
        )
        .unwrap();
        let stale: Option<EstimateReport> = store.get(ArtifactKind::Report, &key).unwrap();
        assert!(stale.is_none());

        // The session-file loader probes the report version first, like
        // the checkpoint/manifest loaders do.
        let json_path = out.join("estimate.json");
        let text = std::fs::read_to_string(&json_path).unwrap();
        std::fs::write(
            &json_path,
            text.replacen("\"version\": 1", "\"version\": 99", 1),
        )
        .unwrap();
        let err = EstimateReport::load_json(&json_path).unwrap_err();
        assert!(
            err.to_string().contains("version 99 unsupported"),
            "got: {err}"
        );
    }
}
