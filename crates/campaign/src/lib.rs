//! Durable, resumable, adaptively-sampled fault-injection campaign
//! orchestration.
//!
//! The statistical campaigns of the paper (170 injections × every
//! flip-flop) dominate the cost of the whole estimation flow. This crate
//! turns the one-shot in-memory campaigns of [`ffr_fault`] into durable
//! jobs that scale:
//!
//! Campaigns are generic over the fault model: every layer — progress
//! records, runner, session, CLI — works on
//! [`InjectionPoint`](ffr_fault::InjectionPoint)s, so SEU (per-flip-flop)
//! and SET (per-combinational-net) campaigns share one durable pipeline.
//!
//! * **Checkpoint / resume** ([`checkpoint`], [`runner`]) — per-point
//!   progress is periodically flushed to disk; a killed run resumes
//!   **bit-identically**, because injection plans and stopping decisions
//!   are pure functions of `(seed, point, window, policy)`.
//! * **Artifact store** ([`store`]) — golden runs, FDR tables, SET
//!   de-rating tables, feature matrices and datasets are cached on disk,
//!   content-addressed by netlist hash + configuration in a versioned,
//!   self-describing format. Reruns with identical inputs are served from
//!   the cache without simulating a cycle.
//! * **Adaptive early stopping** ([`adaptive`]) — a point is retired as
//!   soon as the Wilson confidence interval on its failure fraction is
//!   tight enough, typically cutting campaign cost severalfold on bimodal
//!   populations. Stopping rules are named **policy specs** (`fixed:170`,
//!   `wilson:0.05@95`, `wilson:0.02@99:64..340`) parsed and printed in
//!   one place ([`AdaptivePolicy`]'s `FromStr`/`Display`) and plumbed
//!   through `--policy`, the manifest and the campaign fingerprint, so
//!   differently-policied campaigns cache independently and resume
//!   byte-identically; `ffr-bench --bin policy_study` quantifies the
//!   accuracy-vs-cost trade-off (see `docs/policy-study.md`).
//! * **Pluggable work distribution** ([`work`], [`runner`]) — the runner
//!   is generic over a [`WorkSource`]: threads claim
//!   injection points from the in-process work-stealing cursor
//!   ([`work::CursorSource`]), so adaptive stopping and early convergence
//!   exit do not leave threads idle behind a static partition.
//! * **Distributed campaigns** ([`work::LeaseQueue`], `ffr worker`) —
//!   several worker processes (machines, over a shared filesystem) drain
//!   one campaign by leasing point ranges from the session directory:
//!   lease records carry worker id, expiry and heartbeats; expired leases
//!   are reclaimed; each worker flushes per-range shard checkpoints that
//!   merge deterministically — the final table is **byte-identical** to a
//!   single-process run, no matter how work was distributed (or
//!   duplicated by lease-reclaim races).
//! * **Compressed artifacts** ([`codec`], [`store`]) — bulky golden-run
//!   artifacts are stored as version-2 envelopes with a
//!   deflate-compressed payload; v1 JSON payloads read back
//!   transparently.
//! * **ML-assisted estimation** ([`estimate`]) — `ffr run --budget 0.4`
//!   measures a seeded flip-flop subset; `ffr estimate` cross-validates
//!   the paper's regression models on the measured FDRs, predicts every
//!   unmeasured flip-flop from cached feature matrices, and emits a
//!   byte-reproducible estimation report — the full paper pipeline off
//!   cached artifacts, with zero re-simulation.
//! * **Structured telemetry** ([`stats`], `ffr-obs`) — the runner, lease
//!   queue, artifact store and session phases record spans, counters and
//!   latency histograms through a cheap [`ffr_obs::Recorder`] into
//!   per-worker JSONL logs under `<campaign>/telemetry/` — deliberately
//!   outside the artifact store and the campaign fingerprint, so
//!   telemetry never perturbs byte-identical resume/merge; `ffr stats`
//!   merges the logs into a throughput / latency report.
//! * **The `ffr` CLI** ([`cli`]) — `run --fault {seu,set}`, `resume`,
//!   `status`, `report`, `estimate`, `stats`, `gc` over named circuits
//!   ([`spec`]), replacing ad-hoc per-experiment binaries for the core
//!   campaign flow. Status assembly lives in [`status`] as a library
//!   surface shared with the service.
//! * **The `ffrd` campaign service** ([`service`]) — a dependency-free
//!   HTTP/1.1 server (thread pool over `std::net`) that accepts campaign
//!   submissions as JSON (`POST /campaigns`), exposes their live
//!   progress (`GET /campaigns/<id>/status`, the `ffr status --json`
//!   schema) and serves cached estimates (`GET /campaigns/<id>/estimate`)
//!   while `ffr worker` fleets drain the queued campaigns; the lease
//!   dispatcher hands out the most expensive remaining ranges first,
//!   estimated from shard injection counts.
//! * **Pluggable artifact backends** ([`store::StoreBackend`]) — the
//!   artifact store reads/writes through a backend trait object
//!   (local directory today; an object store or DB can land without
//!   touching callers).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod checkpoint;
pub mod cli;
pub mod codec;
pub mod estimate;
pub mod runner;
pub mod service;
pub mod session;
pub mod spec;
pub mod stats;
pub mod status;
pub mod store;
pub mod transfer;
pub mod work;

pub use adaptive::{AdaptivePolicy, CHUNK_INJECTIONS};
pub use checkpoint::{CampaignCheckpoint, CheckpointParams, PointProgress, ShardCheckpoint};
pub use estimate::{
    estimate_from_store, estimate_session, EstimateOptions, EstimateReport, EstimateSummary,
    FfEstimateRow, ModelReport,
};
pub use runner::{run_resumable, run_with_source, CancelToken, RunOutcome, RunnerOptions};
pub use service::{ServiceConfig, ServiceHandle};
pub use session::{
    CampaignManifest, RunRequest, RunSummary, SessionPaths, WorkerRequest, WorkerSummary,
};
pub use spec::{CircuitSpec, PreparedCircuit};
pub use stats::{CampaignStats, SpanStats, WorkerStats, STATS_SCHEMA_VERSION};
pub use status::{gather_status, StatusReport, STATUS_SCHEMA_VERSION};
pub use store::{
    ArtifactInfo, ArtifactKind, ArtifactStore, GcReport, LocalDirBackend, StoreBackend, StoreKey,
};
pub use transfer::{
    transfer_from_store, ReferenceComparison, TrainCircuitReport, TransferFfRow, TransferReport,
    TransferSummary, TRANSFER_VERSION,
};
pub use work::{CursorSource, LeaseQueue, LeaseRecord, WorkSource};
