//! Durable, resumable, adaptively-sampled fault-injection campaign
//! orchestration.
//!
//! The statistical campaigns of the paper (170 injections × every
//! flip-flop) dominate the cost of the whole estimation flow. This crate
//! turns the one-shot in-memory campaigns of [`ffr_fault`] into durable
//! jobs that scale:
//!
//! * **Checkpoint / resume** ([`checkpoint`], [`runner`]) — per-flip-flop
//!   progress is periodically flushed to disk; a killed run resumes
//!   **bit-identically**, because injection plans and stopping decisions
//!   are pure functions of `(seed, flip-flop, window, policy)`.
//! * **Artifact store** ([`store`]) — golden runs, FDR tables, feature
//!   matrices and datasets are cached on disk, content-addressed by
//!   netlist hash + configuration in a versioned, self-describing format.
//!   Reruns with identical inputs are served from the cache without
//!   simulating a cycle.
//! * **Adaptive early stopping** ([`adaptive`]) — a flip-flop is retired
//!   as soon as the Wilson confidence interval on its FDR is tight enough,
//!   typically cutting campaign cost severalfold on bimodal FDR
//!   populations.
//! * **Work stealing** ([`runner`]) — workers claim flip-flops from a
//!   shared cursor, so adaptive stopping and early convergence exit do not
//!   leave threads idle behind a static partition.
//! * **The `ffr` CLI** ([`cli`]) — `run`, `resume`, `status`, `report`,
//!   `gc` over named circuits ([`spec`]), replacing ad-hoc per-experiment
//!   binaries for the core campaign flow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod checkpoint;
pub mod cli;
pub mod runner;
pub mod session;
pub mod spec;
pub mod store;

pub use adaptive::{AdaptivePolicy, CHUNK_INJECTIONS};
pub use checkpoint::{CampaignCheckpoint, CheckpointParams, FfProgress};
pub use runner::{run_resumable, CancelToken, RunOutcome, RunnerOptions};
pub use session::{CampaignManifest, RunRequest, RunSummary, SessionPaths};
pub use spec::{CircuitSpec, PreparedCircuit};
pub use store::{ArtifactInfo, ArtifactKind, ArtifactStore, GcReport, StoreKey};
