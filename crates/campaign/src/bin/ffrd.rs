//! The `ffrd` campaign service: submit campaigns over HTTP, drain them
//! with `ffr worker` fleets.
//!
//! See `ffrd --help` for usage and the endpoint reference.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(ffr_campaign::service::ffrd_main(&args));
}
