//! The `ffr` CLI: checkpointed, resumable fault-injection campaigns.
//!
//! See `ffr help` for usage.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(ffr_campaign::cli::main_with_args(&args));
}
