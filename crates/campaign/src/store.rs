//! Content-addressed on-disk artifact store.
//!
//! Expensive campaign artifacts — golden runs, FDR tables, feature
//! matrices, reference datasets, estimation reports — are cached on disk,
//! keyed by a fingerprint of everything that determines their content: the
//! netlist (structure, not just name) and the producing configuration.
//! Identical inputs are served from the cache; any change to the circuit
//! or config changes the key and misses cleanly.
//!
//! # Layout
//!
//! ```text
//! <root>/
//!   golden-run/<netlist>-<config>.json
//!   fdr-table/<netlist>-<config>.json
//!   dataset/<netlist>-<config>.json
//!   ...
//! ```
//!
//! Every file is a versioned, self-describing JSON envelope
//! ([`FORMAT_VERSION`]): readers verify the version, kind and key before
//! trusting the payload, so stale or foreign files degrade to cache
//! misses, never to corrupt results. Writes go through a temp file plus
//! atomic rename, so a killed writer leaves either the old artifact or
//! none — readers never see a torn file.

use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::SystemTime;

/// Version-1 envelope: plain JSON payload.
pub const FORMAT_VERSION: u32 = 1;

/// Version-2 envelope: deflate-compressed, base64-embedded payload (see
/// [`crate::codec`]). Written for bulky artifact kinds
/// ([`ArtifactKind::compressed`]); readers accept v1 and v2 for every
/// kind, so stores written by older code keep working unchanged.
pub const FORMAT_VERSION_COMPRESSED: u32 = 2;

/// Encoding tag stored in v2 envelopes.
const COMPRESSED_ENCODING: &str = "deflate+base64";

/// Grace period before garbage collection touches a `.tmp` file: a live
/// writer's temp file is younger than this, a crashed writer's leftover
/// is older.
const TMP_GRACE: std::time::Duration = std::time::Duration::from_secs(3600);

/// Write `contents` to `path` via a sibling temp file and an atomic
/// rename: readers see either the previous file or the new one, never a
/// torn write — even if the writer is SIGKILLed mid-way.
///
/// Shared by the artifact store, the campaign checkpoint and the session
/// manifest, so durability fixes land in one place.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn atomic_write(path: &Path, contents: &str) -> io::Result<()> {
    let tmp = unique_tmp_path(path);
    std::fs::write(&tmp, contents)?;
    let renamed = std::fs::rename(&tmp, path);
    if renamed.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    renamed
}

/// Monotonic per-process counter for temp-file names.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A temp-file path unique across concurrent writers: two processes (or
/// threads) atomically writing the *same* destination get distinct temp
/// files — pid disambiguates processes, the counter disambiguates threads
/// — so neither can truncate or rename the other's half-written temp.
fn unique_tmp_path(path: &Path) -> PathBuf {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(
        ".tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    PathBuf::from(tmp)
}

/// Create `path` with `contents` **only if it does not already exist**;
/// returns whether this caller won the creation race.
///
/// The contents are staged in a unique temp file first and published with
/// a hard link, which atomically fails if `path` already exists — so a
/// winner's file is always complete (no reader can observe a torn claim)
/// and there is never more than one winner. Used for lease claims, where
/// rename's replace-on-collision semantics would silently hand the same
/// lease to two workers.
///
/// # Errors
///
/// Propagates I/O failures other than "already exists".
pub fn create_exclusive(path: &Path, contents: &str) -> io::Result<bool> {
    let tmp = unique_tmp_path(path);
    std::fs::write(&tmp, contents)?;
    let linked = std::fs::hard_link(&tmp, path);
    let _ = std::fs::remove_file(&tmp);
    match linked {
        Ok(()) => Ok(true),
        Err(e) if e.kind() == io::ErrorKind::AlreadyExists => Ok(false),
        Err(e) => Err(e),
    }
}

/// Probe the `version` field of a JSON document without deserializing
/// the full structure.
///
/// Checkpoints and manifests from an older format version are missing
/// fields the current structs require, so a plain `from_str` fails with
/// an opaque missing-field error *before* the deserialized struct's
/// version check could run. Probing first lets loaders report the real
/// cause — an unsupported format version — instead.
pub(crate) fn probe_version(text: &str) -> Option<u64> {
    match serde_json::parse_value_complete(text)
        .ok()?
        .get("version")?
    {
        Value::U64(n) => Some(*n),
        _ => None,
    }
}

/// FNV-1a 64-bit hash (the store's fingerprint primitive — fast, stable,
/// and dependency-free).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Content-address of an artifact: netlist fingerprint plus configuration
/// fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StoreKey {
    /// Fingerprint of the full netlist structure.
    pub netlist: u64,
    /// Fingerprint of the producing configuration (stimulus, campaign
    /// parameters, …).
    pub config: u64,
}

impl StoreKey {
    /// Key for a netlist (hashed over its full serialized structure) and a
    /// caller-assembled configuration description string.
    ///
    /// The config string should contain **every** parameter that changes
    /// the artifact: window, seed, injection counts, stimulus knobs…
    /// Convention: `name=value` pairs joined with `;`.
    pub fn of(netlist: &ffr_netlist::Netlist, config_desc: &str) -> StoreKey {
        let serialized =
            serde_json::to_string(netlist).expect("netlist serialization is infallible");
        StoreKey {
            netlist: fnv1a64(serialized.as_bytes()),
            config: fnv1a64(config_desc.as_bytes()),
        }
    }
}

impl fmt::Display for StoreKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}-{:016x}", self.netlist, self.config)
    }
}

/// The artifact categories the store understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArtifactKind {
    /// A serialized [`ffr_sim::GoldenRun`].
    GoldenRun,
    /// A serialized [`ffr_sim::NetJournal`] (golden boundary-net values
    /// for cone-restricted fault simulation).
    NetJournal,
    /// A serialized [`ffr_fault::FdrTable`].
    FdrTable,
    /// A serialized [`ffr_fault::SetDeratingTable`].
    SetTable,
    /// A serialized [`ffr_features::FeatureMatrix`].
    Features,
    /// A serialized [`ffr_core::ReferenceDataset`].
    Dataset,
    /// A rendered estimation/campaign report.
    Report,
    /// A policy accuracy-vs-cost study (`ffr-bench --bin policy_study`).
    PolicyStudy,
    /// A cross-circuit transfer report (`ffr transfer`).
    Transfer,
}

impl ArtifactKind {
    /// All kinds, for directory scans.
    pub const ALL: [ArtifactKind; 9] = [
        ArtifactKind::GoldenRun,
        ArtifactKind::NetJournal,
        ArtifactKind::FdrTable,
        ArtifactKind::SetTable,
        ArtifactKind::Features,
        ArtifactKind::Dataset,
        ArtifactKind::Report,
        ArtifactKind::PolicyStudy,
        ArtifactKind::Transfer,
    ];

    /// `true` for kinds written with the deflate-compressed v2 envelope.
    ///
    /// Golden runs dominate store size (the paper-scale MAC's output
    /// trace + state journal serializes to multi-MB JSON) and compress
    /// severalfold; the small metadata-heavy kinds stay as plain v1 JSON,
    /// which is grep-able and diff-able. Net journals are denser still
    /// (one word per net per cycle) and compress the same way.
    pub fn compressed(self) -> bool {
        matches!(self, ArtifactKind::GoldenRun | ArtifactKind::NetJournal)
    }

    /// Directory name of the kind.
    pub fn dir_name(self) -> &'static str {
        match self {
            ArtifactKind::GoldenRun => "golden-run",
            ArtifactKind::NetJournal => "net-journal",
            ArtifactKind::FdrTable => "fdr-table",
            ArtifactKind::SetTable => "set-table",
            ArtifactKind::Features => "features",
            ArtifactKind::Dataset => "dataset",
            ArtifactKind::Report => "report",
            ArtifactKind::PolicyStudy => "policy-study",
            ArtifactKind::Transfer => "transfer",
        }
    }
}

impl fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.dir_name())
    }
}

/// One entry of a backend directory listing ([`StoreBackend::list_dir`]).
///
/// Includes temp files (`.tmp` in the name): [`ArtifactStore::gc`] needs
/// to see them to sweep crashed writers' leftovers.
#[derive(Debug, Clone)]
pub struct BackendEntry {
    /// File name within the kind directory.
    pub file_name: String,
    /// Size in bytes.
    pub bytes: u64,
    /// Last modification time, when the backend tracks one.
    pub modified: Option<SystemTime>,
}

/// Where artifact bytes live: the storage primitive behind
/// [`ArtifactStore`].
///
/// The store owns everything content-addressed — envelope format, keys,
/// compression, cache-miss semantics — and reduces it to six flat-file
/// operations on `(dir, file)` pairs (`dir` is an
/// [`ArtifactKind::dir_name`]). A backend only moves strings, so an
/// object store or database backend can land behind this trait without
/// touching any store caller. The default is [`LocalDirBackend`].
///
/// Implementations must be thread-safe ([`Send`] + [`Sync`]): one store
/// handle is shared across runner threads.
pub trait StoreBackend: Send + Sync + fmt::Debug {
    /// Human-readable identity of the backend (shown in diagnostics).
    fn describe(&self) -> String;

    /// Read a file's contents, or `None` if it does not exist.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures other than "not found".
    fn read(&self, dir: &str, file: &str) -> io::Result<Option<String>>;

    /// Durably write a file (atomically replacing any previous version),
    /// creating the directory as needed. Returns the path the artifact is
    /// addressable under (a real filesystem path for the local backend, a
    /// synthetic `<describe>/<dir>/<file>` path otherwise).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    fn write(&self, dir: &str, file: &str, contents: &str) -> io::Result<PathBuf>;

    /// `true` if the file exists.
    fn exists(&self, dir: &str, file: &str) -> bool;

    /// Enumerate a directory (missing directories are empty, temp files
    /// included — see [`BackendEntry`]).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    fn list_dir(&self, dir: &str) -> io::Result<Vec<BackendEntry>>;

    /// Delete a file (deleting a missing file is not an error).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    fn remove(&self, dir: &str, file: &str) -> io::Result<()>;
}

/// The default [`StoreBackend`]: flat files under a root directory, with
/// atomic-rename writes ([`atomic_write`]) so readers never observe torn
/// artifacts. This is byte-for-byte the store layout that predates the
/// backend trait — existing stores read back unchanged.
#[derive(Debug)]
pub struct LocalDirBackend {
    root: PathBuf,
}

impl LocalDirBackend {
    /// Open (creating if needed) a backend rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn create(root: impl Into<PathBuf>) -> io::Result<LocalDirBackend> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(LocalDirBackend { root })
    }

    /// The backend's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path(&self, dir: &str, file: &str) -> PathBuf {
        self.root.join(dir).join(file)
    }
}

impl StoreBackend for LocalDirBackend {
    fn describe(&self) -> String {
        format!("dir:{}", self.root.display())
    }

    fn read(&self, dir: &str, file: &str) -> io::Result<Option<String>> {
        match std::fs::read_to_string(self.path(dir, file)) {
            Ok(text) => Ok(Some(text)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn write(&self, dir: &str, file: &str, contents: &str) -> io::Result<PathBuf> {
        let path = self.path(dir, file);
        std::fs::create_dir_all(path.parent().expect("artifact path has a parent"))?;
        atomic_write(&path, contents)?;
        Ok(path)
    }

    fn exists(&self, dir: &str, file: &str) -> bool {
        self.path(dir, file).is_file()
    }

    fn list_dir(&self, dir: &str) -> io::Result<Vec<BackendEntry>> {
        let mut out = Vec::new();
        let entries = match std::fs::read_dir(self.root.join(dir)) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let entry = entry?;
            let meta = entry.metadata()?;
            if !meta.is_file() {
                continue;
            }
            out.push(BackendEntry {
                file_name: entry.file_name().to_string_lossy().into_owned(),
                bytes: meta.len(),
                modified: meta.modified().ok(),
            });
        }
        Ok(out)
    }

    fn remove(&self, dir: &str, file: &str) -> io::Result<()> {
        match std::fs::remove_file(self.path(dir, file)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }
}

/// Metadata of one stored artifact (from [`ArtifactStore::list`]).
#[derive(Debug, Clone)]
pub struct ArtifactInfo {
    /// Artifact category.
    pub kind: ArtifactKind,
    /// File name (key + `.json`).
    pub file_name: String,
    /// Full path.
    pub path: PathBuf,
    /// Size in bytes.
    pub bytes: u64,
    /// Last modification time.
    pub modified: SystemTime,
}

/// Result summary of a [`ArtifactStore::gc`] sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Number of files removed.
    pub removed: usize,
    /// Bytes reclaimed.
    pub reclaimed_bytes: u64,
    /// Number of files kept.
    pub kept: usize,
}

/// A content-addressed artifact store rooted at a directory.
///
/// ```
/// use ffr_campaign::{ArtifactKind, ArtifactStore, StoreKey};
///
/// let root = std::env::temp_dir().join(format!("ffr_store_doc_{}", std::process::id()));
/// let store = ArtifactStore::open(&root)?;
///
/// // Keys address artifacts by netlist hash + configuration hash
/// // (normally produced by `StoreKey::of(netlist, config_desc)`).
/// let key = StoreKey { netlist: 0xFEED, config: 0xBEEF };
/// store.put(ArtifactKind::FdrTable, &key, &vec![0.25f64, 0.5])?;
///
/// let cached: Option<Vec<f64>> = store.get(ArtifactKind::FdrTable, &key)?;
/// assert_eq!(cached, Some(vec![0.25, 0.5]));
///
/// // A different key — or kind — is a clean miss, never stale data.
/// let other = StoreKey { netlist: 0xFEED, config: 0xBEE5 };
/// assert_eq!(store.get::<Vec<f64>>(ArtifactKind::FdrTable, &other)?, None);
/// assert_eq!(store.get::<Vec<f64>>(ArtifactKind::Dataset, &key)?, None);
/// # std::fs::remove_dir_all(&root)?;
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    backend: Arc<dyn StoreBackend>,
    root: PathBuf,
    recorder: ffr_obs::Recorder,
}

impl ArtifactStore {
    /// Open (creating if needed) a store rooted at `root`, backed by the
    /// local filesystem ([`LocalDirBackend`]).
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<ArtifactStore> {
        let root = root.into();
        let backend = LocalDirBackend::create(&root)?;
        Ok(ArtifactStore {
            backend: Arc::new(backend),
            root,
            recorder: ffr_obs::Recorder::disabled(),
        })
    }

    /// Open a store over an arbitrary [`StoreBackend`]. Everything above
    /// the byte level — envelopes, keys, compression, gc policy — is
    /// identical across backends; `nominal_root` is the path artifacts
    /// are *reported* under ([`ArtifactStore::root`],
    /// [`ArtifactInfo::path`]) for backends with no real filesystem
    /// location.
    pub fn with_backend(
        backend: Arc<dyn StoreBackend>,
        nominal_root: impl Into<PathBuf>,
    ) -> ArtifactStore {
        ArtifactStore {
            backend,
            root: nominal_root.into(),
            recorder: ffr_obs::Recorder::disabled(),
        }
    }

    /// Attach a telemetry recorder: subsequent [`ArtifactStore::put`] /
    /// [`ArtifactStore::get`] calls record latency histograms and byte
    /// counters. Telemetry lives outside the store directory, so
    /// recording never perturbs artifact contents or keys.
    pub fn with_recorder(mut self, recorder: ffr_obs::Recorder) -> ArtifactStore {
        self.recorder = recorder;
        self
    }

    /// The store's root directory (nominal for non-filesystem backends).
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The backend artifact bytes are stored in.
    pub fn backend(&self) -> &Arc<dyn StoreBackend> {
        &self.backend
    }

    fn file_of(key: &StoreKey) -> String {
        format!("{key}.json")
    }

    /// `true` if an artifact exists for `(kind, key)`.
    pub fn contains(&self, kind: ArtifactKind, key: &StoreKey) -> bool {
        self.backend.exists(kind.dir_name(), &Self::file_of(key))
    }

    /// Store an artifact, atomically replacing any previous version.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn put<T: Serialize>(
        &self,
        kind: ArtifactKind,
        key: &StoreKey,
        payload: &T,
    ) -> io::Result<PathBuf> {
        let t0 = std::time::Instant::now();
        let envelope = if kind.compressed() {
            let payload_json =
                serde_json::to_string(&ValueWrap(&payload.to_value())).expect("payload serializes");
            let packed =
                crate::codec::base64_encode(&crate::codec::deflate(payload_json.as_bytes()));
            self.recorder
                .count("store.compress_in_bytes", payload_json.len() as u64);
            self.recorder
                .count("store.compress_out_bytes", packed.len() as u64);
            Value::Object(vec![
                (
                    "format_version".into(),
                    Value::U64(FORMAT_VERSION_COMPRESSED as u64),
                ),
                ("kind".into(), Value::Str(kind.dir_name().into())),
                ("key".into(), Value::Str(key.to_string())),
                ("encoding".into(), Value::Str(COMPRESSED_ENCODING.into())),
                ("payload".into(), Value::Str(packed)),
            ])
        } else {
            Value::Object(vec![
                ("format_version".into(), Value::U64(FORMAT_VERSION as u64)),
                ("kind".into(), Value::Str(kind.dir_name().into())),
                ("key".into(), Value::Str(key.to_string())),
                ("payload".into(), payload.to_value()),
            ])
        };
        let text = serde_json::to_string(&ValueWrap(&envelope)).expect("envelope serializes");
        let path = self
            .backend
            .write(kind.dir_name(), &Self::file_of(key), &text)?;
        if self.recorder.enabled() {
            self.recorder.count("store.puts", 1);
            self.recorder.count("store.put_bytes", text.len() as u64);
            self.recorder
                .observe_us("store.put_us", t0.elapsed().as_micros() as u64);
            self.recorder.event(
                ffr_obs::Level::Debug,
                "store.put",
                &[
                    ("kind", kind.dir_name().into()),
                    ("bytes", text.len().into()),
                ],
            );
        }
        Ok(path)
    }

    /// Load an artifact, or `None` on a cache miss (missing file, version
    /// mismatch, kind/key mismatch, or undecodable payload).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures other than "not found".
    pub fn get<T: Deserialize>(&self, kind: ArtifactKind, key: &StoreKey) -> io::Result<Option<T>> {
        let t0 = std::time::Instant::now();
        let result = self.get_impl(kind, key);
        if self.recorder.enabled() {
            self.recorder.count("store.gets", 1);
            if matches!(&result, Ok(Some(_))) {
                self.recorder.count("store.hits", 1);
            }
            self.recorder
                .observe_us("store.get_us", t0.elapsed().as_micros() as u64);
        }
        result
    }

    fn get_impl<T: Deserialize>(
        &self,
        kind: ArtifactKind,
        key: &StoreKey,
    ) -> io::Result<Option<T>> {
        let Some(text) = self.backend.read(kind.dir_name(), &Self::file_of(key))? else {
            return Ok(None);
        };
        self.recorder.count("store.get_bytes", text.len() as u64);
        let Ok(envelope) = serde_json::parse_value_complete(&text) else {
            return Ok(None);
        };
        let version = envelope.get("format_version").and_then(|v| match v {
            Value::U64(n) => Some(*n),
            _ => None,
        });
        if envelope.get("kind").and_then(Value::as_str) != Some(kind.dir_name()) {
            return Ok(None);
        }
        if envelope.get("key").and_then(Value::as_str) != Some(key.to_string().as_str()) {
            return Ok(None);
        }
        // Readers accept both envelope layouts regardless of what the
        // current writer would produce for this kind, so v1 stores read
        // back transparently after an upgrade (and vice versa).
        match version {
            Some(v) if v == FORMAT_VERSION as u64 => {
                let Some(payload) = envelope.get("payload") else {
                    return Ok(None);
                };
                Ok(T::from_value(payload).ok())
            }
            Some(v) if v == FORMAT_VERSION_COMPRESSED as u64 => {
                if envelope.get("encoding").and_then(Value::as_str) != Some(COMPRESSED_ENCODING) {
                    return Ok(None);
                }
                let Some(packed) = envelope.get("payload").and_then(Value::as_str) else {
                    return Ok(None);
                };
                let Ok(compressed) = crate::codec::base64_decode(packed) else {
                    return Ok(None);
                };
                let Ok(bytes) = crate::codec::inflate(&compressed) else {
                    return Ok(None);
                };
                let Ok(payload_json) = String::from_utf8(bytes) else {
                    return Ok(None);
                };
                let Ok(payload) = serde_json::parse_value_complete(&payload_json) else {
                    return Ok(None);
                };
                Ok(T::from_value(&payload).ok())
            }
            _ => Ok(None),
        }
    }

    /// Enumerate every artifact in the store.
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures.
    pub fn list(&self) -> io::Result<Vec<ArtifactInfo>> {
        let mut out = Vec::new();
        for kind in ArtifactKind::ALL {
            for entry in self.backend.list_dir(kind.dir_name())? {
                if !entry.file_name.ends_with(".json") {
                    continue;
                }
                out.push(ArtifactInfo {
                    kind,
                    path: self.root.join(kind.dir_name()).join(&entry.file_name),
                    bytes: entry.bytes,
                    modified: entry.modified.unwrap_or(SystemTime::UNIX_EPOCH),
                    file_name: entry.file_name,
                });
            }
        }
        out.sort_by(|a, b| {
            (a.kind.dir_name(), &a.file_name).cmp(&(b.kind.dir_name(), &b.file_name))
        });
        Ok(out)
    }

    /// Remove artifacts: everything older than `max_age`, or everything if
    /// `max_age` is `None`. Leftover temp files from killed writers are
    /// removed once they outlive a one-hour grace period (younger ones may
    /// belong to a live writer).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn gc(&self, max_age: Option<std::time::Duration>) -> io::Result<GcReport> {
        let now = SystemTime::now();
        let mut report = GcReport::default();
        for kind in ArtifactKind::ALL {
            for entry in self.backend.list_dir(kind.dir_name())? {
                let older_than = |age: std::time::Duration| {
                    entry
                        .modified
                        .and_then(|m| now.duration_since(m).ok())
                        .is_some_and(|elapsed| elapsed > age)
                };
                // A temp file younger than the grace period may belong to
                // a concurrent writer mid-`atomic_write`; leave it alone.
                // Matches both the legacy `foo.json.tmp` suffix and the
                // current unique `foo.json.tmp.<pid>.<seq>` names.
                let is_tmp = entry.file_name.contains(".tmp");
                if is_tmp && !older_than(TMP_GRACE) {
                    report.kept += 1;
                    continue;
                }
                let expired = match max_age {
                    None => true,
                    Some(age) => older_than(age),
                };
                if is_tmp || expired {
                    self.backend.remove(kind.dir_name(), &entry.file_name)?;
                    report.removed += 1;
                    report.reclaimed_bytes += entry.bytes;
                } else {
                    report.kept += 1;
                }
            }
        }
        Ok(report)
    }
}

/// Serialize adapter: a raw [`Value`] is its own serialization.
struct ValueWrap<'a>(&'a Value);

impl Serialize for ValueWrap<'_> {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(tag: &str) -> ArtifactStore {
        let dir = std::env::temp_dir().join(format!("ffr_store_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ArtifactStore::open(dir).unwrap()
    }

    fn key() -> StoreKey {
        StoreKey {
            netlist: 0xAB,
            config: 0xCD,
        }
    }

    #[test]
    fn put_get_round_trip() {
        let store = tmp_store("roundtrip");
        let data: Vec<u64> = vec![1, 2, 3, u64::MAX];
        assert!(!store.contains(ArtifactKind::FdrTable, &key()));
        store.put(ArtifactKind::FdrTable, &key(), &data).unwrap();
        assert!(store.contains(ArtifactKind::FdrTable, &key()));
        let loaded: Option<Vec<u64>> = store.get(ArtifactKind::FdrTable, &key()).unwrap();
        assert_eq!(loaded, Some(data));
    }

    #[test]
    fn net_journal_round_trips_compressed() {
        use ffr_sim::{CompiledCircuit, InputFrame, NetJournal, Stimulus};

        struct Count;
        impl Stimulus for Count {
            fn num_cycles(&self) -> u64 {
                17
            }
            fn drive(&self, cycle: u64, frame: &mut InputFrame) {
                frame.set(0, cycle & 1 == 1);
                frame.set(1, cycle & 2 == 2);
            }
        }

        let mut b = ffr_netlist::NetlistBuilder::new("journal_store");
        let a = b.input("a", 2);
        let r = b.reg("r", 2);
        let x = b.xor(&r.q(), &a);
        b.connect(&r, &x).unwrap();
        b.output("q", &r.q());
        let cc = CompiledCircuit::compile(b.finish().unwrap()).unwrap();

        let journal = NetJournal::capture(&cc, &Count);
        let store = tmp_store("net_journal");
        let path = store
            .put(ArtifactKind::NetJournal, &key(), &journal)
            .unwrap();
        // Written with the deflate v2 envelope: the payload is compressed
        // and base64-embedded, not inlined as plain JSON.
        assert!(ArtifactKind::NetJournal.compressed());
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.contains(&format!("\"format_version\":{FORMAT_VERSION_COMPRESSED}")),
            "expected a v2 envelope"
        );
        assert!(
            !text.contains("words_per_cycle"),
            "payload should not appear as plain JSON"
        );
        let loaded: Option<NetJournal> = store.get(ArtifactKind::NetJournal, &key()).unwrap();
        assert_eq!(loaded, Some(journal));
    }

    #[test]
    fn kind_and_key_mismatches_miss() {
        let store = tmp_store("mismatch");
        store.put(ArtifactKind::Report, &key(), &42u64).unwrap();
        let other_kind: Option<u64> = store.get(ArtifactKind::Dataset, &key()).unwrap();
        assert_eq!(other_kind, None);
        let other_key = StoreKey {
            netlist: 1,
            config: 2,
        };
        let missing: Option<u64> = store.get(ArtifactKind::Report, &other_key).unwrap();
        assert_eq!(missing, None);
    }

    #[test]
    fn corrupt_files_degrade_to_miss() {
        let store = tmp_store("corrupt");
        let path = store.put(ArtifactKind::Report, &key(), &1u64).unwrap();
        std::fs::write(&path, "{not json").unwrap();
        let loaded: Option<u64> = store.get(ArtifactKind::Report, &key()).unwrap();
        assert_eq!(loaded, None);
        // Wrong format version is also a miss.
        std::fs::write(
            &path,
            r#"{"format_version":999,"kind":"report","key":"x","payload":1}"#,
        )
        .unwrap();
        let loaded: Option<u64> = store.get(ArtifactKind::Report, &key()).unwrap();
        assert_eq!(loaded, None);
    }

    #[test]
    fn list_and_gc() {
        let store = tmp_store("gc");
        store.put(ArtifactKind::Report, &key(), &1u64).unwrap();
        store
            .put(
                ArtifactKind::Dataset,
                &StoreKey {
                    netlist: 5,
                    config: 6,
                },
                &2u64,
            )
            .unwrap();
        assert_eq!(store.list().unwrap().len(), 2);
        // Nothing is older than an hour.
        let report = store
            .gc(Some(std::time::Duration::from_secs(3600)))
            .unwrap();
        assert_eq!(report.removed, 0);
        assert_eq!(report.kept, 2);
        // Unconditional gc removes everything.
        let report = store.gc(None).unwrap();
        assert_eq!(report.removed, 2);
        assert!(store.list().unwrap().is_empty());
    }

    #[test]
    fn golden_run_kind_round_trips_through_the_compressed_envelope() {
        let store = tmp_store("compressed");
        // A payload shaped like real golden-run JSON: long, repetitive.
        let data: Vec<u64> = (0..4096).map(|i| i % 17).collect();
        let path = store.put(ArtifactKind::GoldenRun, &key(), &data).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.contains("\"format_version\":2"),
            "golden runs are written as v2 envelopes: {}",
            &text[..text.len().min(120)]
        );
        assert!(text.contains("\"encoding\":\"deflate+base64\""));
        let loaded: Option<Vec<u64>> = store.get(ArtifactKind::GoldenRun, &key()).unwrap();
        assert_eq!(loaded, Some(data.clone()));

        // The compressed envelope beats the equivalent v1 JSON envelope.
        let plain = serde_json::to_string(&data).unwrap();
        assert!(
            std::fs::metadata(&path).unwrap().len() < plain.len() as u64,
            "compressed envelope ({}) must undercut plain payload JSON ({})",
            std::fs::metadata(&path).unwrap().len(),
            plain.len()
        );
    }

    #[test]
    fn v1_golden_run_envelopes_read_back_transparently() {
        // A store written before the compressed envelope existed must
        // keep serving cache hits.
        let store = tmp_store("v1_golden");
        let path = store.put(ArtifactKind::GoldenRun, &key(), &7u64).unwrap();
        std::fs::write(
            &path,
            format!(
                r#"{{"format_version":1,"kind":"golden-run","key":"{}","payload":[1,2,3]}}"#,
                key()
            ),
        )
        .unwrap();
        let loaded: Option<Vec<u64>> = store.get(ArtifactKind::GoldenRun, &key()).unwrap();
        assert_eq!(loaded, Some(vec![1, 2, 3]));
    }

    #[test]
    fn corrupt_compressed_payload_degrades_to_miss() {
        let store = tmp_store("corrupt_compressed");
        let path = store
            .put(ArtifactKind::GoldenRun, &key(), &vec![1u64; 64])
            .unwrap();
        std::fs::write(
            &path,
            format!(
                r#"{{"format_version":2,"kind":"golden-run","key":"{}","encoding":"deflate+base64","payload":"!!!not-base64!!!"}}"#,
                key()
            ),
        )
        .unwrap();
        let loaded: Option<Vec<u64>> = store.get(ArtifactKind::GoldenRun, &key()).unwrap();
        assert_eq!(loaded, None);
    }

    #[test]
    fn create_exclusive_has_exactly_one_winner() {
        let dir = std::env::temp_dir().join(format!("ffr_claim_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("claim.json");
        assert!(create_exclusive(&path, "first").unwrap());
        assert!(!create_exclusive(&path, "second").unwrap());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first");

        // Many concurrent claimers: exactly one wins, and the file always
        // holds the complete contents of the winner.
        let path2 = dir.join("contended.json");
        let wins: usize = std::thread::scope(|scope| {
            (0..16)
                .map(|i| {
                    let path2 = &path2;
                    scope.spawn(move || create_exclusive(path2, &format!("w{i}")).unwrap())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| usize::from(h.join().unwrap()))
                .sum()
        });
        assert_eq!(wins, 1);
        let contents = std::fs::read_to_string(&path2).unwrap();
        assert!(contents.starts_with('w'), "complete winner contents");
        // No temp-file litter from the losers.
        let leftovers = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .contains(".tmp")
            })
            .count();
        assert_eq!(leftovers, 0);
    }

    #[test]
    fn gc_sweeps_unique_temp_names() {
        let store = tmp_store("tmp_names");
        store.put(ArtifactKind::Report, &key(), &1u64).unwrap();
        // Simulate a crashed concurrent writer's leftover unique temp.
        let stale = store
            .root()
            .join(ArtifactKind::Report.dir_name())
            .join(format!("{}.json.tmp.4242.7", key()));
        std::fs::write(&stale, "partial").unwrap();
        // The unique name is recognised as a temp file: even an
        // unconditional sweep keeps it inside the grace period (its
        // writer may still be alive) instead of treating it as an
        // expired artifact.
        let report = store.gc(None).unwrap();
        assert_eq!(report.removed, 1, "only the real artifact is swept");
        assert_eq!(report.kept, 1);
        assert!(stale.exists());
    }

    /// A `StoreBackend` with no filesystem at all: artifact bytes in a
    /// shared map. Exercises the trait-object path end to end — what an
    /// object-store/DB backend would implement.
    #[derive(Debug, Default)]
    struct MemBackend {
        files: std::sync::Mutex<std::collections::BTreeMap<(String, String), String>>,
    }

    impl StoreBackend for MemBackend {
        fn describe(&self) -> String {
            "mem".into()
        }
        fn read(&self, dir: &str, file: &str) -> io::Result<Option<String>> {
            Ok(self
                .files
                .lock()
                .unwrap()
                .get(&(dir.into(), file.into()))
                .cloned())
        }
        fn write(&self, dir: &str, file: &str, contents: &str) -> io::Result<PathBuf> {
            self.files
                .lock()
                .unwrap()
                .insert((dir.into(), file.into()), contents.into());
            Ok(PathBuf::from(format!("mem/{dir}/{file}")))
        }
        fn exists(&self, dir: &str, file: &str) -> bool {
            self.files
                .lock()
                .unwrap()
                .contains_key(&(dir.into(), file.into()))
        }
        fn list_dir(&self, dir: &str) -> io::Result<Vec<BackendEntry>> {
            Ok(self
                .files
                .lock()
                .unwrap()
                .iter()
                .filter(|((d, _), _)| d == dir)
                .map(|((_, f), contents)| BackendEntry {
                    file_name: f.clone(),
                    bytes: contents.len() as u64,
                    modified: None,
                })
                .collect())
        }
        fn remove(&self, dir: &str, file: &str) -> io::Result<()> {
            self.files
                .lock()
                .unwrap()
                .remove(&(dir.into(), file.into()));
            Ok(())
        }
    }

    #[test]
    fn in_memory_backend_round_trips_through_the_trait_object() {
        let store = ArtifactStore::with_backend(Arc::new(MemBackend::default()), "mem");
        let data: Vec<u64> = (0..512).map(|i| i * 3).collect();

        // Plain v1 kind and compressed v2 kind both round-trip.
        assert!(!store.contains(ArtifactKind::FdrTable, &key()));
        store.put(ArtifactKind::FdrTable, &key(), &data).unwrap();
        store.put(ArtifactKind::GoldenRun, &key(), &data).unwrap();
        assert!(store.contains(ArtifactKind::FdrTable, &key()));
        let fdr: Option<Vec<u64>> = store.get(ArtifactKind::FdrTable, &key()).unwrap();
        let golden: Option<Vec<u64>> = store.get(ArtifactKind::GoldenRun, &key()).unwrap();
        assert_eq!(fdr, Some(data.clone()));
        assert_eq!(golden, Some(data.clone()));

        // Envelope bytes are identical across backends: the store, not
        // the backend, owns the format.
        let local = tmp_store("backend_parity");
        let local_path = local.put(ArtifactKind::GoldenRun, &key(), &data).unwrap();
        let local_bytes = std::fs::read_to_string(local_path).unwrap();
        let mem_bytes = store
            .backend()
            .read(
                ArtifactKind::GoldenRun.dir_name(),
                &format!("{}.json", key()),
            )
            .unwrap()
            .unwrap();
        assert_eq!(local_bytes, mem_bytes);

        // list + unconditional gc work without real files.
        assert_eq!(store.list().unwrap().len(), 2);
        let report = store.gc(None).unwrap();
        assert_eq!(report.removed, 2);
        assert!(store.list().unwrap().is_empty());
        let miss: Option<Vec<u64>> = store.get(ArtifactKind::FdrTable, &key()).unwrap();
        assert_eq!(miss, None);
    }

    #[test]
    fn store_keys_are_structure_sensitive() {
        use ffr_netlist::NetlistBuilder;
        let build = |width| {
            let mut b = NetlistBuilder::new("k");
            let en = b.input("en", 1);
            let r = b.reg("r", width);
            let next = b.inc(&r.q());
            b.connect_en(&r, &en, &next).unwrap();
            b.output("v", &r.q());
            b.finish().unwrap()
        };
        let a = StoreKey::of(&build(4), "cfg");
        let b = StoreKey::of(&build(4), "cfg");
        let c = StoreKey::of(&build(5), "cfg");
        let d = StoreKey::of(&build(4), "other");
        assert_eq!(a, b);
        assert_ne!(a.netlist, c.netlist);
        assert_eq!(a.netlist, d.netlist);
        assert_ne!(a.config, d.config);
    }
}
