//! The checkpointed campaign runner, generic over work distribution.
//!
//! Injection points (flip-flops for SEU campaigns, combinational nets for
//! SET campaigns) are claimed by worker threads in chunks from a
//! [`WorkSource`] — the in-process work-stealing
//! cursor for `ffr run`/`ffr resume`, or the store-backed
//! [`LeaseQueue`](crate::work::LeaseQueue) for multi-process `ffr worker`
//! draining. Per-point cost varies wildly once adaptive stopping and
//! early convergence exit are in play, so chunks are claimed dynamically
//! rather than split statically. Each worker runs one point's injection
//! plan in 64-injection batches, consulting the [`AdaptivePolicy`] after
//! every batch, and writes progress back into the shared
//! [`CampaignCheckpoint`]; every `checkpoint_every` retirements the
//! checkpoint is flushed through the caller's sink (typically
//! [`CampaignCheckpoint::save`], or per-shard flushes in worker mode).
//!
//! # Determinism
//!
//! A point's injection plan and stopping decisions depend only on
//! `(seed, point, window, policy)` — never on scheduling. The work source
//! decides *who* computes a point, never *what* it computes. Killing the
//! run at any moment and resuming from the last flushed checkpoint — or
//! draining the same campaign with any number of worker processes —
//! therefore produces a final [`FdrTable`](ffr_fault::FdrTable) (or
//! [`SetDeratingTable`](ffr_fault::SetDeratingTable)) bit-identical to an
//! uninterrupted single-process run; the integration tests assert this
//! byte-for-byte for both fault models and both deployment shapes.
//!
//! [`AdaptivePolicy`]: crate::adaptive::AdaptivePolicy

use crate::checkpoint::{CampaignCheckpoint, PointProgress};
use crate::work::{CursorSource, WorkSource};
use ffr_fault::{sample_injection_times, Campaign, CampaignConfig, FailureJudge, FaultKind};
use ffr_sim::Stimulus;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Apply the `FFR_EVAL` evaluation-path override to a campaign config:
/// `frontier` (default), `cone` (static cone, frontier off) or `full`
/// (whole-circuit ablation). Evaluation paths are bit-identical by
/// construction, so the override is a pure performance knob — it is
/// deliberately *not* part of the campaign fingerprint and a checkpoint
/// written under one path resumes under any other.
fn apply_eval_override(config: CampaignConfig) -> CampaignConfig {
    match std::env::var("FFR_EVAL").as_deref() {
        Ok("full") => config.with_cone(false),
        Ok("cone") => config.with_frontier(false),
        Ok("frontier") | Err(_) => config,
        Ok(other) => {
            eprintln!(
                "warning: unknown FFR_EVAL={other:?} (expected full|cone|frontier), using default"
            );
            config
        }
    }
}

/// Cooperative cancellation handle (cloneable; e.g. wired to Ctrl-C).
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A token that has not been cancelled.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation; workers stop at the next batch boundary.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// `true` once cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Runner tuning knobs.
#[derive(Debug, Clone)]
pub struct RunnerOptions {
    /// Worker threads (`None` = available parallelism).
    pub threads: Option<usize>,
    /// Flush the checkpoint after this many point retirements.
    pub checkpoint_every: usize,
    /// Injection points claimed per work-steal (small = better balance,
    /// large = less cursor contention).
    pub steal_chunk: usize,
    /// Self-cancel after retiring this many points in this invocation
    /// (test/CLI hook for simulating a killed run).
    pub stop_after_points: Option<usize>,
    /// Telemetry sink for per-chunk spans, injection counters and
    /// retire-reason counts (disabled by default; never affects results).
    pub recorder: ffr_obs::Recorder,
}

impl Default for RunnerOptions {
    fn default() -> RunnerOptions {
        RunnerOptions {
            threads: None,
            checkpoint_every: 32,
            steal_chunk: 4,
            stop_after_points: None,
            recorder: ffr_obs::Recorder::disabled(),
        }
    }
}

/// How a [`run_resumable`] / [`run_with_source`] invocation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every injection point is retired; the checkpoint holds the full
    /// campaign.
    Complete,
    /// Cancelled (token or `stop_after_points`); the checkpoint holds a
    /// resumable partial campaign.
    Cancelled,
    /// The work source is drained but this process's checkpoint is not
    /// complete: other workers computed (or are publishing) the remaining
    /// points. Only distributed sources produce this — the caller should
    /// merge the on-disk shards to obtain the full campaign.
    Drained,
}

struct Shared<'a, Sink> {
    checkpoint: &'a mut CampaignCheckpoint,
    sink: Sink,
    /// Running count of complete points (kept in sync so per-retirement
    /// progress reporting stays O(1) instead of rescanning the list).
    completed: usize,
    retired_since_flush: usize,
    retired_this_run: usize,
    io_error: Option<io::Error>,
}

impl<Sink: FnMut(&CampaignCheckpoint) -> io::Result<()>> Shared<'_, Sink> {
    fn flush(&mut self) {
        if self.io_error.is_some() {
            return;
        }
        if let Err(e) = (self.sink)(self.checkpoint) {
            self.io_error = Some(e);
        }
        self.retired_since_flush = 0;
    }
}

/// Drive a checkpointed campaign (fresh or resumed) to completion or
/// cancellation, claiming work off the in-process work-stealing cursor.
///
/// `sink` is invoked with the current checkpoint under the progress lock —
/// it must not call back into the runner. `progress` receives
/// `(retired_points, total_points)` after every retirement.
///
/// # Errors
///
/// Propagates the first error the sink reports (workers drain and stop).
///
/// # Panics
///
/// Panics if the checkpoint's injection points do not fit the campaign's
/// circuit.
pub fn run_resumable<S, J>(
    campaign: &Campaign<'_, S, J>,
    checkpoint: &mut CampaignCheckpoint,
    options: &RunnerOptions,
    cancel: &CancelToken,
    sink: impl FnMut(&CampaignCheckpoint) -> io::Result<()> + Send,
    progress: impl Fn(usize, usize) + Sync,
) -> io::Result<RunOutcome>
where
    S: Stimulus + Sync,
    J: FailureJudge,
{
    let source = CursorSource::new(checkpoint, options.steal_chunk);
    run_with_source(
        campaign, checkpoint, &source, options, cancel, sink, progress,
    )
}

/// Drive a checkpointed campaign with an explicit [`WorkSource`] — the
/// generic engine behind [`run_resumable`] (cursor source) and
/// `ffr worker` ([`LeaseQueue`](crate::work::LeaseQueue)).
///
/// Worker threads claim chunks of point indices from `source`, let it
/// [`hydrate`](WorkSource::hydrate) externally persisted progress for the
/// chunk, run each not-yet-retired point's injection plan, and notify the
/// source via [`chunk_done`](WorkSource::chunk_done) once the whole chunk
/// is retired. `sink` flushes the checkpoint every `checkpoint_every`
/// retirements and once at the end.
///
/// # Errors
///
/// Propagates the first error the sink or the work source reports. On any
/// error the cancel token is triggered so blocking sources (a lease queue
/// polling for other workers) unwind promptly.
///
/// # Panics
///
/// Panics if the checkpoint's injection points do not fit the campaign's
/// circuit.
pub fn run_with_source<S, J, W>(
    campaign: &Campaign<'_, S, J>,
    checkpoint: &mut CampaignCheckpoint,
    source: &W,
    options: &RunnerOptions,
    cancel: &CancelToken,
    sink: impl FnMut(&CampaignCheckpoint) -> io::Result<()> + Send,
    progress: impl Fn(usize, usize) + Sync,
) -> io::Result<RunOutcome>
where
    S: Stimulus + Sync,
    J: FailureJudge,
    W: WorkSource,
{
    // Budgeted campaigns cover a point subset, so the guard is on point
    // ids fitting the circuit, not on an exact count match.
    match checkpoint.params.fault {
        FaultKind::Seu => assert!(
            checkpoint
                .points
                .iter()
                .all(|p| (p.point as usize) < campaign.circuit().num_ffs()),
            "SEU checkpoint targets flip-flops beyond this circuit"
        ),
        FaultKind::Set => assert!(
            checkpoint
                .points
                .iter()
                .all(|p| (p.point as usize) < campaign.circuit().netlist().num_nets()),
            "SET checkpoint targets nets beyond this circuit"
        ),
    }
    let params = checkpoint.params.clone();
    let policy = params.policy.clone();
    let config = apply_eval_override(
        CampaignConfig::new(params.window_start..params.window_end)
            .with_injections(policy.max_injections)
            .with_seed(params.seed),
    );

    let total = checkpoint.num_points;
    if checkpoint.is_complete() {
        return Ok(RunOutcome::Complete);
    }

    let threads = options
        .threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .clamp(1, source.parallelism_hint());
    let shared = Mutex::new(Shared {
        completed: checkpoint.completed_points(),
        checkpoint: &mut *checkpoint,
        sink,
        retired_since_flush: 0,
        retired_this_run: 0,
        io_error: None,
    });
    // Record an error and wake everything up: blocking sources poll the
    // cancel token, so a sink/source failure must trip it to unwind.
    let fail = |guard: &mut Shared<'_, _>, e: io::Error| {
        if guard.io_error.is_none() {
            guard.io_error = Some(e);
        }
        cancel.cancel();
    };

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // Simulation buffers are allocated once per worker thread
                // and reused across every point and batch it processes.
                let mut scratch = campaign.point_scratch();
                loop {
                    if cancel.is_cancelled() {
                        return;
                    }
                    let chunk = match source.claim() {
                        Ok(c) => c,
                        Err(e) => {
                            fail(&mut shared.lock().expect("progress lock poisoned"), e);
                            return;
                        }
                    };
                    if chunk.is_empty() {
                        return;
                    }
                    // One span per claimed chunk: the `range.run` records are
                    // what `ffr stats` sums into injections/sec. Disabled
                    // recorders skip the clock entirely.
                    let mut range_span = options.recorder.span("range.run");
                    let mut chunk_injections = 0u64;
                    {
                        // Overlay externally persisted progress (another
                        // worker's shard) before touching the chunk.
                        let mut guard = shared.lock().expect("progress lock poisoned");
                        if guard.io_error.is_some() {
                            return;
                        }
                        let complete_in = |cp: &CampaignCheckpoint| {
                            chunk.iter().filter(|&&i| cp.points[i].complete).count()
                        };
                        let before = complete_in(guard.checkpoint);
                        if let Err(e) = source.hydrate(&chunk, guard.checkpoint) {
                            fail(&mut guard, e);
                            return;
                        }
                        guard.completed += complete_in(guard.checkpoint) - before;
                    }
                    let mut chunk_retired = true;
                    for &point_index in &chunk {
                        if cancel.is_cancelled() {
                            chunk_retired = false;
                            break;
                        }
                        // Snapshot this point's progress. Only one worker of
                        // this process ever touches a given point (the source
                        // hands out disjoint chunks), so the snapshot cannot
                        // go stale.
                        let (mut record, point): (PointProgress, _) = {
                            let guard = shared.lock().expect("progress lock poisoned");
                            if guard.io_error.is_some() {
                                return;
                            }
                            (
                                guard.checkpoint.points[point_index].clone(),
                                guard.checkpoint.point(point_index),
                            )
                        };
                        if record.complete {
                            // Already retired (hydrated from another worker's
                            // shard): nothing to compute.
                            continue;
                        }
                        let injections_before = record.injections_done;
                        let times = sample_injection_times(
                            params.seed,
                            point.stream(),
                            params.window_start..params.window_end,
                            policy.max_injections,
                        );
                        // Fan-out cone compiled once per point; every batch of
                        // this point reuses it (and the thread's scratch).
                        let mut point_runner = campaign.point_runner(point);
                        options.recorder.count("cone.points", 1);
                        options
                            .recorder
                            .count("cone.ops", point_runner.cone_ops() as u64);
                        options
                            .recorder
                            .count("cone.ffs", point_runner.cone_ffs() as u64);
                        options.recorder.count(
                            "cone.boundary_nets",
                            point_runner.cone_boundary_nets() as u64,
                        );
                        while !policy.is_settled(record.failures(), record.injections_done) {
                            if cancel.is_cancelled() {
                                break;
                            }
                            let batch = policy.next_batch(record.injections_done);
                            if batch == 0 {
                                break;
                            }
                            let slice =
                                &times[record.injections_done..record.injections_done + batch];
                            let counts = campaign.run_point_times_with(
                                &mut point_runner,
                                &mut scratch,
                                slice,
                                &config,
                            );
                            record.absorb(&counts, batch);
                        }
                        options
                            .recorder
                            .count("cone.cycles_saved", point_runner.cycles_saved());
                        options.recorder.count(
                            "frontier.ops_evaluated",
                            point_runner.frontier_ops_evaluated(),
                        );
                        options
                            .recorder
                            .count("frontier.ops_skipped", point_runner.frontier_ops_skipped());
                        options
                            .recorder
                            .count("frontier.peak", point_runner.frontier_peak() as u64);
                        record.complete =
                            policy.is_settled(record.failures(), record.injections_done);

                        let injection_delta = (record.injections_done - injections_before) as u64;
                        chunk_injections += injection_delta;
                        options.recorder.count("injections", injection_delta);
                        if record.complete {
                            // Retire-reason split: did the adaptive policy stop
                            // early, or did the point exhaust its budget?
                            if record.injections_done >= policy.max_injections {
                                options.recorder.count("retire.max_injections", 1);
                            } else {
                                options.recorder.count("retire.early_settled", 1);
                            }
                        }

                        // Publish progress; flush and report on retirement.
                        let mut guard = shared.lock().expect("progress lock poisoned");
                        let retired = record.complete;
                        guard.checkpoint.points[point_index] = record;
                        if retired {
                            guard.retired_since_flush += 1;
                            guard.retired_this_run += 1;
                            guard.completed += 1;
                            progress(guard.completed, total);
                            if guard.retired_since_flush >= options.checkpoint_every {
                                guard.flush();
                            }
                            if let Some(limit) = options.stop_after_points {
                                if guard.retired_this_run >= limit {
                                    cancel.cancel();
                                }
                            }
                        } else {
                            chunk_retired = false;
                            // Partial progress only happens on cancellation;
                            // make sure it reaches disk.
                            guard.flush();
                        }
                        if let Some(e) = guard.io_error.take() {
                            fail(&mut guard, e);
                            return;
                        }
                    }
                    range_span.field("points", chunk.len());
                    range_span.field("injections", chunk_injections);
                    range_span.field("retired", chunk_retired);
                    drop(range_span);
                    if chunk_retired {
                        let mut guard = shared.lock().expect("progress lock poisoned");
                        if let Err(e) = source.chunk_done(&chunk, guard.checkpoint) {
                            fail(&mut guard, e);
                            return;
                        }
                    }
                }
            });
        }
    });

    let mut shared = shared.into_inner().expect("progress lock poisoned");
    // Final flush: persist the terminal state (complete, cancelled or
    // drained).
    shared.flush();
    if let Some(e) = shared.io_error {
        return Err(e);
    }
    Ok(if shared.checkpoint.is_complete() {
        RunOutcome::Complete
    } else if cancel.is_cancelled() {
        RunOutcome::Cancelled
    } else {
        RunOutcome::Drained
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::AdaptivePolicy;
    use crate::checkpoint::CheckpointParams;
    use ffr_circuits::small;
    use ffr_fault::OutputMismatchJudge;
    use ffr_sim::{CompiledCircuit, InputFrame, WatchList};

    struct AlwaysOn;

    impl Stimulus for AlwaysOn {
        fn num_cycles(&self) -> u64 {
            150
        }

        fn drive(&self, _cycle: u64, frame: &mut InputFrame) {
            frame.set(0, true);
        }
    }

    fn checkpoint_for(cc: &CompiledCircuit, policy: AdaptivePolicy) -> CampaignCheckpoint {
        CampaignCheckpoint::fresh_seu(
            "test".into(),
            CheckpointParams {
                fault: FaultKind::Seu,
                seed: 11,
                window_start: 10,
                window_end: 120,
                policy,
            },
            cc.num_ffs(),
        )
    }

    fn set_checkpoint_for(cc: &CompiledCircuit, policy: AdaptivePolicy) -> CampaignCheckpoint {
        CampaignCheckpoint::fresh_set(
            "test".into(),
            CheckpointParams {
                fault: FaultKind::Set,
                seed: 11,
                window_start: 10,
                window_end: 120,
                policy,
            },
            &cc.comb_output_nets(),
        )
    }

    #[test]
    fn complete_run_matches_classic_campaign() {
        // A fixed-budget resumable run must reproduce Campaign::run
        // exactly (same plans, same tallies).
        let cc = CompiledCircuit::compile(small::lfsr_pipeline(4, 2)).unwrap();
        let watch = WatchList::all(&cc);
        let judge = OutputMismatchJudge::new();
        let campaign = Campaign::new(&cc, &AlwaysOn, &watch, &judge);

        let mut cp = checkpoint_for(&cc, AdaptivePolicy::fixed(128));
        let outcome = run_resumable(
            &campaign,
            &mut cp,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_| Ok(()),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(outcome, RunOutcome::Complete);
        let resumable = cp.to_fdr_table();

        let classic = campaign.run(
            &CampaignConfig::new(10..120)
                .with_injections(128)
                .with_seed(11),
        );
        for (ff, _) in cc.netlist().ffs() {
            assert_eq!(resumable.fdr(ff), classic.fdr(ff));
            assert_eq!(
                resumable.result(ff).unwrap().failures(),
                classic.result(ff).unwrap().failures()
            );
        }
    }

    #[test]
    fn cancelled_run_resumes_to_identical_table() {
        let cc = CompiledCircuit::compile(small::alu_circuit(4)).unwrap();
        let watch = WatchList::all(&cc);
        let judge = OutputMismatchJudge::new();
        let campaign = Campaign::new(&cc, &AlwaysOn, &watch, &judge);
        let policy = AdaptivePolicy::adaptive(64, 256, 0.05);

        // Uninterrupted reference.
        let mut reference = checkpoint_for(&cc, policy.clone());
        run_resumable(
            &campaign,
            &mut reference,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_| Ok(()),
            |_, _| {},
        )
        .unwrap();

        // Killed after 3 retirements, then resumed.
        let mut cp = checkpoint_for(&cc, policy);
        let outcome = run_resumable(
            &campaign,
            &mut cp,
            &RunnerOptions {
                stop_after_points: Some(3),
                threads: Some(2),
                ..RunnerOptions::default()
            },
            &CancelToken::new(),
            |_| Ok(()),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(outcome, RunOutcome::Cancelled);
        assert!(cp.completed_points() >= 3);
        assert!(!cp.is_complete());

        let outcome = run_resumable(
            &campaign,
            &mut cp,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_| Ok(()),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(outcome, RunOutcome::Complete);
        assert_eq!(cp, reference, "resume must be bit-identical");
    }

    #[test]
    fn set_campaign_runs_resumable_and_matches_one_shot() {
        // The unified runner must reproduce the one-shot SET campaign
        // exactly, and a cancelled SET run must resume bit-identically.
        let cc = CompiledCircuit::compile(small::counter_circuit(5)).unwrap();
        let watch = WatchList::all(&cc);
        let judge = OutputMismatchJudge::new();
        let campaign = Campaign::new(&cc, &AlwaysOn, &watch, &judge);
        let policy = AdaptivePolicy::fixed(96);

        let mut reference = set_checkpoint_for(&cc, policy.clone());
        let outcome = run_resumable(
            &campaign,
            &mut reference,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_| Ok(()),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(outcome, RunOutcome::Complete);
        let resumable = reference.to_set_table();

        // One-shot engine on the same nets, same seed/window.
        let config = ffr_fault::CampaignConfig::new(10..120)
            .with_injections(96)
            .with_seed(11);
        let one_shot = campaign.run_set_parallel(&cc.comb_output_nets(), &config, |_, _| {});
        assert_eq!(resumable, one_shot);

        // Kill after 2 retirements, resume, compare checkpoints.
        let mut cp = set_checkpoint_for(&cc, policy);
        let outcome = run_resumable(
            &campaign,
            &mut cp,
            &RunnerOptions {
                stop_after_points: Some(2),
                threads: Some(2),
                ..RunnerOptions::default()
            },
            &CancelToken::new(),
            |_| Ok(()),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(outcome, RunOutcome::Cancelled);
        run_resumable(
            &campaign,
            &mut cp,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_| Ok(()),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(cp, reference, "SET resume must be bit-identical");
    }

    #[test]
    fn adaptive_policy_spends_fewer_injections() {
        let cc = CompiledCircuit::compile(small::traffic_light()).unwrap();
        let watch = WatchList::all(&cc);
        let judge = OutputMismatchJudge::new();
        let campaign = Campaign::new(&cc, &AlwaysOn, &watch, &judge);

        let mut fixed = checkpoint_for(&cc, AdaptivePolicy::fixed(256));
        run_resumable(
            &campaign,
            &mut fixed,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_| Ok(()),
            |_, _| {},
        )
        .unwrap();

        let mut adaptive = checkpoint_for(&cc, AdaptivePolicy::adaptive(64, 256, 0.06));
        run_resumable(
            &campaign,
            &mut adaptive,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_| Ok(()),
            |_, _| {},
        )
        .unwrap();

        assert!(adaptive.total_injections() < fixed.total_injections());
        // Settled flip-flops agree on the paper's binary split: a fully
        // benign FF under one policy is fully benign under the other.
        let tf = fixed.to_fdr_table();
        let ta = adaptive.to_fdr_table();
        for (ff, _) in cc.netlist().ffs() {
            let f = tf.fdr(ff).unwrap();
            let a = ta.fdr(ff).unwrap();
            assert!(
                (f - a).abs() < 0.15,
                "{}: fixed {f} vs adaptive {a}",
                cc.netlist().ff_name(ff)
            );
        }
    }

    #[test]
    fn sink_errors_propagate() {
        let cc = CompiledCircuit::compile(small::counter_circuit(4)).unwrap();
        let watch = WatchList::all(&cc);
        let judge = OutputMismatchJudge::new();
        let campaign = Campaign::new(&cc, &AlwaysOn, &watch, &judge);
        let mut cp = checkpoint_for(&cc, AdaptivePolicy::fixed(64));
        let err = run_resumable(
            &campaign,
            &mut cp,
            &RunnerOptions {
                checkpoint_every: 1,
                ..RunnerOptions::default()
            },
            &CancelToken::new(),
            |_| Err(io::Error::other("disk full")),
            |_, _| {},
        )
        .unwrap_err();
        assert!(err.to_string().contains("disk full"));
    }
}
