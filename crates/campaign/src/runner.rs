//! The checkpointed, work-stealing campaign runner.
//!
//! Injection points (flip-flops for SEU campaigns, combinational nets for
//! SET campaigns) are claimed by worker threads in small chunks off a
//! shared atomic cursor (work stealing) rather than split statically:
//! per-point cost varies wildly once adaptive stopping and early
//! convergence exit are in play, and a static split would leave workers
//! idle behind the unlucky one. Each worker runs one point's injection
//! plan in 64-injection batches, consulting the [`AdaptivePolicy`] after
//! every batch, and writes progress back into the shared
//! [`CampaignCheckpoint`]; every `checkpoint_every` retirements the
//! checkpoint is flushed through the caller's sink (typically
//! [`CampaignCheckpoint::save`]).
//!
//! # Determinism
//!
//! A point's injection plan and stopping decisions depend only on
//! `(seed, point, window, policy)` — never on scheduling. Killing the run
//! at any point and resuming from the last flushed checkpoint therefore
//! produces a final [`FdrTable`](ffr_fault::FdrTable) (or
//! [`SetDeratingTable`](ffr_fault::SetDeratingTable)) bit-identical to an
//! uninterrupted run; the integration tests assert this byte-for-byte for
//! both fault models.
//!
//! [`AdaptivePolicy`]: crate::adaptive::AdaptivePolicy

use crate::checkpoint::{CampaignCheckpoint, PointProgress};
use ffr_fault::{sample_injection_times, Campaign, CampaignConfig, FailureJudge, FaultKind};
use ffr_sim::Stimulus;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Cooperative cancellation handle (cloneable; e.g. wired to Ctrl-C).
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A token that has not been cancelled.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation; workers stop at the next batch boundary.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// `true` once cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Runner tuning knobs.
#[derive(Debug, Clone)]
pub struct RunnerOptions {
    /// Worker threads (`None` = available parallelism).
    pub threads: Option<usize>,
    /// Flush the checkpoint after this many point retirements.
    pub checkpoint_every: usize,
    /// Injection points claimed per work-steal (small = better balance,
    /// large = less cursor contention).
    pub steal_chunk: usize,
    /// Self-cancel after retiring this many points in this invocation
    /// (test/CLI hook for simulating a killed run).
    pub stop_after_points: Option<usize>,
}

impl Default for RunnerOptions {
    fn default() -> RunnerOptions {
        RunnerOptions {
            threads: None,
            checkpoint_every: 32,
            steal_chunk: 4,
            stop_after_points: None,
        }
    }
}

/// How a [`run_resumable`] invocation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every injection point is retired; the checkpoint holds the full
    /// campaign.
    Complete,
    /// Cancelled (token or `stop_after_points`); the checkpoint holds a
    /// resumable partial campaign.
    Cancelled,
}

struct Shared<'a, Sink> {
    checkpoint: &'a mut CampaignCheckpoint,
    sink: Sink,
    retired_since_flush: usize,
    retired_this_run: usize,
    io_error: Option<io::Error>,
}

impl<Sink: FnMut(&CampaignCheckpoint) -> io::Result<()>> Shared<'_, Sink> {
    fn flush(&mut self) {
        if self.io_error.is_some() {
            return;
        }
        if let Err(e) = (self.sink)(self.checkpoint) {
            self.io_error = Some(e);
        }
        self.retired_since_flush = 0;
    }
}

/// Drive a checkpointed campaign (fresh or resumed) to completion or
/// cancellation.
///
/// `sink` is invoked with the current checkpoint under the progress lock —
/// it must not call back into the runner. `progress` receives
/// `(retired_ffs, total_ffs)` after every retirement.
///
/// # Errors
///
/// Propagates the first error the sink reports (workers drain and stop).
///
/// # Panics
///
/// Panics if the checkpoint's injection points do not fit the campaign's
/// circuit.
pub fn run_resumable<S, J>(
    campaign: &Campaign<'_, S, J>,
    checkpoint: &mut CampaignCheckpoint,
    options: &RunnerOptions,
    cancel: &CancelToken,
    sink: impl FnMut(&CampaignCheckpoint) -> io::Result<()> + Send,
    progress: impl Fn(usize, usize) + Sync,
) -> io::Result<RunOutcome>
where
    S: Stimulus + Sync,
    J: FailureJudge,
{
    // Budgeted campaigns cover a point subset, so the guard is on point
    // ids fitting the circuit, not on an exact count match.
    match checkpoint.params.fault {
        FaultKind::Seu => assert!(
            checkpoint
                .points
                .iter()
                .all(|p| (p.point as usize) < campaign.circuit().num_ffs()),
            "SEU checkpoint targets flip-flops beyond this circuit"
        ),
        FaultKind::Set => assert!(
            checkpoint
                .points
                .iter()
                .all(|p| (p.point as usize) < campaign.circuit().netlist().num_nets()),
            "SET checkpoint targets nets beyond this circuit"
        ),
    }
    let params = checkpoint.params.clone();
    let policy = params.policy.clone();
    let config = CampaignConfig::new(params.window_start..params.window_end)
        .with_injections(policy.max_injections)
        .with_seed(params.seed);

    // Work list: indices of injection points not yet retired.
    let pending: Vec<usize> = checkpoint
        .points
        .iter()
        .enumerate()
        .filter(|(_, p)| !p.complete)
        .map(|(i, _)| i)
        .collect();
    let total = checkpoint.num_points;
    let already_retired = total - pending.len();
    if pending.is_empty() {
        return Ok(RunOutcome::Complete);
    }

    let threads = options
        .threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .clamp(1, pending.len());
    let steal_chunk = options.steal_chunk.max(1);
    let cursor = AtomicUsize::new(0);
    let shared = Mutex::new(Shared {
        checkpoint: &mut *checkpoint,
        sink,
        retired_since_flush: 0,
        retired_this_run: 0,
        io_error: None,
    });

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                if cancel.is_cancelled() {
                    return;
                }
                let start = cursor.fetch_add(steal_chunk, Ordering::Relaxed);
                if start >= pending.len() {
                    return;
                }
                let claimed = &pending[start..(start + steal_chunk).min(pending.len())];
                for &point_index in claimed {
                    if cancel.is_cancelled() {
                        return;
                    }
                    // Snapshot this point's progress. Only one worker ever
                    // touches a given point (the cursor hands out disjoint
                    // ranges), so the snapshot cannot go stale.
                    let (mut record, point): (PointProgress, _) = {
                        let guard = shared.lock().expect("progress lock poisoned");
                        if guard.io_error.is_some() {
                            return;
                        }
                        (
                            guard.checkpoint.points[point_index].clone(),
                            guard.checkpoint.point(point_index),
                        )
                    };
                    let times = sample_injection_times(
                        params.seed,
                        point.stream(),
                        params.window_start..params.window_end,
                        policy.max_injections,
                    );
                    while !policy.is_settled(record.failures(), record.injections_done) {
                        if cancel.is_cancelled() {
                            break;
                        }
                        let batch = policy.next_batch(record.injections_done);
                        if batch == 0 {
                            break;
                        }
                        let slice = &times[record.injections_done..record.injections_done + batch];
                        let counts = campaign.run_point_times(point, slice, &config);
                        record.absorb(&counts, batch);
                    }
                    record.complete = policy.is_settled(record.failures(), record.injections_done);

                    // Publish progress; flush and report on retirement.
                    let mut guard = shared.lock().expect("progress lock poisoned");
                    let retired = record.complete;
                    guard.checkpoint.points[point_index] = record;
                    if retired {
                        guard.retired_since_flush += 1;
                        guard.retired_this_run += 1;
                        progress(already_retired + guard.retired_this_run, total);
                        if guard.retired_since_flush >= options.checkpoint_every {
                            guard.flush();
                        }
                        if let Some(limit) = options.stop_after_points {
                            if guard.retired_this_run >= limit {
                                cancel.cancel();
                            }
                        }
                    } else {
                        // Partial progress only happens on cancellation;
                        // make sure it reaches disk.
                        guard.flush();
                    }
                    if guard.io_error.is_some() {
                        return;
                    }
                }
            });
        }
    });

    let mut shared = shared.into_inner().expect("progress lock poisoned");
    // Final flush: persist the terminal state (complete or cancelled).
    shared.flush();
    if let Some(e) = shared.io_error {
        return Err(e);
    }
    Ok(if shared.checkpoint.is_complete() {
        RunOutcome::Complete
    } else {
        RunOutcome::Cancelled
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::AdaptivePolicy;
    use crate::checkpoint::CheckpointParams;
    use ffr_circuits::small;
    use ffr_fault::OutputMismatchJudge;
    use ffr_sim::{CompiledCircuit, InputFrame, WatchList};

    struct AlwaysOn;

    impl Stimulus for AlwaysOn {
        fn num_cycles(&self) -> u64 {
            150
        }

        fn drive(&self, _cycle: u64, frame: &mut InputFrame) {
            frame.set(0, true);
        }
    }

    fn checkpoint_for(cc: &CompiledCircuit, policy: AdaptivePolicy) -> CampaignCheckpoint {
        CampaignCheckpoint::fresh_seu(
            "test".into(),
            CheckpointParams {
                fault: FaultKind::Seu,
                seed: 11,
                window_start: 10,
                window_end: 120,
                policy,
            },
            cc.num_ffs(),
        )
    }

    fn set_checkpoint_for(cc: &CompiledCircuit, policy: AdaptivePolicy) -> CampaignCheckpoint {
        CampaignCheckpoint::fresh_set(
            "test".into(),
            CheckpointParams {
                fault: FaultKind::Set,
                seed: 11,
                window_start: 10,
                window_end: 120,
                policy,
            },
            &cc.comb_output_nets(),
        )
    }

    #[test]
    fn complete_run_matches_classic_campaign() {
        // A fixed-budget resumable run must reproduce Campaign::run
        // exactly (same plans, same tallies).
        let cc = CompiledCircuit::compile(small::lfsr_pipeline(4, 2)).unwrap();
        let watch = WatchList::all(&cc);
        let judge = OutputMismatchJudge::new();
        let campaign = Campaign::new(&cc, &AlwaysOn, &watch, &judge);

        let mut cp = checkpoint_for(&cc, AdaptivePolicy::fixed(128));
        let outcome = run_resumable(
            &campaign,
            &mut cp,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_| Ok(()),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(outcome, RunOutcome::Complete);
        let resumable = cp.to_fdr_table();

        let classic = campaign.run(
            &CampaignConfig::new(10..120)
                .with_injections(128)
                .with_seed(11),
        );
        for (ff, _) in cc.netlist().ffs() {
            assert_eq!(resumable.fdr(ff), classic.fdr(ff));
            assert_eq!(
                resumable.result(ff).unwrap().failures(),
                classic.result(ff).unwrap().failures()
            );
        }
    }

    #[test]
    fn cancelled_run_resumes_to_identical_table() {
        let cc = CompiledCircuit::compile(small::alu_circuit(4)).unwrap();
        let watch = WatchList::all(&cc);
        let judge = OutputMismatchJudge::new();
        let campaign = Campaign::new(&cc, &AlwaysOn, &watch, &judge);
        let policy = AdaptivePolicy::adaptive(64, 256, 0.05);

        // Uninterrupted reference.
        let mut reference = checkpoint_for(&cc, policy.clone());
        run_resumable(
            &campaign,
            &mut reference,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_| Ok(()),
            |_, _| {},
        )
        .unwrap();

        // Killed after 3 retirements, then resumed.
        let mut cp = checkpoint_for(&cc, policy);
        let outcome = run_resumable(
            &campaign,
            &mut cp,
            &RunnerOptions {
                stop_after_points: Some(3),
                threads: Some(2),
                ..RunnerOptions::default()
            },
            &CancelToken::new(),
            |_| Ok(()),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(outcome, RunOutcome::Cancelled);
        assert!(cp.completed_points() >= 3);
        assert!(!cp.is_complete());

        let outcome = run_resumable(
            &campaign,
            &mut cp,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_| Ok(()),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(outcome, RunOutcome::Complete);
        assert_eq!(cp, reference, "resume must be bit-identical");
    }

    #[test]
    fn set_campaign_runs_resumable_and_matches_one_shot() {
        // The unified runner must reproduce the one-shot SET campaign
        // exactly, and a cancelled SET run must resume bit-identically.
        let cc = CompiledCircuit::compile(small::counter_circuit(5)).unwrap();
        let watch = WatchList::all(&cc);
        let judge = OutputMismatchJudge::new();
        let campaign = Campaign::new(&cc, &AlwaysOn, &watch, &judge);
        let policy = AdaptivePolicy::fixed(96);

        let mut reference = set_checkpoint_for(&cc, policy.clone());
        let outcome = run_resumable(
            &campaign,
            &mut reference,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_| Ok(()),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(outcome, RunOutcome::Complete);
        let resumable = reference.to_set_table();

        // One-shot engine on the same nets, same seed/window.
        let config = ffr_fault::CampaignConfig::new(10..120)
            .with_injections(96)
            .with_seed(11);
        let one_shot = campaign.run_set_parallel(&cc.comb_output_nets(), &config, |_, _| {});
        assert_eq!(resumable, one_shot);

        // Kill after 2 retirements, resume, compare checkpoints.
        let mut cp = set_checkpoint_for(&cc, policy);
        let outcome = run_resumable(
            &campaign,
            &mut cp,
            &RunnerOptions {
                stop_after_points: Some(2),
                threads: Some(2),
                ..RunnerOptions::default()
            },
            &CancelToken::new(),
            |_| Ok(()),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(outcome, RunOutcome::Cancelled);
        run_resumable(
            &campaign,
            &mut cp,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_| Ok(()),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(cp, reference, "SET resume must be bit-identical");
    }

    #[test]
    fn adaptive_policy_spends_fewer_injections() {
        let cc = CompiledCircuit::compile(small::traffic_light()).unwrap();
        let watch = WatchList::all(&cc);
        let judge = OutputMismatchJudge::new();
        let campaign = Campaign::new(&cc, &AlwaysOn, &watch, &judge);

        let mut fixed = checkpoint_for(&cc, AdaptivePolicy::fixed(256));
        run_resumable(
            &campaign,
            &mut fixed,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_| Ok(()),
            |_, _| {},
        )
        .unwrap();

        let mut adaptive = checkpoint_for(&cc, AdaptivePolicy::adaptive(64, 256, 0.06));
        run_resumable(
            &campaign,
            &mut adaptive,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_| Ok(()),
            |_, _| {},
        )
        .unwrap();

        assert!(adaptive.total_injections() < fixed.total_injections());
        // Settled flip-flops agree on the paper's binary split: a fully
        // benign FF under one policy is fully benign under the other.
        let tf = fixed.to_fdr_table();
        let ta = adaptive.to_fdr_table();
        for (ff, _) in cc.netlist().ffs() {
            let f = tf.fdr(ff).unwrap();
            let a = ta.fdr(ff).unwrap();
            assert!(
                (f - a).abs() < 0.15,
                "{}: fixed {f} vs adaptive {a}",
                cc.netlist().ff_name(ff)
            );
        }
    }

    #[test]
    fn sink_errors_propagate() {
        let cc = CompiledCircuit::compile(small::counter_circuit(4)).unwrap();
        let watch = WatchList::all(&cc);
        let judge = OutputMismatchJudge::new();
        let campaign = Campaign::new(&cc, &AlwaysOn, &watch, &judge);
        let mut cp = checkpoint_for(&cc, AdaptivePolicy::fixed(64));
        let err = run_resumable(
            &campaign,
            &mut cp,
            &RunnerOptions {
                checkpoint_every: 1,
                ..RunnerOptions::default()
            },
            &CancelToken::new(),
            |_| Err(io::Error::other("disk full")),
            |_, _| {},
        )
        .unwrap_err();
        assert!(err.to_string().contains("disk full"));
    }
}
