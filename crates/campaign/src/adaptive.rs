//! Adaptive statistical early-stopping for per-flip-flop campaigns.
//!
//! The paper injects a fixed 170 SEUs into every flip-flop. Most
//! flip-flops do not need that many: a register whose first 64 injections
//! are all benign already has a Wilson 95 % upper bound under 6 % on its
//! FDR, and a register that always fails is pinned just as quickly. The
//! [`AdaptivePolicy`] retires a flip-flop as soon as the Wilson confidence
//! interval on its FDR is tighter than a target half-width, capping the
//! spend at `max_injections` — the same confidence-driven reasoning as
//! Leveugle et al.'s campaign-sizing formula, applied per flip-flop and
//! online.
//!
//! The decision is a pure function of the accumulated tallies, so it is
//! checkpoint-safe: a resumed campaign retires exactly the same flip-flops
//! after exactly the same injections as an uninterrupted one.

use ffr_fault::wilson_interval;
use serde::{Deserialize, Serialize};

/// Injections simulated per decision step (one bit-parallel batch).
pub const CHUNK_INJECTIONS: usize = 64;

/// When to stop injecting into a flip-flop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptivePolicy {
    /// Never stop before this many injections (0 disables the floor).
    pub min_injections: usize,
    /// Hard cap on injections per flip-flop.
    pub max_injections: usize,
    /// Normal quantile of the confidence interval (1.96 ≙ 95 %).
    pub z: f64,
    /// Retire once the Wilson interval half-width is at or below this
    /// (`None` disables adaptive stopping: always run to the cap).
    pub ci_half_width: Option<f64>,
}

impl AdaptivePolicy {
    /// Fixed-budget policy: always `n` injections, no early stopping
    /// (paper-faithful mode).
    pub fn fixed(n: usize) -> AdaptivePolicy {
        AdaptivePolicy {
            min_injections: n,
            max_injections: n,
            z: 1.96,
            ci_half_width: None,
        }
    }

    /// Adaptive policy: between `min` and `max` injections, stopping once
    /// the 95 % Wilson half-width reaches `half_width`.
    pub fn adaptive(min: usize, max: usize, half_width: f64) -> AdaptivePolicy {
        assert!(min <= max, "min_injections must not exceed max_injections");
        assert!(
            half_width > 0.0 && half_width < 0.5,
            "half-width in (0, 0.5)"
        );
        AdaptivePolicy {
            min_injections: min,
            max_injections: max,
            z: 1.96,
            ci_half_width: Some(half_width),
        }
    }

    /// `true` once a flip-flop with `failures` out of `injections` should
    /// be retired.
    pub fn is_settled(&self, failures: usize, injections: usize) -> bool {
        if injections >= self.max_injections {
            return true;
        }
        if injections < self.min_injections || injections == 0 {
            return false;
        }
        match self.ci_half_width {
            None => false,
            Some(target) => {
                let (lo, hi) = wilson_interval(failures, injections, self.z);
                (hi - lo) / 2.0 <= target
            }
        }
    }

    /// Size of the next injection batch for a flip-flop that has already
    /// executed `injections_done` (0 when the plan is exhausted).
    pub fn next_batch(&self, injections_done: usize) -> usize {
        self.max_injections
            .saturating_sub(injections_done)
            .min(CHUNK_INJECTIONS)
    }

    /// Short human-readable description (for status output and store keys).
    pub fn describe(&self) -> String {
        match self.ci_half_width {
            None => format!("fixed:{}", self.max_injections),
            Some(w) => format!(
                "adaptive:min={},max={},z={},hw={}",
                self.min_injections, self.max_injections, self.z, w
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_policy_runs_to_cap() {
        let p = AdaptivePolicy::fixed(170);
        assert!(!p.is_settled(0, 64));
        assert!(!p.is_settled(0, 128));
        assert!(p.is_settled(3, 170));
        assert_eq!(p.next_batch(0), 64);
        assert_eq!(p.next_batch(128), 42);
        assert_eq!(p.next_batch(170), 0);
    }

    #[test]
    fn adaptive_policy_retires_extremes_early() {
        let p = AdaptivePolicy::adaptive(64, 1024, 0.06);
        // All-benign after 64: Wilson 95 % interval ≈ [0, 0.057] → settled.
        assert!(p.is_settled(0, 64));
        // All-failing is symmetric.
        assert!(p.is_settled(64, 64));
        // A mid-range FDR at 64 injections is still wide open.
        assert!(!p.is_settled(32, 64));
        // But the cap always ends it.
        assert!(p.is_settled(512, 1024));
    }

    #[test]
    fn min_floor_blocks_early_retirement() {
        let p = AdaptivePolicy::adaptive(128, 256, 0.06);
        assert!(!p.is_settled(0, 64), "below the floor");
        assert!(p.is_settled(0, 128));
    }

    #[test]
    fn settled_is_monotone_enough_for_resume() {
        // The exact decision sequence a runner takes: after each chunk,
        // is_settled with the accumulated tallies. Replaying the same
        // tallies gives the same decisions — trivially true because the
        // function is pure; this test pins it against regression.
        let p = AdaptivePolicy::adaptive(64, 192, 0.05);
        let history = [(2usize, 64usize), (5, 128), (7, 192)];
        let first: Vec<bool> = history.iter().map(|&(f, n)| p.is_settled(f, n)).collect();
        let second: Vec<bool> = history.iter().map(|&(f, n)| p.is_settled(f, n)).collect();
        assert_eq!(first, second);
        assert!(first[2], "cap reached");
    }
}
