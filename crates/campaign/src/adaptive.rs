//! Adaptive statistical early-stopping for per-flip-flop campaigns.
//!
//! The paper injects a fixed 170 SEUs into every flip-flop. Most
//! flip-flops do not need that many: a register whose first 64 injections
//! are all benign already has a Wilson 95 % upper bound under 6 % on its
//! FDR, and a register that always fails is pinned just as quickly. The
//! [`AdaptivePolicy`] retires a flip-flop as soon as the Wilson confidence
//! interval on its FDR is tighter than a target half-width, capping the
//! spend at `max_injections` — the same confidence-driven reasoning as
//! Leveugle et al.'s campaign-sizing formula, applied per flip-flop and
//! online.
//!
//! The decision is a pure function of the accumulated tallies, so it is
//! checkpoint-safe: a resumed campaign retires exactly the same flip-flops
//! after exactly the same injections as an uninterrupted one.
//!
//! # Policy specs
//!
//! Every stopping rule has a canonical, round-trippable **policy spec**
//! — the single notation used by the `--policy` CLI flag, the campaign
//! manifest, `ffr status` and the campaign fingerprint (so two campaigns
//! with different policies never share a cache entry):
//!
//! | spec                        | meaning                                            |
//! |-----------------------------|----------------------------------------------------|
//! | `fixed:170`                 | always 170 injections per point (paper-faithful)   |
//! | `wilson:0.05@95`            | retire once the 95 % Wilson CI half-width ≤ 0.05   |
//! | `wilson:0.02@99:64..340`    | same, 99 % confidence, explicit min/max bounds     |
//!
//! [`AdaptivePolicy`] implements [`FromStr`] and
//! [`Display`](std::fmt::Display) for this
//! grammar, and `parse(display(p)) == p` for every representable policy:
//!
//! ```
//! use ffr_campaign::AdaptivePolicy;
//!
//! let p: AdaptivePolicy = "wilson:0.05@95:64..170".parse().unwrap();
//! assert_eq!(p.ci_half_width, Some(0.05));
//! assert_eq!(p.z, 1.96);
//! assert_eq!((p.min_injections, p.max_injections), (64, 170));
//! assert_eq!(p.to_string().parse::<AdaptivePolicy>().unwrap(), p);
//!
//! assert_eq!(AdaptivePolicy::fixed(170).to_string(), "fixed:170");
//! ```

use ffr_fault::{confidence_for_z, wilson_interval, z_for_confidence};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Injections simulated per decision step (one bit-parallel batch).
pub const CHUNK_INJECTIONS: usize = 64;

/// Default `min_injections` of a `wilson:` spec without explicit bounds:
/// one decision chunk, so the first stopping decision has real evidence.
pub const DEFAULT_WILSON_MIN: usize = CHUNK_INJECTIONS;

/// Default `max_injections` of a `wilson:` spec without explicit bounds.
pub const DEFAULT_WILSON_MAX: usize = 1024;

/// When to stop injecting into a flip-flop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptivePolicy {
    /// Never stop before this many injections (0 disables the floor).
    pub min_injections: usize,
    /// Hard cap on injections per flip-flop.
    pub max_injections: usize,
    /// Normal quantile of the confidence interval (1.96 ≙ 95 %).
    pub z: f64,
    /// Retire once the Wilson interval half-width is at or below this
    /// (`None` disables adaptive stopping: always run to the cap).
    pub ci_half_width: Option<f64>,
}

impl AdaptivePolicy {
    /// Fixed-budget policy: always `n` injections, no early stopping
    /// (paper-faithful mode).
    pub fn fixed(n: usize) -> AdaptivePolicy {
        AdaptivePolicy {
            min_injections: n,
            max_injections: n,
            z: 1.96,
            ci_half_width: None,
        }
    }

    /// Adaptive policy: between `min` and `max` injections, stopping once
    /// the 95 % Wilson half-width reaches `half_width`.
    pub fn adaptive(min: usize, max: usize, half_width: f64) -> AdaptivePolicy {
        assert!(min <= max, "min_injections must not exceed max_injections");
        assert!(
            half_width > 0.0 && half_width < 0.5,
            "half-width in (0, 0.5)"
        );
        AdaptivePolicy {
            min_injections: min,
            max_injections: max,
            z: 1.96,
            ci_half_width: Some(half_width),
        }
    }

    /// `true` once a flip-flop with `failures` out of `injections` should
    /// be retired.
    pub fn is_settled(&self, failures: usize, injections: usize) -> bool {
        if injections >= self.max_injections {
            return true;
        }
        if injections < self.min_injections || injections == 0 {
            return false;
        }
        match self.ci_half_width {
            None => false,
            Some(target) => {
                let (lo, hi) = wilson_interval(failures, injections, self.z);
                (hi - lo) / 2.0 <= target
            }
        }
    }

    /// Size of the next injection batch for a flip-flop that has already
    /// executed `injections_done` (0 when the plan is exhausted).
    pub fn next_batch(&self, injections_done: usize) -> usize {
        self.max_injections
            .saturating_sub(injections_done)
            .min(CHUNK_INJECTIONS)
    }
}

impl fmt::Display for AdaptivePolicy {
    /// The canonical policy spec (see the [module docs](self)): the one
    /// rendering used by `ffr status`, the manifest and the campaign
    /// fingerprint. `Display` and [`FromStr`] round-trip exactly; a
    /// policy with `ci_half_width: None` always runs to the cap, so it
    /// prints as `fixed:<max>` regardless of its floor.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.ci_half_width {
            None => write!(f, "fixed:{}", self.max_injections),
            Some(hw) => {
                write!(f, "wilson:{hw}@")?;
                match confidence_for_z(self.z) {
                    Some(percent) => write!(f, "{percent}")?,
                    None => write!(f, "z{}", self.z)?,
                }
                write!(f, ":{}..{}", self.min_injections, self.max_injections)
            }
        }
    }
}

impl FromStr for AdaptivePolicy {
    type Err = String;

    /// Parse a policy spec: `fixed:<n>` or
    /// `wilson:<half_width>@<confidence>[:<min>..<max>]`.
    ///
    /// `<confidence>` is a percentage (90, 95, 98 or 99) or `z<quantile>`
    /// for an explicit normal quantile; omitted bounds default to
    /// [`DEFAULT_WILSON_MIN`]`..`[`DEFAULT_WILSON_MAX`].
    fn from_str(s: &str) -> Result<AdaptivePolicy, String> {
        let bad = |why: &str| {
            Err(format!(
                "bad policy `{s}`: {why} (expected `fixed:<n>` or \
                 `wilson:<half_width>@<confidence>[:<min>..<max>]`, \
                 e.g. `fixed:170`, `wilson:0.05@95`, `wilson:0.02@99:64..340`)"
            ))
        };
        let Some((kind, rest)) = s.split_once(':') else {
            return bad("missing `:`");
        };
        match kind {
            "fixed" => {
                let n: usize = match rest.parse() {
                    Ok(n) if n > 0 => n,
                    _ => return bad("injection count must be a positive integer"),
                };
                Ok(AdaptivePolicy::fixed(n))
            }
            "wilson" => {
                let (target, bounds) = match rest.split_once(':') {
                    Some((t, b)) => (t, Some(b)),
                    None => (rest, None),
                };
                let Some((hw, conf)) = target.split_once('@') else {
                    return bad("missing `@<confidence>` after the half-width");
                };
                let hw: f64 = match hw.parse() {
                    Ok(hw) if hw > 0.0 && hw < 0.5 => hw,
                    Ok(_) => return bad("half-width must be in (0, 0.5)"),
                    Err(_) => return bad("half-width must be a number"),
                };
                let z = if let Some(q) = conf.strip_prefix('z') {
                    match q.parse::<f64>() {
                        Ok(z) if z > 0.0 && z.is_finite() => z,
                        _ => return bad("z-quantile must be a positive number"),
                    }
                } else {
                    match conf.parse::<u32>().ok().and_then(z_for_confidence) {
                        Some(z) => z,
                        None => {
                            return bad("confidence must be one of 90, 95, 98, 99 \
                                 (or an explicit `z<quantile>`)")
                        }
                    }
                };
                let (min, max) = match bounds {
                    None => (DEFAULT_WILSON_MIN, DEFAULT_WILSON_MAX),
                    Some(b) => {
                        let Some((min, max)) = b.split_once("..") else {
                            return bad("bounds must be `<min>..<max>`");
                        };
                        match (min.parse::<usize>(), max.parse::<usize>()) {
                            (Ok(min), Ok(max)) if min <= max && max > 0 => (min, max),
                            (Ok(min), Ok(max)) if min > max => {
                                return bad("min must not exceed max")
                            }
                            _ => return bad("bounds must be `<min>..<max>` integers"),
                        }
                    }
                };
                Ok(AdaptivePolicy {
                    min_injections: min,
                    max_injections: max,
                    z,
                    ci_half_width: Some(hw),
                })
            }
            other => bad(&format!("unknown policy kind `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_policy_runs_to_cap() {
        let p = AdaptivePolicy::fixed(170);
        assert!(!p.is_settled(0, 64));
        assert!(!p.is_settled(0, 128));
        assert!(p.is_settled(3, 170));
        assert_eq!(p.next_batch(0), 64);
        assert_eq!(p.next_batch(128), 42);
        assert_eq!(p.next_batch(170), 0);
    }

    #[test]
    fn adaptive_policy_retires_extremes_early() {
        let p = AdaptivePolicy::adaptive(64, 1024, 0.06);
        // All-benign after 64: Wilson 95 % interval ≈ [0, 0.057] → settled.
        assert!(p.is_settled(0, 64));
        // All-failing is symmetric.
        assert!(p.is_settled(64, 64));
        // A mid-range FDR at 64 injections is still wide open.
        assert!(!p.is_settled(32, 64));
        // But the cap always ends it.
        assert!(p.is_settled(512, 1024));
    }

    #[test]
    fn min_floor_blocks_early_retirement() {
        let p = AdaptivePolicy::adaptive(128, 256, 0.06);
        assert!(!p.is_settled(0, 64), "below the floor");
        assert!(p.is_settled(0, 128));
    }

    #[test]
    fn always_failing_point_retires_at_the_floor() {
        // A point that fails every injection is pinned (p ≈ 1, tight
        // interval) the moment the floor allows a decision — the
        // symmetric twin of the all-benign early exit.
        let p = AdaptivePolicy::adaptive(128, 1024, 0.06);
        assert!(!p.is_settled(64, 64), "floor must hold even at p = 1");
        assert!(p.is_settled(128, 128), "retire exactly at the floor");
    }

    #[test]
    fn no_half_width_always_runs_to_cap() {
        // ci_half_width: None disables adaptive stopping entirely — even a
        // policy with a floor below the cap runs every point to the cap.
        let p = AdaptivePolicy {
            min_injections: 64,
            max_injections: 512,
            z: 1.96,
            ci_half_width: None,
        };
        for n in [64, 128, 256, 448] {
            assert!(!p.is_settled(0, n), "all-benign at {n}");
            assert!(!p.is_settled(n, n), "all-failing at {n}");
        }
        assert!(p.is_settled(0, 512));
        // And it renders as the fixed policy it behaves as.
        assert_eq!(p.to_string(), "fixed:512");
    }

    #[test]
    fn policy_spec_display_parse_round_trip() {
        for (spec, rendered) in [
            ("fixed:170", "fixed:170"),
            ("fixed:1", "fixed:1"),
            // Defaults are made explicit on display.
            ("wilson:0.05@95", "wilson:0.05@95:64..1024"),
            ("wilson:0.02@99:64..340", "wilson:0.02@99:64..340"),
            ("wilson:0.1@90:0..256", "wilson:0.1@90:0..256"),
            // Arbitrary quantiles survive via the z prefix.
            ("wilson:0.05@z3.5:32..64", "wilson:0.05@z3.5:32..64"),
        ] {
            let p: AdaptivePolicy = spec.parse().unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(p.to_string(), rendered, "display of `{spec}`");
            let back: AdaptivePolicy = rendered.parse().unwrap();
            assert_eq!(back, p, "round-trip of `{spec}`");
        }
        let p: AdaptivePolicy = "wilson:0.02@99".parse().unwrap();
        assert_eq!(p.z, 2.576);
        assert_eq!(p.ci_half_width, Some(0.02));
    }

    #[test]
    fn bad_policy_specs_are_rejected_with_guidance() {
        for bad in [
            "",
            "fixed",
            "fixed:",
            "fixed:0",
            "fixed:-3",
            "fixed:many",
            "adaptive:64:512:0.05",
            "wilson:0.05",
            "wilson:0.6@95",
            "wilson:0@95",
            "wilson:0.05@80",
            "wilson:0.05@z-1",
            "wilson:0.05@95:512..64",
            "wilson:0.05@95:64-512",
            "wilson:0.05@95:64..0",
        ] {
            let err = bad.parse::<AdaptivePolicy>().unwrap_err();
            assert!(err.contains("fixed:170"), "`{bad}` hint missing: {err}");
        }
    }

    #[test]
    fn settled_is_monotone_enough_for_resume() {
        // The exact decision sequence a runner takes: after each chunk,
        // is_settled with the accumulated tallies. Replaying the same
        // tallies gives the same decisions — trivially true because the
        // function is pure; this test pins it against regression.
        let p = AdaptivePolicy::adaptive(64, 192, 0.05);
        let history = [(2usize, 64usize), (5, 128), (7, 192)];
        let first: Vec<bool> = history.iter().map(|&(f, n)| p.is_settled(f, n)).collect();
        let second: Vec<bool> = history.iter().map(|&(f, n)| p.is_settled(f, n)).collect();
        assert_eq!(first, second);
        assert!(first[2], "cap reached");
    }
}
