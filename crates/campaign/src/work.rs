//! Work distribution: who computes which injection points.
//!
//! The runner ([`crate::runner`]) is generic over a [`WorkSource`] — the
//! policy that hands out chunks of injection-point indices to worker
//! threads. Two implementations cover the two deployment shapes:
//!
//! * [`CursorSource`] — the in-process work-stealing cursor: threads of
//!   one process claim small chunks off a shared atomic counter. Zero
//!   I/O, used by `ffr run` / `ffr resume`.
//! * [`LeaseQueue`] — a store-backed queue for **distributed draining**:
//!   several `ffr worker` processes (on one machine or many, over a
//!   shared filesystem) lease fixed point-index ranges of one campaign by
//!   creating lease files next to the campaign checkpoint, flush their
//!   progress as per-range [`ShardCheckpoint`]s, heartbeat their leases,
//!   and reclaim leases whose holders died.
//!
//! # Why duplicated work is harmless
//!
//! A lease whose holder crashes is reclaimed after its TTL; in rare
//! interleavings (a stalled worker outliving its own lease, two workers
//! racing an expired-lease reclaim) two workers can briefly compute the
//! same range. This is *benign by construction*: a point's injection plan
//! and stopping decisions are pure functions of `(seed, point, window,
//! policy)`, so both workers produce identical records and the
//! point-indexed shard merge ([`CampaignCheckpoint::merge_shard`]) is
//! oblivious to who won. Distribution changes who computes a point, never
//! what it computes — which is exactly why a multi-worker campaign's
//! final table is byte-identical to a single-process run.
//!
//! # Lease lifecycle
//!
//! ```text
//! unclaimed ──create_exclusive──▶ held(worker, expires)
//!     ▲                              │ heartbeat: atomic rewrite, new expiry
//!     │                              │ chunk done: shard flushed, lease removed
//!     └──────── TTL elapses ◀────────┘ (crash: no heartbeat, lease expires)
//! ```
//!
//! Lease claims go through [`create_exclusive`] (staged contents + hard
//! link) so a claim is atomic and never observable half-written; releases
//! and reclaims delete the file; heartbeats atomically replace it. Lease
//! files are never mutated in place.

use crate::checkpoint::{CampaignCheckpoint, ShardCheckpoint};
use crate::runner::CancelToken;
use crate::store::{atomic_write, create_exclusive};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::io;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Lease record file format version.
pub const LEASE_VERSION: u32 = 1;

/// How the runner obtains work: chunks of indices into the campaign
/// checkpoint's point list.
///
/// Implementations must be safe to call from several runner threads at
/// once; a chunk is handed to exactly one thread of this process.
pub trait WorkSource: Sync {
    /// Claim the next chunk of point indices. An empty chunk means the
    /// source is drained for this invocation (all work complete, or
    /// cancellation observed). A source may block/poll while work is
    /// held elsewhere (the lease queue waits for other workers' leases
    /// to complete or expire).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures of store-backed sources.
    fn claim(&self) -> io::Result<Vec<usize>>;

    /// Overlay externally persisted progress for a freshly claimed chunk
    /// onto the in-memory checkpoint (called under the progress lock,
    /// before any point of the chunk is processed). The default does
    /// nothing; the lease queue merges a previous holder's shard here so
    /// a reclaimed lease *continues* instead of recomputing.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    fn hydrate(&self, chunk: &[usize], checkpoint: &mut CampaignCheckpoint) -> io::Result<()> {
        let _ = (chunk, checkpoint);
        Ok(())
    }

    /// Notification that every point of a previously claimed chunk is
    /// retired (called under the progress lock). The lease queue flushes
    /// the final shard and releases the lease here.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    fn chunk_done(&self, chunk: &[usize], checkpoint: &CampaignCheckpoint) -> io::Result<()> {
        let _ = (chunk, checkpoint);
        Ok(())
    }

    /// Upper bound on usefully concurrent claims (the runner clamps its
    /// thread count to this).
    fn parallelism_hint(&self) -> usize;
}

/// The in-process work source: pending point indices behind a shared
/// atomic cursor, claimed in small chunks (work stealing). Per-point cost
/// varies wildly under adaptive stopping, so small dynamic chunks beat a
/// static split.
#[derive(Debug)]
pub struct CursorSource {
    pending: Vec<usize>,
    cursor: AtomicUsize,
    chunk: usize,
}

impl CursorSource {
    /// A source over every incomplete point of `checkpoint`, claimed
    /// `steal_chunk` at a time.
    pub fn new(checkpoint: &CampaignCheckpoint, steal_chunk: usize) -> CursorSource {
        CursorSource {
            pending: checkpoint
                .points
                .iter()
                .enumerate()
                .filter(|(_, p)| !p.complete)
                .map(|(i, _)| i)
                .collect(),
            cursor: AtomicUsize::new(0),
            chunk: steal_chunk.max(1),
        }
    }
}

impl WorkSource for CursorSource {
    fn claim(&self) -> io::Result<Vec<usize>> {
        let start = self.cursor.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.pending.len() {
            return Ok(Vec::new());
        }
        Ok(self.pending[start..(start + self.chunk).min(self.pending.len())].to_vec())
    }

    fn parallelism_hint(&self) -> usize {
        self.pending.len().max(1)
    }
}

/// One worker's claim on a contiguous range of injection points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeaseRecord {
    /// Format version ([`LEASE_VERSION`]).
    pub version: u32,
    /// Campaign fingerprint the lease belongs to.
    pub fingerprint: String,
    /// Id of the holding worker.
    pub worker: String,
    /// First leased point index.
    pub range_start: usize,
    /// One past the last leased point index.
    pub range_end: usize,
    /// Unix time the lease was (re)acquired.
    pub acquired_unix: u64,
    /// Unix time the lease expires unless heartbeaten.
    pub expires_unix: u64,
}

impl LeaseRecord {
    /// The leased point-index range.
    pub fn range(&self) -> Range<usize> {
        self.range_start..self.range_end
    }

    /// The TTL the lease was written with, recovered from its stamps.
    ///
    /// Both stamps come from the *holder's* clock, so their difference is
    /// meaningful even when that clock disagrees with ours — unlike
    /// either stamp on its own.
    pub fn ttl(&self) -> Duration {
        Duration::from_secs(self.expires_unix.saturating_sub(self.acquired_unix).max(1))
    }

    /// `true` once the lease's expiry stamp has passed `now_unix`.
    ///
    /// **Diagnostic only.** The stamps were written by the holder's clock
    /// and `now_unix` comes from ours; across hosts with skewed clocks
    /// this misclassifies live leases as expired (and vice versa).
    /// Reclaim decisions use [`LeaseRecord::expired_by_age`] instead,
    /// which only compares durations observed on the local filesystem.
    pub fn is_expired(&self, now_unix: u64) -> bool {
        now_unix > self.expires_unix
    }

    /// `true` once the lease file has gone longer than its TTL without a
    /// rewrite, judged by `modified` (the file's mtime on the shared
    /// filesystem) against the local clock.
    ///
    /// A live holder heartbeats — atomically rewrites — its lease every
    /// ttl/3, refreshing the mtime; a file whose observed age exceeds the
    /// TTL therefore has no live writer, regardless of what either host's
    /// wall clock says. An un-computable age (mtime in the future after a
    /// clock step) counts as *not* expired: waiting out a dead lease is
    /// cheap, stealing a live one costs duplicated work.
    pub fn expired_by_age(&self, modified: SystemTime) -> bool {
        observed_age(modified).is_some_and(|age| age > self.ttl())
    }
}

/// Age of a file with mtime `modified` per the local clock, or `None`
/// when the mtime is in the future (a clock step backwards since the
/// write, or a skewed NFS server stamp) and no age can be computed.
pub(crate) fn observed_age(modified: SystemTime) -> Option<Duration> {
    SystemTime::now().duration_since(modified).ok()
}

/// Seconds since the Unix epoch.
pub(crate) fn unix_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// File name of the lease over point indices `range`.
pub fn lease_file_name(range: &Range<usize>) -> String {
    format!("lease-{:08}-{:08}.json", range.start, range.end)
}

/// File name of the shard over point indices `range`.
pub fn shard_file_name(range: &Range<usize>) -> String {
    format!("shard-{:08}-{:08}.json", range.start, range.end)
}

/// Split `num_points` point indices into lease ranges of `lease_points`.
///
/// Workers derive ranges independently from the same campaign, so the
/// split must be a pure function of its inputs. Workers launched with
/// *different* `lease_points` produce misaligned ranges — wasteful
/// (overlapping ranges get computed twice) but still correct, because
/// the shard merge is point-indexed and duplicates are identical.
pub fn lease_ranges(num_points: usize, lease_points: usize) -> Vec<Range<usize>> {
    let step = lease_points.max(1);
    (0..num_points.div_ceil(step))
        .map(|k| k * step..((k + 1) * step).min(num_points))
        .collect()
}

/// A stored lease file as found on disk (for `ffr status` / `ffr gc`).
#[derive(Debug, Clone)]
pub struct LeaseInfo {
    /// Full path of the lease file.
    pub path: PathBuf,
    /// The decoded record, or `None` for an unreadable file.
    pub record: Option<LeaseRecord>,
    /// Last modification time of the file.
    pub modified: SystemTime,
}

/// Enumerate lease files in a session's lease directory (sorted by file
/// name, i.e. by range).
///
/// # Errors
///
/// Propagates directory-read failures (a missing directory is an empty
/// list).
pub fn list_leases(leases_dir: &Path) -> io::Result<Vec<LeaseInfo>> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(leases_dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.starts_with("lease-") || !name.ends_with(".json") {
            continue;
        }
        let path = entry.path();
        let record = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| serde_json::from_str(&text).ok());
        // A worker may release the lease between readdir and stat; a
        // vanished file is a completed range, not an error.
        let Ok(metadata) = entry.metadata() else {
            continue;
        };
        let modified = metadata.modified().unwrap_or(SystemTime::UNIX_EPOCH);
        out.push(LeaseInfo {
            path,
            record,
            modified,
        });
    }
    out.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(out)
}

/// Enumerate shard checkpoints in a session's shard directory (sorted by
/// range). Unreadable shard files are skipped — a torn write is
/// impossible (atomic renames), so these are foreign files.
///
/// # Errors
///
/// Propagates directory-read failures (a missing directory is an empty
/// list).
pub fn list_shards(shards_dir: &Path) -> io::Result<Vec<ShardCheckpoint>> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(shards_dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.starts_with("shard-") || !name.ends_with(".json") {
            continue;
        }
        if let Ok(shard) = ShardCheckpoint::load(&entry.path()) {
            out.push(shard);
        }
    }
    out.sort_by_key(|s| (s.range_start, s.range_end));
    Ok(out)
}

/// Delete expired lease files (and unreadable ones older than an hour,
/// which no live writer can still be producing); returns
/// `(removed, kept)`. Used by `ffr gc --campaign`.
///
/// Expiry is judged by **observed file age** (mtime vs. the local
/// clock), not by the unix stamps inside the record: the stamps were
/// written by the holder's clock, which may be skewed arbitrarily
/// against ours. An un-computable age — a future mtime after a clock
/// step backwards — keeps the file; a kept dead lease costs one more
/// sweep, a deleted live one costs duplicated work.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn sweep_expired_leases(leases_dir: &Path) -> io::Result<(usize, usize)> {
    let mut removed = 0;
    let mut kept = 0;
    for info in list_leases(leases_dir)? {
        let expired = match &info.record {
            Some(record) => record.expired_by_age(info.modified),
            None => observed_age(info.modified).is_some_and(|age| age > Duration::from_secs(3600)),
        };
        if expired {
            match std::fs::remove_file(&info.path) {
                Ok(()) => removed += 1,
                // Another sweeper (or the lease's worker) got there first.
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        } else {
            kept += 1;
        }
    }
    Ok((removed, kept))
}

/// Delete every shard checkpoint in a session's shard directory. Only
/// call once the campaign's merged checkpoint is durably complete (the
/// shards are then a redundant copy of its point records); used by
/// `ffr gc --campaign`. Returns how many shard files were removed.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn sweep_shards(shards_dir: &Path) -> io::Result<usize> {
    let mut removed = 0;
    let entries = match std::fs::read_dir(shards_dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.starts_with("shard-") || !name.ends_with(".json") {
            continue;
        }
        match std::fs::remove_file(entry.path()) {
            Ok(()) => removed += 1,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
    }
    Ok(removed)
}

/// The store-backed distributed work source: lease files + shard
/// checkpoints in a campaign session directory shared by all workers.
///
/// See the [module docs](self) for the lease lifecycle and why races
/// degrade to harmless duplicated work rather than corruption.
pub struct LeaseQueue {
    leases_dir: PathBuf,
    shards_dir: PathBuf,
    fingerprint: String,
    worker: String,
    ranges: Vec<Range<usize>>,
    ttl: Duration,
    poll: Duration,
    cancel: CancelToken,
    state: Mutex<QueueState>,
    recorder: ffr_obs::Recorder,
}

#[derive(Default)]
struct QueueState {
    /// Range indices currently leased by this process.
    held: Vec<usize>,
    /// Held ranges whose on-disk shard has been folded into the
    /// in-memory checkpoint ([`WorkSource::hydrate`]). Until then the
    /// checkpoint knows less about the range than the shard file does,
    /// so flushes must not touch it.
    hydrated: HashSet<usize>,
    /// Range indices whose shard is known complete (scan cache).
    complete: HashSet<usize>,
}

impl LeaseQueue {
    /// Open the lease queue of a campaign session, creating the lease and
    /// shard directories if needed.
    ///
    /// `lease_points` is the range granularity (points per lease): small
    /// ranges balance better across workers, large ranges amortize lease
    /// I/O. `ttl` must comfortably exceed the worst-case time between two
    /// heartbeats; `poll` is the rescan interval while waiting on other
    /// workers.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    #[allow(clippy::too_many_arguments)]
    pub fn open(
        session_dir: &Path,
        fingerprint: String,
        worker: String,
        num_points: usize,
        lease_points: usize,
        ttl: Duration,
        poll: Duration,
        cancel: CancelToken,
    ) -> io::Result<LeaseQueue> {
        let leases_dir = session_dir.join("leases");
        let shards_dir = session_dir.join("shards");
        std::fs::create_dir_all(&leases_dir)?;
        std::fs::create_dir_all(&shards_dir)?;
        Ok(LeaseQueue {
            leases_dir,
            shards_dir,
            fingerprint,
            worker,
            ranges: lease_ranges(num_points, lease_points),
            ttl,
            poll,
            cancel,
            state: Mutex::new(QueueState::default()),
            recorder: ffr_obs::Recorder::disabled(),
        })
    }

    /// Attach a telemetry recorder: lease claims, reclaims, heartbeats,
    /// releases and shard-flush latencies are recorded as events.
    /// Telemetry never affects lease contents or claiming decisions.
    pub fn with_recorder(mut self, recorder: ffr_obs::Recorder) -> LeaseQueue {
        self.recorder = recorder;
        self
    }

    /// The lease ranges of this campaign.
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }

    fn lease_path(&self, index: usize) -> PathBuf {
        self.leases_dir.join(lease_file_name(&self.ranges[index]))
    }

    fn shard_path(&self, index: usize) -> PathBuf {
        self.shards_dir.join(shard_file_name(&self.ranges[index]))
    }

    fn fresh_record(&self, index: usize) -> LeaseRecord {
        let now = unix_now();
        LeaseRecord {
            version: LEASE_VERSION,
            fingerprint: self.fingerprint.clone(),
            worker: self.worker.clone(),
            range_start: self.ranges[index].start,
            range_end: self.ranges[index].end,
            acquired_unix: now,
            expires_unix: now + self.ttl.as_secs().max(1),
        }
    }

    /// The order in which [`LeaseQueue::claim`] probes ranges: most
    /// expensive estimated remaining work first, ties broken by ascending
    /// index (which makes the no-information case identical to plain
    /// index order).
    ///
    /// Cost model: the campaign-wide mean injections per **completed**
    /// point — observed from the shards on disk, 1 until anything has
    /// completed — prices a point; a range's remaining cost sums that
    /// price over its incomplete points, discounted by injections already
    /// done. Adaptive (Wilson) stopping makes per-point cost vary by an
    /// order of magnitude, so leasing expensive ranges first shortens the
    /// tail of a heterogeneous fleet. The estimate only changes *who*
    /// computes a range, never what it computes, so final tables stay
    /// byte-identical.
    fn claim_order(&self) -> Vec<(usize, u64)> {
        let shards: Vec<ShardCheckpoint> = list_shards(&self.shards_dir)
            .unwrap_or_default()
            .into_iter()
            .filter(|s| s.fingerprint == self.fingerprint)
            .collect();
        let (mut done_injections, mut done_points) = (0u64, 0u64);
        for shard in &shards {
            for point in shard.points.iter().filter(|p| p.complete) {
                done_injections += point.injections_done as u64;
                done_points += 1;
            }
        }
        let avg = done_injections
            .checked_div(done_points)
            .map_or(1, |per_point| per_point.max(1));
        let mut order: Vec<(usize, u64)> = self
            .ranges
            .iter()
            .enumerate()
            .map(|(index, range)| {
                let shard = shards
                    .iter()
                    .find(|s| s.range_start == range.start && s.range_end == range.end);
                let cost = match shard {
                    Some(shard) => shard
                        .points
                        .iter()
                        .filter(|p| !p.complete)
                        .map(|p| avg.saturating_sub(p.injections_done as u64).max(1))
                        .sum(),
                    None => range.len() as u64 * avg,
                };
                (index, cost)
            })
            .collect();
        order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        order
    }

    /// `true` if the range's shard on disk is complete. Pure file check;
    /// the caller (holding the state lock) caches positives.
    fn shard_complete_on_disk(&self, index: usize) -> bool {
        matches!(
            ShardCheckpoint::load(&self.shard_path(index)),
            Ok(shard) if shard.fingerprint == self.fingerprint && shard.is_complete()
        )
    }

    /// How range `index`'s lease file looks on disk right now.
    ///
    /// All liveness decisions here are **observed-age** decisions: the
    /// file's mtime against the local clock. The unix stamps inside the
    /// record were written by the holder's clock and are diagnostics only
    /// — comparing them against our clock would let a skewed worker steal
    /// live leases (or never reclaim dead ones). Heartbeats atomically
    /// rewrite the lease every ttl/3, so a live holder's file is always
    /// younger than its TTL on every host that can see it.
    fn lease_on_disk(&self, index: usize) -> LeaseOnDisk {
        let path = self.lease_path(index);
        let Ok(text) = std::fs::read_to_string(&path) else {
            return LeaseOnDisk::Absent;
        };
        // Metadata read after the content read: a concurrent heartbeat
        // can only make the file *younger*, which errs toward Live.
        let modified = std::fs::metadata(&path).and_then(|m| m.modified());
        match serde_json::from_str::<LeaseRecord>(&text) {
            Ok(record) if modified.as_ref().is_ok_and(|&m| record.expired_by_age(m)) => {
                LeaseOnDisk::Reclaimable
            }
            // Our own worker id without a held entry is either a stale
            // lease of a crashed previous incarnation (reclaim fast) or a
            // live process that was misconfigured to share our id (don't
            // perpetually steal). The two are distinguished by heartbeat
            // recency: a live holder rewrites its lease every ttl/3, so a
            // file that has gone more than ttl/2 without an mtime refresh
            // has no live holder. (claim() never reaches here for ranges
            // held by sibling threads of this process.)
            Ok(record) if record.worker == self.worker => {
                let grace = Duration::from_secs((self.ttl.as_secs() / 2).max(1));
                let stale = modified
                    .ok()
                    .and_then(observed_age)
                    .is_some_and(|age| age > grace);
                if stale {
                    LeaseOnDisk::Reclaimable
                } else {
                    LeaseOnDisk::Live
                }
            }
            Ok(_) => LeaseOnDisk::Live,
            // Unreadable: reclaim only once it is old enough that no live
            // writer can still be producing it; until then (including an
            // un-computable age from a future mtime) wait it out.
            Err(_) => {
                let old = modified
                    .ok()
                    .and_then(observed_age)
                    .is_some_and(|age| age > self.ttl);
                if old {
                    LeaseOnDisk::Reclaimable
                } else {
                    LeaseOnDisk::Live
                }
            }
        }
    }

    /// Acquire the lease on range `index` (optionally removing an
    /// expired/stale predecessor first); `Ok(true)` on success. Must be
    /// called with the state lock held: that serializes the sibling
    /// threads of this process — the only other writers sharing our
    /// worker id — so a lease freshly won by one thread can never be
    /// mistaken for our own stale leftover and stolen by another.
    /// Cross-process races remain and are benign: losing `create_exclusive`
    /// is a clean miss, and the rare double-claim through a reclaim
    /// interleaving only duplicates deterministic work.
    fn acquire(
        &self,
        index: usize,
        state: &mut QueueState,
        reclaim: bool,
        est_cost: u64,
    ) -> io::Result<bool> {
        let path = self.lease_path(index);
        if reclaim {
            match std::fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        let json =
            serde_json::to_string_pretty(&self.fresh_record(index)).map_err(io::Error::other)?;
        if create_exclusive(&path, &json)? {
            state.held.push(index);
            self.recorder.event(
                ffr_obs::Level::Debug,
                if reclaim {
                    "lease.reclaim"
                } else {
                    "lease.claim"
                },
                &[
                    ("range_start", self.ranges[index].start.into()),
                    ("range_end", self.ranges[index].end.into()),
                    ("est_cost", est_cost.into()),
                    (
                        "queue_depth",
                        (self.ranges.len() - state.complete.len()).into(),
                    ),
                ],
            );
            self.recorder.count(
                if reclaim {
                    "lease.reclaims"
                } else {
                    "lease.claims"
                },
                1,
            );
            return Ok(true);
        }
        Ok(false)
    }

    /// Extend the expiry of every lease this process holds (called from
    /// the worker's heartbeat thread). Runs under the state lock so a
    /// concurrent `chunk_done`/`release_held` cannot have its lease
    /// removal undone by a heartbeat rewrite. Failures are returned so
    /// the caller can log them, but a missed heartbeat is not fatal — the
    /// lease expires and the range is recomputed elsewhere, identically.
    ///
    /// # Errors
    ///
    /// Propagates the first I/O failure.
    pub fn refresh_held(&self) -> io::Result<()> {
        let state = self.state.lock().expect("queue lock");
        for &index in &state.held {
            let record = self.fresh_record(index);
            let json = serde_json::to_string_pretty(&record).map_err(io::Error::other)?;
            atomic_write(&self.lease_path(index), &json)?;
        }
        if !state.held.is_empty() {
            self.recorder.event(
                ffr_obs::Level::Debug,
                "lease.heartbeat",
                &[("leases", state.held.len().into())],
            );
            self.recorder
                .count("lease.heartbeats", state.held.len() as u64);
        }
        Ok(())
    }

    /// Release every lease this process still holds *without* completing
    /// it (graceful shutdown or error unwind): the partial shard stays on
    /// disk, so the next claimer resumes mid-plan instead of waiting out
    /// the TTL.
    pub fn release_held(&self) {
        let mut state = self.state.lock().expect("queue lock");
        for index in std::mem::take(&mut state.held) {
            let _ = std::fs::remove_file(self.lease_path(index));
            state.hydrated.remove(&index);
        }
    }

    /// Flush a (possibly partial) shard for every held range — the sink
    /// counterpart of [`CampaignCheckpoint::save`] for distributed runs.
    ///
    /// Ranges claimed but not yet hydrated are skipped: until
    /// [`WorkSource::hydrate`] folds the previous holder's shard into the
    /// in-memory checkpoint, a flush would overwrite that shard with an
    /// emptier view and lose the reclaimed progress.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn flush_held(&self, checkpoint: &CampaignCheckpoint) -> io::Result<()> {
        let state = self.state.lock().expect("queue lock");
        for &index in &state.held {
            if !state.hydrated.contains(&index) {
                continue;
            }
            let t0 = std::time::Instant::now();
            checkpoint
                .shard(&self.worker, self.ranges[index].clone())
                .save(&self.shard_path(index))?;
            self.recorder
                .observe_us("shard.flush_us", t0.elapsed().as_micros() as u64);
            self.recorder.count("shard.flushes", 1);
        }
        Ok(())
    }

    /// `true` once every lease range has a complete shard on disk.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn all_ranges_complete(&self) -> io::Result<bool> {
        let mut state = self.state.lock().expect("queue lock");
        for index in 0..self.ranges.len() {
            if state.complete.contains(&index) {
                continue;
            }
            if !self.shard_complete_on_disk(index) {
                return Ok(false);
            }
            state.complete.insert(index);
        }
        Ok(true)
    }
}

/// Result of probing a lease file (see [`LeaseQueue::lease_on_disk`]).
enum LeaseOnDisk {
    /// No lease file: the range is unclaimed (complete, or claimable).
    Absent,
    /// A live lease held elsewhere: wait for completion or expiry.
    Live,
    /// Expired, our own crashed incarnation's, or unreadably old:
    /// claimable after removing the file.
    Reclaimable,
}

impl WorkSource for LeaseQueue {
    /// Claim the next available lease range, waiting (and polling) while
    /// every remaining range is held by a live other worker. Returns an
    /// empty chunk once all ranges are complete or cancellation is
    /// observed.
    ///
    /// The scan is cheap while blocked: ranges under a live lease are
    /// skipped on the lease probe alone (no shard parsing), and complete
    /// shards are parsed at most once (cached positives).
    ///
    /// Ranges are probed **most expensive first** (see
    /// `LeaseQueue::claim_order`): under adaptive stopping per-range
    /// cost varies wildly, and starting the big ranges early keeps a
    /// heterogeneous fleet from idling behind one straggler at the end.
    fn claim(&self) -> io::Result<Vec<usize>> {
        loop {
            if self.cancel.is_cancelled() {
                return Ok(Vec::new());
            }
            let mut outstanding = false;
            for &(index, est_cost) in &self.claim_order() {
                let mut state = self.state.lock().expect("queue lock");
                if state.complete.contains(&index) {
                    continue;
                }
                if state.held.contains(&index) {
                    // A sibling thread of this process is computing the
                    // range; its chunk_done will mark it complete.
                    outstanding = true;
                    continue;
                }
                match self.lease_on_disk(index) {
                    LeaseOnDisk::Live => {
                        outstanding = true;
                    }
                    LeaseOnDisk::Absent => {
                        // Unclaimed: either finished (complete shard, no
                        // lease) or claimable.
                        if self.shard_complete_on_disk(index) {
                            // A worker killed between its final shard
                            // flush and its lease removal — or a lease
                            // file whose read transiently failed and
                            // probed as absent — can leave a stale lease
                            // on a complete range. Sweep it here so a
                            // finished campaign holds no lease files;
                            // deleting a just-resurrected live lease is
                            // benign (the range's work is complete and
                            // deterministic either way).
                            let _ = std::fs::remove_file(self.lease_path(index));
                            state.complete.insert(index);
                            continue;
                        }
                        outstanding = true;
                        if self.acquire(index, &mut state, false, est_cost)? {
                            return Ok(self.ranges[index].clone().collect());
                        }
                    }
                    LeaseOnDisk::Reclaimable => {
                        outstanding = true;
                        if self.acquire(index, &mut state, true, est_cost)? {
                            return Ok(self.ranges[index].clone().collect());
                        }
                    }
                }
            }
            if !outstanding {
                return Ok(Vec::new());
            }
            std::thread::sleep(self.poll);
        }
    }

    /// Merge the range's on-disk shard (a previous holder's progress)
    /// into the checkpoint, so a reclaimed lease continues mid-plan.
    /// Marks the range hydrated, unlocking shard flushes for it.
    fn hydrate(&self, chunk: &[usize], checkpoint: &mut CampaignCheckpoint) -> io::Result<()> {
        let Some(&start) = chunk.first() else {
            return Ok(());
        };
        let index = self
            .ranges
            .iter()
            .position(|r| r.start == start)
            .expect("claimed chunk matches a lease range");
        let merged = match ShardCheckpoint::load(&self.shard_path(index)) {
            Ok(shard) => {
                // A foreign-fingerprint shard in our session directory is
                // real corruption — surface it instead of recomputing.
                checkpoint.merge_shard(&shard).map(|_| ())
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            // Unreadable (foreign/damaged) shard: recomputing is always
            // safe, the next flush atomically replaces it.
            Err(_) => Ok(()),
        };
        if merged.is_ok() {
            self.state
                .lock()
                .expect("queue lock")
                .hydrated
                .insert(index);
        }
        merged
    }

    /// Persist the completed shard and release the lease. The shard write
    /// and lease removal happen under the state lock, so a concurrent
    /// heartbeat ([`LeaseQueue::refresh_held`]) cannot resurrect the
    /// lease file of a range that just completed.
    fn chunk_done(&self, chunk: &[usize], checkpoint: &CampaignCheckpoint) -> io::Result<()> {
        let Some(&start) = chunk.first() else {
            return Ok(());
        };
        let index = self
            .ranges
            .iter()
            .position(|r| r.start == start)
            .expect("completed chunk matches a lease range");
        let shard = checkpoint.shard(&self.worker, self.ranges[index].clone());
        let mut state = self.state.lock().expect("queue lock");
        let t0 = std::time::Instant::now();
        shard.save(&self.shard_path(index))?;
        self.recorder
            .observe_us("shard.flush_us", t0.elapsed().as_micros() as u64);
        self.recorder.count("shard.flushes", 1);
        let _ = std::fs::remove_file(self.lease_path(index));
        state.held.retain(|&i| i != index);
        state.hydrated.remove(&index);
        state.complete.insert(index);
        self.recorder.event(
            ffr_obs::Level::Debug,
            "lease.release",
            &[
                ("range_start", self.ranges[index].start.into()),
                ("range_end", self.ranges[index].end.into()),
                (
                    "queue_depth",
                    (self.ranges.len() - state.complete.len()).into(),
                ),
            ],
        );
        Ok(())
    }

    fn parallelism_hint(&self) -> usize {
        self.ranges.len().max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::AdaptivePolicy;
    use crate::checkpoint::CheckpointParams;
    use ffr_fault::FaultKind;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ffr_work_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn checkpoint(num: usize) -> CampaignCheckpoint {
        CampaignCheckpoint::fresh_seu(
            "fp".into(),
            CheckpointParams {
                fault: FaultKind::Seu,
                seed: 1,
                window_start: 0,
                window_end: 10,
                policy: AdaptivePolicy::fixed(64),
            },
            num,
        )
    }

    fn queue(dir: &Path, worker: &str, num: usize, per: usize, ttl: Duration) -> LeaseQueue {
        LeaseQueue::open(
            dir,
            "fp".into(),
            worker.into(),
            num,
            per,
            ttl,
            Duration::from_millis(5),
            CancelToken::new(),
        )
        .unwrap()
    }

    #[test]
    fn lease_ranges_partition_the_point_list() {
        assert_eq!(lease_ranges(10, 4), vec![0..4, 4..8, 8..10]);
        assert_eq!(lease_ranges(8, 4), vec![0..4, 4..8]);
        assert_eq!(lease_ranges(3, 8), vec![0..3]);
        assert_eq!(lease_ranges(0, 4), Vec::<Range<usize>>::new());
        assert_eq!(lease_ranges(5, 0), vec![0..1, 1..2, 2..3, 3..4, 4..5]);
    }

    #[test]
    fn cursor_source_hands_out_disjoint_chunks() {
        let mut cp = checkpoint(10);
        cp.points[3].complete = true;
        let source = CursorSource::new(&cp, 4);
        let mut seen = Vec::new();
        loop {
            let chunk = source.claim().unwrap();
            if chunk.is_empty() {
                break;
            }
            seen.extend(chunk);
        }
        assert_eq!(seen, vec![0, 1, 2, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn two_queues_never_hold_the_same_range() {
        let dir = tmp_dir("disjoint");
        let a = queue(&dir, "a", 8, 4, Duration::from_secs(60));
        let b = queue(&dir, "b", 8, 4, Duration::from_secs(60));
        let chunk_a = a.claim().unwrap();
        let chunk_b = b.claim().unwrap();
        assert_eq!(chunk_a.len(), 4);
        assert_eq!(chunk_b.len(), 4);
        assert_ne!(chunk_a[0], chunk_b[0], "ranges must be disjoint");
        let leases = list_leases(&dir.join("leases")).unwrap();
        assert_eq!(leases.len(), 2);
        let workers: Vec<_> = leases
            .iter()
            .map(|l| l.record.as_ref().unwrap().worker.clone())
            .collect();
        assert!(workers.contains(&"a".to_string()));
        assert!(workers.contains(&"b".to_string()));
    }

    #[test]
    fn chunk_done_flushes_shard_and_releases_lease() {
        let dir = tmp_dir("done");
        let q = queue(&dir, "w", 4, 4, Duration::from_secs(60));
        let mut cp = checkpoint(4);
        let chunk = q.claim().unwrap();
        assert_eq!(chunk, vec![0, 1, 2, 3]);
        for p in &mut cp.points {
            p.complete = true;
            p.injections_done = 64;
        }
        q.chunk_done(&chunk, &cp).unwrap();
        assert!(list_leases(&dir.join("leases")).unwrap().is_empty());
        let shards = list_shards(&dir.join("shards")).unwrap();
        assert_eq!(shards.len(), 1);
        assert!(shards[0].is_complete());
        assert_eq!(shards[0].worker, "w");
        assert!(q.all_ranges_complete().unwrap());
        // Drained: nothing left to claim.
        assert!(q.claim().unwrap().is_empty());
    }

    #[test]
    fn expired_lease_is_reclaimed_and_hydrates_partial_shard() {
        let dir = tmp_dir("reclaim");
        // Worker "dead" claims with a zero-ish TTL and flushes partial
        // progress, then vanishes without releasing.
        let dead = queue(&dir, "dead", 4, 4, Duration::from_secs(1));
        let chunk = dead.claim().unwrap();
        let mut cp = checkpoint(4);
        dead.hydrate(&chunk, &mut cp).unwrap();
        cp.points[0].injections_done = 64;
        cp.points[0].counts[0] = 64;
        dead.flush_held(&cp).unwrap();
        drop(dead);
        std::thread::sleep(Duration::from_millis(2100));

        // A live worker reclaims the expired lease…
        let live = queue(&dir, "live", 4, 4, Duration::from_secs(60));
        let chunk2 = live.claim().unwrap();
        assert_eq!(chunk2, chunk, "expired range is claimable again");
        let leases = list_leases(&dir.join("leases")).unwrap();
        assert_eq!(leases[0].record.as_ref().unwrap().worker, "live");

        // …and hydration resumes from the dead worker's partial shard.
        let mut fresh = checkpoint(4);
        live.hydrate(&chunk2, &mut fresh).unwrap();
        assert_eq!(fresh.points[0].injections_done, 64);
    }

    #[test]
    fn live_lease_is_not_stealable_and_refresh_extends_it() {
        let dir = tmp_dir("live");
        let holder = queue(&dir, "holder", 4, 4, Duration::from_secs(60));
        let _chunk = holder.claim().unwrap();
        let before = list_leases(&dir.join("leases")).unwrap()[0]
            .record
            .clone()
            .unwrap();

        // A rival sees the live lease and cannot acquire the range.
        let rival = queue(&dir, "rival", 4, 4, Duration::from_secs(60));
        assert!(matches!(rival.lease_on_disk(0), LeaseOnDisk::Live));
        {
            let mut state = rival.state.lock().unwrap();
            assert!(
                !rival.acquire(0, &mut state, false, 0).unwrap(),
                "live lease must hold"
            );
        }

        std::thread::sleep(Duration::from_millis(1100));
        holder.refresh_held().unwrap();
        let after = list_leases(&dir.join("leases")).unwrap()[0]
            .record
            .clone()
            .unwrap();
        assert_eq!(after.worker, "holder");
        assert!(after.expires_unix > before.expires_unix);

        // Graceful release frees the range for the rival immediately.
        holder.release_held();
        assert!(matches!(rival.lease_on_disk(0), LeaseOnDisk::Absent));
        let mut state = rival.state.lock().unwrap();
        assert!(rival.acquire(0, &mut state, false, 0).unwrap());
    }

    /// Rewrite a file's mtime (the observed-age clock leases live by).
    fn set_mtime(path: &Path, to: SystemTime) {
        let file = std::fs::OpenOptions::new().append(true).open(path).unwrap();
        file.set_times(std::fs::FileTimes::new().set_modified(to))
            .unwrap();
    }

    fn raw_lease(worker: &str, acquired_unix: u64, expires_unix: u64) -> String {
        serde_json::to_string_pretty(&LeaseRecord {
            version: LEASE_VERSION,
            fingerprint: "fp".into(),
            worker: worker.into(),
            range_start: 0,
            range_end: 4,
            acquired_unix,
            expires_unix,
        })
        .unwrap()
    }

    #[test]
    fn skewed_clock_stamps_never_steal_a_live_lease() {
        // The holder's clock is hours *behind* ours: its stamps look
        // long-expired, but the file itself is fresh (it is being
        // heartbeaten right now). Stamp comparison would steal the live
        // lease; observed age must not.
        let dir = tmp_dir("skew_live");
        let q = queue(&dir, "local", 4, 4, Duration::from_secs(60));
        let now = unix_now();
        let path = dir.join("leases").join(lease_file_name(&(0..4)));
        std::fs::write(&path, raw_lease("remote", now - 9_000, now - 8_940)).unwrap();
        assert!(
            matches!(q.lease_on_disk(0), LeaseOnDisk::Live),
            "fresh file with stamp-expired record must stay live"
        );
        assert_eq!(
            sweep_expired_leases(&dir.join("leases")).unwrap(),
            (0, 1),
            "gc must keep it too"
        );
    }

    #[test]
    fn dead_lease_with_future_stamps_is_reclaimed_by_age() {
        // The dead holder's clock was hours *ahead* of ours: its expiry
        // stamp never passes our clock, so stamp comparison would wait
        // forever. The file has gone far longer than its TTL (60s,
        // recovered from the stamps themselves) without a heartbeat —
        // observed age reclaims it.
        let dir = tmp_dir("skew_dead");
        let q = queue(&dir, "local", 4, 4, Duration::from_secs(60));
        let now = unix_now();
        let path = dir.join("leases").join(lease_file_name(&(0..4)));
        std::fs::write(&path, raw_lease("remote", now + 50_000, now + 50_060)).unwrap();
        set_mtime(&path, SystemTime::now() - Duration::from_secs(600));
        assert!(
            matches!(q.lease_on_disk(0), LeaseOnDisk::Reclaimable),
            "stale file must be reclaimable despite future stamps"
        );
        assert_eq!(sweep_expired_leases(&dir.join("leases")).unwrap(), (1, 0));
    }

    #[test]
    fn future_mtime_is_an_uncomputable_age_and_never_expires() {
        // A clock step backwards leaves files with mtimes in our future;
        // `duration_since` fails and no age can be computed. Both the
        // claim path and the gc sweep must treat that as not-expired —
        // for unreadable garbage and for readable records alike.
        let dir = tmp_dir("future_mtime");
        let q = queue(&dir, "local", 8, 4, Duration::from_secs(1));
        let future = SystemTime::now() + Duration::from_secs(7_200);
        let garbage = dir.join("leases").join(lease_file_name(&(0..4)));
        std::fs::write(&garbage, "not json").unwrap();
        set_mtime(&garbage, future);
        let readable = dir.join("leases").join(lease_file_name(&(4..8)));
        std::fs::write(&readable, raw_lease("remote", 1, 2)).unwrap();
        set_mtime(&readable, future);
        assert!(matches!(q.lease_on_disk(0), LeaseOnDisk::Live));
        assert!(matches!(q.lease_on_disk(1), LeaseOnDisk::Live));
        assert_eq!(
            sweep_expired_leases(&dir.join("leases")).unwrap(),
            (0, 2),
            "un-computable ages must be kept"
        );
    }

    #[test]
    fn claim_prefers_the_most_expensive_remaining_range() {
        // Shards on disk: range 0..4 complete at 64 injections/point
        // (setting the observed price), 4..8 nearly done (cheap), 8..12
        // unstarted (4 points × 64 = the expensive one). The next claim
        // must take 8..12 first.
        let dir = tmp_dir("cost");
        let q = queue(&dir, "w", 12, 4, Duration::from_secs(60));
        let mut cp = checkpoint(12);
        for i in 0..4 {
            cp.points[i].complete = true;
            cp.points[i].injections_done = 64;
        }
        for i in 4..8 {
            cp.points[i].injections_done = 60;
        }
        let shards = dir.join("shards");
        cp.shard("w", 0..4)
            .save(&shards.join(shard_file_name(&(0..4))))
            .unwrap();
        cp.shard("w", 4..8)
            .save(&shards.join(shard_file_name(&(4..8))))
            .unwrap();
        let order = q.claim_order();
        assert_eq!(
            order,
            vec![(2, 256), (1, 16), (0, 0)],
            "descending estimated remaining cost"
        );
        assert_eq!(
            q.claim().unwrap(),
            vec![8, 9, 10, 11],
            "the expensive unstarted range is leased first"
        );
    }

    #[test]
    fn flush_held_never_clobbers_an_unhydrated_shard() {
        // A sibling thread's checkpoint flush can fire between claim()
        // and hydrate(); the previous holder's shard must survive it.
        let dir = tmp_dir("clobber");
        let mut with_progress = checkpoint(4);
        with_progress.points[0].injections_done = 64;
        with_progress.points[0].counts[0] = 64;
        let dead = queue(&dir, "dead", 4, 4, Duration::from_secs(1));
        let chunk = dead.claim().unwrap();
        let mut cp0 = checkpoint(4);
        dead.hydrate(&chunk, &mut cp0).unwrap();
        dead.flush_held(&with_progress).unwrap();
        drop(dead);
        std::thread::sleep(Duration::from_millis(2100));

        let live = queue(&dir, "live", 4, 4, Duration::from_secs(60));
        let chunk = live.claim().unwrap();
        // Flush before hydration: must NOT rewrite the shard from the
        // fresh (emptier) checkpoint.
        let mut fresh = checkpoint(4);
        live.flush_held(&fresh).unwrap();
        let shards = list_shards(&dir.join("shards")).unwrap();
        assert_eq!(shards[0].points[0].injections_done, 64, "shard clobbered");
        // After hydration the flush covers the range again — now with the
        // merged progress, so nothing is lost.
        live.hydrate(&chunk, &mut fresh).unwrap();
        assert_eq!(fresh.points[0].injections_done, 64);
        live.flush_held(&fresh).unwrap();
        let shards = list_shards(&dir.join("shards")).unwrap();
        assert_eq!(shards[0].points[0].injections_done, 64);
        assert_eq!(shards[0].worker, "live");
    }

    #[test]
    fn sibling_threads_never_claim_the_same_range() {
        // All runner threads of one process share a LeaseQueue (and thus
        // a worker id): concurrent claims must still hand out disjoint
        // ranges — a sibling's fresh lease is not a "stale own lease".
        let dir = tmp_dir("siblings");
        let q = queue(&dir, "w", 32, 4, Duration::from_secs(60));
        let chunks: Vec<Vec<usize>> = std::thread::scope(|scope| {
            (0..8)
                .map(|_| scope.spawn(|| q.claim().unwrap()))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let mut starts: Vec<usize> = chunks.iter().map(|c| c[0]).collect();
        starts.sort_unstable();
        starts.dedup();
        assert_eq!(starts.len(), 8, "each thread must claim a distinct range");
        assert_eq!(q.state.lock().unwrap().held.len(), 8);
        assert_eq!(list_leases(&dir.join("leases")).unwrap().len(), 8);
    }

    #[test]
    fn claim_waits_out_other_workers_leases() {
        // One range, held by a short-TTL worker that dies: a second
        // worker's claim() must poll until the lease expires, then win.
        let dir = tmp_dir("wait");
        let dead = queue(&dir, "dead", 2, 2, Duration::from_secs(1));
        assert_eq!(dead.claim().unwrap(), vec![0, 1]);
        drop(dead);

        let live = queue(&dir, "live", 2, 2, Duration::from_secs(60));
        let start = std::time::Instant::now();
        let chunk = live.claim().unwrap();
        assert_eq!(chunk, vec![0, 1]);
        assert!(
            start.elapsed() >= Duration::from_millis(900),
            "claim must have waited for expiry, not stolen a live lease"
        );
    }
}
