//! Named circuit specifications for the `ffr` CLI.
//!
//! A [`CircuitSpec`] resolves a circuit name (`counter`, `lfsr`, `alu`,
//! `traffic`, `mac-small`, `mac`) into everything a campaign needs: the
//! compiled circuit, a deterministic stimulus, the watch list, and the
//! failure judge appropriate for the design (the paper's packet-level
//! [`MacJudge`] for the MAC, the strict [`OutputMismatchJudge`] for the
//! generic circuits). The spec also renders the configuration description
//! string that feeds the artifact-store key, so every knob that changes
//! campaign results changes the cache address.

use ffr_circuits::corpus::{self, Corpus, CorpusSpec};
use ffr_circuits::{small, Mac10geConfig, MacJudge, MacTestbench, PacketExtractor, TrafficConfig};
use ffr_fault::{FailureClass, FailureJudge, OutputMismatchJudge};
use ffr_netlist::verilog;
use ffr_sim::{CompiledCircuit, GoldenRun, InputFrame, LaneView, Stimulus, WatchList};
use std::fmt;
use std::ops::Range;
use std::path::PathBuf;
use std::str::FromStr;

/// A named circuit the CLI can run campaigns on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitSpec {
    /// Enabled wrap-around counter (`small::counter_circuit`).
    Counter {
        /// Counter width in bits.
        width: usize,
    },
    /// LFSR + register pipeline (`small::lfsr_pipeline`).
    Lfsr {
        /// LFSR width in bits.
        width: usize,
        /// Pipeline depth in stages.
        depth: usize,
    },
    /// Registered ALU (`small::alu_circuit`).
    Alu {
        /// Operand width in bits.
        width: usize,
    },
    /// Traffic-light FSM (`small::traffic_light`).
    TrafficLight,
    /// The 10GE-MAC-like design at reduced scale.
    MacSmall,
    /// The 10GE-MAC-like design at the paper's scale (~1054 FFs).
    Mac,
    /// A corpus-catalog circuit (`corpus:<id>`, e.g. `corpus:fifo2x4`) —
    /// any [`Corpus::standard`] entry or valid [`CorpusSpec`] id.
    Corpus {
        /// Corpus id (see [`ffr_circuits::corpus`]).
        id: String,
    },
    /// A structural-Verilog design imported from a file
    /// (`verilog:<path>`), routed through the corpus import path.
    Verilog {
        /// Path to the Verilog source.
        path: PathBuf,
    },
}

impl CircuitSpec {
    /// Every recognised circuit name, for help output.
    pub const NAMES: [&'static str; 8] = [
        "counter",
        "lfsr",
        "alu",
        "traffic",
        "mac-small",
        "mac",
        "corpus",
        "verilog",
    ];

    /// Canonical name of the spec (without parameters).
    pub fn name(&self) -> &'static str {
        match self {
            CircuitSpec::Counter { .. } => "counter",
            CircuitSpec::Lfsr { .. } => "lfsr",
            CircuitSpec::Alu { .. } => "alu",
            CircuitSpec::TrafficLight => "traffic",
            CircuitSpec::MacSmall => "mac-small",
            CircuitSpec::Mac => "mac",
            CircuitSpec::Corpus { .. } => "corpus",
            CircuitSpec::Verilog { .. } => "verilog",
        }
    }

    /// Full round-trippable form including parameters (what the session
    /// manifest persists): `counter:6`, `lfsr:8:4`, …
    pub fn spec_string(&self) -> String {
        match self {
            CircuitSpec::Counter { width } => format!("counter:{width}"),
            CircuitSpec::Lfsr { width, depth } => format!("lfsr:{width}:{depth}"),
            CircuitSpec::Alu { width } => format!("alu:{width}"),
            CircuitSpec::TrafficLight => "traffic".to_string(),
            CircuitSpec::MacSmall => "mac-small".to_string(),
            CircuitSpec::Mac => "mac".to_string(),
            CircuitSpec::Corpus { id } => format!("corpus:{id}"),
            CircuitSpec::Verilog { path } => format!("verilog:{}", path.display()),
        }
    }

    /// Build the circuit, testbench and judge blueprint.
    ///
    /// `stim_seed` and `cycles` parameterize the generic pseudo-random
    /// stimulus; the MAC variants use the packet testbench's own schedule
    /// instead (seeded from `stim_seed`).
    pub fn prepare(&self, stim_seed: u64, cycles: u64) -> PreparedCircuit {
        match self {
            CircuitSpec::Counter { width } => self.prepare_small(
                small::counter_circuit(*width),
                stim_seed,
                cycles,
                format!("circuit=counter;width={width}"),
            ),
            CircuitSpec::Lfsr { width, depth } => self.prepare_small(
                small::lfsr_pipeline(*width, *depth),
                stim_seed,
                cycles,
                format!("circuit=lfsr;width={width};depth={depth}"),
            ),
            CircuitSpec::Alu { width } => self.prepare_small(
                small::alu_circuit(*width),
                stim_seed,
                cycles,
                format!("circuit=alu;width={width}"),
            ),
            CircuitSpec::TrafficLight => self.prepare_small(
                small::traffic_light(),
                stim_seed,
                cycles,
                "circuit=traffic".to_string(),
            ),
            CircuitSpec::MacSmall => Self::prepare_mac(
                Mac10geConfig::small(),
                TrafficConfig::small(),
                stim_seed,
                "mac-small",
            ),
            CircuitSpec::Mac => Self::prepare_mac(
                Mac10geConfig::default(),
                TrafficConfig::default(),
                stim_seed,
                "mac",
            ),
            CircuitSpec::Corpus { id } => {
                let netlist = corpus::resolve(id)
                    .unwrap_or_else(|e| panic!("corpus id validated at parse time: {e}"));
                self.prepare_small(netlist, stim_seed, cycles, format!("circuit=corpus:{id}"))
            }
            CircuitSpec::Verilog { path } => {
                let source = std::fs::read_to_string(path).unwrap_or_else(|e| {
                    panic!("cannot read Verilog source `{}`: {e}", path.display())
                });
                let netlist = verilog::parse(&source).unwrap_or_else(|e| {
                    panic!("cannot parse Verilog source `{}`: {e}", path.display())
                });
                // Key the store entry on design content, not the path: the
                // same file moved elsewhere must hit the same cache entry,
                // and an edited file must miss.
                let desc = format!(
                    "circuit=verilog;module={};hash={:016x}",
                    netlist.name(),
                    netlist.content_hash()
                );
                self.prepare_small(netlist, stim_seed, cycles, desc)
            }
        }
    }

    /// Validate the parts of a spec that touch the environment (the
    /// Verilog source file) without building anything — called by the
    /// session layer so CLI users get an error instead of a panic.
    ///
    /// # Errors
    ///
    /// Returns a description of the missing/invalid source.
    pub fn validate_sources(&self) -> Result<(), String> {
        if let CircuitSpec::Verilog { path } = self {
            let source = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read Verilog source `{}`: {e}", path.display()))?;
            verilog::parse(&source)
                .map_err(|e| format!("cannot parse Verilog source `{}`: {e}", path.display()))?;
        }
        Ok(())
    }

    fn prepare_small(
        &self,
        netlist: ffr_netlist::Netlist,
        stim_seed: u64,
        cycles: u64,
        desc: String,
    ) -> PreparedCircuit {
        let cc = CompiledCircuit::compile(netlist).expect("library circuit compiles");
        let stimulus = BoxedStimulus(Box::new(HashStimulus {
            num_inputs: cc.num_inputs(),
            cycles,
            seed: stim_seed,
        }));
        let watch = WatchList::all(&cc);
        // Leave settling margin at both ends of the run. The session layer
        // rejects short testbenches up front (`session::MIN_CYCLES`); this
        // assert guards direct programmatic use.
        assert!(
            cycles >= crate::session::MIN_CYCLES,
            "testbench of {cycles} cycles leaves no injection window"
        );
        let window = (cycles / 16).max(1)..cycles - (cycles / 8).max(1);
        let config_desc = format!("{desc};stim=hash;stim_seed={stim_seed};cycles={cycles}");
        PreparedCircuit {
            cc,
            stimulus,
            watch,
            judge_spec: JudgeSpec::OutputMismatch,
            window,
            config_desc,
        }
    }

    fn prepare_mac(
        mac_cfg: Mac10geConfig,
        mut traffic: TrafficConfig,
        stim_seed: u64,
        tag: &str,
    ) -> PreparedCircuit {
        traffic.seed = stim_seed;
        let (cc, tb, watch, extractor) = MacTestbench::setup(mac_cfg.clone(), &traffic);
        let window = tb.injection_window();
        let config_desc = format!(
            "circuit={tag};mac={mac_cfg:?};traffic={traffic:?};cycles={}",
            tb.num_cycles()
        );
        PreparedCircuit {
            cc,
            stimulus: BoxedStimulus(Box::new(tb)),
            watch,
            judge_spec: JudgeSpec::Mac(extractor),
            window,
            config_desc,
        }
    }
}

impl FromStr for CircuitSpec {
    type Err = String;

    /// Parse `name[:param[:param]]`: `counter[:width]`,
    /// `lfsr[:width[:depth]]`, `alu[:width]`, `traffic`, `mac-small`,
    /// `mac`, `corpus:<id>`, `verilog:<path>`. LFSR widths are limited by
    /// the tap table (4, 8, 16, 24, 32).
    fn from_str(s: &str) -> Result<CircuitSpec, String> {
        // Corpus ids and file paths have their own grammars; take the
        // whole remainder after the first `:` (paths may contain `:`).
        if let Some(rest) = s.strip_prefix("corpus:") {
            // Accept any id `prepare` can resolve: standard catalog
            // entries or parametric generator ids.
            if Corpus::standard().get(rest).is_none() {
                CorpusSpec::parse(rest)?;
            }
            return Ok(CircuitSpec::Corpus {
                id: rest.to_string(),
            });
        }
        if let Some(rest) = s.strip_prefix("verilog:") {
            if rest.is_empty() {
                return Err("verilog spec needs a file path (verilog:<path>)".to_string());
            }
            return Ok(CircuitSpec::Verilog {
                path: PathBuf::from(rest),
            });
        }
        if s == "corpus" || s == "verilog" {
            return Err(format!("`{s}` needs a parameter (`{s}:<...>`)"));
        }
        let mut parts = s.split(':');
        let name = parts.next().unwrap_or_default();
        let mut param = |default: usize| -> Result<usize, String> {
            match parts.next() {
                None => Ok(default),
                Some(p) => p
                    .parse::<usize>()
                    .map_err(|e| format!("bad parameter `{p}` in `{s}`: {e}"))
                    .and_then(|n| {
                        if n == 0 {
                            Err(format!("parameter in `{s}` must be positive"))
                        } else {
                            Ok(n)
                        }
                    }),
            }
        };
        let spec = match name {
            "counter" => CircuitSpec::Counter { width: param(8)? },
            "lfsr" => CircuitSpec::Lfsr {
                width: param(8)?,
                depth: param(4)?,
            },
            "alu" => CircuitSpec::Alu { width: param(8)? },
            "traffic" => CircuitSpec::TrafficLight,
            "mac-small" => CircuitSpec::MacSmall,
            "mac" => CircuitSpec::Mac,
            other => {
                return Err(format!(
                    "unknown circuit `{other}` (expected one of: {})",
                    CircuitSpec::NAMES.join(", ")
                ))
            }
        };
        if let CircuitSpec::Lfsr { width, .. } = spec {
            if ![4, 8, 16, 24, 32].contains(&width) {
                return Err(format!(
                    "lfsr width {width} unsupported (tap table covers 4, 8, 16, 24, 32)"
                ));
            }
        }
        if parts.next().is_some() {
            return Err(format!("too many parameters in `{s}`"));
        }
        Ok(spec)
    }
}

impl fmt::Display for CircuitSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything a campaign needs, resolved from a [`CircuitSpec`].
pub struct PreparedCircuit {
    /// The compiled circuit under test.
    pub cc: CompiledCircuit,
    /// Deterministic open-loop stimulus.
    pub stimulus: BoxedStimulus,
    /// Watched outputs for failure classification.
    pub watch: WatchList,
    /// How to build the failure judge once a golden run exists.
    pub judge_spec: JudgeSpec,
    /// Default injection window (the active phase).
    pub window: Range<u64>,
    /// Store-key configuration description (circuit + stimulus knobs).
    pub config_desc: String,
}

/// Boxed stimulus with a [`Stimulus`] impl (the campaign engine is generic;
/// the CLI needs runtime dispatch).
pub struct BoxedStimulus(Box<dyn Stimulus + Send + Sync>);

impl Stimulus for BoxedStimulus {
    fn num_cycles(&self) -> u64 {
        self.0.num_cycles()
    }

    fn drive(&self, cycle: u64, frame: &mut InputFrame) {
        self.0.drive(cycle, frame)
    }
}

/// Pseudo-random but replay-safe stimulus: every input bit is a pure hash
/// of `(seed, cycle, input)`, so arbitrary suffixes replay identically —
/// the property the fault engine's checkpoint restart requires.
struct HashStimulus {
    num_inputs: usize,
    cycles: u64,
    seed: u64,
}

impl HashStimulus {
    fn bit(&self, cycle: u64, input: usize) -> bool {
        let mut z = self
            .seed
            .wrapping_add(cycle.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((input as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) & 1 == 1
    }
}

impl Stimulus for HashStimulus {
    fn num_cycles(&self) -> u64 {
        self.cycles
    }

    fn drive(&self, cycle: u64, frame: &mut InputFrame) {
        for input in 0..self.num_inputs {
            frame.set(input, self.bit(cycle, input));
        }
    }
}

/// How the CLI builds a failure judge for a circuit.
pub enum JudgeSpec {
    /// Strict any-output-deviation judge.
    OutputMismatch,
    /// The paper's packet-level MAC judge.
    Mac(PacketExtractor),
}

impl JudgeSpec {
    /// Build the judge against a captured (or cached) golden run.
    pub fn build(&self, golden: &GoldenRun) -> CliJudge {
        match self {
            JudgeSpec::OutputMismatch => CliJudge::Mismatch(OutputMismatchJudge::new()),
            JudgeSpec::Mac(extractor) => CliJudge::Mac(MacJudge::new(extractor.clone(), golden)),
        }
    }
}

/// Runtime-dispatched failure judge for the CLI.
pub enum CliJudge {
    /// Generic output-deviation judge.
    Mismatch(OutputMismatchJudge),
    /// Packet-level MAC judge.
    Mac(MacJudge),
}

impl FailureJudge for CliJudge {
    fn classify(
        &self,
        golden: &LaneView<'_>,
        faulty: &LaneView<'_>,
        inject_cycle: u64,
    ) -> FailureClass {
        match self {
            CliJudge::Mismatch(j) => j.classify(golden, faulty, inject_cycle),
            CliJudge::Mac(j) => j.classify(golden, faulty, inject_cycle),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_parse_and_prepare() {
        for name in CircuitSpec::NAMES {
            if name.starts_with("mac") {
                continue; // covered separately; slower to elaborate
            }
            if name == "verilog" {
                continue; // needs a source file; covered below
            }
            let full = if name == "corpus" {
                "corpus:fifo2x4"
            } else {
                name
            };
            let spec: CircuitSpec = full.parse().unwrap();
            assert_eq!(spec.name(), name);
            let prepared = spec.prepare(1, 200);
            assert!(prepared.cc.num_ffs() > 0);
            assert!(prepared.window.start < prepared.window.end);
            assert!(prepared.window.end < prepared.stimulus.num_cycles());
            assert!(prepared
                .config_desc
                .contains(name.split('-').next().unwrap()));
        }
        assert!("bogus".parse::<CircuitSpec>().is_err());
    }

    #[test]
    fn corpus_specs_parse_and_round_trip() {
        // A standard catalog id and an off-catalog parametric id.
        for id in ["fifo2x4", "cnt5", "mix2s99"] {
            let s = format!("corpus:{id}");
            let spec: CircuitSpec = s.parse().unwrap();
            assert_eq!(spec.spec_string(), s);
            let prepared = spec.prepare(1, 200);
            assert!(prepared.cc.num_ffs() > 0);
            assert!(prepared.config_desc.contains(&s));
        }
        assert!("corpus:nope1".parse::<CircuitSpec>().is_err());
        assert!("corpus".parse::<CircuitSpec>().is_err());
    }

    #[test]
    fn verilog_specs_prepare_from_a_file() {
        use ffr_netlist::verilog;
        let dir = std::env::temp_dir().join(format!("ffr_spec_verilog_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cnt.v");
        let netlist = small::counter_circuit(5);
        std::fs::write(&path, verilog::emit(&netlist)).unwrap();

        let s = format!("verilog:{}", path.display());
        let spec: CircuitSpec = s.parse().unwrap();
        assert_eq!(spec.spec_string(), s);
        spec.validate_sources().unwrap();
        let prepared = spec.prepare(1, 200);
        assert_eq!(prepared.cc.num_ffs(), netlist.num_ffs());
        // The cache key carries the content hash, not the path.
        assert!(prepared
            .config_desc
            .contains(&format!("hash={:016x}", netlist.content_hash())));
        assert!(!prepared.config_desc.contains("cnt.v"));

        let missing = CircuitSpec::Verilog {
            path: dir.join("missing.v"),
        };
        assert!(missing.validate_sources().is_err());
        assert!("verilog".parse::<CircuitSpec>().is_err());
        assert!("verilog:".parse::<CircuitSpec>().is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hash_stimulus_is_replay_safe() {
        let s = HashStimulus {
            num_inputs: 5,
            cycles: 50,
            seed: 3,
        };
        let mut a = InputFrame::new(5);
        let mut b = InputFrame::new(5);
        for cycle in [0u64, 17, 49] {
            a.clear();
            s.drive(cycle, &mut a);
            b.clear();
            s.drive(cycle, &mut b);
            // Same cycle → identical frame, regardless of replay order.
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "cycle {cycle}");
        }
        // Bits vary across cycles and inputs (not constant).
        let bits: Vec<bool> = (0..50).map(|c| s.bit(c, 0)).collect();
        assert!(bits.iter().any(|&b| b) && bits.iter().any(|&b| !b));
    }

    #[test]
    fn config_desc_distinguishes_stimulus_seeds() {
        let spec = CircuitSpec::Counter { width: 8 };
        let a = spec.prepare(1, 200).config_desc;
        let b = spec.prepare(2, 200).config_desc;
        assert_ne!(a, b);
    }
}
