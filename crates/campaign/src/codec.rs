//! Dependency-free DEFLATE (RFC 1951) and base64 codecs for the artifact
//! store's compressed payload envelope.
//!
//! Golden-run artifacts for the paper-scale MAC serialize to multi-MB
//! JSON; the store's version-2 envelope deflates the payload text and
//! embeds it as base64 inside the (still self-describing, still JSON)
//! envelope. The build environment has no crates registry, so both codecs
//! are implemented here from the RFC rather than pulled from `flate2`.
//!
//! The encoder emits a single compression mode — LZ77 matching over a
//! 32 KiB window with the *fixed* Huffman tables of RFC 1951 §3.2.6 —
//! and falls back to stored (uncompressed) blocks when fixed-Huffman
//! coding would expand the input. The decoder accepts stored and
//! fixed-Huffman blocks, i.e. everything this encoder can produce;
//! dynamic-Huffman streams (which only a foreign writer could have
//! produced) are rejected as corrupt.
//!
//! Determinism: the encoder is a pure function of the input bytes —
//! greedy matching with a bounded hash-chain walk, no randomization, no
//! heuristics keyed on time or allocation addresses — so identical
//! payloads compress to identical artifact bytes, preserving the store's
//! byte-identical cache-hit property.

/// Longest match DEFLATE can encode.
const MAX_MATCH: usize = 258;
/// Shortest match worth encoding (below this, literals are cheaper).
const MIN_MATCH: usize = 3;
/// LZ77 history window.
const WINDOW: usize = 32 * 1024;
/// Cap on hash-chain probes per position (compression/speed trade-off;
/// also part of the deterministic output contract — do not tune per run).
const MAX_CHAIN: usize = 128;

/// `(base length, extra bits)` for length codes 257..=285 (RFC 1951 §3.2.5).
const LENGTH_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
const LENGTH_EXTRA: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];

/// `(base distance, extra bits)` for distance codes 0..=29.
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

// ---------------------------------------------------------------------------
// Bit I/O (DEFLATE packs bits LSB-first within bytes; Huffman codes are
// written most-significant-bit first)
// ---------------------------------------------------------------------------

struct BitWriter {
    out: Vec<u8>,
    bits: u32,
    nbits: u32,
}

impl BitWriter {
    fn new() -> BitWriter {
        BitWriter {
            out: Vec::new(),
            bits: 0,
            nbits: 0,
        }
    }

    /// Write `n` bits of `v`, least-significant first (headers, extra bits).
    fn write_bits(&mut self, v: u32, n: u32) {
        self.bits |= v << self.nbits;
        self.nbits += n;
        while self.nbits >= 8 {
            self.out.push((self.bits & 0xFF) as u8);
            self.bits >>= 8;
            self.nbits -= 8;
        }
    }

    /// Write an `n`-bit Huffman code, most-significant bit first: one
    /// bit-reversal plus a single buffered write (this runs once per
    /// symbol — the hot path of compression).
    fn write_code(&mut self, code: u32, n: u32) {
        self.write_bits(code.reverse_bits() >> (32 - n), n);
    }

    /// Pad to a byte boundary with zero bits.
    fn align(&mut self) {
        if self.nbits > 0 {
            self.out.push((self.bits & 0xFF) as u8);
            self.bits = 0;
            self.nbits = 0;
        }
    }

    fn finish(mut self) -> Vec<u8> {
        self.align();
        self.out
    }
}

struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    bits: u32,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> BitReader<'a> {
        BitReader {
            data,
            pos: 0,
            bits: 0,
            nbits: 0,
        }
    }

    fn read_bits(&mut self, n: u32) -> Result<u32, String> {
        while self.nbits < n {
            let byte = *self.data.get(self.pos).ok_or("deflate stream truncated")?;
            self.pos += 1;
            self.bits |= (byte as u32) << self.nbits;
            self.nbits += 8;
        }
        let v = self.bits & ((1u32 << n) - 1);
        self.bits >>= n;
        self.nbits -= n;
        Ok(v)
    }

    /// Read `n` bits accumulating most-significant first (Huffman codes):
    /// one buffered read plus a bit-reversal.
    fn read_code(&mut self, n: u32) -> Result<u32, String> {
        Ok(self.read_bits(n)?.reverse_bits() >> (32 - n))
    }

    /// Discard partial bits and return to whole-byte reading.
    fn align(&mut self) {
        let drop = self.nbits % 8;
        self.bits >>= drop;
        self.nbits -= drop;
    }

    fn read_le16(&mut self) -> Result<u16, String> {
        debug_assert_eq!(self.nbits % 8, 0);
        Ok(self.read_bits(16)? as u16)
    }
}

// ---------------------------------------------------------------------------
// Fixed Huffman tables (RFC 1951 §3.2.6)
// ---------------------------------------------------------------------------

/// `(code, length)` of a literal/length symbol under the fixed table.
fn fixed_litlen_code(sym: u32) -> (u32, u32) {
    match sym {
        0..=143 => (0x30 + sym, 8),
        144..=255 => (0x190 + (sym - 144), 9),
        256..=279 => (sym - 256, 7),
        _ => (0xC0 + (sym - 280), 8),
    }
}

/// Decode one literal/length symbol from a fixed-Huffman block.
fn decode_fixed_litlen(r: &mut BitReader<'_>) -> Result<u32, String> {
    let mut v = r.read_code(7)?;
    if v <= 0x17 {
        return Ok(256 + v);
    }
    v = (v << 1) | r.read_bits(1)?;
    if (0x30..=0xBF).contains(&v) {
        return Ok(v - 0x30);
    }
    if (0xC0..=0xC7).contains(&v) {
        return Ok(280 + (v - 0xC0));
    }
    v = (v << 1) | r.read_bits(1)?;
    if (0x190..=0x1FF).contains(&v) {
        return Ok(144 + (v - 0x190));
    }
    Err("invalid fixed-Huffman literal/length code".into())
}

/// Largest index with `table[i] <= value` (code lookup for length/dist).
fn code_for(table: &[u16], value: u16) -> usize {
    match table.binary_search(&value) {
        Ok(i) => i,
        Err(i) => i - 1,
    }
}

// ---------------------------------------------------------------------------
// Compression
// ---------------------------------------------------------------------------

/// Compress `data` into a raw DEFLATE stream (no zlib/gzip wrapper).
///
/// Deterministic: identical input always yields identical output.
pub fn deflate(data: &[u8]) -> Vec<u8> {
    let fixed = deflate_fixed(data);
    // Fixed-Huffman coding expands truly incompressible input (literals
    // ≥ 144 cost 9 bits); fall back to stored blocks when that happens.
    if fixed.len() > stored_size(data.len()) {
        deflate_stored(data)
    } else {
        fixed
    }
}

/// Size of `n` bytes encoded as stored blocks: per block, a 3-bit header
/// rounded up to a byte plus the 4 LEN/NLEN bytes.
fn stored_size(n: usize) -> usize {
    let blocks = n.div_ceil(0xFFFF).max(1);
    blocks * 5 + n
}

fn deflate_stored(data: &[u8]) -> Vec<u8> {
    let mut w = BitWriter::new();
    let mut chunks = data.chunks(0xFFFF).peekable();
    if data.is_empty() {
        w.write_bits(1, 1); // BFINAL
        w.write_bits(0, 2); // BTYPE = stored
        w.align();
        w.out.extend_from_slice(&[0, 0, 0xFF, 0xFF]);
        return w.finish();
    }
    while let Some(chunk) = chunks.next() {
        w.write_bits(u32::from(chunks.peek().is_none()), 1);
        w.write_bits(0, 2);
        w.align();
        let len = chunk.len() as u16;
        w.out.extend_from_slice(&len.to_le_bytes());
        w.out.extend_from_slice(&(!len).to_le_bytes());
        w.out.extend_from_slice(chunk);
    }
    w.finish()
}

const HASH_BITS: u32 = 15;

fn hash3(data: &[u8], i: usize) -> usize {
    let h = (data[i] as u32)
        .wrapping_mul(0x9E37)
        .wrapping_add((data[i + 1] as u32).wrapping_mul(0x79B9))
        .wrapping_add(data[i + 2] as u32);
    (h.wrapping_mul(0x9E3779B1) >> (32 - HASH_BITS)) as usize
}

fn match_len(data: &[u8], a: usize, b: usize, max: usize) -> usize {
    let mut n = 0;
    while n < max && data[a + n] == data[b + n] {
        n += 1;
    }
    n
}

fn deflate_fixed(data: &[u8]) -> Vec<u8> {
    let mut w = BitWriter::new();
    w.write_bits(1, 1); // BFINAL: single block
    w.write_bits(1, 2); // BTYPE = fixed Huffman

    // Hash chains over the sliding window. `prev` is a WINDOW-sized ring
    // keyed by position modulo WINDOW: a slot is only ever read for
    // candidates within WINDOW of the current position (the distance
    // guard below), and its next same-residue writer lies a full WINDOW
    // later — so reads always see the exact chain link, with a fixed
    // footprint instead of one slot per input byte.
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; WINDOW];
    let insert = |head: &mut Vec<usize>, prev: &mut Vec<usize>, i: usize| {
        if i + MIN_MATCH <= data.len() {
            let h = hash3(data, i);
            prev[i & (WINDOW - 1)] = head[h];
            head[h] = i;
        }
    };

    let emit_sym = |w: &mut BitWriter, sym: u32| {
        let (code, n) = fixed_litlen_code(sym);
        w.write_code(code, n);
    };

    let mut i = 0;
    while i < data.len() {
        let max = (data.len() - i).min(MAX_MATCH);
        let mut best_len = 0;
        let mut best_dist = 0;
        if max >= MIN_MATCH {
            let mut cand = head[hash3(data, i)];
            let mut chain = 0;
            while cand != usize::MAX && i - cand <= WINDOW && chain < MAX_CHAIN {
                let len = match_len(data, cand, i, max);
                if len > best_len {
                    best_len = len;
                    best_dist = i - cand;
                    if len == max {
                        break;
                    }
                }
                cand = prev[cand & (WINDOW - 1)];
                chain += 1;
            }
        }
        if best_len >= MIN_MATCH {
            let lcode = code_for(&LENGTH_BASE, best_len as u16);
            emit_sym(&mut w, 257 + lcode as u32);
            w.write_bits(
                (best_len as u16 - LENGTH_BASE[lcode]) as u32,
                LENGTH_EXTRA[lcode] as u32,
            );
            let dcode = code_for(&DIST_BASE, best_dist as u16);
            w.write_code(dcode as u32, 5);
            w.write_bits(
                (best_dist as u16 - DIST_BASE[dcode]) as u32,
                DIST_EXTRA[dcode] as u32,
            );
            for k in i..i + best_len {
                insert(&mut head, &mut prev, k);
            }
            i += best_len;
        } else {
            emit_sym(&mut w, data[i] as u32);
            insert(&mut head, &mut prev, i);
            i += 1;
        }
    }
    emit_sym(&mut w, 256); // end of block
    w.finish()
}

// ---------------------------------------------------------------------------
// Decompression
// ---------------------------------------------------------------------------

/// Decompress a raw DEFLATE stream produced by [`deflate`].
///
/// # Errors
///
/// Returns a description of the first corruption encountered (truncated
/// stream, invalid code, distance before the start of output, or an
/// unsupported dynamic-Huffman block).
pub fn inflate(data: &[u8]) -> Result<Vec<u8>, String> {
    let mut r = BitReader::new(data);
    let mut out = Vec::new();
    loop {
        let bfinal = r.read_bits(1)?;
        match r.read_bits(2)? {
            0 => {
                r.align();
                let len = r.read_le16()? as usize;
                let nlen = r.read_le16()?;
                if !(len as u16) != nlen {
                    return Err("stored block LEN/NLEN mismatch".into());
                }
                for _ in 0..len {
                    out.push(r.read_bits(8)? as u8);
                }
            }
            1 => loop {
                let sym = decode_fixed_litlen(&mut r)?;
                match sym {
                    0..=255 => out.push(sym as u8),
                    256 => break,
                    257..=285 => {
                        let lcode = (sym - 257) as usize;
                        let len = LENGTH_BASE[lcode] as usize
                            + r.read_bits(LENGTH_EXTRA[lcode] as u32)? as usize;
                        let dcode = r.read_code(5)? as usize;
                        if dcode >= DIST_BASE.len() {
                            return Err("invalid distance code".into());
                        }
                        let dist = DIST_BASE[dcode] as usize
                            + r.read_bits(DIST_EXTRA[dcode] as u32)? as usize;
                        if dist > out.len() {
                            return Err("distance before start of output".into());
                        }
                        // Overlapping copies are the RLE idiom — copy
                        // byte-by-byte, never memcpy.
                        let start = out.len() - dist;
                        for k in 0..len {
                            let b = out[start + k];
                            out.push(b);
                        }
                    }
                    _ => return Err("invalid literal/length symbol".into()),
                }
            },
            2 => return Err("dynamic-Huffman blocks unsupported (foreign stream)".into()),
            _ => return Err("invalid block type".into()),
        }
        if bfinal == 1 {
            return Ok(out);
        }
    }
}

// ---------------------------------------------------------------------------
// Base64 (standard alphabet, RFC 4648, with padding)
// ---------------------------------------------------------------------------

const B64: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encode bytes as standard base64 with padding.
pub fn base64_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [
            chunk[0],
            *chunk.get(1).unwrap_or(&0),
            *chunk.get(2).unwrap_or(&0),
        ];
        let n = ((b[0] as u32) << 16) | ((b[1] as u32) << 8) | b[2] as u32;
        out.push(B64[(n >> 18) as usize & 63] as char);
        out.push(B64[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            B64[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            B64[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Decode standard base64 (padding required for the final group).
///
/// # Errors
///
/// Fails on characters outside the alphabet or a malformed length.
pub fn base64_decode(text: &str) -> Result<Vec<u8>, String> {
    fn val(c: u8) -> Result<u32, String> {
        match c {
            b'A'..=b'Z' => Ok((c - b'A') as u32),
            b'a'..=b'z' => Ok((c - b'a' + 26) as u32),
            b'0'..=b'9' => Ok((c - b'0' + 52) as u32),
            b'+' => Ok(62),
            b'/' => Ok(63),
            _ => Err(format!("invalid base64 character `{}`", c as char)),
        }
    }
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err("base64 length not a multiple of 4".into());
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for group in bytes.chunks(4) {
        let pad = group.iter().filter(|&&c| c == b'=').count();
        if pad > 2 || group[..4 - pad].contains(&b'=') {
            return Err("misplaced base64 padding".into());
        }
        let mut n = 0u32;
        for &c in &group[..4 - pad] {
            n = (n << 6) | val(c)?;
        }
        n <<= 6 * pad as u32;
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let packed = deflate(data);
        let unpacked = inflate(&packed).expect("inflate");
        assert_eq!(unpacked, data, "round trip of {} bytes", data.len());
    }

    #[test]
    fn empty_input_is_the_canonical_fixed_block() {
        // BFINAL=1, BTYPE=fixed, EOB — the classic `03 00` stream.
        assert_eq!(deflate(b""), vec![0x03, 0x00]);
        assert_eq!(inflate(&[0x03, 0x00]).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn round_trips() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa");
        round_trip(b"Hello Hello Hello Hello, deflate!");
        round_trip("{\"version\":2,\"points\":[1,2,3]}".repeat(500).as_bytes());
        let all: Vec<u8> = (0u16..256).map(|b| b as u8).collect();
        round_trip(&all);
    }

    #[test]
    fn long_repetitive_input_spans_the_window() {
        let mut data = Vec::new();
        for i in 0..20_000u32 {
            data.extend_from_slice(format!("row,{},{}\n", i, i % 7).as_bytes());
        }
        let packed = deflate(&data);
        assert!(
            packed.len() * 2 < data.len(),
            "repetitive text must compress well ({} -> {})",
            data.len(),
            packed.len()
        );
        assert_eq!(inflate(&packed).unwrap(), data);
    }

    #[test]
    fn incompressible_input_falls_back_to_stored_blocks() {
        // xorshift noise: fixed-Huffman would expand it; the stored
        // fallback must keep overhead to the per-block headers.
        let mut x = 0x2545F491_4F6CDD1Du64;
        let data: Vec<u8> = (0..200_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 32) as u8
            })
            .collect();
        let packed = deflate(&data);
        assert!(packed.len() <= stored_size(data.len()));
        assert_eq!(inflate(&packed).unwrap(), data);
    }

    #[test]
    fn deterministic_output() {
        let data = "campaign checkpoint ".repeat(1000);
        assert_eq!(deflate(data.as_bytes()), deflate(data.as_bytes()));
    }

    #[test]
    fn inflate_rejects_corruption() {
        assert!(inflate(&[]).is_err());
        assert!(inflate(&[0x05, 0x00]).is_err(), "dynamic blocks rejected");
        let mut packed = deflate(b"hello hello hello hello");
        packed.truncate(packed.len() - 2);
        assert!(inflate(&packed).is_err(), "truncation detected");
        // Stored block with a broken NLEN complement.
        assert!(inflate(&[0x01, 0x02, 0x00, 0x00, 0x00, b'a', b'b']).is_err());
    }

    #[test]
    fn base64_known_vectors() {
        assert_eq!(base64_encode(b""), "");
        assert_eq!(base64_encode(b"M"), "TQ==");
        assert_eq!(base64_encode(b"Ma"), "TWE=");
        assert_eq!(base64_encode(b"Man"), "TWFu");
        assert_eq!(base64_decode("TWFu").unwrap(), b"Man");
        assert_eq!(base64_decode("TWE=").unwrap(), b"Ma");
        assert_eq!(base64_decode("TQ==").unwrap(), b"M");
        assert!(base64_decode("TWF").is_err());
        assert!(base64_decode("T=Fu").is_err());
        assert!(base64_decode("TW!u").is_err());
    }

    #[test]
    fn base64_round_trips_binary() {
        let data: Vec<u8> = (0u16..256).map(|b| b as u8).collect();
        for end in [0, 1, 2, 3, 255, 256] {
            let enc = base64_encode(&data[..end]);
            assert_eq!(base64_decode(&enc).unwrap(), &data[..end]);
        }
    }
}
