//! Process-level telemetry flow: a real `ffr run` writes per-worker
//! JSONL logs under `<campaign>/telemetry/`, `ffr stats` merges them into
//! a phase/throughput report (text and `--json`), `ffr status --json`
//! carries a versioned schema with live rates, `FFR_TELEMETRY=0` disables
//! recording, and `ffr gc --campaign` sweeps the logs of a completed
//! campaign.

use serde_json::parse_value_complete;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

const FFR: &str = env!("CARGO_BIN_EXE_ffr");

fn fresh_base(tag: &str) -> PathBuf {
    let base = std::env::temp_dir().join(format!("ffr_stats_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    base
}

fn ffr(args: &[&str], envs: &[(&str, &str)]) -> std::process::Output {
    let mut cmd = Command::new(FFR);
    cmd.args(args).stdout(Stdio::piped()).stderr(Stdio::piped());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn ffr")
}

fn run_args(out: &str) -> Vec<&str> {
    vec![
        "run",
        "--circuit",
        "counter",
        "--out",
        out,
        "--cycles",
        "160",
        "--injections",
        "48",
        "--checkpoint-every",
        "4",
    ]
}

fn get<'a>(v: &'a serde_json::Value, path: &[&str]) -> &'a serde_json::Value {
    let mut cur = v;
    for key in path {
        cur = cur
            .get(key)
            .unwrap_or_else(|| panic!("missing key `{key}` in {cur:?}"));
    }
    cur
}

#[test]
fn telemetry_stats_status_and_gc_flow() {
    let base = fresh_base("flow");
    let out = base.join("session");
    let out_s = out.to_string_lossy().into_owned();

    // A completed run leaves a telemetry log for the `local` worker.
    let run = ffr(&run_args(&out_s), &[("FFR_LOG", "debug")]);
    assert!(run.status.success(), "{run:?}");
    let telemetry = out.join("telemetry");
    assert!(
        telemetry.join("local.jsonl").exists(),
        "expected a local.jsonl telemetry log"
    );

    // The text report names the phases and the throughput.
    let stats = ffr(&["stats", "--campaign", &out_s], &[]);
    assert!(stats.status.success());
    let text = String::from_utf8_lossy(&stats.stdout);
    assert!(text.contains("phases (merged):"), "{text}");
    assert!(text.contains("measure"), "{text}");
    assert!(text.contains("injections"), "{text}");

    // The JSON report parses, is versioned, and carries the expected
    // span, counter and histogram names.
    let stats_json = ffr(&["stats", "--campaign", &out_s, "--json"], &[]);
    assert!(stats_json.status.success());
    let doc = parse_value_complete(&String::from_utf8_lossy(&stats_json.stdout))
        .expect("stats --json parses");
    assert_eq!(
        get(&doc, &["schema_version"]),
        &serde_json::Value::U64(1),
        "{doc:?}"
    );
    for span in [
        "phase.golden",
        "phase.measure",
        "phase.publish",
        "range.run",
    ] {
        assert!(
            get(&doc, &["spans"]).get(span).is_some(),
            "missing span `{span}` in {doc:?}"
        );
    }
    let injections = get(&doc, &["counters", "injections"]);
    assert!(
        matches!(injections, serde_json::Value::U64(n) if *n > 0),
        "{injections:?}"
    );
    assert!(
        get(&doc, &["hists"]).get("checkpoint.flush_us").is_some(),
        "missing checkpoint.flush_us histogram in {doc:?}"
    );
    let workers = get(&doc, &["workers"]).as_array().unwrap();
    assert_eq!(workers.len(), 1);
    assert_eq!(
        get(&workers[0], &["worker"]),
        &serde_json::Value::Str("local".into())
    );
    assert!(
        !matches!(
            get(&workers[0], &["injections_per_sec"]),
            serde_json::Value::Null
        ),
        "expected a live injections/sec estimate"
    );

    // `ffr status --json` is versioned and carries the live rate.
    let status = ffr(&["status", "--out", &out_s, "--json"], &[]);
    assert!(status.status.success());
    let doc = parse_value_complete(&String::from_utf8_lossy(&status.stdout))
        .expect("status --json parses");
    assert_eq!(get(&doc, &["schema_version"]), &serde_json::Value::U64(2));
    assert!(
        get(&doc, &["telemetry"])
            .get("injections_per_sec")
            .is_some(),
        "{doc:?}"
    );

    // gc sweeps the telemetry logs of the completed campaign.
    let gc = ffr(&["gc", "--campaign", &out_s], &[]);
    assert!(gc.status.success());
    let gc_text = String::from_utf8_lossy(&gc.stdout);
    assert!(gc_text.contains("telemetry log(s)"), "{gc_text}");
    assert!(!telemetry.join("local.jsonl").exists());

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn ffr_telemetry_0_disables_recording() {
    let base = fresh_base("disabled");
    let out = base.join("session");
    let out_s = out.to_string_lossy().into_owned();

    let run = ffr(&run_args(&out_s), &[("FFR_TELEMETRY", "0")]);
    assert!(run.status.success(), "{run:?}");
    assert!(
        !out.join("telemetry").join("local.jsonl").exists(),
        "FFR_TELEMETRY=0 must suppress the log"
    );

    // `ffr stats` degrades gracefully instead of failing.
    let stats = ffr(&["stats", "--campaign", &out_s], &[]);
    assert!(stats.status.success());
    let text = String::from_utf8_lossy(&stats.stdout);
    assert!(text.contains("no telemetry"), "{text}");

    // Status still works; it just omits the telemetry field's rates.
    let status = ffr(&["status", "--out", &out_s, "--json"], &[]);
    assert!(status.status.success());

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn quiet_flag_silences_stderr_progress() {
    let base = fresh_base("quiet");
    let out = base.join("session");
    let out_s = out.to_string_lossy().into_owned();

    let mut args = run_args(&out_s);
    args.push("--quiet");
    let run = ffr(&args, &[]);
    assert!(run.status.success(), "{run:?}");
    let stderr = String::from_utf8_lossy(&run.stderr);
    assert!(
        stderr.trim().is_empty(),
        "--quiet must silence progress chatter, got: {stderr}"
    );
    // Product output stays on stdout regardless of verbosity.
    let stdout = String::from_utf8_lossy(&run.stdout);
    assert!(stdout.contains("FDR table written"), "{stdout}");

    let _ = std::fs::remove_dir_all(&base);
}

/// Byte-identical invariant with telemetry enabled: an interrupted +
/// resumed campaign and a clean one produce identical `fdr.json` bytes
/// even though both sessions record telemetry (the logs live outside the
/// fingerprint and the artifact store).
#[test]
fn telemetry_does_not_perturb_byte_identical_results() {
    let base = fresh_base("identical");
    let a = base.join("a");
    let b = base.join("b");
    let a_s = a.to_string_lossy().into_owned();
    let b_s = b.to_string_lossy().into_owned();

    let mut interrupted = run_args(&a_s);
    interrupted.extend_from_slice(&["--stop-after-points", "2"]);
    let run = ffr(&interrupted, &[("FFR_LOG", "debug")]);
    assert_eq!(run.status.code(), Some(2), "{run:?}");
    let resume = ffr(&["resume", "--out", &a_s], &[("FFR_LOG", "debug")]);
    assert!(resume.status.success(), "{resume:?}");

    let clean = ffr(&run_args(&b_s), &[]);
    assert!(clean.status.success(), "{clean:?}");

    let fdr = |dir: &Path| std::fs::read(dir.join("fdr.json")).expect("fdr.json");
    assert_eq!(fdr(&a), fdr(&b), "telemetry must not perturb results");

    // Both telemetry logs exist and merge cleanly.
    let stats = ffr(&["stats", "--campaign", &a_s, "--json"], &[]);
    assert!(stats.status.success());
    parse_value_complete(&String::from_utf8_lossy(&stats.stdout)).expect("parses");

    let _ = std::fs::remove_dir_all(&base);
}
