//! Fuzz-ish properties of the policy-spec grammar: `Display` and
//! `FromStr` on [`AdaptivePolicy`] must round-trip exactly for every
//! representable policy, because the rendered spec is what the campaign
//! manifest persists and what the campaign fingerprint hashes — a lossy
//! rendering would let two different stopping rules share a cache entry
//! or resume each other's checkpoints.

use ffr_campaign::AdaptivePolicy;
use proptest::prelude::*;

/// The confidence notations the grammar can emit (`@95`-style percents
/// plus the explicit-quantile escape hatch).
const QUANTILES: [f64; 5] = [1.645, 1.96, 2.326, 2.576, 3.1];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `parse(display(p)) == p` for every fixed policy.
    #[test]
    fn fixed_policies_round_trip(n in 1usize..5000) {
        let p = AdaptivePolicy::fixed(n);
        let spec = p.to_string();
        prop_assert_eq!(spec.parse::<AdaptivePolicy>().unwrap(), p, "spec `{}`", spec);
    }

    /// `parse(display(p)) == p` for every Wilson policy the grammar can
    /// express: arbitrary half-widths, tabled and free-form quantiles,
    /// arbitrary bounds.
    #[test]
    fn wilson_policies_round_trip(
        hw in 0.001f64..0.499,
        which_z in 0usize..QUANTILES.len(),
        min in 0usize..2048,
        extra in 1usize..2048,
    ) {
        let p = AdaptivePolicy {
            min_injections: min,
            max_injections: min + extra,
            z: QUANTILES[which_z],
            ci_half_width: Some(hw),
        };
        let spec = p.to_string();
        let back: AdaptivePolicy = spec.parse()
            .unwrap_or_else(|e| panic!("spec `{spec}` failed to parse: {e}"));
        prop_assert_eq!(back, p, "spec `{}`", spec);
    }

    /// Rendering is injective over Wilson policies: two policies that
    /// differ in any field render different specs (so differently-policied
    /// campaigns can never collide on a fingerprint via the policy part).
    #[test]
    fn distinct_wilson_policies_render_distinct_specs(
        hw_a in 0.001f64..0.499,
        hw_b in 0.001f64..0.499,
        za in 0usize..QUANTILES.len(),
        zb in 0usize..QUANTILES.len(),
        min_a in 0usize..512,
        min_b in 0usize..512,
        extra_a in 1usize..512,
        extra_b in 1usize..512,
    ) {
        let a = AdaptivePolicy {
            min_injections: min_a,
            max_injections: min_a + extra_a,
            z: QUANTILES[za],
            ci_half_width: Some(hw_a),
        };
        let b = AdaptivePolicy {
            min_injections: min_b,
            max_injections: min_b + extra_b,
            z: QUANTILES[zb],
            ci_half_width: Some(hw_b),
        };
        if a != b {
            prop_assert_ne!(a.to_string(), b.to_string());
        } else {
            prop_assert_eq!(a.to_string(), b.to_string());
        }
    }

    /// Parsing arbitrary near-miss inputs never panics — it returns a
    /// guidance error mentioning the grammar.
    #[test]
    fn parse_never_panics(
        kind in 0usize..4,
        a in any::<u32>(),
        b in any::<u32>(),
        hw in -1.0f64..1.5,
    ) {
        let kinds = ["fixed", "wilson", "adaptive", ""];
        let garbage = [
            format!("{}:{}", kinds[kind], a),
            format!("{}:{hw}@{}", kinds[kind], b),
            format!("{}:{hw}@{}:{}..{}", kinds[kind], a, b, a),
            format!("{hw}"),
            format!("wilson:{hw}@95:{a}..{b}"),
        ];
        for s in &garbage {
            match s.parse::<AdaptivePolicy>() {
                // Accepted specs must round-trip.
                Ok(p) => prop_assert_eq!(
                    p.to_string().parse::<AdaptivePolicy>().unwrap(),
                    p.clone(),
                    "accepted `{}` but it does not round-trip",
                    s
                ),
                Err(e) => prop_assert!(
                    e.contains("fixed:170"),
                    "error for `{}` lacks grammar guidance: {}",
                    s,
                    e
                ),
            }
        }
    }
}
