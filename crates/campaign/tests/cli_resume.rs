//! Process-level checkpoint/resume determinism: run the real `ffr`
//! binary, SIGKILL it mid-campaign, resume, and require the final FDR
//! table to be byte-identical to an uninterrupted run with the same seed.
//! Also exercises the artifact-store fast path: a rerun with identical
//! inputs must be served from the cache.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const FFR: &str = env!("CARGO_BIN_EXE_ffr");

fn fresh_dir(base: &Path, name: &str) -> PathBuf {
    let dir = base.join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn ffr(args: &[&str]) -> std::process::Output {
    Command::new(FFR)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .output()
        .expect("spawn ffr")
}

/// Campaign arguments sized so a debug-build run takes long enough to be
/// killed mid-flight, but finishes in seconds once resumed.
fn campaign_args(out: &str, store: &str) -> Vec<String> {
    [
        "run",
        "--circuit",
        "lfsr:16:8",
        "--out",
        out,
        "--store",
        store,
        "--cycles",
        "2500",
        "--injections",
        "256",
        "--checkpoint-every",
        "1",
        "--threads",
        "1",
        "--seed",
        "99",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// Like [`campaign_args`] but for a SET campaign on a smaller probe
/// circuit (SET targets every combinational net, so the point count is
/// much larger per flip-flop of design).
fn set_campaign_args(out: &str) -> Vec<String> {
    [
        "run",
        "--circuit",
        "lfsr:8:4",
        "--fault",
        "set",
        "--out",
        out,
        "--cycles",
        "1200",
        "--injections",
        "128",
        "--checkpoint-every",
        "1",
        "--threads",
        "1",
        "--seed",
        "99",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// Spawn the given `ffr run` invocation, SIGKILL it as soon as a
/// checkpoint lands on disk, and resume to completion. Returns whether
/// the kill actually landed mid-run.
fn kill_when_checkpointed(args: &[String], out: &Path) -> bool {
    let mut child = Command::new(FFR)
        .args(args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ffr run");
    let checkpoint = out.join("checkpoint.json");
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut killed_mid_run = false;
    loop {
        if checkpoint.exists() {
            // A checkpoint exists — kill the process hard, mid-campaign.
            if child.try_wait().expect("try_wait").is_none() {
                child.kill().expect("SIGKILL ffr");
                killed_mid_run = true;
            }
            break;
        }
        if child.try_wait().expect("try_wait").is_some() {
            break; // finished before we could kill it
        }
        assert!(Instant::now() < deadline, "ffr run produced no checkpoint");
        std::thread::sleep(Duration::from_millis(2));
    }
    let _ = child.wait();
    killed_mid_run
}

#[test]
fn sigkill_mid_campaign_resumes_byte_identical() {
    let base = std::env::temp_dir().join(format!("ffr_sigkill_test_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let store = base.join("store");
    let store_s = store.to_string_lossy().into_owned();

    // Uninterrupted reference run (its own store so the later cache-hit
    // assertion is meaningful).
    let ref_out = fresh_dir(&base, "reference");
    let ref_store = fresh_dir(&base, "reference-store");
    let output = ffr(
        &campaign_args(&ref_out.to_string_lossy(), &ref_store.to_string_lossy())
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>(),
    );
    assert!(
        output.status.success(),
        "reference run failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let reference = std::fs::read(ref_out.join("fdr.json")).unwrap();

    // Victim run: SIGKILL as soon as the first checkpoint lands on disk.
    let out = fresh_dir(&base, "victim");
    let out_s = out.to_string_lossy().into_owned();
    let args = campaign_args(&out_s, &store_s);
    let killed_mid_run = kill_when_checkpointed(&args, &out);

    if killed_mid_run {
        assert!(
            !out.join("fdr.json").exists(),
            "killed run must not have produced a final table"
        );
        // Resume (possibly more than once if the kill landed before any
        // retirement made it to disk).
        for _ in 0..3 {
            let output = ffr(&["resume", "--out", &out_s]);
            if output.status.success() {
                break;
            }
        }
    }
    let resumed = std::fs::read(out.join("fdr.json")).expect("resumed table exists");
    assert_eq!(
        reference, resumed,
        "resumed campaign must be byte-identical to the uninterrupted run"
    );

    // Rerun with identical inputs: the victim's store now holds golden run
    // and table; the run must be cache-served (no re-simulation) and
    // byte-identical again.
    let out2 = fresh_dir(&base, "cached");
    let out2_s = out2.to_string_lossy().into_owned();
    let args = campaign_args(&out2_s, &store_s);
    let output = ffr(&args.iter().map(String::as_str).collect::<Vec<_>>());
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("artifact cache"),
        "expected a cache-served run, got: {stdout}"
    );
    let cached = std::fs::read(out2.join("fdr.json")).unwrap();
    assert_eq!(reference, cached);

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn sigkill_mid_set_campaign_resumes_byte_identical() {
    let base = std::env::temp_dir().join(format!("ffr_set_sigkill_test_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();

    // Uninterrupted reference SET campaign.
    let ref_out = fresh_dir(&base, "reference");
    let output = ffr(&set_campaign_args(&ref_out.to_string_lossy())
        .iter()
        .map(String::as_str)
        .collect::<Vec<_>>());
    assert!(
        output.status.success(),
        "reference SET run failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let reference = std::fs::read(ref_out.join("set-derating.json")).unwrap();
    let reference_csv = std::fs::read(ref_out.join("set-derating.csv")).unwrap();

    // Victim run: SIGKILL as soon as the first checkpoint lands on disk.
    let out = fresh_dir(&base, "victim");
    let out_s = out.to_string_lossy().into_owned();
    let args = set_campaign_args(&out_s);
    let killed_mid_run = kill_when_checkpointed(&args, &out);

    if killed_mid_run {
        assert!(
            !out.join("set-derating.json").exists(),
            "killed run must not have produced a final table"
        );
        // Resume (possibly more than once if the kill landed before any
        // retirement made it to disk).
        for _ in 0..3 {
            let output = ffr(&["resume", "--out", &out_s]);
            if output.status.success() {
                break;
            }
        }
    }
    let resumed = std::fs::read(out.join("set-derating.json")).expect("resumed table exists");
    assert_eq!(
        reference, resumed,
        "resumed SET campaign must be byte-identical to the uninterrupted run"
    );
    let resumed_csv = std::fs::read(out.join("set-derating.csv")).unwrap();
    assert_eq!(
        reference_csv, resumed_csv,
        "CSV rendering is also identical"
    );

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn status_and_report_on_finished_campaign() {
    let base = std::env::temp_dir().join(format!("ffr_report_test_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let out = base.join("session");
    let out_s = out.to_string_lossy().into_owned();
    let output = ffr(&[
        "run",
        "--circuit",
        "counter:6",
        "--out",
        &out_s,
        "--cycles",
        "160",
        "--injections",
        "64",
    ]);
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );

    let status = ffr(&["status", "--out", &out_s]);
    assert!(status.status.success());
    let text = String::from_utf8_lossy(&status.stdout);
    assert!(text.contains("complete"), "{text}");

    let report = ffr(&["report", "--out", &out_s]);
    assert!(report.status.success());
    let text = String::from_utf8_lossy(&report.stdout);
    assert!(text.contains("circuit-level FDR"), "{text}");
    assert!(text.contains("FDR histogram"), "{text}");

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn adaptive_cli_campaign_completes_and_saves_injections() {
    let base = std::env::temp_dir().join(format!("ffr_adaptive_test_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let fixed_out = base.join("fixed");
    let adaptive_out = base.join("adaptive");
    for (out, extra) in [
        (&fixed_out, vec!["--injections", "256"]),
        (&adaptive_out, vec!["--adaptive", "64:256:0.06"]),
    ] {
        let out_s = out.to_string_lossy().into_owned();
        let mut args = vec![
            "run",
            "--circuit",
            "traffic",
            "--out",
            &out_s,
            "--cycles",
            "400",
        ];
        args.extend(extra);
        let output = ffr(&args);
        assert!(
            output.status.success(),
            "{}",
            String::from_utf8_lossy(&output.stderr)
        );
    }
    // Both campaigns completed; the adaptive one spent fewer injections.
    let count_injections = |dir: &Path| -> usize {
        let text = std::fs::read_to_string(dir.join("fdr.csv")).unwrap();
        text.lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse::<usize>().unwrap())
            .sum()
    };
    let fixed = count_injections(&fixed_out);
    let adaptive = count_injections(&adaptive_out);
    assert!(
        adaptive < fixed,
        "adaptive sampling should spend fewer injections ({adaptive} vs {fixed})"
    );

    let _ = std::fs::remove_dir_all(&base);
}

/// `ffr run --policy …` arguments for a Wilson-CI campaign sized so a
/// debug-build run survives long enough to be SIGKILLed mid-flight.
fn policy_campaign_args(out: &str) -> Vec<String> {
    [
        "run",
        "--circuit",
        "lfsr:16:8",
        "--out",
        out,
        "--policy",
        "wilson:0.02@99:64..256",
        "--cycles",
        "2500",
        "--checkpoint-every",
        "1",
        "--threads",
        "1",
        "--seed",
        "99",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

#[test]
fn sigkill_mid_policy_campaign_resumes_byte_identical() {
    let base = std::env::temp_dir().join(format!("ffr_policy_sigkill_test_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();

    // Uninterrupted reference run under the non-default policy.
    let ref_out = fresh_dir(&base, "reference");
    let output = ffr(&policy_campaign_args(&ref_out.to_string_lossy())
        .iter()
        .map(String::as_str)
        .collect::<Vec<_>>());
    assert!(
        output.status.success(),
        "reference policy run failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let reference = std::fs::read(ref_out.join("fdr.json")).unwrap();

    // The canonical policy spec round-trips through the manifest and
    // shows up verbatim in `ffr status`.
    let manifest = std::fs::read_to_string(ref_out.join("campaign.json")).unwrap();
    assert!(manifest.contains("\"ci_half_width\": 0.02"), "{manifest}");
    let status = ffr(&["status", "--out", &ref_out.to_string_lossy()]);
    let text = String::from_utf8_lossy(&status.stdout);
    assert!(text.contains("wilson:0.02@99:64..256"), "{text}");

    // Victim run: SIGKILL as soon as the first checkpoint lands, then
    // resume to completion.
    let out = fresh_dir(&base, "victim");
    let out_s = out.to_string_lossy().into_owned();
    let args = policy_campaign_args(&out_s);
    let killed_mid_run = kill_when_checkpointed(&args, &out);
    if killed_mid_run {
        assert!(!out.join("fdr.json").exists());
        for _ in 0..3 {
            let output = ffr(&["resume", "--out", &out_s]);
            if output.status.success() {
                break;
            }
        }
    }
    let resumed = std::fs::read(out.join("fdr.json")).expect("resumed table exists");
    assert_eq!(
        reference, resumed,
        "SIGKILLed adaptive-policy campaign must resume byte-identically"
    );

    // A different policy on the same directory is a different campaign.
    let mut other = policy_campaign_args(&out_s);
    other[6] = "wilson:0.05@95:64..256".to_string();
    let output = ffr(&other.iter().map(String::as_str).collect::<Vec<_>>());
    assert!(!output.status.success());
    let err = String::from_utf8_lossy(&output.stderr);
    assert!(err.contains("different campaign"), "{err}");

    let _ = std::fs::remove_dir_all(&base);
}
