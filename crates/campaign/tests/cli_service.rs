//! Process-level end-to-end test of the `ffrd` campaign service: a real
//! `ffrd` server process, campaigns submitted over real HTTP, drained by
//! real `ffr worker` processes — one of which is SIGKILLed mid-lease —
//! with the final table required byte-identical to a single-process
//! `ffr run`. Also covers multi-tenancy (two campaigns behind one
//! server), the on-demand estimate endpoint, and the cost-aware
//! dispatcher's `est_cost` telemetry.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const FFR: &str = env!("CARGO_BIN_EXE_ffr");
const FFRD: &str = env!("CARGO_BIN_EXE_ffrd");

/// One blocking HTTP request against the service; panics on transport
/// errors (the server is a child process we just health-checked).
fn http(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to ffrd");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: ffrd\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, payload)
}

fn ffr(args: &[&str]) -> std::process::Output {
    Command::new(FFR)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .output()
        .expect("spawn ffr")
}

/// A worker attached to a service-prepared session: no bootstrap flags,
/// the manifest is already on disk.
fn spawn_worker(campaign: &Path, id: &str) -> Child {
    Command::new(FFR)
        .args([
            "worker",
            "--campaign",
            &campaign.to_string_lossy(),
            "--worker-id",
            id,
            "--lease-points",
            "8",
            "--lease-ttl-secs",
            "2",
            "--poll-ms",
            "50",
            "--threads",
            "1",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ffr worker")
}

/// Wait until a lease owned by `worker` exists under the campaign dir.
fn wait_for_lease(leases_dir: &Path, worker: &str, deadline: Duration) -> bool {
    let needle = format!("\"worker\": \"{worker}\"");
    let until = Instant::now() + deadline;
    while Instant::now() < until {
        if let Ok(entries) = std::fs::read_dir(leases_dir) {
            for entry in entries.flatten() {
                if std::fs::read_to_string(entry.path())
                    .map(|text| text.contains(&needle))
                    .unwrap_or(false)
                {
                    return true;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    false
}

#[test]
fn ffrd_submit_drain_sigkill_estimate_end_to_end() {
    let base = std::env::temp_dir().join(format!("ffr_service_test_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let root = base.join("root");
    std::fs::create_dir_all(&root).unwrap();

    // Start the service on an ephemeral port; the bound address appears
    // in <root>/ffrd.addr.
    let mut server = Command::new(FFRD)
        .args([
            "--root",
            &root.to_string_lossy(),
            "--listen",
            "127.0.0.1:0",
            "--threads",
            "2",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ffrd");
    let addr_file = root.join("ffrd.addr");
    let deadline = Instant::now() + Duration::from_secs(60);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&addr_file) {
            let text = text.trim().to_string();
            if !text.is_empty() {
                break text;
            }
        }
        assert!(
            Instant::now() < deadline,
            "ffrd never published its address"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    let (status, body) = http(&addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "{body}");

    // --- Campaign 1: distributed drain with a SIGKILL mid-lease -------
    // Parameters match the single-process reference below; sized so a
    // debug-build drain is long enough to kill a worker mid-lease.
    let (status, body) = http(
        &addr,
        "POST",
        "/campaigns",
        r#"{"id":"lfsr","circuit":"lfsr:16:8","cycles":2000,"policy":"fixed:192","seed":99}"#,
    );
    assert_eq!(status, 201, "{body}");
    assert!(body.contains("\"fingerprint\""), "{body}");

    // Single-process reference table for byte-identity.
    let ref_out = base.join("reference");
    let output = ffr(&[
        "run",
        "--out",
        &ref_out.to_string_lossy(),
        "--circuit",
        "lfsr:16:8",
        "--cycles",
        "2000",
        "--injections",
        "192",
        "--seed",
        "99",
        "--threads",
        "1",
    ]);
    assert!(
        output.status.success(),
        "reference run failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let reference = std::fs::read(ref_out.join("fdr.json")).unwrap();

    // Two workers drain the service-prepared session; the victim dies
    // mid-lease and its range is reclaimed by observed lease age.
    let campaign_dir = root.join("lfsr");
    let mut victim = spawn_worker(&campaign_dir, "victim");
    let mut survivor = spawn_worker(&campaign_dir, "survivor");
    let got_lease = wait_for_lease(
        &campaign_dir.join("leases"),
        "victim",
        Duration::from_secs(120),
    );
    let killed_mid_lease = got_lease && victim.try_wait().expect("try_wait").is_none();
    if killed_mid_lease {
        victim.kill().expect("SIGKILL victim worker");
    }
    let _ = victim.wait();
    eprintln!("killed_mid_lease = {killed_mid_lease}");

    // Live status while the survivor drains: always 200, always the
    // versioned schema, rates never NaN (the body must stay parseable).
    let (status, body) = http(&addr, "GET", "/campaigns/lfsr/status", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"schema_version\": 2"), "{body}");
    assert!(!body.contains("inf") && !body.contains("NaN"), "{body}");

    let status_code = survivor.wait().expect("survivor exits");
    assert!(
        status_code.success(),
        "surviving worker must drain the whole campaign"
    );

    // Byte-identity: the service-hosted, SIGKILL-scarred, two-worker
    // campaign produced exactly the single-process table.
    let drained = std::fs::read(campaign_dir.join("fdr.json")).expect("drained table");
    assert_eq!(
        reference, drained,
        "service-hosted campaign must be byte-identical to ffr run"
    );

    // The status endpoint now reports completion.
    let (status, body) = http(&addr, "GET", "/campaigns/lfsr/status", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"complete\": true"), "{body}");

    // Cost-aware dispatch is observable: every lease claim logged its
    // estimated remaining cost.
    let mut telemetry = String::new();
    for entry in std::fs::read_dir(campaign_dir.join("telemetry")).expect("telemetry dir") {
        telemetry.push_str(&std::fs::read_to_string(entry.unwrap().path()).unwrap_or_default());
    }
    assert!(
        telemetry.contains("\"est_cost\""),
        "lease claims must carry the dispatcher's cost estimate"
    );

    // --- Campaign 2: multi-tenancy + the estimate endpoint ------------
    // The small MAC is the circuit with a varied FDR population (see
    // tests/cli_estimate.rs); a 40 % budget leaves flip-flops for the
    // models to predict.
    let (status, body) = http(
        &addr,
        "POST",
        "/campaigns",
        r#"{"id":"mac","circuit":"mac-small","policy":"fixed:24","seed":7,"budget":0.4}"#,
    );
    assert_eq!(status, 201, "{body}");
    // Estimate before any work: refused as not-ready, not crashed.
    let (status, body) = http(&addr, "GET", "/campaigns/mac/estimate", "");
    assert_eq!(status, 409, "{body}");

    let mut worker = spawn_worker(&root.join("mac"), "w-mac");
    assert!(worker.wait().expect("mac worker exits").success());

    // Estimate options sized for a debug-build test run, as in
    // tests/cli_estimate.rs; the report is computed once and cached.
    let estimate_path = "/campaigns/mac/estimate?models=linear,forest&grid=1&folds=4";
    let (status, body) = http(&addr, "GET", estimate_path, "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"circuit_ffr\""), "{body}");
    assert!(body.contains("\"best_model\""), "{body}");
    let first = body;
    // Served from estimate.json on the second request — identical bytes.
    let (status, body) = http(&addr, "GET", estimate_path, "");
    assert_eq!(status, 200);
    assert_eq!(first, body, "cached estimate must be byte-identical");

    // Both campaigns are visible behind the one server.
    let (status, body) = http(&addr, "GET", "/campaigns", "");
    assert_eq!(status, 200);
    assert!(
        body.contains("\"lfsr\"") && body.contains("\"mac\""),
        "{body}"
    );

    server.kill().expect("stop ffrd");
    let _ = server.wait();
    let _ = std::fs::remove_dir_all(&base);
}
