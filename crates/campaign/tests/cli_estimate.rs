//! Process-level end-to-end test of the paper pipeline: a budgeted
//! campaign (`ffr run --budget 0.4`) followed by ML-assisted estimation
//! (`ffr estimate`), driven through the real `ffr` binary.
//!
//! Asserts the two properties the pipeline is built around:
//!
//! * **fixed-seed determinism** — two `ffr estimate` runs over the same
//!   session produce byte-identical `estimate.json` files (the second is
//!   `--force`d so it really refits every model, off cache-served
//!   features), and
//! * **estimation accuracy** — the predicted circuit-level FFR of the
//!   40 %-budget session lands within tolerance of the measured FFR of a
//!   full-budget campaign with the same seeds.

use ffr_campaign::EstimateReport;
use ffr_fault::FdrTable;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

const FFR: &str = env!("CARGO_BIN_EXE_ffr");

fn ffr(args: &[&str]) -> std::process::Output {
    Command::new(FFR)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .output()
        .expect("spawn ffr")
}

fn ffr_ok(args: &[&str]) -> String {
    let output = ffr(args);
    assert!(
        output.status.success(),
        "`ffr {}` failed: {}",
        args.join(" "),
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

/// `ffr run` arguments shared by the full- and partial-budget campaigns.
///
/// The small MAC is the only fast circuit with a *varied* FDR population
/// (its packet-level judge admits benign outcomes; the generic circuits'
/// strict output-mismatch judge drives every FDR to ~1.0, which would
/// make the regression problem degenerate).
fn run_args(out: &Path, store: &Path) -> Vec<String> {
    [
        "run",
        "--circuit",
        "mac-small",
        "--out",
        &out.to_string_lossy(),
        "--store",
        &store.to_string_lossy(),
        "--injections",
        "24",
        "--seed",
        "7",
        "--threads",
        "2",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// `ffr estimate` flags sized for a debug-build test run: four model
/// kinds (the acceptance floor), tuned defaults only, four folds.
const ESTIMATE_FLAGS: [&str; 6] = [
    "--models",
    "linear,knn,forest,boosting",
    "--grid",
    "1",
    "--folds",
    "4",
];

#[test]
fn budgeted_estimate_is_deterministic_and_tracks_full_campaign() {
    let base = std::env::temp_dir().join(format!("ffr_cli_estimate_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let store = base.join("store");
    let full_out = base.join("full");
    let partial_out = base.join("partial");

    // Full-budget reference campaign: every flip-flop measured.
    let args: Vec<String> = run_args(&full_out, &store);
    ffr_ok(&args.iter().map(String::as_str).collect::<Vec<_>>());
    let full_table = FdrTable::load_json(&full_out.join("fdr.json")).unwrap();
    assert_eq!(full_table.covered().count(), full_table.num_ffs());

    // 40 %-budget campaign with the same seeds (shares the golden run
    // through the store).
    let mut args = run_args(&partial_out, &store);
    args.extend(["--budget".to_string(), "0.4".to_string()]);
    ffr_ok(&args.iter().map(String::as_str).collect::<Vec<_>>());
    let partial_table = FdrTable::load_json(&partial_out.join("fdr.json")).unwrap();
    let expected_measured = ((full_table.num_ffs() as f64) * 0.4).round() as usize;
    assert_eq!(partial_table.covered().count(), expected_measured);

    // First estimate: computes features, fits models, writes the report.
    let partial_s = partial_out.to_string_lossy().into_owned();
    let mut est_args = vec!["estimate", "--out", &partial_s];
    est_args.extend(ESTIMATE_FLAGS);
    let stdout = ffr_ok(&est_args);
    assert!(stdout.contains("circuit-level FFR"), "{stdout}");
    let first = std::fs::read(partial_out.join("estimate.json")).unwrap();
    let first_csv = std::fs::read(partial_out.join("estimate.csv")).unwrap();

    // Second estimate is --force'd so every model actually refits (the
    // report cache would otherwise serve the stored artifact); fixed
    // seeds make the rerun byte-identical.
    let mut forced = est_args.clone();
    forced.push("--force");
    ffr_ok(&forced);
    let second = std::fs::read(partial_out.join("estimate.json")).unwrap();
    assert_eq!(
        first, second,
        "estimate.json must be byte-identical across reruns"
    );
    assert_eq!(
        first_csv,
        std::fs::read(partial_out.join("estimate.csv")).unwrap(),
        "estimate.csv must be byte-identical across reruns"
    );

    // An unforced third run is served from the report artifact and still
    // leaves identical session files behind.
    let stdout = ffr_ok(&est_args);
    assert!(stdout.contains("artifact cache"), "{stdout}");
    assert_eq!(
        first,
        std::fs::read(partial_out.join("estimate.json")).unwrap()
    );

    // The report carries CV scores for all default model kinds and a
    // real injection-savings figure.
    let report = EstimateReport::load_json(&partial_out.join("estimate.json")).unwrap();
    assert!(
        report.models.len() >= 4,
        "expected >= 4 evaluated model kinds, got {}",
        report.models.len()
    );
    for m in &report.models {
        for score in [m.cv_mae, m.cv_max, m.cv_rmse, m.cv_ev, m.cv_r2] {
            assert!(score.is_finite(), "{}: non-finite CV score", m.model);
        }
    }
    assert!(report.models.iter().any(|m| m.model == report.best_model));
    assert_eq!(report.measured_ffs, expected_measured);
    assert_eq!(report.total_ffs, full_table.num_ffs());
    assert_eq!(report.per_ff.len(), report.total_ffs);
    assert!(
        report.injection_savings > 2.0,
        "a 40 % budget saves > 2x ({:.2}x reported)",
        report.injection_savings
    );

    // Estimation accuracy: predicted circuit FFR within tolerance of the
    // full campaign's measured FFR (observed |error| ≈ 0.005 on a
    // genuinely varied FDR population spanning [0, 1]).
    let full_ffr = full_table.circuit_fdr();
    assert!(
        (report.circuit_ffr - full_ffr).abs() <= 0.05,
        "predicted FFR {:.4} strays from measured full-campaign FFR {:.4}",
        report.circuit_ffr,
        full_ffr
    );

    // `ffr report` on the session now includes the estimate.
    let stdout = ffr_ok(&["report", "--out", &partial_s]);
    assert!(stdout.contains("estimate for"), "{stdout}");

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn estimate_without_session_resolves_from_store() {
    let base = std::env::temp_dir().join(format!("ffr_cli_estimate_store_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let store = base.join("store");
    let out = base.join("session");

    let mut args = run_args(&out, &store);
    args.extend(["--budget".to_string(), "0.4".to_string()]);
    ffr_ok(&args.iter().map(String::as_str).collect::<Vec<_>>());
    // Remove the session entirely; the store still holds the artifacts.
    std::fs::remove_dir_all(&out).unwrap();

    let store_s = store.to_string_lossy().into_owned();
    let mut args = vec![
        "estimate",
        "--circuit",
        "mac-small",
        "--store",
        &store_s,
        "--injections",
        "24",
        "--seed",
        "7",
        "--budget",
        "0.4",
    ];
    args.extend(ESTIMATE_FLAGS);
    let stdout = ffr_ok(&args);
    assert!(stdout.contains("circuit-level FFR"), "{stdout}");
    // The report artifact landed in the store.
    let reports: Vec<PathBuf> = std::fs::read_dir(store.join("report"))
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(reports.len(), 1);

    // Mismatched campaign parameters miss cleanly instead of estimating
    // off the wrong table.
    let output = ffr(&[
        "estimate",
        "--circuit",
        "mac-small",
        "--store",
        &store_s,
        "--injections",
        "24",
        "--seed",
        "8",
        "--budget",
        "0.4",
    ]);
    assert_eq!(output.status.code(), Some(64));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("no FDR table"), "{stderr}");

    let _ = std::fs::remove_dir_all(&base);
}
