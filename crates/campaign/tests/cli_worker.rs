//! Process-level distributed-campaign determinism: spawn two real
//! `ffr worker` processes on one campaign directory, SIGKILL one
//! mid-lease, and require that (a) the dead worker's lease is reclaimed
//! after expiry, (b) the surviving worker completes the campaign, and
//! (c) the merged table is byte-identical to a single-process `ffr run`
//! with the same parameters. Also exercises `ffr status --json` worker
//! visibility and `ffr gc --campaign` expired-lease sweeping.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const FFR: &str = env!("CARGO_BIN_EXE_ffr");

fn fresh_dir(base: &Path, name: &str) -> PathBuf {
    let dir = base.join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn ffr(args: &[&str]) -> std::process::Output {
    Command::new(FFR)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .output()
        .expect("spawn ffr")
}

/// Campaign flags shared by the single-process reference run and the
/// worker bootstrap, sized so a debug-build run is long enough to kill a
/// worker mid-lease but drains in seconds afterwards.
fn campaign_flags() -> Vec<&'static str> {
    vec![
        "--circuit",
        "lfsr:16:8",
        "--cycles",
        "2000",
        "--injections",
        "192",
        "--seed",
        "99",
    ]
}

fn spawn_worker(campaign: &str, id: &str) -> Child {
    let mut args = vec![
        "worker",
        "--campaign",
        campaign,
        "--worker-id",
        id,
        "--lease-points",
        "8",
        "--lease-ttl-secs",
        "2",
        "--poll-ms",
        "50",
        "--threads",
        "1",
    ];
    args.extend(campaign_flags());
    Command::new(FFR)
        .args(&args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ffr worker")
}

/// Wait until a lease file owned by `worker` exists; returns its range
/// `(start, end)` or `None` if the deadline passes.
fn wait_for_lease(leases_dir: &Path, worker: &str, deadline: Duration) -> Option<(usize, usize)> {
    let needle = format!("\"worker\": \"{worker}\"");
    let until = Instant::now() + deadline;
    while Instant::now() < until {
        if let Ok(entries) = std::fs::read_dir(leases_dir) {
            for entry in entries.flatten() {
                let Ok(text) = std::fs::read_to_string(entry.path()) else {
                    continue;
                };
                if !text.contains(&needle) {
                    continue;
                }
                let field = |name: &str| -> Option<usize> {
                    let idx = text.find(name)?;
                    let rest = &text[idx + name.len()..];
                    let digits: String = rest
                        .chars()
                        .skip_while(|c| !c.is_ascii_digit())
                        .take_while(|c| c.is_ascii_digit())
                        .collect();
                    digits.parse().ok()
                };
                if let (Some(start), Some(end)) = (field("range_start"), field("range_end")) {
                    return Some((start, end));
                }
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    None
}

#[test]
fn two_workers_sigkill_one_reclaim_and_merge_byte_identical() {
    let base = std::env::temp_dir().join(format!("ffr_worker_test_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();

    // Single-process reference table.
    let ref_out = fresh_dir(&base, "reference");
    let ref_out_s = ref_out.to_string_lossy().into_owned();
    let mut args = vec!["run", "--out", &ref_out_s, "--threads", "1"];
    args.extend(campaign_flags());
    let output = ffr(&args);
    assert!(
        output.status.success(),
        "reference run failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let reference = std::fs::read(ref_out.join("fdr.json")).unwrap();

    // Two workers drain one fresh campaign directory; the first one is
    // SIGKILLed as soon as it holds a lease.
    let out = fresh_dir(&base, "campaign");
    let out_s = out.to_string_lossy().into_owned();
    let mut victim = spawn_worker(&out_s, "victim");
    let mut survivor = spawn_worker(&out_s, "survivor");

    let victim_lease = wait_for_lease(&out.join("leases"), "victim", Duration::from_secs(120));
    let killed_mid_lease = match (&victim_lease, victim.try_wait().expect("try_wait")) {
        (Some(_), None) => {
            victim.kill().expect("SIGKILL victim worker");
            true
        }
        // The victim won no lease in time or already finished its share —
        // determinism still holds, only the reclaim sub-assertions are
        // skipped below.
        _ => false,
    };
    let _ = victim.wait();
    eprintln!("killed_mid_lease = {killed_mid_lease} (lease {victim_lease:?})");

    let status = survivor.wait().expect("survivor exits");
    assert!(
        status.success(),
        "surviving worker must drain the whole campaign (exit: {status:?})"
    );

    // The survivor produced the final table, byte-identical to the
    // single-process run.
    let drained = std::fs::read(out.join("fdr.json")).expect("worker-drained table exists");
    assert_eq!(
        reference, drained,
        "distributed campaign must be byte-identical to a single-process run"
    );

    if killed_mid_lease {
        let (start, end) = victim_lease.unwrap();
        // The killed worker's leased range was reclaimed after expiry and
        // completed by the survivor: its shard is complete…
        let shard_path = out
            .join("shards")
            .join(format!("shard-{start:08}-{end:08}.json"));
        let shard = std::fs::read_to_string(&shard_path).expect("reclaimed range has a shard");
        assert!(
            !shard.contains("\"complete\": false"),
            "reclaimed shard must be fully retired: {shard_path:?}"
        );
        // …and no lease file survived the campaign.
        let leftover = std::fs::read_dir(out.join("leases"))
            .map(|entries| entries.count())
            .unwrap_or(0);
        assert_eq!(leftover, 0, "completed campaign must hold no leases");
    }

    // `ffr status --json` reports completion and per-worker shards.
    let status = ffr(&["status", "--out", &out_s, "--json"]);
    assert!(status.status.success());
    let text = String::from_utf8_lossy(&status.stdout);
    assert!(text.contains("\"complete\": true"), "{text}");
    assert!(text.contains("\"worker\": \"survivor\""), "{text}");
    if killed_mid_lease {
        // The victim flushed at least one shard before dying, or its
        // range was recomputed wholesale — either way the survivor shows
        // retired points.
        assert!(text.contains("\"retired_points\""), "{text}");
    }

    // `ffr report` renders the drained campaign like any other session.
    let report = ffr(&["report", "--out", &out_s]);
    assert!(report.status.success());
    assert!(
        String::from_utf8_lossy(&report.stdout).contains("circuit-level FDR"),
        "{}",
        String::from_utf8_lossy(&report.stdout)
    );

    // The completed campaign's shards are redundant with checkpoint.json;
    // `ffr gc --campaign` reclaims them.
    assert!(std::fs::read_dir(out.join("shards")).unwrap().count() > 0);
    let gc = ffr(&["gc", "--campaign", &out_s]);
    assert!(gc.status.success());
    assert!(
        String::from_utf8_lossy(&gc.stdout).contains("shard checkpoint(s)"),
        "{}",
        String::from_utf8_lossy(&gc.stdout)
    );
    assert_eq!(std::fs::read_dir(out.join("shards")).unwrap().count(), 0);

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn gc_campaign_sweeps_expired_leases_only() {
    let base = std::env::temp_dir().join(format!("ffr_gc_lease_test_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let out = base.join("campaign");
    let leases = out.join("leases");
    std::fs::create_dir_all(&leases).unwrap();

    let lease = |worker: &str, expires: u64| {
        format!(
            r#"{{"version":1,"fingerprint":"f","worker":"{worker}","range_start":0,"range_end":8,"acquired_unix":1,"expires_unix":{expires}}}"#
        )
    };
    // One long-expired lease, one live far-future lease. Expiry is
    // judged by observed file age against the record's TTL (stamps are
    // diagnostics only), so the dead lease's file must actually look
    // old: age its mtime past the 1-second TTL its stamps encode.
    let dead_path = leases.join("lease-00000000-00000008.json");
    std::fs::write(&dead_path, lease("dead", 1)).unwrap();
    let old = std::time::SystemTime::now() - std::time::Duration::from_secs(600);
    std::fs::OpenOptions::new()
        .append(true)
        .open(&dead_path)
        .unwrap()
        .set_times(std::fs::FileTimes::new().set_modified(old))
        .unwrap();
    std::fs::write(
        leases.join("lease-00000008-00000016.json"),
        lease("alive", u64::MAX / 2),
    )
    .unwrap();

    let out_s = out.to_string_lossy().into_owned();
    let output = ffr(&["gc", "--campaign", &out_s]);
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let text = String::from_utf8_lossy(&output.stdout);
    assert!(
        text.contains("removed 1 expired lease(s), kept 1 live"),
        "{text}"
    );
    assert!(!leases.join("lease-00000000-00000008.json").exists());
    assert!(leases.join("lease-00000008-00000016.json").exists());

    // Misuse is rejected cleanly.
    let output = ffr(&["gc"]);
    assert!(!output.status.success());
    let output = ffr(&["gc", "--campaign", &out_s, "--all"]);
    assert!(!output.status.success());

    let _ = std::fs::remove_dir_all(&base);
}
