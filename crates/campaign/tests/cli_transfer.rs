//! Process-level end-to-end test of cross-circuit transfer estimation:
//! measure corpus circuits with the real `ffr run` binary, then `ffr
//! transfer` onto a circuit the models never saw.
//!
//! Asserts the three properties the flow is built around:
//!
//! * **zero-injection prediction** — the report spends 0 injections on
//!   the evaluation circuit and still predicts every flip-flop,
//! * **fixed-seed determinism** — a `--force`d rerun refits every model
//!   and writes a byte-identical `TransferReport`, and an unforced rerun
//!   is served from the artifact store, and
//! * **transfer accuracy** — the predicted circuit FFR lands within a
//!   documented tolerance of the measured reference (FIFO / register-file
//!   corpus circuits have genuinely varied FDR populations; observed
//!   |ΔFFR| ≈ 0.008 and per-FF MAE ≈ 0.05 for this train/eval split).

use ffr_campaign::TransferReport;
use std::path::Path;
use std::process::{Command, Stdio};

const FFR: &str = env!("CARGO_BIN_EXE_ffr");

const TRAIN: [&str; 3] = ["corpus:fifo2x4", "corpus:fifo3x4", "corpus:regfile3x4"];
const EVAL: &str = "corpus:regfile2x4";

fn ffr(args: &[&str]) -> std::process::Output {
    Command::new(FFR)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .output()
        .expect("spawn ffr")
}

fn ffr_ok(args: &[&str]) -> String {
    let output = ffr(args);
    assert!(
        output.status.success(),
        "`ffr {}` failed: {}",
        args.join(" "),
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

/// Campaign flags shared by every `ffr run` and the `ffr transfer`, so
/// the transfer resolves exactly the tables the runs measured.
const CAMPAIGN_FLAGS: [&str; 6] = ["--injections", "24", "--seed", "7", "--cycles", "200"];

fn run_campaign(circuit: &str, out: &Path, store: &Path) {
    let out_s = out.to_string_lossy().into_owned();
    let store_s = store.to_string_lossy().into_owned();
    let mut args = vec![
        "run",
        "--circuit",
        circuit,
        "--out",
        &out_s,
        "--store",
        &store_s,
    ];
    args.extend(CAMPAIGN_FLAGS);
    args.extend(["--threads", "2"]);
    ffr_ok(&args);
}

#[test]
fn transfer_predicts_unseen_corpus_circuit_reproducibly() {
    let base = std::env::temp_dir().join(format!("ffr_cli_transfer_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let store = base.join("store");
    let store_s = store.to_string_lossy().into_owned();
    let train_list = TRAIN.join(",");
    let report_path = base.join("transfer.json");
    let report_s = report_path.to_string_lossy().into_owned();

    // Transfer before any campaign ran misses cleanly.
    let mut args = vec![
        "transfer",
        "--train",
        &train_list,
        "--eval",
        EVAL,
        "--store",
        &store_s,
    ];
    args.extend(CAMPAIGN_FLAGS);
    let output = ffr(&args);
    assert_eq!(output.status.code(), Some(64));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("no FDR table"), "{stderr}");

    // Measure the training circuits — and the evaluation circuit, whose
    // table serves only as the accuracy reference (the transfer itself
    // never injects into it).
    for (i, circuit) in TRAIN.iter().chain([&EVAL]).enumerate() {
        run_campaign(circuit, &base.join(format!("run{i}")), &store);
    }

    // First transfer: fits models, predicts, writes the report.
    let mut transfer_args = args.clone();
    transfer_args.extend([
        "--models",
        "linear,knn,forest",
        "--grid",
        "1",
        "--out",
        &report_s,
    ]);
    let stdout = ffr_ok(&transfer_args);
    assert!(stdout.contains("predicted FFR"), "{stdout}");
    assert!(
        stdout.contains("0 injections on the target"),
        "zero-injection claim missing: {stdout}"
    );
    let first = std::fs::read(&report_path).unwrap();
    let first_csv = std::fs::read(report_path.with_extension("csv")).unwrap();

    // A --force'd rerun really refits every model; fixed seeds make it
    // byte-identical.
    let mut forced = transfer_args.clone();
    forced.push("--force");
    ffr_ok(&forced);
    assert_eq!(
        first,
        std::fs::read(&report_path).unwrap(),
        "transfer report must be byte-identical across forced reruns"
    );
    assert_eq!(
        first_csv,
        std::fs::read(report_path.with_extension("csv")).unwrap()
    );

    // An unforced rerun is served from the artifact store.
    let stdout = ffr_ok(&transfer_args);
    assert!(stdout.contains("artifact cache"), "{stdout}");
    assert_eq!(first, std::fs::read(&report_path).unwrap());

    // The report holds together: zero injections on the target, every
    // flip-flop predicted, sane metrics.
    let report = TransferReport::load_json(&report_path).unwrap();
    assert_eq!(report.eval_injections, 0);
    assert_eq!(report.eval_circuit, EVAL);
    assert_eq!(report.train.len(), TRAIN.len());
    assert_eq!(report.per_ff.len(), report.eval_total_ffs);
    assert!(report.per_ff.iter().all(|r| (0.0..=1.0).contains(&r.fdr)));
    assert!(report.models.iter().any(|m| m.model == report.best_model));
    assert_eq!(report.cv_protocol, format!("loco:{}", TRAIN.len()));
    assert!(report.injections_spent > 0);

    // Transfer accuracy vs the measured reference. The tolerances are
    // deliberately loose against the observed |ΔFFR| ≈ 0.008 and
    // MAE ≈ 0.05 (24 injections/FF keeps per-FF measurement noise at
    // ~0.1), but tight enough that predicting a constant or the wrong
    // circuit's profile fails.
    let reference = report.reference.expect("eval circuit was measured");
    assert!(
        (report.predicted_ffr - reference.measured_ffr).abs() <= 0.15,
        "predicted FFR {:.4} strays from measured {:.4}",
        report.predicted_ffr,
        reference.measured_ffr
    );
    assert!(
        reference.mae <= 0.20,
        "per-FF MAE {:.3} exceeds tolerance",
        reference.mae
    );

    let _ = std::fs::remove_dir_all(&base);
}
