//! Property tests: the 64 simulation lanes are truly independent and each
//! equals a scalar reference simulation.

use ffr_netlist::{Bus, NetlistBuilder};
use ffr_sim::{CompiledCircuit, SimState};
use proptest::prelude::*;

/// A small sequential design: two registers and mixed logic.
fn circuit(width: usize) -> CompiledCircuit {
    let mut b = NetlistBuilder::new("lanes");
    let a = b.input("a", width);
    let en = b.input("en", 1);
    let r1 = b.reg("r1", width);
    let (sum, carry) = b.add(&r1.q(), &a);
    b.connect_en(&r1, &en, &sum).unwrap();
    let r2 = b.reg("r2", width);
    let x = b.xor(&r1.q(), &a);
    b.connect(&r2, &x).unwrap();
    let red = b.reduce_xor(&r2.q());
    b.output("sum", &r1.q());
    b.output("parity", &red);
    b.output("carry", &Bus::single(carry.net(0)));
    CompiledCircuit::compile(b.finish().unwrap()).unwrap()
}

/// Scalar (bool-based) reference model of the same circuit.
struct Reference {
    width: usize,
    r1: u64,
    r2: u64,
}

impl Reference {
    fn new(width: usize) -> Reference {
        Reference {
            width,
            r1: 0,
            r2: 0,
        }
    }

    /// Returns (sum_out, parity, carry) for the current inputs, then
    /// steps the state.
    fn step(&mut self, a: u64, en: bool) -> (u64, bool, bool) {
        let mask = (1u64 << self.width) - 1;
        let full = self.r1 + (a & mask);
        let sum = full & mask;
        let carry = full > mask;
        let x = (self.r1 ^ a) & mask;
        let outputs = (self.r1, (self.r2.count_ones() & 1) == 1, carry);
        if en {
            self.r1 = sum;
        }
        self.r2 = x;
        outputs
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Drive each lane with its own input sequence; every lane must match
    /// an independent scalar reference simulation.
    #[test]
    fn lanes_match_scalar_reference(
        width in 1usize..7,
        seeds in proptest::collection::vec(any::<u64>(), 4),
        cycles in 4u64..40,
    ) {
        let cc = circuit(width);
        let mut state = SimState::new(&cc);
        // Four reference machines on lanes 0, 13, 31, 63.
        let lanes = [0usize, 13, 31, 63];
        let mut refs: Vec<Reference> = lanes.iter().map(|_| Reference::new(width)).collect();
        let mut rngs = seeds.clone();

        for _ in 0..cycles {
            // Generate per-lane inputs.
            let mut a_bits = vec![0u64; width];
            let mut en_word = 0u64;
            let mut lane_inputs = Vec::new();
            for (li, rng) in rngs.iter_mut().enumerate() {
                *rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let a = (*rng >> 17) & ((1u64 << width) - 1);
                let en = (*rng >> 33) & 1 == 1;
                lane_inputs.push((a, en));
                for (bit, word) in a_bits.iter_mut().enumerate() {
                    if (a >> bit) & 1 == 1 {
                        *word |= 1u64 << lanes[li];
                    }
                }
                if en {
                    en_word |= 1u64 << lanes[li];
                }
            }
            for (bit, &word) in a_bits.iter().enumerate() {
                state.set_input_lanes(&cc, bit, word);
            }
            state.set_input_lanes(&cc, width, en_word);
            state.eval(&cc);

            for (li, (a, en)) in lane_inputs.iter().enumerate() {
                let lane = lanes[li];
                let (want_sum, want_parity, want_carry) = refs[li].step(*a, *en);
                let mut got_sum = 0u64;
                for bit in 0..width {
                    got_sum |= ((state.output_word(&cc, bit) >> lane) & 1) << bit;
                }
                let got_parity = (state.output_word(&cc, width) >> lane) & 1 == 1;
                let got_carry = (state.output_word(&cc, width + 1) >> lane) & 1 == 1;
                prop_assert_eq!(got_sum, want_sum, "sum lane {}", lane);
                prop_assert_eq!(got_parity, want_parity, "parity lane {}", lane);
                prop_assert_eq!(got_carry, want_carry, "carry lane {}", lane);
            }
            state.tick(&cc);
        }
    }

    /// Evaluating twice without a tick is idempotent.
    #[test]
    fn eval_is_idempotent(width in 1usize..6, a in any::<u64>(), en in any::<bool>()) {
        let cc = circuit(width);
        let mut s = SimState::new(&cc);
        for bit in 0..width {
            s.set_input(&cc, bit, (a >> bit) & 1 == 1);
        }
        s.set_input(&cc, width, en);
        s.eval(&cc);
        let first: Vec<u64> = (0..cc.num_outputs()).map(|o| s.output_word(&cc, o)).collect();
        s.eval(&cc);
        let second: Vec<u64> = (0..cc.num_outputs()).map(|o| s.output_word(&cc, o)).collect();
        prop_assert_eq!(first, second);
    }

    /// A double flip restores the original behaviour exactly.
    #[test]
    fn double_flip_is_identity(width in 2usize..6, ffidx in 0usize..4, mask in any::<u64>()) {
        let cc = circuit(width);
        let ff = ffr_netlist::FfId::from_index(ffidx % cc.num_ffs());
        let mut a = SimState::new(&cc);
        let mut b = SimState::new(&cc);
        for cyc in 0..10u64 {
            for bit in 0..width {
                let v = (cyc * 7 + bit as u64).is_multiple_of(3);
                a.set_input(&cc, bit, v);
                b.set_input(&cc, bit, v);
            }
            a.set_input(&cc, width, true);
            b.set_input(&cc, width, true);
            if cyc == 4 {
                b.flip_ff(&cc, ff, mask);
                b.flip_ff(&cc, ff, mask);
            }
            a.eval(&cc);
            b.eval(&cc);
            for o in 0..cc.num_outputs() {
                prop_assert_eq!(a.output_word(&cc, o), b.output_word(&cc, o));
            }
            a.tick(&cc);
            b.tick(&cc);
        }
    }
}
