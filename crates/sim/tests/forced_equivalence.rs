//! Property tests for the forced-evaluation (SET) path.
//!
//! `eval_forced` on a flip-flop's Q net is a source-net force: the stored
//! value is XOR-flipped before the op list runs, which is exactly what
//! `flip_ff` + `eval` does. The two must therefore be observationally
//! equivalent — same outputs, same net values, same downstream state —
//! for one cycle and for the rest of the run. This pins the compiled
//! [`FaultSite`](ffr_sim::FaultSite) fast path (split op list, no
//! per-call driver scan) against the semantics of the original
//! scan-per-call implementation.

use ffr_netlist::{FfId, NetlistBuilder};
use ffr_sim::{CompiledCircuit, SimState};
use proptest::prelude::*;

/// A small sequential design with an enabled counter and parity logic so
/// flips propagate through several levels.
fn circuit(width: usize) -> CompiledCircuit {
    let mut b = NetlistBuilder::new("forced");
    let en = b.input("en", 1);
    let r = b.reg("count", width);
    let next = b.inc(&r.q());
    b.connect_en(&r, &en, &next).unwrap();
    b.output("value", &r.q());
    let parity = b.reduce_xor(&r.q());
    b.output("parity", &parity);
    CompiledCircuit::compile(b.finish().unwrap()).unwrap()
}

fn outputs(cc: &CompiledCircuit, s: &SimState) -> Vec<u64> {
    (0..cc.num_outputs())
        .map(|o| s.output_word(cc, o))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any flip-flop, lane mask and injection cycle, forcing the Q
    /// net for one cycle equals flipping the flip-flop and evaluating:
    /// identical outputs in the forced cycle and identical evolution for
    /// every following cycle.
    #[test]
    fn eval_forced_on_q_net_equals_flip_ff_plus_eval(
        width in 2usize..7,
        ff_index in 0usize..7,
        mask in any::<u64>(),
        inject_at in 0u64..12,
        total in 12u64..24,
    ) {
        let cc = circuit(width);
        let ff = FfId::from_index(ff_index % cc.num_ffs());
        let q_net = cc.netlist().ff_q_net(ff);
        prop_assert!(!cc.fault_site(q_net).has_comb_driver(), "Q is a source net");

        let mut forced = SimState::new(&cc);
        let mut flipped = SimState::new(&cc);
        for cycle in 0..total {
            forced.set_input(&cc, 0, true);
            flipped.set_input(&cc, 0, true);
            if cycle == inject_at {
                forced.eval_forced(&cc, q_net, mask);
                flipped.flip_ff(&cc, ff, mask);
                flipped.eval(&cc);
            } else {
                forced.eval(&cc);
                flipped.eval(&cc);
            }
            prop_assert_eq!(
                outputs(&cc, &forced),
                outputs(&cc, &flipped),
                "outputs diverge at cycle {}",
                cycle
            );
            // The full per-net state agrees too, not just the outputs.
            for net in 0..cc.netlist().num_nets() {
                let net = ffr_netlist::NetId::from_index(net);
                prop_assert_eq!(forced.net_word(net), flipped.net_word(net));
            }
            forced.tick(&cc);
            flipped.tick(&cc);
        }
        // Identical packed state at the end: convergence detection sees
        // the two histories as the same scenario.
        let mut a = Vec::new();
        let mut b = Vec::new();
        forced.pack_ff_state(&cc, 0, &mut a);
        flipped.pack_ff_state(&cc, 0, &mut b);
        prop_assert_eq!(a, b);
    }

    /// Forcing a gate-driven net through the compiled `FaultSite` split
    /// path: the forced net reads as the fault-free value XOR `mask`, the
    /// lanes outside `mask` are bit-identical to a plain evaluation on
    /// every net of the circuit (lane independence survives the op-list
    /// split), and a zero mask is exactly `eval`.
    #[test]
    fn eval_forced_site_split_preserves_unmasked_lanes(
        width in 2usize..7,
        pick in 0usize..64,
        mask in any::<u64>(),
        warmup in 0u64..8,
    ) {
        let cc = circuit(width);
        let nets = cc.comb_output_nets();
        let target = nets[pick % nets.len()];
        prop_assert!(cc.fault_site(target).has_comb_driver());

        let mut fast = SimState::new(&cc);
        for _ in 0..warmup {
            fast.set_input(&cc, 0, true);
            fast.eval(&cc);
            fast.tick(&cc);
        }
        let mut plain = fast.clone();
        let mut zero = fast.clone();

        fast.set_input(&cc, 0, true);
        fast.eval_forced(&cc, target, mask);
        plain.set_input(&cc, 0, true);
        plain.eval(&cc);
        zero.set_input(&cc, 0, true);
        zero.eval_forced(&cc, target, 0);

        // The forced net carries the flipped value.
        prop_assert_eq!(fast.net_word(target), plain.net_word(target) ^ mask);
        // Unmasked lanes are untouched everywhere; a zero mask is a
        // plain eval everywhere.
        for net in 0..cc.netlist().num_nets() {
            let net = ffr_netlist::NetId::from_index(net);
            prop_assert_eq!(
                fast.net_word(net) & !mask,
                plain.net_word(net) & !mask,
                "unmasked lanes disturbed on {}",
                net
            );
            prop_assert_eq!(zero.net_word(net), plain.net_word(net));
        }
    }
}
