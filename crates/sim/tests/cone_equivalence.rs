//! Property tests: cone-restricted differential simulation is
//! observationally equivalent to full-circuit evaluation.
//!
//! For any injection target (SEU flip-flop, gate-output SET, source-net
//! SET), any lane/time batch and any cycle, the cone path — boundary
//! nets broadcast from a [`NetJournal`], only cone ops evaluated, only
//! cone flip-flops ticked — must produce exactly the watched outputs,
//! convergence masks and packed states of the full evaluation. Watched
//! outputs outside the cone are golden by construction
//! ([`Cone::may_differ`]) and are compared against the golden trace.

use ffr_circuits::corpus::CorpusSpec;
use ffr_netlist::{Bus, FfId, NetId, NetlistBuilder};
use ffr_sim::{
    CompiledCircuit, Cone, FaultSite, FrontierScratch, GoldenRun, InputFrame, NetJournal, SimState,
    Stimulus, WatchList,
};
use proptest::prelude::*;

/// A small sequential design with feedback, cross-register logic and
/// several observable outputs (same shape as `lane_consistency.rs`).
fn circuit(width: usize) -> CompiledCircuit {
    let mut b = NetlistBuilder::new("cone_eq");
    let a = b.input("a", width);
    let en = b.input("en", 1);
    let r1 = b.reg("r1", width);
    let (sum, carry) = b.add(&r1.q(), &a);
    b.connect_en(&r1, &en, &sum).unwrap();
    let r2 = b.reg("r2", width);
    let x = b.xor(&r1.q(), &a);
    b.connect(&r2, &x).unwrap();
    let red = b.reduce_xor(&r2.q());
    b.output("sum", &r1.q());
    b.output("parity", &red);
    b.output("carry", &Bus::single(carry.net(0)));
    CompiledCircuit::compile(b.finish().unwrap()).unwrap()
}

/// Deterministic broadcast stimulus: a pure function of the cycle.
struct MixStimulus {
    width: usize,
    cycles: u64,
}

impl Stimulus for MixStimulus {
    fn num_cycles(&self) -> u64 {
        self.cycles
    }

    fn drive(&self, cycle: u64, frame: &mut InputFrame) {
        let mut x = cycle
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x ^= x >> 29;
        for bit in 0..self.width {
            frame.set(bit, (x >> bit) & 1 == 1);
        }
        frame.set(self.width, (x >> 21) & 1 == 1);
    }
}

/// Input-count-generic deterministic stimulus for arbitrary (corpus)
/// circuits: every input bit is a hash of `(cycle, bit)`.
struct HashStimulus {
    inputs: usize,
    cycles: u64,
}

impl Stimulus for HashStimulus {
    fn num_cycles(&self) -> u64 {
        self.cycles
    }

    fn drive(&self, cycle: u64, frame: &mut InputFrame) {
        for bit in 0..self.inputs {
            let mut x = cycle
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((bit as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
            x ^= x >> 31;
            x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^= x >> 29;
            frame.set(bit, x & 1 == 1);
        }
    }
}

#[derive(Clone, Copy)]
enum Target {
    Seu(FfId),
    Set(FaultSite),
}

/// Every interesting SET/SEU target of the circuit: gate outputs (driven
/// sites), flip-flop Q nets and primary inputs (source sites).
fn set_targets(cc: &CompiledCircuit) -> Vec<NetId> {
    let mut targets = cc.comb_output_nets();
    targets.extend((0..cc.num_ffs()).map(|i| cc.netlist().ff_q_net(FfId::from_index(i))));
    targets.extend(cc.netlist().primary_inputs().iter().copied());
    targets
}

/// The three-way equivalence check shared by the hand-built and corpus
/// property tests: full batch ≡ static cone ≡ event-driven frontier,
/// compared on watched outputs, convergence diffs and packed states.
fn assert_three_way(
    cc: &CompiledCircuit,
    stim: &impl Stimulus,
    seu: bool,
    pick: usize,
    raw_times: &[u64],
    cycles: u64,
) {
    let watch = WatchList::all(cc);
    let golden = GoldenRun::capture(cc, &stim, &watch);
    let netj = NetJournal::capture(cc, &stim);

    let (cone, target): (Cone, Target) = if seu {
        let ff = FfId::from_index(pick % cc.num_ffs());
        (cc.ff_cone(ff), Target::Seu(ff))
    } else {
        let nets = set_targets(cc);
        let net = nets[pick % nets.len()];
        (cc.net_cone(net), Target::Set(cc.fault_site(net)))
    };
    prop_assert!(cone.num_ops() <= cc.num_ops());
    prop_assert!(cone.num_ffs() <= cc.num_ffs());

    let times: Vec<u64> = raw_times.iter().map(|t| t % cycles).collect();
    let t0 = *times.iter().min().unwrap();

    let mut full = golden.restore(cc, t0);
    let mut frame = InputFrame::new(cc.num_inputs());
    let mut cstate = SimState::new(cc);
    cstate.load_cone_state_broadcast(&cone, golden.journal.state_at(t0));
    cstate.set_cycle(t0);
    // Third contender: event-driven frontier evaluation. No state is
    // loaded at all — everything is golden (= clean) until the first
    // injection seeds the worklist.
    let mut fstate = SimState::new(cc);
    let mut fs = FrontierScratch::new();
    fs.attach(&cone);
    fstate.set_cycle(t0);

    for cycle in t0..cycles {
        frame.clear();
        stim.drive(cycle, &mut frame);
        frame.apply(cc, &mut full);
        let row = netj.row(cycle);
        cstate.load_boundary(&cone, row);

        let mut mask = 0u64;
        for (lane, &t) in times.iter().enumerate() {
            if t == cycle {
                mask |= 1u64 << lane;
            }
        }
        match target {
            Target::Seu(ff) => {
                if mask != 0 {
                    full.flip_ff(cc, ff, mask);
                    cstate.flip_ff(cc, ff, mask);
                    fstate.flip_frontier(&cone, &mut fs, row, mask);
                }
                full.eval(cc);
                cstate.eval_cone(&cone);
                fstate.eval_frontier(&cone, &mut fs, row);
            }
            Target::Set(site) => {
                if mask != 0 {
                    full.eval_forced_site(cc, site, mask);
                    cstate.eval_forced_cone(&cone, mask);
                    fstate.eval_forced_frontier(&cone, &mut fs, row, mask);
                } else {
                    full.eval(cc);
                    cstate.eval_cone(&cone);
                    fstate.eval_frontier(&cone, &mut fs, row);
                }
            }
        }

        // Watched outputs agree: in-cone outputs from the cone state,
        // out-of-cone outputs are provably golden.
        for (w, &po) in watch.indices().iter().enumerate() {
            let want = full.output_word(cc, po);
            let got = if cone.may_differ(cc.output_net(po)) {
                cstate.output_word(cc, po)
            } else {
                golden.trace.word(w, cycle)
            };
            prop_assert_eq!(want, got, "output {} at cycle {}", w, cycle);
            // Frontier: only dirty nets can deviate; clean or
            // out-of-cone outputs are golden by construction.
            let net = cc.output_net(po);
            let fgot = if cone.may_differ(net) && fs.net_dirty(net) {
                fstate.output_word(cc, po)
            } else {
                golden.trace.word(w, cycle)
            };
            prop_assert_eq!(want, fgot, "frontier output {} at cycle {}", w, cycle);
        }

        full.tick(cc);
        cstate.tick_cone(&cone);

        let next = cycle + 1;
        let fdiff = fstate.tick_frontier(
            &cone,
            &mut fs,
            if next < cycles {
                Some(netj.row(next))
            } else {
                None
            },
        );
        if next < cycles {
            let packed = golden.journal.state_at(next);
            // Convergence detection sees identical lane diffs — the
            // frontier derives its mask from the latch loop alone.
            prop_assert_eq!(
                full.diff_lanes(cc, packed),
                cstate.diff_lanes_cone(&cone, packed),
                "diff mask entering cycle {}",
                next
            );
            prop_assert_eq!(
                full.diff_lanes(cc, packed),
                fdiff,
                "frontier diff mask entering cycle {}",
                next
            );
            // Overlaying the cone flip-flops on the golden row
            // reconstructs the full packed state of any lane.
            let lane = times.len() - 1;
            let mut want = Vec::new();
            full.pack_ff_state(cc, lane, &mut want);
            let mut got = packed.to_vec();
            cstate.pack_ff_state_cone(&cone, lane, &mut got);
            prop_assert_eq!(want, got, "packed overlay entering cycle {}", next);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cone-restricted batch simulation ≡ full-circuit batch simulation:
    /// identical watched outputs every cycle (with out-of-cone outputs
    /// served from the golden trace), identical convergence diffs and
    /// identical reconstructed packed states, for both fault models and
    /// random per-lane injection times.
    #[test]
    fn cone_batch_equals_full_batch(
        width in 2usize..6,
        seu in any::<bool>(),
        pick in 0usize..64,
        raw_times in proptest::collection::vec(0u64..1000, 1..16),
        cycles in 24u64..48,
    ) {
        let cc = circuit(width);
        let stim = MixStimulus { width, cycles };
        assert_three_way(&cc, &stim, seu, pick, &raw_times, cycles);
    }

    /// Corpus-wide conformance: the same three-way equivalence holds over
    /// *arbitrary generated corpus circuits* — `CorpusSpec::sampled` maps
    /// free integers onto every generator family (counters, LFSR
    /// pipelines, ALUs, FIFOs, CRCs, register files, seeded mixes), so
    /// shrinking walks both circuit structure and injection placement.
    #[test]
    fn corpus_cone_batch_equals_full_batch(
        kind in 0usize..7,
        size_a in any::<usize>(),
        size_b in any::<usize>(),
        structure_seed in any::<u64>(),
        seu in any::<bool>(),
        pick in 0usize..64,
        raw_times in proptest::collection::vec(0u64..1000, 1..12),
        cycles in 24u64..40,
    ) {
        let spec = CorpusSpec::sampled(kind, size_a, size_b, structure_seed);
        let cc = CompiledCircuit::compile(spec.build()).unwrap();
        let stim = HashStimulus { inputs: cc.num_inputs(), cycles };
        assert_three_way(&cc, &stim, seu, pick, &raw_times, cycles);
    }
}
