//! Minimal VCD (Value Change Dump) writer for debugging simulations.
//!
//! Only lane 0 is dumped. The output is accepted by GTKWave and similar
//! viewers. This module is a developer convenience and is not used by the
//! experiment pipeline.

use crate::compile::CompiledCircuit;
use crate::engine::SimState;
use ffr_netlist::NetId;
use std::io::{self, Write};

/// Streaming VCD writer for a chosen set of nets.
///
/// # Example
///
/// ```
/// use ffr_netlist::NetlistBuilder;
/// use ffr_sim::{CompiledCircuit, SimState};
/// use ffr_sim::vcd::VcdWriter;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new("t");
/// let a = b.input("a", 1);
/// let r = b.reg("r", 1);
/// b.connect(&r, &a)?;
/// b.output("q", &r.q());
/// let cc = CompiledCircuit::compile(b.finish()?)?;
///
/// let nets: Vec<_> = cc.netlist().nets().map(|(id, _)| id).collect();
/// let mut out = Vec::new();
/// let mut vcd = VcdWriter::new(&mut out, &cc, &nets)?;
/// let mut state = SimState::new(&cc);
/// for cycle in 0..4 {
///     state.set_input(&cc, 0, cycle % 2 == 0);
///     state.eval(&cc);
///     vcd.sample(&state)?;
///     state.tick(&cc);
/// }
/// vcd.finish()?;
/// assert!(String::from_utf8(out)?.contains("$enddefinitions"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct VcdWriter<W: Write> {
    out: W,
    nets: Vec<NetId>,
    codes: Vec<String>,
    last: Vec<Option<bool>>,
    time: u64,
}

fn code_for(index: usize) -> String {
    // VCD identifier codes: printable ASCII 33..=126, little-endian base-94.
    let mut i = index;
    let mut code = String::new();
    loop {
        code.push((33 + (i % 94)) as u8 as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    code
}

impl<W: Write> VcdWriter<W> {
    /// Write the VCD header declaring `nets` as scalar wires.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn new(mut out: W, cc: &CompiledCircuit, nets: &[NetId]) -> io::Result<VcdWriter<W>> {
        writeln!(out, "$timescale 1ns $end")?;
        writeln!(out, "$scope module {} $end", cc.netlist().name())?;
        let mut codes = Vec::with_capacity(nets.len());
        for (i, &net) in nets.iter().enumerate() {
            let code = code_for(i);
            let name = cc.netlist().net(net).name().replace(['[', ']'], "_");
            writeln!(out, "$var wire 1 {code} {name} $end")?;
            codes.push(code);
        }
        writeln!(out, "$upscope $end")?;
        writeln!(out, "$enddefinitions $end")?;
        Ok(VcdWriter {
            out,
            nets: nets.to_vec(),
            codes,
            last: vec![None; nets.len()],
            time: 0,
        })
    }

    /// Record the lane-0 value of every declared net at the current time.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn sample(&mut self, state: &SimState) -> io::Result<()> {
        let mut wrote_time = false;
        for (i, &net) in self.nets.iter().enumerate() {
            let bit = state.net_word(net) & 1 == 1;
            if self.last[i] != Some(bit) {
                if !wrote_time {
                    writeln!(self.out, "#{}", self.time)?;
                    wrote_time = true;
                }
                writeln!(self.out, "{}{}", if bit { '1' } else { '0' }, self.codes[i])?;
                self.last[i] = Some(bit);
            }
        }
        self.time += 1;
        Ok(())
    }

    /// Write the final timestamp and flush.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn finish(mut self) -> io::Result<()> {
        writeln!(self.out, "#{}", self.time)?;
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffr_netlist::NetlistBuilder;

    #[test]
    fn identifier_codes_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            assert!(seen.insert(code_for(i)), "duplicate code at {i}");
        }
    }

    #[test]
    fn writes_changes_only() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a", 1);
        b.output("q", &a);
        let cc = CompiledCircuit::compile(b.finish().unwrap()).unwrap();
        let nets: Vec<_> = cc.netlist().nets().map(|(id, _)| id).collect();
        let mut out = Vec::new();
        let mut vcd = VcdWriter::new(&mut out, &cc, &nets).unwrap();
        let mut state = SimState::new(&cc);
        for cycle in 0..6 {
            state.set_input(&cc, 0, cycle < 3);
            state.eval(&cc);
            vcd.sample(&state).unwrap();
            state.tick(&cc);
        }
        vcd.finish().unwrap();
        let text = String::from_utf8(out).unwrap();
        // Exactly two change points: #0 (rise) and #3 (fall).
        assert!(text.contains("#0\n"));
        assert!(text.contains("#3\n"));
        assert!(!text.contains("#1\n"));
    }
}
