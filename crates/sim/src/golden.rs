//! Golden (fault-free) reference run artifacts.
//!
//! The fault-injection engine needs three things from the reference run:
//!
//! 1. the **output trace** of the watched ports (to classify failures),
//! 2. a **per-cycle journal of the packed flip-flop state** — both to
//!    restart simulation at an arbitrary cycle (checkpointing) and to detect
//!    when a faulty lane has re-converged to the fault-free state,
//! 3. the **activity trace** (reused as the dynamic feature source).

use crate::activity::ActivityTrace;
use crate::compile::CompiledCircuit;
use crate::engine::SimState;
use crate::testbench::{InputFrame, OutputTrace, Stimulus, WatchList};
use serde::{Deserialize, Serialize};

/// Packed lane-0 flip-flop state for every cycle of a run.
///
/// Entry `c` is the state *entering* cycle `c` (i.e. before the inputs of
/// cycle `c` are applied), so restoring entry `c` and replaying the stimulus
/// from cycle `c` reproduces the run exactly.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateJournal {
    words_per_cycle: usize,
    cycles: u64,
    data: Vec<u64>,
}

impl StateJournal {
    fn new(words_per_cycle: usize, cycles: u64) -> StateJournal {
        StateJournal {
            words_per_cycle,
            cycles,
            data: vec![0; words_per_cycle * cycles as usize],
        }
    }

    /// Number of journalled cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Packed flip-flop state entering `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` is out of range.
    pub fn state_at(&self, cycle: u64) -> &[u64] {
        assert!(cycle < self.cycles, "cycle {cycle} beyond journal");
        let row = cycle as usize * self.words_per_cycle;
        &self.data[row..row + self.words_per_cycle]
    }

    /// Value of one flip-flop at `cycle`.
    pub fn ff_bit(&self, cycle: u64, ff: ffr_netlist::FfId) -> bool {
        let s = self.state_at(cycle);
        (s[ff.index() / 64] >> (ff.index() % 64)) & 1 == 1
    }

    fn record(&mut self, cc: &CompiledCircuit, state: &SimState, scratch: &mut Vec<u64>) {
        let cycle = state.cycle();
        state.pack_ff_state(cc, 0, scratch);
        let row = cycle as usize * self.words_per_cycle;
        self.data[row..row + self.words_per_cycle].copy_from_slice(scratch);
    }
}

/// Packed lane-0 value of **every net** for every cycle of the golden
/// run — the boundary-net journal of cone-restricted fault simulation.
///
/// Row `c` is captured after the combinational evaluation of cycle `c`
/// (before the clock edge), so it holds exactly what any op reads during
/// cycle `c`: primary inputs carry the cycle-`c` stimulus, gate outputs
/// their cycle-`c` golden values, and flip-flop Q nets the state
/// *entering* cycle `c`. Broadcasting a cone's boundary nets from row `c`
/// therefore reproduces the full evaluation's environment without
/// replaying the stimulus.
///
/// Kept separate from [`GoldenRun`] (and from its serialized artifact
/// shape): it is a derived acceleration structure, recaptured lazily per
/// campaign, not part of the golden reference.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetJournal {
    words_per_cycle: usize,
    cycles: u64,
    data: Vec<u64>,
}

impl NetJournal {
    /// Replay the stimulus from reset at full-circuit speed and record
    /// every net's lane-0 value per cycle.
    pub fn capture(cc: &CompiledCircuit, stimulus: &dyn Stimulus) -> NetJournal {
        let cycles = stimulus.num_cycles();
        let words_per_cycle = cc.num_nets.div_ceil(64);
        let mut journal = NetJournal {
            words_per_cycle,
            cycles,
            data: vec![0; words_per_cycle * cycles as usize],
        };
        let mut state = SimState::new(cc);
        let mut frame = InputFrame::new(cc.num_inputs());
        let mut scratch = Vec::new();
        for cycle in 0..cycles {
            frame.clear();
            stimulus.drive(cycle, &mut frame);
            frame.apply(cc, &mut state);
            state.eval(cc);
            state.pack_net_state(0, &mut scratch);
            let row = cycle as usize * words_per_cycle;
            journal.data[row..row + words_per_cycle].copy_from_slice(&scratch);
            state.tick(cc);
        }
        journal
    }

    /// Number of journalled cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Packed net values during cycle `cycle` (post-eval, pre-tick).
    ///
    /// # Panics
    ///
    /// Panics if `cycle` is out of range.
    pub fn row(&self, cycle: u64) -> &[u64] {
        assert!(cycle < self.cycles, "cycle {cycle} beyond net journal");
        let row = cycle as usize * self.words_per_cycle;
        &self.data[row..row + self.words_per_cycle]
    }

    /// Golden value of one net during `cycle`.
    pub fn net_bit(&self, cycle: u64, net: ffr_netlist::NetId) -> bool {
        let row = self.row(cycle);
        (row[net.index() / 64] >> (net.index() % 64)) & 1 == 1
    }

    /// Golden value of one net during `cycle`, broadcast to all 64
    /// lanes (all-ones when the net is high, zero when low). This is
    /// the frontier path's lazy-refresh primitive: clean faulty-state
    /// nets are reconstructed from the journal on demand instead of
    /// being swept in every cycle.
    pub fn net_broadcast(&self, cycle: u64, net: ffr_netlist::NetId) -> u64 {
        let row = self.row(cycle);
        ((row[net.index() / 64] >> (net.index() % 64)) & 1).wrapping_neg()
    }
}

/// Legacy alias kept for API compatibility: a journal entry used as an
/// explicit checkpoint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Cycle the state belongs to.
    pub cycle: u64,
    /// Packed flip-flop state entering that cycle.
    pub packed: Vec<u64>,
}

/// All artifacts of the golden (fault-free) reference run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GoldenRun {
    /// Watched-output recording of the fault-free run.
    pub trace: OutputTrace,
    /// Per-flip-flop activity statistics (dynamic features).
    pub activity: ActivityTrace,
    /// Per-cycle packed flip-flop state.
    pub journal: StateJournal,
}

impl GoldenRun {
    /// Execute the stimulus from reset and collect all reference artifacts.
    pub fn capture(cc: &CompiledCircuit, stimulus: &dyn Stimulus, watch: &WatchList) -> GoldenRun {
        let cycles = stimulus.num_cycles();
        let mut state = SimState::new(cc);
        let mut frame = InputFrame::new(cc.num_inputs());
        let mut trace = OutputTrace::new(0, cycles, watch.len());
        let mut activity = ActivityTrace::new(cc.num_ffs());
        let mut journal = StateJournal::new(cc.ff_words(), cycles);
        let mut scratch = Vec::new();
        for cycle in 0..cycles {
            journal.record(cc, &state, &mut scratch);
            frame.clear();
            stimulus.drive(cycle, &mut frame);
            frame.apply(cc, &mut state);
            state.eval(cc);
            trace.record(cc, watch, &state);
            activity.record(cc, &state);
            state.tick(cc);
        }
        GoldenRun {
            trace,
            activity,
            journal,
        }
    }

    /// Restore a [`SimState`] to the state entering `cycle`, broadcast to
    /// all lanes, ready for stimulus replay.
    pub fn restore(&self, cc: &CompiledCircuit, cycle: u64) -> SimState {
        let mut state = SimState::new(cc);
        state.load_ff_state_broadcast(cc, self.journal.state_at(cycle));
        state.set_cycle(cycle);
        state
    }

    /// Extract an explicit checkpoint (rarely needed; prefer
    /// [`GoldenRun::restore`]).
    pub fn checkpoint(&self, cycle: u64) -> Checkpoint {
        Checkpoint {
            cycle,
            packed: self.journal.state_at(cycle).to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffr_netlist::NetlistBuilder;

    struct CountEnable;

    impl Stimulus for CountEnable {
        fn num_cycles(&self) -> u64 {
            40
        }

        fn drive(&self, cycle: u64, frame: &mut InputFrame) {
            frame.set(0, !cycle.is_multiple_of(3));
        }
    }

    fn counter() -> CompiledCircuit {
        let mut b = NetlistBuilder::new("c");
        let en = b.input("en", 1);
        let r = b.reg("count", 6);
        let next = b.inc(&r.q());
        b.connect_en(&r, &en, &next).unwrap();
        b.output("value", &r.q());
        CompiledCircuit::compile(b.finish().unwrap()).unwrap()
    }

    #[test]
    fn journal_matches_replay() {
        let cc = counter();
        let watch = WatchList::all(&cc);
        let golden = GoldenRun::capture(&cc, &CountEnable, &watch);
        assert_eq!(golden.journal.cycles(), 40);

        // Restore at cycle 17 and replay; outputs must match the golden
        // trace for every remaining cycle.
        let mut state = golden.restore(&cc, 17);
        let mut frame = InputFrame::new(cc.num_inputs());
        for cycle in 17..40u64 {
            frame.clear();
            CountEnable.drive(cycle, &mut frame);
            frame.apply(&cc, &mut state);
            state.eval(&cc);
            for w in 0..watch.len() {
                let golden_bit = golden.trace.bit(w, cycle, 0);
                let got = (state.output_word(&cc, watch.indices()[w]) >> 5) & 1 == 1;
                assert_eq!(got, golden_bit, "cycle {cycle} output {w}");
            }
            state.tick(&cc);
        }
    }

    #[test]
    fn journal_state_entering_cycle_zero_is_reset() {
        let cc = counter();
        let watch = WatchList::all(&cc);
        let golden = GoldenRun::capture(&cc, &CountEnable, &watch);
        let s0 = golden.journal.state_at(0);
        assert!(s0.iter().all(|&w| w == 0), "reset state all zeros");
        for ff in 0..cc.num_ffs() {
            assert!(!golden.journal.ff_bit(0, ffr_netlist::FfId::from_index(ff)));
        }
    }

    #[test]
    fn net_journal_rows_match_replayed_values() {
        let cc = counter();
        let journal = NetJournal::capture(&cc, &CountEnable);
        assert_eq!(journal.cycles(), 40);

        let mut state = SimState::new(&cc);
        let mut frame = InputFrame::new(cc.num_inputs());
        for cycle in 0..40u64 {
            frame.clear();
            CountEnable.drive(cycle, &mut frame);
            frame.apply(&cc, &mut state);
            state.eval(&cc);
            for net in 0..cc.netlist().num_nets() {
                let net = ffr_netlist::NetId::from_index(net);
                let expected = state.net_word(net) & 1 == 1;
                assert_eq!(
                    journal.net_bit(cycle, net),
                    expected,
                    "net {net} at cycle {cycle}"
                );
            }
            state.tick(&cc);
        }
        // Primary inputs carry the cycle's stimulus (en is low on
        // multiples of 3).
        let en = cc.netlist().primary_inputs()[0];
        assert!(!journal.net_bit(3, en));
        assert!(journal.net_bit(4, en));
    }

    #[test]
    fn checkpoint_equals_journal_entry() {
        let cc = counter();
        let watch = WatchList::all(&cc);
        let golden = GoldenRun::capture(&cc, &CountEnable, &watch);
        let cp = golden.checkpoint(9);
        assert_eq!(cp.cycle, 9);
        assert_eq!(cp.packed.as_slice(), golden.journal.state_at(9));
    }
}
