//! Per-flip-flop signal-activity statistics.
//!
//! These statistics implement the paper's three *dynamic features*: the time
//! ratio a flip-flop output spends at logic 0 (`@0`) and logic 1 (`@1`), and
//! the number of output transitions (*State Changes*). They are collected on
//! simulation lane 0 during the golden run.

use crate::compile::CompiledCircuit;
use crate::engine::SimState;
use ffr_netlist::FfId;
use serde::{Deserialize, Serialize};

/// Signal-activity counters for every flip-flop in a circuit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivityTrace {
    cycles: u64,
    ones: Vec<u64>,
    transitions: Vec<u64>,
    last: Vec<bool>,
    first: bool,
}

impl ActivityTrace {
    /// Empty trace for `num_ffs` flip-flops.
    pub fn new(num_ffs: usize) -> ActivityTrace {
        ActivityTrace {
            cycles: 0,
            ones: vec![0; num_ffs],
            transitions: vec![0; num_ffs],
            last: vec![false; num_ffs],
            first: true,
        }
    }

    /// Record the lane-0 flip-flop values of the current cycle.
    pub fn record(&mut self, cc: &CompiledCircuit, state: &SimState) {
        for i in 0..cc.num_ffs() {
            let bit = state.ff_word(cc, FfId::from_index(i)) & 1 == 1;
            if bit {
                self.ones[i] += 1;
            }
            if !self.first && bit != self.last[i] {
                self.transitions[i] += 1;
            }
            self.last[i] = bit;
        }
        self.first = false;
        self.cycles += 1;
    }

    /// Number of recorded cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Number of flip-flops covered.
    pub fn num_ffs(&self) -> usize {
        self.ones.len()
    }

    /// Fraction of cycles the flip-flop output was 0 (the paper's `@0`).
    pub fn at0(&self, ff: FfId) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        1.0 - self.at1(ff)
    }

    /// Fraction of cycles the flip-flop output was 1 (the paper's `@1`).
    pub fn at1(&self, ff: FfId) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.ones[ff.index()] as f64 / self.cycles as f64
    }

    /// Number of 0→1 and 1→0 output transitions (the paper's *State
    /// Changes*).
    pub fn state_changes(&self, ff: FfId) -> u64 {
        self.transitions[ff.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffr_netlist::NetlistBuilder;

    #[test]
    fn free_running_toggler_statistics() {
        let mut b = NetlistBuilder::new("t");
        let one = b.one_bit();
        let t = b.reg("t", 1);
        let inv = b.not(&t.q());
        b.connect(&t, &inv).unwrap();
        b.output("q", &t.q());
        // The builder requires at least one input for the frame machinery
        // to have work to do; add an unused one.
        let _unused = one;
        let cc = CompiledCircuit::compile(b.finish().unwrap()).unwrap();
        let mut s = SimState::new(&cc);
        let mut act = ActivityTrace::new(cc.num_ffs());
        for _ in 0..100 {
            s.eval(&cc);
            act.record(&cc, &s);
            s.tick(&cc);
        }
        let ff = FfId::from_index(0);
        assert_eq!(act.cycles(), 100);
        assert_eq!(act.state_changes(ff), 99);
        assert!((act.at1(ff) - 0.5).abs() < 0.011);
        assert!((act.at0(ff) + act.at1(ff) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_ff_has_no_transitions() {
        let mut b = NetlistBuilder::new("c");
        let a = b.input("a", 1);
        let r = b.reg("r", 1);
        let zero = b.zero_bit();
        b.connect(&r, &zero).unwrap();
        let o = b.and(&r.q(), &a);
        b.output("o", &o);
        let cc = CompiledCircuit::compile(b.finish().unwrap()).unwrap();
        let mut s = SimState::new(&cc);
        let mut act = ActivityTrace::new(cc.num_ffs());
        for _ in 0..50 {
            s.eval(&cc);
            act.record(&cc, &s);
            s.tick(&cc);
        }
        let ff = FfId::from_index(0);
        assert_eq!(act.state_changes(ff), 0);
        assert_eq!(act.at0(ff), 1.0);
        assert_eq!(act.at1(ff), 0.0);
    }

    #[test]
    fn empty_trace_is_well_defined() {
        let act = ActivityTrace::new(3);
        assert_eq!(act.at0(FfId::from_index(0)), 0.0);
        assert_eq!(act.at1(FfId::from_index(0)), 0.0);
        assert_eq!(act.num_ffs(), 3);
    }
}
