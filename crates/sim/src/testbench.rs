//! Open-loop testbench infrastructure: stimulus, output recording, lane
//! views.

use crate::activity::ActivityTrace;
use crate::compile::CompiledCircuit;
use crate::engine::SimState;
use serde::{Deserialize, Serialize};

/// One cycle's worth of primary-input values (a 64-lane word per input).
///
/// The frame is cleared to all-zero before every [`Stimulus::drive`] call,
/// so a stimulus must set every input it wants non-zero on every cycle.
/// This is what makes runs restartable from any cycle.
#[derive(Debug, Clone)]
pub struct InputFrame {
    words: Vec<u64>,
}

impl InputFrame {
    /// Frame for a circuit with `num_inputs` primary inputs, all zero.
    pub fn new(num_inputs: usize) -> InputFrame {
        InputFrame {
            words: vec![0; num_inputs],
        }
    }

    /// Reset every input to 0 on all lanes.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Set input `index` to `value` on all lanes.
    pub fn set(&mut self, index: usize, value: bool) {
        self.words[index] = if value { !0 } else { 0 };
    }

    /// Set a whole bus of consecutive single-bit inputs from an integer
    /// value, LSB first: input `base + i` receives bit `i` of `value`.
    pub fn set_bus(&mut self, base: usize, width: usize, value: u64) {
        for i in 0..width {
            self.set(base + i, (value >> i) & 1 == 1);
        }
    }

    /// Number of inputs in the frame.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// `true` if the circuit has no primary inputs.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Apply the frame to the simulator's primary inputs.
    pub fn apply(&self, cc: &CompiledCircuit, state: &mut SimState) {
        for (i, &w) in self.words.iter().enumerate() {
            state.set_input_lanes(cc, i, w);
        }
    }
}

/// An open-loop input stimulus.
///
/// `drive` must be a **pure function of the cycle number**: the fault
/// engine replays arbitrary suffixes of the testbench, so two calls with
/// the same cycle must produce the same frame. Precompute any schedule in
/// the constructor.
pub trait Stimulus {
    /// Total number of cycles the testbench runs.
    fn num_cycles(&self) -> u64;

    /// Fill `frame` with the input values for `cycle`.
    fn drive(&self, cycle: u64, frame: &mut InputFrame);
}

impl<S: Stimulus + ?Sized> Stimulus for &S {
    fn num_cycles(&self) -> u64 {
        (**self).num_cycles()
    }

    fn drive(&self, cycle: u64, frame: &mut InputFrame) {
        (**self).drive(cycle, frame)
    }
}

/// The set of primary outputs a testbench wants recorded.
///
/// Recording every output of a large design for every cycle and lane is
/// wasteful; failure classification usually needs only the user-visible
/// interface (e.g. the RX packet port of the MAC).
#[derive(Debug, Clone)]
pub struct WatchList {
    indices: Vec<usize>,
}

impl WatchList {
    /// Watch the outputs with the given port names.
    ///
    /// # Panics
    ///
    /// Panics if a name is not a primary output of the netlist.
    pub fn by_names(cc: &CompiledCircuit, names: &[&str]) -> WatchList {
        let indices = names
            .iter()
            .map(|n| {
                cc.netlist()
                    .output_index(n)
                    .unwrap_or_else(|| panic!("no primary output named `{n}`"))
            })
            .collect();
        WatchList { indices }
    }

    /// Watch a whole output bus `name[0]..name[width-1]` (or the scalar
    /// `name` if `width == 1`), returning the watch offsets of its bits.
    ///
    /// # Panics
    ///
    /// Panics if a port is missing.
    pub fn push_bus(&mut self, cc: &CompiledCircuit, name: &str, width: usize) -> Vec<usize> {
        let mut offsets = Vec::with_capacity(width);
        for i in 0..width {
            let port = if width == 1 {
                name.to_string()
            } else {
                format!("{name}[{i}]")
            };
            let idx = cc
                .netlist()
                .output_index(&port)
                .unwrap_or_else(|| panic!("no primary output named `{port}`"));
            offsets.push(self.indices.len());
            self.indices.push(idx);
        }
        offsets
    }

    /// Empty watch list to be extended with [`WatchList::push_bus`].
    pub fn empty() -> WatchList {
        WatchList {
            indices: Vec::new(),
        }
    }

    /// Watch every primary output.
    pub fn all(cc: &CompiledCircuit) -> WatchList {
        WatchList {
            indices: (0..cc.num_outputs()).collect(),
        }
    }

    /// Number of watched outputs.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// `true` if nothing is watched.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The watched primary-output indices.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }
}

/// Recorded values of the watched outputs over a cycle range, all 64 lanes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutputTrace {
    start: u64,
    end: u64,
    width: usize,
    data: Vec<u64>,
}

impl OutputTrace {
    /// Allocate a trace covering `start..end` cycles of `width` outputs.
    pub fn new(start: u64, end: u64, width: usize) -> OutputTrace {
        assert!(end >= start);
        OutputTrace {
            start,
            end,
            width,
            data: vec![0; (end - start) as usize * width],
        }
    }

    /// Re-initialize the trace in place for a new cycle range, zeroing
    /// every word. Reuses the existing allocation — batch loops call this
    /// instead of constructing a fresh trace per batch, with identical
    /// resulting contents.
    pub fn reset(&mut self, start: u64, end: u64, width: usize) {
        assert!(end >= start);
        self.start = start;
        self.end = end;
        self.width = width;
        self.data.clear();
        self.data.resize((end - start) as usize * width, 0);
    }

    /// Re-initialize the trace in place to `source`'s contents over
    /// `start..source.end` — the frontier batch loop seeds the faulty
    /// trace with the golden trace in one bulk copy, then overwrites only
    /// the rows where a watched output actually deviates.
    ///
    /// # Panics
    ///
    /// Panics if `start` is outside `source`'s range or the widths would
    /// differ.
    pub fn reset_from(&mut self, source: &OutputTrace, start: u64) {
        assert!(
            start >= source.start && start <= source.end,
            "cycle {start} outside source trace range {}..{}",
            source.start,
            source.end
        );
        self.start = start;
        self.end = source.end;
        self.width = source.width;
        let from = (start - source.start) as usize * source.width;
        self.data.clear();
        self.data.extend_from_slice(&source.data[from..]);
    }

    /// All watched-output words of one cycle, in watch-list order.
    ///
    /// # Panics
    ///
    /// Panics if the cycle is outside the recorded range.
    pub fn row(&self, cycle: u64) -> &[u64] {
        assert!(
            cycle >= self.start && cycle < self.end,
            "cycle {cycle} outside trace range {}..{}",
            self.start,
            self.end
        );
        let row = (cycle - self.start) as usize * self.width;
        &self.data[row..row + self.width]
    }

    /// Mutable access to one cycle's watched-output words.
    ///
    /// # Panics
    ///
    /// Panics if the cycle is outside the recorded range.
    pub fn row_mut(&mut self, cycle: u64) -> &mut [u64] {
        assert!(
            cycle >= self.start && cycle < self.end,
            "cycle {cycle} outside trace range {}..{}",
            self.start,
            self.end
        );
        let row = (cycle - self.start) as usize * self.width;
        &mut self.data[row..row + self.width]
    }

    /// First recorded cycle.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// One past the last recorded cycle.
    pub fn end(&self) -> u64 {
        self.end
    }

    /// Number of watched outputs.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Record the watched outputs of `state` at its current cycle.
    ///
    /// # Panics
    ///
    /// Panics (in debug) if the cycle is outside the trace range.
    pub fn record(&mut self, cc: &CompiledCircuit, watch: &WatchList, state: &SimState) {
        let cycle = state.cycle();
        debug_assert!(cycle >= self.start && cycle < self.end);
        let row = (cycle - self.start) as usize * self.width;
        for (w, &po) in watch.indices().iter().enumerate() {
            self.data[row + w] = state.output_word(cc, po);
        }
    }

    /// Overwrite the 64-lane word of watched output `w` at `cycle`.
    ///
    /// Intended for constructing synthetic traces in tests and for tools
    /// that splice traces; the simulator itself records via `record`.
    ///
    /// # Panics
    ///
    /// Panics if the cycle is outside the recorded range.
    pub fn set_word(&mut self, w: usize, cycle: u64, word: u64) {
        assert!(
            cycle >= self.start && cycle < self.end,
            "cycle {cycle} outside trace range {}..{}",
            self.start,
            self.end
        );
        self.data[(cycle - self.start) as usize * self.width + w] = word;
    }

    /// Raw 64-lane word of watched output `w` at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if the cycle is outside the recorded range.
    pub fn word(&self, w: usize, cycle: u64) -> u64 {
        assert!(
            cycle >= self.start && cycle < self.end,
            "cycle {cycle} outside trace range {}..{}",
            self.start,
            self.end
        );
        self.data[(cycle - self.start) as usize * self.width + w]
    }

    /// Bit of watched output `w` at `cycle` on `lane`.
    pub fn bit(&self, w: usize, cycle: u64, lane: usize) -> bool {
        (self.word(w, cycle) >> lane) & 1 == 1
    }
}

/// A single-lane, single-scenario view over a faulty trace backed by the
/// golden trace.
///
/// Failure classifiers read outputs through this view; it transparently
/// serves golden data for cycles before the faulty recording starts (the
/// fault had not been injected yet) and after the lane's re-convergence
/// cycle (the faulty state equals golden, so outputs are provably equal).
#[derive(Debug, Clone, Copy)]
pub struct LaneView<'a> {
    golden: &'a OutputTrace,
    faulty: Option<&'a OutputTrace>,
    lane: usize,
    /// Cycle from which outputs are known to equal golden again.
    golden_from: Option<u64>,
}

impl<'a> LaneView<'a> {
    /// View of the golden run itself.
    pub fn golden(golden: &'a OutputTrace) -> LaneView<'a> {
        LaneView {
            golden,
            faulty: None,
            lane: 0,
            golden_from: Some(0),
        }
    }

    /// View of fault-scenario `lane` within `faulty`, backed by `golden`.
    pub fn faulty(
        golden: &'a OutputTrace,
        faulty: &'a OutputTrace,
        lane: usize,
        golden_from: Option<u64>,
    ) -> LaneView<'a> {
        LaneView {
            golden,
            faulty: Some(faulty),
            lane,
            golden_from,
        }
    }

    /// Total number of cycles covered (same as the golden trace).
    pub fn num_cycles(&self) -> u64 {
        self.golden.end()
    }

    /// Number of watched outputs.
    pub fn width(&self) -> usize {
        self.golden.width()
    }

    /// Value of watched output `w` at `cycle` for this scenario.
    pub fn bit(&self, w: usize, cycle: u64) -> bool {
        if let Some(g) = self.golden_from {
            if cycle >= g {
                return self.golden.bit(w, cycle, 0);
            }
        }
        match self.faulty {
            Some(f) if cycle >= f.start() && cycle < f.end() => f.bit(w, cycle, self.lane),
            _ => self.golden.bit(w, cycle, 0),
        }
    }

    /// Read a multi-bit value from consecutive watch offsets, LSB first.
    pub fn value(&self, offsets: &[usize], cycle: u64) -> u64 {
        offsets.iter().enumerate().fold(0u64, |acc, (i, &w)| {
            acc | ((self.bit(w, cycle) as u64) << i)
        })
    }
}

/// Everything produced by a plain (fault-free) testbench run.
#[derive(Debug, Clone)]
pub struct TestbenchRun {
    /// Watched-output recording.
    pub trace: OutputTrace,
    /// Per-flip-flop signal activity of lane 0.
    pub activity: ActivityTrace,
    /// State at the end of the run.
    pub final_state: SimState,
}

/// Run `stimulus` against the circuit from reset, recording the watched
/// outputs and the flip-flop activity.
pub fn run_testbench(
    cc: &CompiledCircuit,
    stimulus: &dyn Stimulus,
    watch: &WatchList,
) -> TestbenchRun {
    let cycles = stimulus.num_cycles();
    let mut state = SimState::new(cc);
    let mut frame = InputFrame::new(cc.num_inputs());
    let mut trace = OutputTrace::new(0, cycles, watch.len());
    let mut activity = ActivityTrace::new(cc.num_ffs());
    for cycle in 0..cycles {
        frame.clear();
        stimulus.drive(cycle, &mut frame);
        frame.apply(cc, &mut state);
        state.eval(cc);
        trace.record(cc, watch, &state);
        activity.record(cc, &state);
        state.tick(cc);
    }
    TestbenchRun {
        trace,
        activity,
        final_state: state,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffr_netlist::NetlistBuilder;

    struct PulseEvery4;

    impl Stimulus for PulseEvery4 {
        fn num_cycles(&self) -> u64 {
            32
        }

        fn drive(&self, cycle: u64, frame: &mut InputFrame) {
            frame.set(0, cycle.is_multiple_of(4));
        }
    }

    fn toggler() -> CompiledCircuit {
        let mut b = NetlistBuilder::new("t");
        let en = b.input("en", 1);
        let t = b.reg("t", 1);
        let inv = b.not(&t.q());
        b.connect_en(&t, &en, &inv).unwrap();
        b.output("q", &t.q());
        CompiledCircuit::compile(b.finish().unwrap()).unwrap()
    }

    #[test]
    fn trace_records_expected_waveform() {
        let cc = toggler();
        let watch = WatchList::all(&cc);
        let run = run_testbench(&cc, &PulseEvery4, &watch);
        // q toggles on cycles where en=1 (0,4,8,...): value changes at
        // cycles 1, 5, 9, ... and holds in between.
        let mut expected = false;
        for cycle in 0..32u64 {
            assert_eq!(run.trace.bit(0, cycle, 0), expected, "cycle {cycle}");
            if cycle % 4 == 0 {
                expected = !expected;
            }
        }
    }

    #[test]
    fn activity_counts_toggles() {
        let cc = toggler();
        let watch = WatchList::all(&cc);
        let run = run_testbench(&cc, &PulseEvery4, &watch);
        let ff = ffr_netlist::FfId::from_index(0);
        // 8 enables in 32 cycles -> 8 transitions (first at cycle 1).
        assert_eq!(run.activity.state_changes(ff), 8);
        let at1 = run.activity.at1(ff);
        assert!(at1 > 0.4 && at1 < 0.6, "roughly half the time high: {at1}");
    }

    #[test]
    fn lane_view_golden_delegation() {
        let cc = toggler();
        let watch = WatchList::all(&cc);
        let run = run_testbench(&cc, &PulseEvery4, &watch);
        // A faulty trace that recorded only cycles 8..16 and re-converged
        // at cycle 12 on lane 3.
        let mut faulty = OutputTrace::new(8, 16, 1);
        // Copy golden words, then invert lane 3 between 8..12.
        for cycle in 8..16u64 {
            let w = run.trace.word(0, cycle);
            let w = if cycle < 12 { w ^ (1u64 << 3) } else { w };
            faulty.data[(cycle - 8) as usize] = w;
        }
        let view = LaneView::faulty(&run.trace, &faulty, 3, Some(12));
        for cycle in 0..32u64 {
            let g = run.trace.bit(0, cycle, 0);
            let got = view.bit(0, cycle);
            if (8..12).contains(&cycle) {
                assert_eq!(got, !g, "inverted region at {cycle}");
            } else {
                assert_eq!(got, g, "golden region at {cycle}");
            }
        }
    }

    #[test]
    fn watch_list_by_names_and_bus() {
        let mut b = NetlistBuilder::new("w");
        let a = b.input("a", 4);
        let r = b.reg("r", 4);
        b.connect(&r, &a).unwrap();
        b.output("o", &r.q());
        b.output("flag", &r.q().bit(0));
        let cc = CompiledCircuit::compile(b.finish().unwrap()).unwrap();
        let w1 = WatchList::by_names(&cc, &["flag", "o[2]"]);
        assert_eq!(w1.len(), 2);
        let mut w2 = WatchList::empty();
        let offs = w2.push_bus(&cc, "o", 4);
        assert_eq!(offs, vec![0, 1, 2, 3]);
        assert_eq!(w2.len(), 4);
        assert!(!w2.is_empty());
    }

    #[test]
    fn input_frame_bus_helper() {
        let mut f = InputFrame::new(8);
        f.set_bus(2, 4, 0b1011);
        assert_eq!(f.words[2], !0);
        assert_eq!(f.words[3], !0);
        assert_eq!(f.words[4], 0);
        assert_eq!(f.words[5], !0);
        assert_eq!(f.len(), 8);
    }
}
