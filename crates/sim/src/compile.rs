//! Netlist levelization and compilation into a flat operation list.

use ffr_netlist::{CellKind, NetId, Netlist};
use std::fmt;

/// Errors produced while compiling a netlist for simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The netlist contains a combinational cycle (a loop not broken by a
    /// flip-flop), which a cycle-based simulator cannot evaluate.
    CombinationalCycle {
        /// Names of some cells on the cycle (truncated for readability).
        cells: Vec<String>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CombinationalCycle { cells } => {
                write!(f, "combinational cycle through: {}", cells.join(" -> "))
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A single compiled gate evaluation.
///
/// Operand fields index into the flat net-value array; unused operands are 0
/// and ignored by [`CellKind::eval`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct Op {
    pub kind: CellKind,
    pub a: u32,
    pub b: u32,
    pub c: u32,
    pub out: u32,
}

/// Sentinel in the net→driver index for nets without a combinational
/// driver (primary inputs, flip-flop outputs, constants).
const NO_DRIVER: u32 = u32::MAX;

/// A compiled injection site: one net, resolved against the op list once.
///
/// Forcing a transient onto a net needs to know whether the net is driven
/// by a combinational op (flip *at* that op, in topological position) or
/// is a source net (flip the stored value before evaluation). Resolving
/// this used to cost an `O(num_ops)` scan per
/// [`SimState::eval_forced`](crate::SimState::eval_forced) call; a
/// `FaultSite` carries the answer, compiled once per target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSite {
    /// Index of the forced net in the flat value array.
    pub(crate) target: u32,
    /// Index of the driving op in [`CompiledCircuit::ops`], or `None` for
    /// source nets (primary inputs, flip-flop outputs).
    pub(crate) driver: Option<u32>,
}

impl FaultSite {
    /// The forced net.
    pub fn net(&self) -> NetId {
        NetId::from_index(self.target as usize)
    }

    /// `true` if the net is driven by a combinational op (a gate-output
    /// SET); `false` for source nets.
    pub fn has_comb_driver(&self) -> bool {
        self.driver.is_some()
    }
}

/// A netlist compiled for fast cycle-based evaluation.
///
/// The compiled form owns the netlist it was built from — simulation,
/// fault injection and feature extraction all share it, and campaigns move
/// it across worker threads.
#[derive(Debug, Clone)]
pub struct CompiledCircuit {
    netlist: Netlist,
    pub(crate) ops: Vec<Op>,
    pub(crate) num_nets: usize,
    pub(crate) pi_nets: Vec<u32>,
    pub(crate) po_nets: Vec<u32>,
    pub(crate) ff_q: Vec<u32>,
    pub(crate) ff_d: Vec<u32>,
    pub(crate) ff_init: Vec<bool>,
    /// For each net, the index of the op driving it (`NO_DRIVER` for
    /// source nets) — the compiled net→driving-op index behind
    /// [`CompiledCircuit::fault_site`].
    net_driver: Vec<u32>,
    levels: Vec<u32>,
    max_level: u32,
}

impl CompiledCircuit {
    /// Levelize and compile a netlist.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CombinationalCycle`] if the combinational part of
    /// the netlist is cyclic.
    pub fn compile(netlist: Netlist) -> Result<CompiledCircuit, SimError> {
        let num_nets = netlist.num_nets();
        let num_cells = netlist.num_cells();

        // Kahn's algorithm over combinational cells. A cell depends on
        // another cell iff one of its inputs is driven by a *combinational*
        // cell (flip-flop outputs and primary inputs are sequential
        // boundaries, i.e. sources).
        let mut indegree = vec![0u32; num_cells];
        let mut comb_count = 0usize;
        for (id, cell) in netlist.cells() {
            if cell.kind().is_sequential() {
                continue;
            }
            comb_count += 1;
            for &input in cell.inputs() {
                if let Some(driver) = netlist.driver(input) {
                    if !netlist.cell(driver).kind().is_sequential() {
                        indegree[id.index()] += 1;
                    }
                }
            }
        }

        let mut levels = vec![0u32; num_nets];
        let mut queue: Vec<usize> = Vec::with_capacity(comb_count);
        for (id, cell) in netlist.cells() {
            if !cell.kind().is_sequential() && indegree[id.index()] == 0 {
                queue.push(id.index());
            }
        }

        let mut ops = Vec::with_capacity(comb_count);
        let mut net_driver = vec![NO_DRIVER; num_nets];
        let mut max_level = 0u32;
        let mut head = 0usize;
        while head < queue.len() {
            let cell_idx = queue[head];
            head += 1;
            let cell = netlist.cell(ffr_netlist::CellId::from_index(cell_idx));
            let ins = cell.inputs();
            let get = |i: usize| ins.get(i).map(|n| n.index() as u32).unwrap_or(0);
            net_driver[cell.output().index()] = ops.len() as u32;
            ops.push(Op {
                kind: cell.kind(),
                a: get(0),
                b: get(1),
                c: get(2),
                out: cell.output().index() as u32,
            });
            let lvl = 1 + ins.iter().map(|&n| levels[n.index()]).max().unwrap_or(0);
            levels[cell.output().index()] = lvl;
            max_level = max_level.max(lvl);
            // Release readers.
            for &reader in netlist.readers(cell.output()) {
                let rc = netlist.cell(reader);
                if !rc.kind().is_sequential() {
                    let r = reader.index();
                    indegree[r] -= 1;
                    if indegree[r] == 0 {
                        queue.push(r);
                    }
                }
            }
        }

        if ops.len() != comb_count {
            let mut cyclic: Vec<String> = netlist
                .cells()
                .filter(|(id, c)| !c.kind().is_sequential() && indegree[id.index()] > 0)
                .map(|(_, c)| c.name().to_string())
                .take(8)
                .collect();
            if cyclic.is_empty() {
                cyclic.push("<unknown>".to_string());
            }
            return Err(SimError::CombinationalCycle { cells: cyclic });
        }

        let pi_nets = netlist
            .primary_inputs()
            .iter()
            .map(|n| n.index() as u32)
            .collect();
        let po_nets = netlist
            .primary_outputs()
            .iter()
            .map(|(_, n)| n.index() as u32)
            .collect();
        let mut ff_q = Vec::with_capacity(netlist.num_ffs());
        let mut ff_d = Vec::with_capacity(netlist.num_ffs());
        let mut ff_init = Vec::with_capacity(netlist.num_ffs());
        for (ff, _) in netlist.ffs() {
            ff_q.push(netlist.ff_q_net(ff).index() as u32);
            ff_d.push(netlist.ff_d_net(ff).index() as u32);
            ff_init.push(netlist.ff_init(ff));
        }

        Ok(CompiledCircuit {
            netlist,
            ops,
            num_nets,
            pi_nets,
            po_nets,
            ff_q,
            ff_d,
            ff_init,
            net_driver,
            levels,
            max_level,
        })
    }

    /// Compile a net into a [`FaultSite`] ready for repeated
    /// [`SimState::eval_forced_site`](crate::SimState::eval_forced_site)
    /// calls.
    pub fn fault_site(&self, net: NetId) -> FaultSite {
        let target = net.index() as u32;
        let driver = match self.net_driver[net.index()] {
            NO_DRIVER => None,
            op => Some(op),
        };
        FaultSite { target, driver }
    }

    /// Every net driven by a combinational op, ascending by net index —
    /// the canonical SET-campaign target list.
    pub fn comb_output_nets(&self) -> Vec<NetId> {
        let mut nets: Vec<NetId> = self
            .ops
            .iter()
            .map(|op| NetId::from_index(op.out as usize))
            .collect();
        nets.sort_unstable_by_key(|n| n.index());
        nets
    }

    /// The netlist this circuit was compiled from.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Number of flip-flops.
    pub fn num_ffs(&self) -> usize {
        self.ff_q.len()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.pi_nets.len()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.po_nets.len()
    }

    /// Number of compiled combinational operations.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Combinational level of a net: 0 for sequential/primary sources, and
    /// `1 + max(level of inputs)` for gate outputs. This is the paper's
    /// *Combinatorial Path Depth* building block.
    pub fn net_level(&self, net: NetId) -> u32 {
        self.levels[net.index()]
    }

    /// Deepest combinational level in the design.
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// Number of `u64` words needed to store one packed bit per flip-flop.
    pub fn ff_words(&self) -> usize {
        self.num_ffs().div_ceil(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffr_netlist::NetlistBuilder;

    #[test]
    fn compiles_counter() {
        let mut b = NetlistBuilder::new("c");
        let en = b.input("en", 1);
        let r = b.reg("count", 4);
        let next = b.inc(&r.q());
        b.connect_en(&r, &en, &next).unwrap();
        b.output("value", &r.q());
        let n = b.finish().unwrap();
        let cc = CompiledCircuit::compile(n).unwrap();
        assert_eq!(cc.num_ffs(), 4);
        assert_eq!(cc.num_inputs(), 1);
        assert_eq!(cc.num_outputs(), 4);
        assert!(cc.num_ops() > 0);
        assert!(cc.max_level() >= 2);
        assert_eq!(cc.ff_words(), 1);
    }

    #[test]
    fn detects_combinational_cycle() {
        // Hand-build a cyclic netlist via the Verilog parser (the builder
        // cannot express one because gates are created in SSA order).
        let src = "module m (a, o);\n  input a;\n  wire x;\n  wire y;\n  output o;\n  \
                   AND2_X1 u1 (.A1(a), .A2(y), .ZN(x));\n  \
                   OR2_X1 u2 (.A1(x), .A2(a), .ZN(y));\n  \
                   BUF_X1 u3 (.A(x), .Z(o));\nendmodule\n";
        let n = ffr_netlist::verilog::parse(src).unwrap();
        let err = CompiledCircuit::compile(n).unwrap_err();
        match err {
            SimError::CombinationalCycle { cells } => {
                assert!(!cells.is_empty());
            }
        }
        // Display is informative.
        let src_ok =
            "module m (a, o);\n  input a;\n  output o;\n  BUF_X1 u (.A(a), .Z(o));\nendmodule\n";
        let n2 = ffr_netlist::verilog::parse(src_ok).unwrap();
        assert!(CompiledCircuit::compile(n2).is_ok());
    }

    #[test]
    fn levels_are_monotonic_along_paths() {
        let mut b = NetlistBuilder::new("lv");
        let a = b.input("a", 8);
        let c = b.input("c", 8);
        let (sum, carry) = b.add(&a, &c);
        b.output("s", &sum);
        b.output("co", &carry);
        let n = b.finish().unwrap();
        let cc = CompiledCircuit::compile(n).unwrap();
        // Carry-out of a ripple adder must be deep.
        let co_net = cc.netlist().primary_outputs().last().unwrap().1;
        assert!(cc.net_level(co_net) >= 8);
        // Primary inputs are level 0.
        for &pi in cc.netlist().primary_inputs() {
            assert_eq!(cc.net_level(pi), 0);
        }
    }
}
