//! Netlist levelization and compilation into a flat operation list.

use ffr_netlist::{CellKind, FfId, NetId, Netlist};
use std::fmt;

/// Errors produced while compiling a netlist for simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The netlist contains a combinational cycle (a loop not broken by a
    /// flip-flop), which a cycle-based simulator cannot evaluate.
    CombinationalCycle {
        /// Names of some cells on the cycle (truncated for readability).
        cells: Vec<String>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CombinationalCycle { cells } => {
                write!(f, "combinational cycle through: {}", cells.join(" -> "))
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A single compiled gate evaluation.
///
/// Operand fields index into the flat net-value array; unused operands are 0
/// and ignored by [`CellKind::eval`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct Op {
    pub kind: CellKind,
    pub a: u32,
    pub b: u32,
    pub c: u32,
    pub out: u32,
}

/// Sentinel in the net→driver index for nets without a combinational
/// driver (primary inputs, flip-flop outputs, constants).
const NO_DRIVER: u32 = u32::MAX;

/// A compiled injection site: one net, resolved against the op list once.
///
/// Forcing a transient onto a net needs to know whether the net is driven
/// by a combinational op (flip *at* that op, in topological position) or
/// is a source net (flip the stored value before evaluation). Resolving
/// this used to cost an `O(num_ops)` scan per
/// [`SimState::eval_forced`](crate::SimState::eval_forced) call; a
/// `FaultSite` carries the answer, compiled once per target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSite {
    /// Index of the forced net in the flat value array.
    pub(crate) target: u32,
    /// Index of the driving op in [`CompiledCircuit::ops`], or `None` for
    /// source nets (primary inputs, flip-flop outputs).
    pub(crate) driver: Option<u32>,
}

impl FaultSite {
    /// The forced net.
    pub fn net(&self) -> NetId {
        NetId::from_index(self.target as usize)
    }

    /// `true` if the net is driven by a combinational op (a gate-output
    /// SET); `false` for source nets.
    pub fn has_comb_driver(&self) -> bool {
        self.driver.is_some()
    }
}

/// The transitive fan-out cone of one injection net, compiled for
/// cone-restricted differential fault simulation.
///
/// A single fault can only ever disturb the nets downstream of its
/// injection net: the ops in the transitive fan-out (closed over
/// flip-flop D→Q edges) and the flip-flops that latch cone nets.
/// Everything else stays golden on every lane of every cycle, so the
/// fault engine evaluates just [`Cone::num_ops`] ops per cycle instead of
/// the full circuit, loads the **boundary nets** (non-cone nets read by
/// cone ops) from a golden [`NetJournal`](crate::NetJournal), and checks
/// convergence over [`Cone::num_ffs`] flip-flops only.
///
/// Built once per injection point via [`CompiledCircuit::ff_cone`] (SEU)
/// or [`CompiledCircuit::net_cone`] (SET).
#[derive(Debug, Clone)]
pub struct Cone {
    /// Cone ops, in the same topological order as the full op list.
    pub(crate) ops: Vec<Op>,
    /// Position in `ops` of the op driving the root net (a gate-output
    /// SET root), or `None` for source roots (PI / flip-flop Q nets).
    pub(crate) forced_split: Option<u32>,
    /// The injection net.
    pub(crate) root: u32,
    /// Global indices of the flip-flops inside the cone, ascending.
    pub(crate) ffs: Vec<u32>,
    /// Q net of each cone flip-flop (parallel to `ffs`).
    pub(crate) ff_q: Vec<u32>,
    /// D net of each cone flip-flop (parallel to `ffs`).
    pub(crate) ff_d: Vec<u32>,
    /// Nets the cone reads (plus a source root) but does not produce,
    /// ascending: golden at all times, broadcast from a net journal.
    ///
    /// Unused op operands are encoded as net 0, so net 0 may appear here
    /// spuriously; loading it is harmless because [`CellKind::eval`]
    /// ignores unused operands.
    pub(crate) boundary: Vec<u32>,
    /// Bitset over all nets: the root, cone op outputs and cone FF Q
    /// nets — the only nets whose value can ever deviate from golden.
    pub(crate) touched: Vec<u64>,
    /// Frontier fan-out adjacency (CSR over all nets): for each net that
    /// can carry a non-golden value (`touched`), the cone-local indices
    /// of the ops reading it. Event-driven evaluation schedules exactly
    /// these ops when the net diverges from golden.
    pub(crate) reader_off: Vec<u32>,
    pub(crate) reader_ops: Vec<u32>,
    /// Frontier latch adjacency (CSR over all nets): for each touched
    /// net, the cone-local indices of the flip-flops whose D input it
    /// drives. A divergent D net is exactly what makes a flip-flop latch
    /// a non-golden value at the next clock edge.
    pub(crate) latch_off: Vec<u32>,
    pub(crate) latch_ffs: Vec<u32>,
}

impl Cone {
    /// Number of combinational ops inside the cone.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of flip-flops inside the cone.
    pub fn num_ffs(&self) -> usize {
        self.ffs.len()
    }

    /// Number of boundary nets (golden values broadcast per cycle).
    pub fn num_boundary_nets(&self) -> usize {
        self.boundary.len()
    }

    /// The injection net this cone was built for.
    pub fn root(&self) -> NetId {
        NetId::from_index(self.root as usize)
    }

    /// `true` if `net` can carry a non-golden value in some lane of some
    /// cycle — it is the root, a cone op output, or a cone flip-flop Q
    /// net. Watched outputs for which this is `false` are golden by
    /// construction and can be served from the golden trace.
    pub fn may_differ(&self, net: NetId) -> bool {
        let n = net.index();
        (self.touched[n / 64] >> (n % 64)) & 1 == 1
    }

    /// Words in the touched-net bitset (sizes the frontier dirty mask).
    pub(crate) fn touched_words(&self) -> usize {
        self.touched.len()
    }
}

/// A netlist compiled for fast cycle-based evaluation.
///
/// The compiled form owns the netlist it was built from — simulation,
/// fault injection and feature extraction all share it, and campaigns move
/// it across worker threads.
#[derive(Debug, Clone)]
pub struct CompiledCircuit {
    netlist: Netlist,
    pub(crate) ops: Vec<Op>,
    pub(crate) num_nets: usize,
    pub(crate) pi_nets: Vec<u32>,
    pub(crate) po_nets: Vec<u32>,
    pub(crate) ff_q: Vec<u32>,
    pub(crate) ff_d: Vec<u32>,
    pub(crate) ff_init: Vec<bool>,
    /// For each net, the index of the op driving it (`NO_DRIVER` for
    /// source nets) — the compiled net→driving-op index behind
    /// [`CompiledCircuit::fault_site`].
    net_driver: Vec<u32>,
    levels: Vec<u32>,
    max_level: u32,
}

impl CompiledCircuit {
    /// Levelize and compile a netlist.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CombinationalCycle`] if the combinational part of
    /// the netlist is cyclic.
    pub fn compile(netlist: Netlist) -> Result<CompiledCircuit, SimError> {
        let num_nets = netlist.num_nets();
        let num_cells = netlist.num_cells();

        // Kahn's algorithm over combinational cells. A cell depends on
        // another cell iff one of its inputs is driven by a *combinational*
        // cell (flip-flop outputs and primary inputs are sequential
        // boundaries, i.e. sources).
        let mut indegree = vec![0u32; num_cells];
        let mut comb_count = 0usize;
        for (id, cell) in netlist.cells() {
            if cell.kind().is_sequential() {
                continue;
            }
            comb_count += 1;
            for &input in cell.inputs() {
                if let Some(driver) = netlist.driver(input) {
                    if !netlist.cell(driver).kind().is_sequential() {
                        indegree[id.index()] += 1;
                    }
                }
            }
        }

        let mut levels = vec![0u32; num_nets];
        let mut queue: Vec<usize> = Vec::with_capacity(comb_count);
        for (id, cell) in netlist.cells() {
            if !cell.kind().is_sequential() && indegree[id.index()] == 0 {
                queue.push(id.index());
            }
        }

        let mut ops = Vec::with_capacity(comb_count);
        let mut net_driver = vec![NO_DRIVER; num_nets];
        let mut max_level = 0u32;
        let mut head = 0usize;
        while head < queue.len() {
            let cell_idx = queue[head];
            head += 1;
            let cell = netlist.cell(ffr_netlist::CellId::from_index(cell_idx));
            let ins = cell.inputs();
            let get = |i: usize| ins.get(i).map(|n| n.index() as u32).unwrap_or(0);
            net_driver[cell.output().index()] = ops.len() as u32;
            ops.push(Op {
                kind: cell.kind(),
                a: get(0),
                b: get(1),
                c: get(2),
                out: cell.output().index() as u32,
            });
            let lvl = 1 + ins.iter().map(|&n| levels[n.index()]).max().unwrap_or(0);
            levels[cell.output().index()] = lvl;
            max_level = max_level.max(lvl);
            // Release readers.
            for &reader in netlist.readers(cell.output()) {
                let rc = netlist.cell(reader);
                if !rc.kind().is_sequential() {
                    let r = reader.index();
                    indegree[r] -= 1;
                    if indegree[r] == 0 {
                        queue.push(r);
                    }
                }
            }
        }

        if ops.len() != comb_count {
            let mut cyclic: Vec<String> = netlist
                .cells()
                .filter(|(id, c)| !c.kind().is_sequential() && indegree[id.index()] > 0)
                .map(|(_, c)| c.name().to_string())
                .take(8)
                .collect();
            if cyclic.is_empty() {
                cyclic.push("<unknown>".to_string());
            }
            return Err(SimError::CombinationalCycle { cells: cyclic });
        }

        let pi_nets = netlist
            .primary_inputs()
            .iter()
            .map(|n| n.index() as u32)
            .collect();
        let po_nets = netlist
            .primary_outputs()
            .iter()
            .map(|(_, n)| n.index() as u32)
            .collect();
        let mut ff_q = Vec::with_capacity(netlist.num_ffs());
        let mut ff_d = Vec::with_capacity(netlist.num_ffs());
        let mut ff_init = Vec::with_capacity(netlist.num_ffs());
        for (ff, _) in netlist.ffs() {
            ff_q.push(netlist.ff_q_net(ff).index() as u32);
            ff_d.push(netlist.ff_d_net(ff).index() as u32);
            ff_init.push(netlist.ff_init(ff));
        }

        Ok(CompiledCircuit {
            netlist,
            ops,
            num_nets,
            pi_nets,
            po_nets,
            ff_q,
            ff_d,
            ff_init,
            net_driver,
            levels,
            max_level,
        })
    }

    /// Compile a net into a [`FaultSite`] ready for repeated
    /// [`SimState::eval_forced_site`](crate::SimState::eval_forced_site)
    /// calls.
    pub fn fault_site(&self, net: NetId) -> FaultSite {
        let target = net.index() as u32;
        let driver = match self.net_driver[net.index()] {
            NO_DRIVER => None,
            op => Some(op),
        };
        FaultSite { target, driver }
    }

    /// Compile the fan-out cone of a flip-flop's stored value (the SEU
    /// injection target). The flip-flop itself is always part of the
    /// cone, so its Q net is restored to golden by the cone tick even
    /// when the upset does not feed back into its own D input.
    pub fn ff_cone(&self, ff: FfId) -> Cone {
        self.build_cone(self.ff_q[ff.index()], Some(ff.index()))
    }

    /// Compile the fan-out cone of an arbitrary net (the SET injection
    /// target). Gate outputs seed their driving op into the cone (the op
    /// whose evaluation is XOR-forced); source nets (primary inputs,
    /// flip-flop Q nets) become boundary nets whose golden value the
    /// forced evaluation flips in place.
    pub fn net_cone(&self, net: NetId) -> Cone {
        self.build_cone(net.index() as u32, None)
    }

    /// Fixpoint closure of the fan-out reachability from `root`: an op
    /// joins the cone when it reads a reachable net (its output becomes
    /// reachable), a flip-flop joins when its D net is reachable (its Q
    /// net becomes reachable). The engine reads flip-flops only through
    /// their D nets ([`SimState::tick`](crate::SimState::tick)), so
    /// D-net reachability is exactly the sequential propagation edge.
    fn build_cone(&self, root: u32, seed_ff: Option<usize>) -> Cone {
        let nl = &self.netlist;
        let num_ffs = self.ff_q.len();
        let mut reached = vec![false; self.num_nets];
        let mut op_in = vec![false; self.ops.len()];
        let mut ff_in = vec![false; num_ffs];

        // Flip-flops indexed by D net, for the sequential closure step.
        let mut d_pairs: Vec<(u32, u32)> = self
            .ff_d
            .iter()
            .enumerate()
            .map(|(i, &d)| (d, i as u32))
            .collect();
        d_pairs.sort_unstable();

        let seed_op = match self.net_driver[root as usize] {
            NO_DRIVER => None,
            op => Some(op),
        };
        if let Some(op) = seed_op {
            op_in[op as usize] = true;
        }
        if let Some(ff) = seed_ff {
            ff_in[ff] = true;
        }
        let mut stack = vec![root];
        reached[root as usize] = true;
        while let Some(n) = stack.pop() {
            for &reader in nl.readers(NetId::from_index(n as usize)) {
                let cell = nl.cell(reader);
                if cell.kind().is_sequential() {
                    continue; // handled through d_pairs below
                }
                let out = cell.output().index();
                let op = self.net_driver[out] as usize;
                if !op_in[op] {
                    op_in[op] = true;
                    if !reached[out] {
                        reached[out] = true;
                        stack.push(out as u32);
                    }
                }
            }
            let from = d_pairs.partition_point(|&(d, _)| d < n);
            for &(d, ff) in &d_pairs[from..] {
                if d != n {
                    break;
                }
                if !ff_in[ff as usize] {
                    ff_in[ff as usize] = true;
                    let q = self.ff_q[ff as usize];
                    if !reached[q as usize] {
                        reached[q as usize] = true;
                        stack.push(q);
                    }
                }
            }
        }

        // Collect cone ops in global topological order; remember where
        // the forced op landed.
        let mut ops = Vec::new();
        let mut forced_split = None;
        for (i, op) in self.ops.iter().enumerate() {
            if op_in[i] {
                if seed_op == Some(i as u32) {
                    forced_split = Some(ops.len() as u32);
                }
                ops.push(*op);
            }
        }
        let mut ffs = Vec::new();
        let mut ff_q = Vec::new();
        let mut ff_d = Vec::new();
        for (i, &inside) in ff_in.iter().enumerate() {
            if inside {
                ffs.push(i as u32);
                ff_q.push(self.ff_q[i]);
                ff_d.push(self.ff_d[i]);
            }
        }

        let words = self.num_nets.div_ceil(64);
        let mut touched = vec![0u64; words];
        let mut produced = vec![0u64; words];
        let set = |bits: &mut [u64], n: u32| bits[(n / 64) as usize] |= 1u64 << (n % 64);
        set(&mut touched, root);
        for op in &ops {
            set(&mut touched, op.out);
            set(&mut produced, op.out);
        }
        for &q in &ff_q {
            set(&mut touched, q);
            set(&mut produced, q);
        }

        // Boundary: every net the cone reads (op operands, cone FF D
        // nets, and a source root) that the cone does not itself produce.
        let mut boundary = Vec::new();
        let mut in_boundary = vec![false; self.num_nets];
        let need = |n: u32, boundary: &mut Vec<u32>, in_boundary: &mut [bool]| {
            let produced_bit = (produced[(n / 64) as usize] >> (n % 64)) & 1;
            if produced_bit == 0 && !in_boundary[n as usize] {
                in_boundary[n as usize] = true;
                boundary.push(n);
            }
        };
        for op in &ops {
            need(op.a, &mut boundary, &mut in_boundary);
            need(op.b, &mut boundary, &mut in_boundary);
            need(op.c, &mut boundary, &mut in_boundary);
        }
        for &d in &ff_d {
            need(d, &mut boundary, &mut in_boundary);
        }
        need(root, &mut boundary, &mut in_boundary);
        boundary.sort_unstable();

        // Frontier fan-out adjacency: which cone ops read net `n`, and
        // which cone flip-flops latch it, keyed only for nets that can
        // ever diverge from golden (`touched`) — untouched nets never
        // raise an event. Two CSR passes: count, prefix-sum, fill.
        let is_touched = |n: u32| (touched[(n / 64) as usize] >> (n % 64)) & 1 == 1;
        let mut reader_off = vec![0u32; self.num_nets + 1];
        let mut latch_off = vec![0u32; self.num_nets + 1];
        for op in &ops {
            for n in [op.a, op.b, op.c] {
                if is_touched(n) {
                    reader_off[n as usize + 1] += 1;
                }
            }
        }
        for &d in &ff_d {
            if is_touched(d) {
                latch_off[d as usize + 1] += 1;
            }
        }
        for i in 0..self.num_nets {
            reader_off[i + 1] += reader_off[i];
            latch_off[i + 1] += latch_off[i];
        }
        let mut reader_ops = vec![0u32; reader_off[self.num_nets] as usize];
        let mut latch_ffs = vec![0u32; latch_off[self.num_nets] as usize];
        let mut reader_cursor = reader_off.clone();
        let mut latch_cursor = latch_off.clone();
        for (j, op) in ops.iter().enumerate() {
            for n in [op.a, op.b, op.c] {
                if is_touched(n) {
                    let slot = reader_cursor[n as usize] as usize;
                    reader_ops[slot] = j as u32;
                    reader_cursor[n as usize] += 1;
                }
            }
        }
        for (k, &d) in ff_d.iter().enumerate() {
            if is_touched(d) {
                let slot = latch_cursor[d as usize] as usize;
                latch_ffs[slot] = k as u32;
                latch_cursor[d as usize] += 1;
            }
        }

        Cone {
            ops,
            forced_split,
            root,
            ffs,
            ff_q,
            ff_d,
            boundary,
            touched,
            reader_off,
            reader_ops,
            latch_off,
            latch_ffs,
        }
    }

    /// The net behind primary output `po_index` (the index space of
    /// [`WatchList`](crate::WatchList) entries).
    pub fn output_net(&self, po_index: usize) -> NetId {
        NetId::from_index(self.po_nets[po_index] as usize)
    }

    /// Every net driven by a combinational op, ascending by net index —
    /// the canonical SET-campaign target list.
    pub fn comb_output_nets(&self) -> Vec<NetId> {
        let mut nets: Vec<NetId> = self
            .ops
            .iter()
            .map(|op| NetId::from_index(op.out as usize))
            .collect();
        nets.sort_unstable_by_key(|n| n.index());
        nets
    }

    /// The netlist this circuit was compiled from.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Number of flip-flops.
    pub fn num_ffs(&self) -> usize {
        self.ff_q.len()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.pi_nets.len()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.po_nets.len()
    }

    /// Number of compiled combinational operations.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Combinational level of a net: 0 for sequential/primary sources, and
    /// `1 + max(level of inputs)` for gate outputs. This is the paper's
    /// *Combinatorial Path Depth* building block.
    pub fn net_level(&self, net: NetId) -> u32 {
        self.levels[net.index()]
    }

    /// Deepest combinational level in the design.
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// Number of `u64` words needed to store one packed bit per flip-flop.
    pub fn ff_words(&self) -> usize {
        self.num_ffs().div_ceil(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffr_netlist::NetlistBuilder;

    #[test]
    fn compiles_counter() {
        let mut b = NetlistBuilder::new("c");
        let en = b.input("en", 1);
        let r = b.reg("count", 4);
        let next = b.inc(&r.q());
        b.connect_en(&r, &en, &next).unwrap();
        b.output("value", &r.q());
        let n = b.finish().unwrap();
        let cc = CompiledCircuit::compile(n).unwrap();
        assert_eq!(cc.num_ffs(), 4);
        assert_eq!(cc.num_inputs(), 1);
        assert_eq!(cc.num_outputs(), 4);
        assert!(cc.num_ops() > 0);
        assert!(cc.max_level() >= 2);
        assert_eq!(cc.ff_words(), 1);
    }

    #[test]
    fn detects_combinational_cycle() {
        // Hand-build a cyclic netlist via the Verilog parser (the builder
        // cannot express one because gates are created in SSA order).
        let src = "module m (a, o);\n  input a;\n  wire x;\n  wire y;\n  output o;\n  \
                   AND2_X1 u1 (.A1(a), .A2(y), .ZN(x));\n  \
                   OR2_X1 u2 (.A1(x), .A2(a), .ZN(y));\n  \
                   BUF_X1 u3 (.A(x), .Z(o));\nendmodule\n";
        let n = ffr_netlist::verilog::parse(src).unwrap();
        let err = CompiledCircuit::compile(n).unwrap_err();
        match err {
            SimError::CombinationalCycle { cells } => {
                assert!(!cells.is_empty());
            }
        }
        // Display is informative.
        let src_ok =
            "module m (a, o);\n  input a;\n  output o;\n  BUF_X1 u (.A(a), .Z(o));\nendmodule\n";
        let n2 = ffr_netlist::verilog::parse(src_ok).unwrap();
        assert!(CompiledCircuit::compile(n2).is_ok());
    }

    #[test]
    fn cone_of_live_ff_covers_feedback_and_excludes_independent_logic() {
        // Two independent counters: the cone of a FF in one must not
        // contain any op or FF of the other.
        let mut b = NetlistBuilder::new("cones");
        let en = b.input("en", 1);
        let r1 = b.reg("a", 4);
        let n1 = b.inc(&r1.q());
        b.connect_en(&r1, &en, &n1).unwrap();
        b.output("va", &r1.q());
        let r2 = b.reg("b", 4);
        let n2 = b.inc(&r2.q());
        b.connect_en(&r2, &en, &n2).unwrap();
        b.output("vb", &r2.q());
        let cc = CompiledCircuit::compile(b.finish().unwrap()).unwrap();

        let nl = cc.netlist();
        let a0 = nl
            .ffs()
            .map(|(ff, _)| ff)
            .find(|&ff| nl.ff_name(ff).starts_with('a'))
            .unwrap();
        let cone = cc.ff_cone(a0);
        // Feedback: the upset FF is in its own cone.
        assert!(cone.ffs.contains(&(a0.index() as u32)));
        // No FF of the other counter leaks in.
        for &ff in &cone.ffs {
            let name = nl.ff_name(FfId::from_index(ff as usize));
            assert!(name.starts_with('a'), "foreign FF {name} in cone");
        }
        // The cone is a proper subset of the circuit.
        assert!(cone.num_ops() > 0 && cone.num_ops() < cc.num_ops());
        assert!(cone.num_ffs() <= 4);
        // Source root (Q net) has no forced op.
        assert!(cone.forced_split.is_none());
        assert_eq!(cone.root(), nl.ff_q_net(a0));
        // Watched outputs of counter `b` cannot differ.
        let va_differs = (0..4).any(|i| cone.may_differ(cc.output_net(i)));
        let vb_differs = (4..8).any(|i| cone.may_differ(cc.output_net(i)));
        assert!(va_differs && !vb_differs);
    }

    #[test]
    fn net_cone_of_gate_output_carries_forced_split() {
        let mut b = NetlistBuilder::new("g");
        let en = b.input("en", 1);
        let r = b.reg("count", 4);
        let next = b.inc(&r.q());
        b.connect_en(&r, &en, &next).unwrap();
        b.output("value", &r.q());
        let cc = CompiledCircuit::compile(b.finish().unwrap()).unwrap();

        for &net in &cc.comb_output_nets() {
            let cone = cc.net_cone(net);
            let split = cone.forced_split.expect("gate output has a driver") as usize;
            // The forced op is the one driving the root.
            assert_eq!(cone.ops[split].out as usize, net.index());
            assert!(cone.may_differ(net));
            // Boundary nets are never produced by the cone.
            for &bn in &cone.boundary {
                assert!(
                    cone.ops.iter().all(|op| op.out != bn),
                    "boundary net {bn} is a cone op output"
                );
                assert!(!cone.ff_q.contains(&bn));
            }
        }
        // A primary-input root is a source: no split, root in boundary.
        let pi = cc.netlist().primary_inputs()[0];
        let cone = cc.net_cone(pi);
        assert!(cone.forced_split.is_none());
        assert!(cone.boundary.contains(&(pi.index() as u32)));
    }

    #[test]
    fn levels_are_monotonic_along_paths() {
        let mut b = NetlistBuilder::new("lv");
        let a = b.input("a", 8);
        let c = b.input("c", 8);
        let (sum, carry) = b.add(&a, &c);
        b.output("s", &sum);
        b.output("co", &carry);
        let n = b.finish().unwrap();
        let cc = CompiledCircuit::compile(n).unwrap();
        // Carry-out of a ripple adder must be deep.
        let co_net = cc.netlist().primary_outputs().last().unwrap().1;
        assert!(cc.net_level(co_net) >= 8);
        // Primary inputs are level 0.
        for &pi in cc.netlist().primary_inputs() {
            assert_eq!(cc.net_level(pi), 0);
        }
    }
}
