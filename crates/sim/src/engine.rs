//! The per-run simulation state and evaluation loop.

use crate::compile::{CompiledCircuit, Cone};
use ffr_netlist::FfId;

/// Number of independent simulation lanes packed into each net value.
pub const LANES: usize = 64;

/// Broadcast the golden bit of net `n` from a packed
/// [`NetJournal`](crate::NetJournal) row to all 64 lanes.
#[inline]
fn row_broadcast(row: &[u64], n: u32) -> u64 {
    ((row[(n / 64) as usize] >> (n % 64)) & 1).wrapping_neg()
}

/// Reusable bookkeeping of event-driven *frontier* evaluation: the
/// worklist of cone ops whose inputs currently differ from golden, the
/// per-net golden-diff (dirty) mask, and the set of flip-flops about to
/// latch a divergent value.
///
/// The frontier engine ([`SimState::eval_frontier`] /
/// [`SimState::eval_forced_frontier`] / [`SimState::tick_frontier`])
/// evaluates **only** the ops reachable from live divergence instead of
/// the whole fan-out cone every cycle: a net equal to golden on all
/// lanes never schedules its readers, and its value is served from the
/// golden [`NetJournal`](crate::NetJournal) row lazily when read. One
/// scratch serves any number of cones and batches (re-arm with
/// [`FrontierScratch::attach`]); the steady-state loop allocates
/// nothing.
#[derive(Debug, Clone, Default)]
pub struct FrontierScratch {
    /// Bitset over all nets: value in the state differs from this
    /// cycle's golden value on at least one lane (the value is live).
    dirty: Vec<u64>,
    /// Nets marked dirty this cycle, for O(|dirty|) clearing at tick.
    dirty_nets: Vec<u32>,
    /// Worklist bitset over cone-local op indices. Popping bits in
    /// ascending index order is exactly topological order, because the
    /// cone op list preserves the global levelized order.
    queue: Vec<u64>,
    /// Inclusive scheduled-op index range (`u32::MAX` when empty): the
    /// scan visits only words that can hold work.
    q_lo: u32,
    q_hi: u32,
    /// Cone-local indices of flip-flops whose D net is dirty — the only
    /// flip-flops that need to latch at the next edge.
    latch: Vec<u32>,
    /// Dedupe bitset over cone-local flip-flop indices for `latch`.
    latched: Vec<u64>,
    /// Captured D words (parallel to `latch`), so Q-to-D shift chains
    /// latch pre-edge values like the full two-pass tick.
    capture: Vec<u64>,
    /// Ops evaluated since the last [`FrontierScratch::attach`].
    ops_evaluated: u64,
    /// Ops evaluated in the current cycle (feeds `peak`).
    cycle_ops: u32,
    /// Ops evaluated in the most recently ticked cycle — the hybrid
    /// dense-switch trigger reads this as a width estimate.
    last_cycle_ops: u32,
    /// Most ops evaluated in any single cycle since the last attach.
    peak: u32,
}

impl FrontierScratch {
    /// Empty scratch; call [`FrontierScratch::attach`] before use.
    pub fn new() -> FrontierScratch {
        FrontierScratch::default()
    }

    /// Re-arm the scratch for a (possibly different) cone: size the
    /// bitsets, clear every per-cycle structure and reset the counters.
    /// Must be called before the first cycle of every batch.
    pub fn attach(&mut self, cone: &Cone) {
        self.dirty.clear();
        self.dirty.resize(cone.touched_words(), 0);
        self.dirty_nets.clear();
        self.queue.clear();
        self.queue.resize(cone.ops.len().div_ceil(64), 0);
        self.q_lo = u32::MAX;
        self.q_hi = 0;
        self.latch.clear();
        self.latched.clear();
        self.latched.resize(cone.ffs.len().div_ceil(64), 0);
        self.capture.clear();
        self.ops_evaluated = 0;
        self.cycle_ops = 0;
        self.last_cycle_ops = 0;
        self.peak = 0;
    }

    /// Drop every pending worklist entry and dirty mark, keeping the
    /// counters. Correct only at total quiescence — when the caller has
    /// proven (via a zero lane-diff) that the whole cone state equals
    /// golden again — or when abandoning the frontier representation for
    /// dense evaluation.
    pub fn quiesce(&mut self) {
        for i in 0..self.dirty_nets.len() {
            let n = self.dirty_nets[i];
            self.dirty[(n / 64) as usize] &= !(1u64 << (n % 64));
        }
        self.dirty_nets.clear();
        for i in 0..self.latch.len() {
            let k = self.latch[i];
            self.latched[(k / 64) as usize] &= !(1u64 << (k % 64));
        }
        self.latch.clear();
        if self.q_lo != u32::MAX {
            for w in (self.q_lo / 64)..=(self.q_hi / 64) {
                self.queue[w as usize] = 0;
            }
            self.q_lo = u32::MAX;
            self.q_hi = 0;
        }
        self.cycle_ops = 0;
    }

    /// `true` if `net` differs from golden on some lane this cycle (its
    /// state value is live); `false` means the net is golden by
    /// construction and its state value may be stale.
    pub fn net_dirty(&self, net: ffr_netlist::NetId) -> bool {
        self.is_dirty(net.index() as u32)
    }

    /// Whether *any* net currently differs from golden (post-eval). When
    /// `false`, every watched output is provably golden and trace
    /// recording can be skipped wholesale.
    pub fn any_dirty(&self) -> bool {
        !self.dirty_nets.is_empty()
    }

    /// Ops evaluated since the last [`FrontierScratch::attach`].
    pub fn ops_evaluated(&self) -> u64 {
        self.ops_evaluated
    }

    /// Most ops evaluated in any single cycle since the last attach.
    pub fn peak(&self) -> u32 {
        self.peak
    }

    /// Ops evaluated in the most recently ticked cycle.
    pub fn last_cycle_ops(&self) -> u32 {
        self.last_cycle_ops
    }

    #[inline]
    fn is_dirty(&self, n: u32) -> bool {
        (self.dirty[(n / 64) as usize] >> (n % 64)) & 1 == 1
    }

    #[inline]
    fn schedule(&mut self, j: u32) {
        self.queue[(j / 64) as usize] |= 1u64 << (j % 64);
        if self.q_lo == u32::MAX {
            self.q_lo = j;
            self.q_hi = j;
        } else {
            self.q_lo = self.q_lo.min(j);
            self.q_hi = self.q_hi.max(j);
        }
    }

    /// Mark `n` dirty and fan the event out: schedule the cone ops
    /// reading it and enqueue the flip-flops it feeds for the next
    /// latch. Idempotent within a cycle.
    fn spread(&mut self, cone: &Cone, n: u32) {
        let w = (n / 64) as usize;
        let bit = 1u64 << (n % 64);
        if self.dirty[w] & bit == 0 {
            self.dirty[w] |= bit;
            self.dirty_nets.push(n);
        }
        let (lo, hi) = (
            cone.reader_off[n as usize] as usize,
            cone.reader_off[n as usize + 1] as usize,
        );
        for i in lo..hi {
            self.schedule(cone.reader_ops[i]);
        }
        let (lo, hi) = (
            cone.latch_off[n as usize] as usize,
            cone.latch_off[n as usize + 1] as usize,
        );
        for i in lo..hi {
            let k = cone.latch_ffs[i];
            let (w, bit) = ((k / 64) as usize, 1u64 << (k % 64));
            if self.latched[w] & bit == 0 {
                self.latched[w] |= bit;
                self.latch.push(k);
            }
        }
    }
}

/// Mutable state of one simulation run: a `u64` per net (64 lanes), the
/// flip-flop contents, and the current cycle number.
///
/// The lanes are fully independent scenarios sharing the same primary-input
/// stimulus (unless per-lane inputs are set explicitly); the fault-injection
/// engine diverges lanes by XOR-flipping flip-flop bits.
#[derive(Debug, Clone)]
pub struct SimState {
    values: Vec<u64>,
    scratch: Vec<u64>,
    cycle: u64,
}

impl SimState {
    /// Fresh state at cycle 0 with every flip-flop at its power-on value
    /// (broadcast to all lanes) and all other nets at 0.
    pub fn new(cc: &CompiledCircuit) -> SimState {
        let mut s = SimState {
            values: vec![0u64; cc.num_nets],
            scratch: vec![0u64; cc.num_ffs()],
            cycle: 0,
        };
        for (i, &q) in cc.ff_q.iter().enumerate() {
            s.values[q as usize] = if cc.ff_init[i] { !0 } else { 0 };
        }
        s
    }

    /// Current cycle number (increments on [`SimState::tick`]).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Overwrite the cycle counter (used when resuming from a journal).
    pub fn set_cycle(&mut self, cycle: u64) {
        self.cycle = cycle;
    }

    /// Drive primary input `pi_index` with the same value on all lanes.
    pub fn set_input(&mut self, cc: &CompiledCircuit, pi_index: usize, value: bool) {
        self.values[cc.pi_nets[pi_index] as usize] = if value { !0 } else { 0 };
    }

    /// Drive primary input `pi_index` with a per-lane bit pattern.
    pub fn set_input_lanes(&mut self, cc: &CompiledCircuit, pi_index: usize, word: u64) {
        self.values[cc.pi_nets[pi_index] as usize] = word;
    }

    /// Evaluate all combinational logic for the current inputs and
    /// flip-flop state.
    pub fn eval(&mut self, cc: &CompiledCircuit) {
        Self::eval_ops(&mut self.values, &cc.ops);
    }

    fn eval_ops(v: &mut [u64], ops: &[crate::compile::Op]) {
        for op in ops {
            let a = v[op.a as usize];
            let b = v[op.b as usize];
            let c = v[op.c as usize];
            v[op.out as usize] = op.kind.eval(a, b, c);
        }
    }

    /// Evaluate combinational logic while forcing a transient XOR onto one
    /// net (a Single-Event Transient on the driving gate's output).
    ///
    /// Convenience wrapper that compiles the net into a
    /// [`FaultSite`](crate::FaultSite) first; campaigns that force the
    /// same net repeatedly should compile once with
    /// [`CompiledCircuit::fault_site`] and call
    /// [`SimState::eval_forced_site`].
    pub fn eval_forced(&mut self, cc: &CompiledCircuit, net: ffr_netlist::NetId, mask: u64) {
        self.eval_forced_site(cc, cc.fault_site(net), mask)
    }

    /// Evaluate combinational logic while forcing a transient XOR onto a
    /// pre-compiled [`FaultSite`](crate::FaultSite).
    ///
    /// The flip is applied in topological position, so downstream logic in
    /// the same cycle observes the disturbed value; the effect lasts for
    /// this evaluation only. The op list is split at the forced op, so the
    /// evaluation runs at full [`SimState::eval`] speed on both sides of
    /// the split instead of testing every op against the target.
    pub fn eval_forced_site(&mut self, cc: &CompiledCircuit, site: crate::FaultSite, mask: u64) {
        let v = &mut self.values;
        match site.driver {
            // A forced primary input / FF output is flipped before the ops
            // run (the flip persists until the driver overwrites it: the
            // next input frame or clock edge).
            None => {
                v[site.target as usize] ^= mask;
                Self::eval_ops(v, &cc.ops);
            }
            Some(driver) => {
                let driver = driver as usize;
                let (before, rest) = cc.ops.split_at(driver);
                Self::eval_ops(v, before);
                let op = &rest[0];
                let a = v[op.a as usize];
                let b = v[op.b as usize];
                let c = v[op.c as usize];
                v[op.out as usize] = op.kind.eval(a, b, c) ^ mask;
                Self::eval_ops(v, &rest[1..]);
            }
        }
    }

    /// Reset the state in place to the power-on values of
    /// [`SimState::new`], reusing the allocations. Batch loops that
    /// recycle one state across batches call this before restoring a
    /// journal entry so leftover values (e.g. a forced source net) cannot
    /// leak into the next batch.
    pub fn reset(&mut self, cc: &CompiledCircuit) {
        self.values.fill(0);
        for (i, &q) in cc.ff_q.iter().enumerate() {
            self.values[q as usize] = if cc.ff_init[i] { !0 } else { 0 };
        }
        self.cycle = 0;
    }

    /// Evaluate only the combinational logic inside a fan-out cone.
    ///
    /// Boundary nets must hold their golden values for the current cycle
    /// (see [`SimState::load_boundary`]); everything outside the cone is
    /// untouched and must not be read.
    pub fn eval_cone(&mut self, cone: &Cone) {
        Self::eval_ops(&mut self.values, &cone.ops);
    }

    /// Cone-restricted [`SimState::eval_forced_site`]: evaluate the cone
    /// while XOR-forcing the cone's root net.
    ///
    /// Gate-output roots split the cone op list at the driving op; source
    /// roots (primary inputs, flip-flop Q nets) are flipped in place
    /// before the cone ops run — for a boundary-loaded source root the
    /// flip lasts exactly one cycle, because the next
    /// [`SimState::load_boundary`] restores the golden value, mirroring
    /// how the full evaluation's driver overwrites it.
    pub fn eval_forced_cone(&mut self, cone: &Cone, mask: u64) {
        let v = &mut self.values;
        match cone.forced_split {
            None => {
                v[cone.root as usize] ^= mask;
                Self::eval_ops(v, &cone.ops);
            }
            Some(split) => {
                let (before, rest) = cone.ops.split_at(split as usize);
                Self::eval_ops(v, before);
                let op = &rest[0];
                let a = v[op.a as usize];
                let b = v[op.b as usize];
                let c = v[op.c as usize];
                v[op.out as usize] = op.kind.eval(a, b, c) ^ mask;
                Self::eval_ops(v, &rest[1..]);
            }
        }
    }

    /// Cone-restricted [`SimState::tick`]: only the cone's flip-flops
    /// capture their data inputs. Sound because flip-flops outside the
    /// cone hold golden values that the cone never reads directly — cone
    /// ops read them through boundary-net loads instead.
    pub fn tick_cone(&mut self, cone: &Cone) {
        for (i, &d) in cone.ff_d.iter().enumerate() {
            self.scratch[i] = self.values[d as usize];
        }
        for (i, &q) in cone.ff_q.iter().enumerate() {
            self.values[q as usize] = self.scratch[i];
        }
        self.cycle += 1;
    }

    /// Broadcast the golden values of the cone's boundary nets for one
    /// cycle, from a [`NetJournal`](crate::NetJournal) row.
    ///
    /// Must be called before [`SimState::eval_cone`] every cycle: it
    /// supplies the primary inputs, upstream gate outputs and non-cone
    /// flip-flop values the cone reads, so the cone loop needs no
    /// stimulus replay at all.
    pub fn load_boundary(&mut self, cone: &Cone, row: &[u64]) {
        for &n in &cone.boundary {
            let bit = (row[(n / 64) as usize] >> (n % 64)) & 1;
            self.values[n as usize] = bit.wrapping_neg();
        }
    }

    /// Load the cone flip-flops from a packed full-circuit state
    /// (indexed by global flip-flop index), broadcasting each bit to all
    /// lanes — the cone-scoped [`SimState::load_ff_state_broadcast`].
    pub fn load_cone_state_broadcast(&mut self, cone: &Cone, packed: &[u64]) {
        for (k, &ff) in cone.ffs.iter().enumerate() {
            let ff = ff as usize;
            let bit = (packed[ff / 64] >> (ff % 64)) & 1;
            self.values[cone.ff_q[k] as usize] = bit.wrapping_neg();
        }
    }

    /// Cone-scoped [`SimState::diff_lanes`]: lanes whose **cone**
    /// flip-flop state differs from the packed golden state (indexed by
    /// global flip-flop index).
    ///
    /// Equivalent to the full diff for single-fault batches — flip-flops
    /// outside the fan-out cone can never deviate from golden — while
    /// costing O(|cone FFs|) instead of O(all FFs) per cycle.
    pub fn diff_lanes_cone(&self, cone: &Cone, packed: &[u64]) -> u64 {
        let mut diff = 0u64;
        for (k, &ff) in cone.ffs.iter().enumerate() {
            let ff = ff as usize;
            let bit = (packed[ff / 64] >> (ff % 64)) & 1;
            diff |= self.values[cone.ff_q[k] as usize] ^ bit.wrapping_neg();
        }
        diff
    }

    /// Frontier-flip the cone's root net (an SEU on a flip-flop Q net,
    /// or a SET on a driverless source net): refresh the root to this
    /// cycle's golden value if it is clean, XOR `mask` onto it, and fan
    /// the divergence event out to its cone readers and latches.
    ///
    /// Byte-identical to [`SimState::flip_ff`] on the cone path: a clean
    /// root provably holds the golden value, so refresh-then-flip equals
    /// flip-in-place.
    pub fn flip_frontier(&mut self, cone: &Cone, fs: &mut FrontierScratch, row: &[u64], mask: u64) {
        let root = cone.root;
        if !fs.is_dirty(root) {
            self.values[root as usize] = row_broadcast(row, root);
        }
        self.values[root as usize] ^= mask;
        fs.spread(cone, root);
    }

    /// Convert a frontier-represented cone state into the dense form the
    /// static cone loop ([`SimState::eval_cone`] / [`SimState::tick_cone`])
    /// expects: refresh every touched-but-clean net to this cycle's
    /// golden value, so *all* cone nets hold live values afterwards.
    /// Dirty nets are already live by the frontier invariant. O(|cone|),
    /// paid once per representation switch.
    pub fn adopt_frontier(&mut self, cone: &Cone, fs: &FrontierScratch, row: &[u64]) {
        for (w, &tword) in cone.touched.iter().enumerate() {
            let mut stale = tword & !fs.dirty[w];
            while stale != 0 {
                let b = stale.trailing_zeros();
                stale &= stale - 1;
                let n = (w as u32) * 64 + b;
                self.values[n as usize] = row_broadcast(row, n);
            }
        }
    }

    /// Event-driven [`SimState::eval_cone`]: evaluate only the cone ops
    /// scheduled on the frontier worklist (their inputs differ from this
    /// cycle's golden values in `row`), in topological order.
    ///
    /// Clean operands are refreshed lazily from the golden row before an
    /// op runs, so no boundary broadcast and no whole-cone sweep happen
    /// at all. An op whose output comes out equal to golden stops
    /// propagating; an op whose output differs schedules its cone
    /// fan-out (and enqueues the flip-flops it feeds for
    /// [`SimState::tick_frontier`]).
    pub fn eval_frontier(&mut self, cone: &Cone, fs: &mut FrontierScratch, row: &[u64]) {
        Self::propagate(&mut self.values, cone, fs, row, None);
    }

    /// Event-driven [`SimState::eval_forced_cone`]: XOR-force the cone's
    /// root for exactly this evaluation. Gate-output roots schedule the
    /// driving op and apply the mask in topological position; source
    /// roots flip the golden boundary value in place
    /// ([`SimState::flip_frontier`]), which the next cycle's lazy golden
    /// refresh undoes — mirroring how the full evaluation's driver
    /// overwrites it.
    pub fn eval_forced_frontier(
        &mut self,
        cone: &Cone,
        fs: &mut FrontierScratch,
        row: &[u64],
        mask: u64,
    ) {
        match cone.forced_split {
            None => {
                self.flip_frontier(cone, fs, row, mask);
                Self::propagate(&mut self.values, cone, fs, row, None);
            }
            Some(split) => {
                fs.schedule(split);
                Self::propagate(&mut self.values, cone, fs, row, Some((split, mask)));
            }
        }
    }

    /// Drain the frontier worklist in ascending (= topological) op
    /// order. Scheduling during the scan only ever adds ops *after* the
    /// current position, because a reader is levelized after its driver.
    fn propagate(
        values: &mut [u64],
        cone: &Cone,
        fs: &mut FrontierScratch,
        row: &[u64],
        forced: Option<(u32, u64)>,
    ) {
        if fs.q_lo == u32::MAX {
            return;
        }
        let mut w = (fs.q_lo / 64) as usize;
        loop {
            if w > (fs.q_hi / 64) as usize {
                break;
            }
            // Re-read the word every pop: an evaluated op may schedule a
            // reader in this same word (at a higher bit).
            let bits = fs.queue[w];
            if bits == 0 {
                w += 1;
                continue;
            }
            let b = bits.trailing_zeros();
            fs.queue[w] &= !(1u64 << b);
            let j = (w as u32) * 64 + b;
            let op = &cone.ops[j as usize];
            // Lazy golden refresh: clean operands provably hold the
            // golden value, but their stored word may be stale.
            for n in [op.a, op.b, op.c] {
                if !fs.is_dirty(n) {
                    values[n as usize] = row_broadcast(row, n);
                }
            }
            let a = values[op.a as usize];
            let bv = values[op.b as usize];
            let c = values[op.c as usize];
            let mut out = op.kind.eval(a, bv, c);
            if let Some((fj, mask)) = forced {
                if fj == j {
                    out ^= mask;
                }
            }
            fs.ops_evaluated += 1;
            fs.cycle_ops += 1;
            values[op.out as usize] = out;
            if out != row_broadcast(row, op.out) {
                fs.spread(cone, op.out);
            }
        }
        fs.q_lo = u32::MAX;
        fs.q_hi = 0;
    }

    /// Event-driven [`SimState::tick_cone`]: only flip-flops whose D net
    /// diverged this cycle latch (everything else provably latches its
    /// golden value), and the per-lane divergence mask entering the next
    /// cycle falls out of the latch loop for free.
    ///
    /// Returns the lane mask that differs from golden entering the next
    /// cycle — bit-identical to [`SimState::diff_lanes_cone`] against
    /// the golden state journal, without the O(|cone FFs|) scan: a lane
    /// differs entering cycle `c+1` iff some flip-flop latched a
    /// non-golden bit for it, and only `latch`-listed flip-flops can.
    /// Flip-flops that latch golden again are dropped from the frontier;
    /// an empty frontier therefore *is* all-lane convergence.
    ///
    /// `next_row` is the golden journal row of the next cycle (`None` on
    /// the final cycle, where nothing needs seeding).
    pub fn tick_frontier(
        &mut self,
        cone: &Cone,
        fs: &mut FrontierScratch,
        next_row: Option<&[u64]>,
    ) -> u64 {
        debug_assert!(fs.q_lo == u32::MAX, "tick with an undrained frontier");
        fs.peak = fs.peak.max(fs.cycle_ops);
        fs.last_cycle_ops = fs.cycle_ops;
        fs.cycle_ops = 0;

        // Two-phase latch of the dirty flip-flops only: capture all D
        // words first so Q-to-D shift chains see pre-edge values.
        let n = fs.latch.len();
        fs.capture.clear();
        for i in 0..n {
            fs.capture
                .push(self.values[cone.ff_d[fs.latch[i] as usize] as usize]);
        }

        // This cycle's dirty marks expire at the edge; next cycle's are
        // re-seeded below from what actually latched non-golden.
        for &net in &fs.dirty_nets {
            fs.dirty[(net / 64) as usize] &= !(1u64 << (net % 64));
        }
        fs.dirty_nets.clear();
        for i in 0..n {
            let k = fs.latch[i];
            fs.latched[(k / 64) as usize] &= !(1u64 << (k % 64));
        }

        let mut diff = 0u64;
        for i in 0..n {
            let k = fs.latch[i] as usize;
            let v = fs.capture[i];
            self.values[cone.ff_q[k] as usize] = v;
            if let Some(next_row) = next_row {
                let q = cone.ff_q[k];
                let d = v ^ row_broadcast(next_row, q);
                diff |= d;
                if d != 0 {
                    // Still divergent: seed the next cycle's frontier
                    // (readers of Q, and Q-to-D latch chains). May push
                    // onto `fs.latch` beyond `n`.
                    fs.spread(cone, q);
                }
            }
        }
        fs.latch.drain(..n);
        self.cycle += 1;
        diff
    }

    /// Cone-scoped [`SimState::pack_ff_state`]: overwrite the cone
    /// flip-flops' bits of a packed full-circuit state with lane `lane`'s
    /// values, leaving non-cone bits untouched.
    ///
    /// Seeding `out` with a golden journal row therefore reconstructs the
    /// full faulty state of the lane, since non-cone flip-flops are
    /// golden by construction.
    pub fn pack_ff_state_cone(&self, cone: &Cone, lane: usize, out: &mut [u64]) {
        debug_assert!(lane < LANES);
        for (k, &ff) in cone.ffs.iter().enumerate() {
            let ff = ff as usize;
            let bit = (self.values[cone.ff_q[k] as usize] >> lane) & 1;
            out[ff / 64] = (out[ff / 64] & !(1u64 << (ff % 64))) | (bit << (ff % 64));
        }
    }

    /// Pack the lane-`lane` value of **every net** into `out` (one bit
    /// per net). This is the capture primitive of
    /// [`NetJournal`](crate::NetJournal).
    pub fn pack_net_state(&self, lane: usize, out: &mut Vec<u64>) {
        debug_assert!(lane < LANES);
        out.clear();
        out.resize(self.values.len().div_ceil(64), 0);
        for (n, &w) in self.values.iter().enumerate() {
            out[n / 64] |= ((w >> lane) & 1) << (n % 64);
        }
    }

    /// Advance one clock edge: every flip-flop captures its data input.
    ///
    /// Call [`SimState::eval`] first so data inputs are up to date.
    pub fn tick(&mut self, cc: &CompiledCircuit) {
        // Two passes: capture all D values first so FF-to-FF shift paths
        // (Q wired straight to the next D) behave like real hardware.
        for (i, &d) in cc.ff_d.iter().enumerate() {
            self.scratch[i] = self.values[d as usize];
        }
        for (i, &q) in cc.ff_q.iter().enumerate() {
            self.values[q as usize] = self.scratch[i];
        }
        self.cycle += 1;
    }

    /// XOR-flip the stored value of a flip-flop on the lanes selected by
    /// `mask`. This models a Single-Event Upset.
    ///
    /// Combinational logic is *not* re-evaluated; call [`SimState::eval`]
    /// afterwards (the fault engine flips before the evaluation of the
    /// injection cycle).
    pub fn flip_ff(&mut self, cc: &CompiledCircuit, ff: FfId, mask: u64) {
        self.values[cc.ff_q[ff.index()] as usize] ^= mask;
    }

    /// Current 64-lane word stored in a flip-flop.
    pub fn ff_word(&self, cc: &CompiledCircuit, ff: FfId) -> u64 {
        self.values[cc.ff_q[ff.index()] as usize]
    }

    /// Current 64-lane word on primary output `po_index`.
    pub fn output_word(&self, cc: &CompiledCircuit, po_index: usize) -> u64 {
        self.values[cc.po_nets[po_index] as usize]
    }

    /// Current 64-lane word on an arbitrary net.
    pub fn net_word(&self, net: ffr_netlist::NetId) -> u64 {
        self.values[net.index()]
    }

    /// Pack the lane-`lane` flip-flop state into `out` (one bit per FF).
    ///
    /// `out` is resized to [`CompiledCircuit::ff_words`].
    pub fn pack_ff_state(&self, cc: &CompiledCircuit, lane: usize, out: &mut Vec<u64>) {
        debug_assert!(lane < LANES);
        out.clear();
        out.resize(cc.ff_words(), 0);
        for (i, &q) in cc.ff_q.iter().enumerate() {
            let bit = (self.values[q as usize] >> lane) & 1;
            out[i / 64] |= bit << (i % 64);
        }
    }

    /// Load a packed single-scenario flip-flop state, broadcasting each bit
    /// to all 64 lanes. Used to restart simulation from a golden journal
    /// entry.
    pub fn load_ff_state_broadcast(&mut self, cc: &CompiledCircuit, packed: &[u64]) {
        debug_assert_eq!(packed.len(), cc.ff_words());
        for (i, &q) in cc.ff_q.iter().enumerate() {
            let bit = (packed[i / 64] >> (i % 64)) & 1;
            self.values[q as usize] = if bit == 1 { !0 } else { 0 };
        }
    }

    /// Lanes whose flip-flop state differs from the packed golden state.
    ///
    /// Returns a 64-bit mask with bit `l` set iff lane `l` differs from
    /// `packed` in at least one flip-flop. The fault engine uses this for
    /// early convergence detection: a lane whose state has returned to
    /// golden can never diverge again (the stimulus is shared).
    pub fn diff_lanes(&self, cc: &CompiledCircuit, packed: &[u64]) -> u64 {
        let mut diff = 0u64;
        for (i, &q) in cc.ff_q.iter().enumerate() {
            let bit = (packed[i / 64] >> (i % 64)) & 1;
            let golden = bit.wrapping_neg(); // 0 -> 0x0, 1 -> all ones
            diff |= self.values[q as usize] ^ golden;
        }
        diff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffr_netlist::NetlistBuilder;

    fn counter4() -> CompiledCircuit {
        let mut b = NetlistBuilder::new("c");
        let en = b.input("en", 1);
        let r = b.reg("count", 4);
        let next = b.inc(&r.q());
        b.connect_en(&r, &en, &next).unwrap();
        b.output("value", &r.q());
        CompiledCircuit::compile(b.finish().unwrap()).unwrap()
    }

    fn read_count(cc: &CompiledCircuit, s: &SimState, lane: usize) -> u64 {
        (0..4).fold(0u64, |acc, i| {
            acc | (((s.output_word(cc, i) >> lane) & 1) << i)
        })
    }

    #[test]
    fn counter_counts() {
        let cc = counter4();
        let mut s = SimState::new(&cc);
        for expected in 0..20u64 {
            s.set_input(&cc, 0, true);
            s.eval(&cc);
            assert_eq!(read_count(&cc, &s, 0), expected % 16);
            assert_eq!(read_count(&cc, &s, 63), expected % 16, "lanes agree");
            s.tick(&cc);
        }
        assert_eq!(s.cycle(), 20);
    }

    #[test]
    fn enable_holds_value() {
        let cc = counter4();
        let mut s = SimState::new(&cc);
        for _ in 0..5 {
            s.set_input(&cc, 0, true);
            s.eval(&cc);
            s.tick(&cc);
        }
        for _ in 0..3 {
            s.set_input(&cc, 0, false);
            s.eval(&cc);
            assert_eq!(read_count(&cc, &s, 0), 5);
            s.tick(&cc);
        }
    }

    #[test]
    fn flip_diverges_single_lane_and_convergence_detected() {
        let cc = counter4();
        let mut s = SimState::new(&cc);
        s.set_input(&cc, 0, true);
        s.eval(&cc);
        s.tick(&cc);
        // Flip bit 1 of the counter on lane 7 only.
        s.flip_ff(&cc, FfId::from_index(1), 1u64 << 7);
        s.set_input(&cc, 0, true);
        s.eval(&cc);
        let lane0 = read_count(&cc, &s, 0);
        let lane7 = read_count(&cc, &s, 7);
        assert_eq!(lane0 ^ lane7, 0b0010);

        // Golden state is lane 0's packed state; lane 7 must differ.
        let mut golden = Vec::new();
        s.pack_ff_state(&cc, 0, &mut golden);
        let diff = s.diff_lanes(&cc, &golden);
        assert_eq!(diff, 1u64 << 7);
    }

    #[test]
    fn pack_and_broadcast_round_trip() {
        let cc = counter4();
        let mut s = SimState::new(&cc);
        for _ in 0..9 {
            s.set_input(&cc, 0, true);
            s.eval(&cc);
            s.tick(&cc);
        }
        let mut packed = Vec::new();
        s.pack_ff_state(&cc, 0, &mut packed);
        let mut s2 = SimState::new(&cc);
        s2.load_ff_state_broadcast(&cc, &packed);
        s2.set_cycle(s.cycle());
        assert_eq!(s2.diff_lanes(&cc, &packed), 0);
        // Continuing both runs produces identical outputs.
        for _ in 0..5 {
            s.set_input(&cc, 0, true);
            s2.set_input(&cc, 0, true);
            s.eval(&cc);
            s2.eval(&cc);
            assert_eq!(read_count(&cc, &s, 0), read_count(&cc, &s2, 0));
            s.tick(&cc);
            s2.tick(&cc);
        }
    }

    #[test]
    fn per_lane_inputs() {
        let cc = counter4();
        let mut s = SimState::new(&cc);
        // Enable only lanes 0..32.
        for _ in 0..4 {
            s.set_input_lanes(&cc, 0, 0x0000_0000_FFFF_FFFF);
            s.eval(&cc);
            s.tick(&cc);
        }
        s.eval(&cc);
        assert_eq!(read_count(&cc, &s, 0), 4);
        assert_eq!(read_count(&cc, &s, 40), 0);
    }

    #[test]
    fn eval_forced_disturbs_gate_output_transiently() {
        let cc = counter4();
        let mut s = SimState::new(&cc);
        // Golden step for reference.
        let mut golden = SimState::new(&cc);
        for _ in 0..3 {
            s.set_input(&cc, 0, true);
            golden.set_input(&cc, 0, true);
            s.eval(&cc);
            golden.eval(&cc);
            s.tick(&cc);
            golden.tick(&cc);
        }
        // Force the D input of counter bit 0 on lane 5 for one cycle; the
        // transient is latched and the lane diverges afterwards.
        let d_net = cc.netlist().ff_d_net(FfId::from_index(0));
        s.set_input(&cc, 0, true);
        golden.set_input(&cc, 0, true);
        s.eval_forced(&cc, d_net, 1u64 << 5);
        golden.eval(&cc);
        // During the forced cycle, lane 5 sees the flipped value on d.
        assert_eq!(
            s.net_word(d_net) ^ golden.net_word(d_net),
            1u64 << 5,
            "transient visible only on lane 5"
        );
        s.tick(&cc);
        golden.tick(&cc);
        s.eval(&cc);
        golden.eval(&cc);
        // The latched disturbance persists in the counter value.
        assert_ne!(
            read_count(&cc, &s, 5),
            read_count(&cc, &golden, 5),
            "latched SET diverges lane 5"
        );
        assert_eq!(read_count(&cc, &s, 0), read_count(&cc, &golden, 0));
    }

    #[test]
    fn eval_forced_on_primary_input_net() {
        // Forcing a source net (no driving op) takes the pre-flip branch.
        let cc = counter4();
        let pi_net = cc.netlist().primary_inputs()[0];
        let mut s = SimState::new(&cc);
        s.set_input(&cc, 0, false); // enable low everywhere
        s.eval_forced(&cc, pi_net, 1u64 << 9); // but forced high on lane 9
        s.tick(&cc);
        s.eval(&cc);
        assert_eq!(read_count(&cc, &s, 9), 1, "forced lane counted");
        assert_eq!(read_count(&cc, &s, 0), 0, "other lanes held");
    }

    #[test]
    fn initial_value_respected() {
        let mut b = NetlistBuilder::new("i");
        let a = b.input("a", 2);
        let r = b.reg_init("r", 2, 0b10);
        b.connect(&r, &a).unwrap();
        b.output("o", &r.q());
        let cc = CompiledCircuit::compile(b.finish().unwrap()).unwrap();
        let mut s = SimState::new(&cc);
        s.eval(&cc);
        assert_eq!(s.output_word(&cc, 0), 0);
        assert_eq!(s.output_word(&cc, 1), !0);
    }
}
